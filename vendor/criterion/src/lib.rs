//! A minimal, dependency-free drop-in for the subset of the `criterion`
//! benchmarking API this workspace uses.
//!
//! The container this repository builds in has no access to crates.io, so
//! the workspace vendors a small benchmarking harness with criterion's
//! surface: [`Criterion`], [`BenchmarkId`], benchmark groups,
//! [`criterion_group!`] / [`criterion_main!`], and `Bencher::iter`.
//!
//! Methodology: each benchmark warms up for `warm_up_time`, then runs
//! batches until `measurement_time` elapses or `sample_size` samples are
//! collected, whichever comes first, and reports the median over batch
//! means (robust against scheduler noise). Results are printed as
//! `name ... time/iter` lines and, when the `CRITERION_JSON_OUT`
//! environment variable names a file, also dumped there as a JSON array of
//! `{"name", "ns_per_iter", "iters"}` objects so baselines can be archived
//! (see `BENCH_pushsim.json` at the workspace root).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Display;
use std::hint;
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Opaque value barrier — re-export of [`std::hint::black_box`].
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// One recorded benchmark result.
#[derive(Debug, Clone)]
pub struct BenchRecord {
    /// Full benchmark name (`group/function/param`).
    pub name: String,
    /// Median nanoseconds per iteration.
    pub ns_per_iter: f64,
    /// Total iterations measured.
    pub iters: u64,
}

static RESULTS: Mutex<Vec<BenchRecord>> = Mutex::new(Vec::new());

/// A benchmark identifier composed of a function name and a parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// `function/parameter`.
    pub fn new(function: impl Into<String>, parameter: impl Display) -> Self {
        Self {
            label: format!("{}/{}", function.into(), parameter),
        }
    }

    /// Just the parameter (used when the group name already identifies the
    /// function).
    pub fn from_parameter(parameter: impl Display) -> Self {
        Self {
            label: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.label)
    }
}

/// The timing loop handed to benchmark closures.
pub struct Bencher<'a> {
    config: &'a Config,
    result: Option<(f64, u64)>,
}

impl Bencher<'_> {
    /// Times `routine`, running it repeatedly per the harness configuration.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up: run until the warm-up budget elapses (at least once).
        let warm_up_end = Instant::now() + self.config.warm_up_time;
        let mut warm_iters: u64 = 0;
        loop {
            black_box(routine());
            warm_iters += 1;
            if Instant::now() >= warm_up_end {
                break;
            }
        }
        // Choose a batch size targeting ~1/sample_size of the measurement
        // budget per batch, from the warm-up's observed rate.
        let warm_rate = warm_iters as f64 / self.config.warm_up_time.as_secs_f64().max(1e-9);
        let per_batch_secs =
            self.config.measurement_time.as_secs_f64() / self.config.sample_size as f64;
        let batch = ((warm_rate * per_batch_secs).ceil() as u64).max(1);

        let mut batch_means: Vec<f64> = Vec::with_capacity(self.config.sample_size);
        let mut total_iters = 0u64;
        let measure_end = Instant::now() + self.config.measurement_time;
        while batch_means.len() < self.config.sample_size {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            let elapsed = start.elapsed();
            total_iters += batch;
            batch_means.push(elapsed.as_nanos() as f64 / batch as f64);
            if Instant::now() >= measure_end && batch_means.len() >= 2 {
                break;
            }
        }
        batch_means.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
        let median = batch_means[batch_means.len() / 2];
        self.result = Some((median, total_iters));
    }
}

#[derive(Debug, Clone)]
struct Config {
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
}

impl Default for Config {
    fn default() -> Self {
        Self {
            sample_size: 20,
            warm_up_time: Duration::from_millis(300),
            measurement_time: Duration::from_secs(2),
        }
    }
}

/// The benchmark harness.
#[derive(Debug, Clone, Default)]
pub struct Criterion {
    config: Config,
}

fn format_time(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:8.2} ns")
    } else if ns < 1_000_000.0 {
        format!("{:8.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:8.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:8.2} s ", ns / 1_000_000_000.0)
    }
}

fn run_one(config: &Config, name: &str, f: impl FnOnce(&mut Bencher)) {
    let mut bencher = Bencher {
        config,
        result: None,
    };
    f(&mut bencher);
    let (ns, iters) = bencher
        .result
        .expect("benchmark closure must call Bencher::iter");
    println!("bench {name:<56} {} /iter ({iters} iters)", format_time(ns));
    RESULTS.lock().expect("results lock").push(BenchRecord {
        name: name.to_string(),
        ns_per_iter: ns,
        iters,
    });
}

impl Criterion {
    /// Sets how many timed samples to collect per benchmark.
    pub fn sample_size(mut self, samples: usize) -> Self {
        self.config.sample_size = samples.max(2);
        self
    }

    /// Sets the warm-up duration.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.config.warm_up_time = d;
        self
    }

    /// Sets the measurement budget.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.config.measurement_time = d;
        self
    }

    /// Runs one benchmark.
    pub fn bench_function(&mut self, name: &str, f: impl FnOnce(&mut Bencher)) -> &mut Self {
        run_one(&self.config, name, f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            config: self.config.clone(),
            _parent: self,
        }
    }
}

/// A group of related benchmarks sharing a name prefix and configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    config: Config,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Overrides the sample count for this group.
    pub fn sample_size(&mut self, samples: usize) -> &mut Self {
        self.config.sample_size = samples.max(2);
        self
    }

    /// Overrides the measurement budget for this group.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.config.measurement_time = d;
        self
    }

    /// Runs one parameterized benchmark in the group.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        f: impl FnOnce(&mut Bencher, &I),
    ) -> &mut Self {
        let name = format!("{}/{}", self.name, id);
        run_one(&self.config, &name, |b| f(b, input));
        self
    }

    /// Runs one unparameterized benchmark in the group.
    pub fn bench_function(&mut self, id: impl Display, f: impl FnOnce(&mut Bencher)) -> &mut Self {
        let name = format!("{}/{}", self.name, id);
        run_one(&self.config, &name, f);
        self
    }

    /// Closes the group (kept for API compatibility).
    pub fn finish(self) {}
}

/// Writes collected results as JSON to `CRITERION_JSON_OUT` (if set).
/// Called automatically by [`criterion_main!`].
pub fn finalize() {
    let records = RESULTS.lock().expect("results lock");
    let Ok(path) = std::env::var("CRITERION_JSON_OUT") else {
        return;
    };
    let mut out = String::from("[\n");
    for (i, r) in records.iter().enumerate() {
        let comma = if i + 1 < records.len() { "," } else { "" };
        out.push_str(&format!(
            "  {{\"name\": \"{}\", \"ns_per_iter\": {:.1}, \"iters\": {}}}{comma}\n",
            r.name.replace('"', "'"),
            r.ns_per_iter,
            r.iters
        ));
    }
    out.push_str("]\n");
    if let Err(e) = std::fs::write(&path, out) {
        eprintln!("criterion shim: failed to write {path}: {e}");
    } else {
        println!("criterion shim: wrote {} results to {path}", records.len());
    }
}

/// Declares a group of benchmark functions (both criterion forms).
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $cfg;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the benchmark binary's `main`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // `cargo bench`/`cargo test` pass harness flags; `--list` and
            // test-mode invocations must not run the full measurement.
            let args: Vec<String> = std::env::args().collect();
            if args.iter().any(|a| a == "--list") {
                return;
            }
            if args.iter().any(|a| a == "--test") {
                return;
            }
            $( $group(); )+
            $crate::finalize();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_records_a_result() {
        let mut c = Criterion::default()
            .sample_size(3)
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(5));
        c.bench_function("smoke_add", |b| b.iter(|| black_box(1u64) + black_box(2)));
        let mut group = c.benchmark_group("smoke_group");
        group.bench_with_input(BenchmarkId::new("mul", 3), &3u64, |b, &x| {
            b.iter(|| black_box(x) * 2)
        });
        group.finish();
        let results = RESULTS.lock().unwrap();
        assert!(results.iter().any(|r| r.name == "smoke_add"));
        assert!(results.iter().any(|r| r.name == "smoke_group/mul/3"));
        for r in results.iter() {
            assert!(r.ns_per_iter >= 0.0 && r.iters > 0);
        }
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("f", 10).to_string(), "f/10");
        assert_eq!(BenchmarkId::from_parameter(10).to_string(), "10");
    }
}
