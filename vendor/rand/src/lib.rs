//! A minimal, dependency-free drop-in for the subset of the `rand` 0.8 API
//! this workspace uses.
//!
//! The container this repository builds in has no access to crates.io, so
//! the workspace vendors the random-number surface it needs instead of
//! depending on the real `rand` crate:
//!
//! * [`RngCore`] / [`Rng`] — `next_u64`-based core with `gen`, `gen_range`
//!   and `gen_bool` conveniences;
//! * [`SeedableRng`] with [`rngs::StdRng`], a **xoshiro256++** generator
//!   seeded through SplitMix64 (deterministic across platforms; the exact
//!   stream differs from upstream `StdRng`, which is fine because nothing in
//!   this repository depends on upstream's stream);
//! * [`seq::SliceRandom::shuffle`] — Fisher–Yates.
//!
//! The statistical quality matters here: the simulator's equivalence tests
//! compare empirical frequencies against exact distributions with tight
//! tolerances, which xoshiro256++ passes comfortably (it is the same
//! generator family the real `rand` uses for its small RNGs).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Core trait: a source of uniformly random 64-bit words.
pub trait RngCore {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types that can be sampled uniformly from an [`RngCore`] — the vendored
/// stand-in for `rand::distributions::Standard`.
pub trait Standard: Sized {
    /// Draws one uniform value.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for usize {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    /// Uniform in `[0, 1)` with 24 bits of precision.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Ranges that [`Rng::gen_range`] accepts.
pub trait SampleRange<T> {
    /// Draws one uniform value from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Uniform `u64` in `[0, bound)` by Lemire's multiply-shift with rejection
/// (exactly uniform).
fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    loop {
        let x = rng.next_u64();
        let m = (x as u128).wrapping_mul(bound as u128);
        let low = m as u64;
        if low >= bound.wrapping_neg() % bound {
            return (m >> 64) as u64;
        }
        // Rejected sample from the biased region; redraw.
    }
}

macro_rules! impl_uint_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from an empty range");
                let span = (self.end - self.start) as u64;
                self.start + uniform_below(rng, span) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample from an empty range");
                let span = (end - start) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                start + uniform_below(rng, span + 1) as $t
            }
        }
    )*};
}

impl_uint_range!(u8, u16, u32, u64, usize);

macro_rules! impl_int_range {
    ($($t:ty => $u:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from an empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + uniform_below(rng, span) as i128) as $t
            }
        }
    )*};
}

impl_int_range!(i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample from an empty range");
        self.start + (self.end - self.start) * f64::sample_standard(rng)
    }
}

/// Convenience methods over any [`RngCore`] — the vendored `rand::Rng`.
pub trait Rng: RngCore {
    /// Draws a uniform value of type `T` (`f64` in `[0, 1)`, full range for
    /// integers).
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Draws a uniform value from `range`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        f64::sample_standard(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// RNGs constructible from seeds — the vendored `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed (deterministic).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Named generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: **xoshiro256++**
    /// seeded via SplitMix64.
    ///
    /// Deterministic across platforms and fast (one rotation + two adds per
    /// 64-bit word). The stream differs from upstream `rand::rngs::StdRng`
    /// (which is ChaCha12); nothing in this workspace depends on upstream's
    /// exact stream, only on determinism per seed.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    #[inline]
    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut state = seed;
            let mut s = [0u64; 4];
            for slot in &mut s {
                *slot = splitmix64(&mut state);
            }
            // All-zero state would be a fixed point; SplitMix64 cannot
            // produce four zero outputs in a row, but keep the guard cheap
            // and explicit.
            if s == [0; 4] {
                s[0] = 0x1;
            }
            Self { s }
        }
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0]
                .wrapping_add(s[3])
                .rotate_left(23)
                .wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// Sequence helpers.
pub mod seq {
    use super::{Rng, RngCore};

    /// Slice shuffling — the vendored subset of `rand::seq::SliceRandom`.
    pub trait SliceRandom {
        /// The element type.
        type Item;

        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// A uniformly random element, or `None` if the slice is empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let xs: Vec<u64> = (0..16).map(|_| a.gen::<u64>()).collect();
        let ys: Vec<u64> = (0..16).map(|_| b.gen::<u64>()).collect();
        let zs: Vec<u64> = (0..16).map(|_| c.gen::<u64>()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn f64_is_in_unit_interval_and_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(1);
        let n = 100_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.005, "mean {mean}");
    }

    #[test]
    fn gen_range_covers_bounds_uniformly() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut counts = [0u32; 5];
        for _ in 0..50_000 {
            counts[rng.gen_range(0usize..5)] += 1;
        }
        for &c in &counts {
            assert!((c as f64 / 10_000.0 - 1.0).abs() < 0.05, "counts {counts:?}");
        }
        // Signed ranges include negatives.
        for _ in 0..1_000 {
            let v = rng.gen_range(-3i32..3);
            assert!((-3..3).contains(&v));
        }
        // f64 ranges stay inside.
        for _ in 0..1_000 {
            let v = rng.gen_range(2.0f64..3.0);
            assert!((2.0..3.0).contains(&v));
        }
    }

    #[test]
    fn gen_bool_matches_probability() {
        let mut rng = StdRng::seed_from_u64(3);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.3)).count();
        let frac = hits as f64 / 100_000.0;
        assert!((frac - 0.3).abs() < 0.01, "frac {frac}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut v: Vec<usize> = (0..100).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn choose_returns_elements() {
        let mut rng = StdRng::seed_from_u64(5);
        let empty: [u8; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
        let v = [1, 2, 3];
        for _ in 0..10 {
            assert!(v.contains(v.choose(&mut rng).unwrap()));
        }
    }
}
