//! A minimal, dependency-free drop-in for the subset of the `proptest` API
//! this workspace uses: random property testing **without shrinking**.
//!
//! The container this repository builds in has no access to crates.io, so
//! the workspace vendors the property-testing surface it needs. Supported:
//!
//! * the [`proptest!`] macro with `#![proptest_config(...)]` and
//!   `arg in strategy` parameter lists;
//! * [`Strategy`] for numeric ranges, tuples (up to 6), `.prop_map`,
//!   `.prop_flat_map`, `.boxed` ([`BoxedStrategy`]), [`Just`],
//!   [`prop_oneof!`], `prop::collection::vec` (exact or ranged length),
//!   `prop::sample::select`, `prop::option::of` and `prop::bool::ANY`;
//! * [`prop_assert!`], [`prop_assert_eq!`], [`prop_assert_ne!`] and
//!   [`prop_assume!`].
//!
//! Cases are generated from a seed derived from the test's name, so runs
//! are fully deterministic: a property that passes once keeps passing.
//! Failures report the case index; there is no shrinking, so the reported
//! values are the raw failing sample.

#![forbid(unsafe_code)]

use rand::rngs::StdRng;
use rand::Rng as _;

/// The RNG handed to strategies.
pub type TestRng = StdRng;

/// Runner configuration; only the number of cases is supported.
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// How many random cases to run per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` random cases per property.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 64 }
    }
}

/// A generator of random values (no shrinking).
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Maps generated values through `f` into a *strategy*, then draws from
    /// it — lets later components depend on earlier ones.
    fn prop_flat_map<S2, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S2: Strategy,
        F: Fn(Self::Value) -> S2,
    {
        FlatMap { inner: self, f }
    }

    /// Type-erases the strategy (needed to mix differently-typed branches,
    /// e.g. in [`prop_oneof!`] arms built from closures).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(std::rc::Rc::new(self))
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// The strategy returned by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// The strategy returned by [`Strategy::prop_flat_map`].
#[derive(Debug, Clone)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;
    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// A type-erased strategy (see [`Strategy::boxed`]); cheaply cloneable.
#[derive(Clone)]
pub struct BoxedStrategy<T>(std::rc::Rc<dyn Strategy<Value = T>>);

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.generate(rng)
    }
}

impl<T> std::fmt::Debug for BoxedStrategy<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("BoxedStrategy(..)")
    }
}

/// Uniformly picks one of several type-erased strategies per case (the
/// expansion of [`prop_oneof!`]).
#[derive(Debug, Clone)]
pub struct UnionStrategy<T>(Vec<BoxedStrategy<T>>);

impl<T> UnionStrategy<T> {
    /// Builds a union of the given branches.
    ///
    /// # Panics
    ///
    /// Panics if `branches` is empty.
    pub fn new(branches: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!branches.is_empty(), "prop_oneof! needs at least one branch");
        Self(branches)
    }
}

impl<T> Strategy for UnionStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let index = rng.gen_range(0..self.0.len());
        self.0[index].generate(rng)
    }
}

/// Uniformly picks one of the listed strategies for each generated case
/// (unweighted subset of proptest's macro of the same name).
#[macro_export]
macro_rules! prop_oneof {
    ($($branch:expr),+ $(,)?) => {
        $crate::UnionStrategy::new(vec![$($crate::Strategy::boxed($branch)),+])
    };
}

/// A strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f64);

macro_rules! impl_tuple_strategy {
    ($(($($s:ident / $idx:tt),+)),+) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )+};
}

impl_tuple_strategy!(
    (A / 0),
    (A / 0, B / 1),
    (A / 0, B / 1, C / 2),
    (A / 0, B / 1, C / 2, D / 3),
    (A / 0, B / 1, C / 2, D / 3, E / 4),
    (A / 0, B / 1, C / 2, D / 3, E / 4, F / 5)
);

/// Strategy combinators namespace (`prop::collection::vec`, `prop::bool`).
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        use crate::{Strategy, TestRng};
        use rand::Rng as _;

        /// A length specification: exact or a range.
        #[derive(Debug, Clone, Copy)]
        pub struct SizeRange {
            min: usize,
            /// Exclusive upper bound.
            max: usize,
        }

        impl From<usize> for SizeRange {
            fn from(exact: usize) -> Self {
                Self {
                    min: exact,
                    max: exact + 1,
                }
            }
        }

        impl From<core::ops::Range<usize>> for SizeRange {
            fn from(r: core::ops::Range<usize>) -> Self {
                assert!(r.start < r.end, "empty size range");
                Self {
                    min: r.start,
                    max: r.end,
                }
            }
        }

        /// The strategy returned by [`vec()`](fn@vec).
        #[derive(Debug, Clone)]
        pub struct VecStrategy<S> {
            element: S,
            size: SizeRange,
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let len = rng.gen_range(self.size.min..self.size.max);
                (0..len).map(|_| self.element.generate(rng)).collect()
            }
        }

        /// A vector of values from `element` with a length drawn from
        /// `size` (an exact `usize` or a `Range<usize>`).
        pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
            VecStrategy {
                element,
                size: size.into(),
            }
        }
    }

    /// Sampling from explicit value lists.
    pub mod sample {
        use crate::{Strategy, TestRng};
        use rand::Rng as _;

        /// The strategy returned by [`select()`](fn@select).
        #[derive(Debug, Clone)]
        pub struct Select<T: Clone>(Vec<T>);

        impl<T: Clone> Strategy for Select<T> {
            type Value = T;
            fn generate(&self, rng: &mut TestRng) -> T {
                self.0[rng.gen_range(0..self.0.len())].clone()
            }
        }

        /// Uniformly selects one of the given values per case.
        ///
        /// # Panics
        ///
        /// Panics if `values` is empty.
        pub fn select<T: Clone>(values: Vec<T>) -> Select<T> {
            assert!(!values.is_empty(), "select() needs at least one value");
            Select(values)
        }
    }

    /// `Option` strategies.
    pub mod option {
        use crate::{Strategy, TestRng};
        use rand::Rng as _;

        /// The strategy returned by [`of()`](fn@of).
        #[derive(Debug, Clone)]
        pub struct OptionStrategy<S>(S);

        impl<S: Strategy> Strategy for OptionStrategy<S> {
            type Value = Option<S::Value>;
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                // Some three times out of four, like upstream proptest.
                if rng.gen_range(0u32..4) > 0 {
                    Some(self.0.generate(rng))
                } else {
                    None
                }
            }
        }

        /// `None` a quarter of the time, `Some(inner)` otherwise.
        pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
            OptionStrategy(inner)
        }
    }

    /// Boolean strategies.
    pub mod bool {
        use crate::{Strategy, TestRng};
        use rand::Rng as _;

        /// Uniformly random booleans.
        #[derive(Debug, Clone, Copy)]
        pub struct Any;

        /// Uniformly random booleans (`prop::bool::ANY`).
        pub const ANY: Any = Any;

        impl Strategy for Any {
            type Value = bool;
            fn generate(&self, rng: &mut TestRng) -> bool {
                rng.gen::<bool>()
            }
        }
    }
}

/// Everything a property-test file needs.
pub mod prelude {
    pub use crate::{
        prop, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
        BoxedStrategy, Just, ProptestConfig, Strategy,
    };
}

/// Derives a per-test RNG seed from the test's name, so every property is
/// deterministic but different properties see different streams.
pub fn seed_for(test_name: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in test_name.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Builds the deterministic per-test RNG (used by the [`proptest!`]
/// expansion, which cannot assume the caller depends on `rand` directly).
pub fn new_rng(seed: u64) -> TestRng {
    use rand::SeedableRng as _;
    TestRng::seed_from_u64(seed)
}

/// Fails the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return ::core::result::Result::Err(format!(
                "assertion failed: {}", stringify!($cond)
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::core::result::Result::Err(format!($($fmt)+));
        }
    };
}

/// Fails the current case unless the two values are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::core::result::Result::Err(format!(
                "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
                stringify!($left), stringify!($right), l, r
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::core::result::Result::Err(format!($($fmt)+));
        }
    }};
}

/// Fails the current case if the two values are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            return ::core::result::Result::Err(format!(
                "assertion failed: {} != {}\n  both: {:?}",
                stringify!($left), stringify!($right), l
            ));
        }
    }};
}

/// Discards the current case (counts as a pass) unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::core::result::Result::Ok(());
        }
    };
}

/// Declares deterministic random property tests.
///
/// Supports the `#![proptest_config(...)]` header and `arg in strategy`
/// parameter lists; shrinking is not implemented.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@with_config $cfg; $($rest)*);
    };
    (@with_config $cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident ( $( $arg:ident in $strat:expr ),* $(,)? ) $body:block
    )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let mut rng: $crate::TestRng =
                    $crate::new_rng($crate::seed_for(stringify!($name)));
                for case in 0..config.cases {
                    let outcome: ::core::result::Result<(), ::std::string::String> = (|| {
                        $( let $arg = $crate::Strategy::generate(&($strat), &mut rng); )*
                        $body
                        ::core::result::Result::Ok(())
                    })();
                    if let ::core::result::Result::Err(message) = outcome {
                        panic!("property {} failed at case {case}: {message}", stringify!($name));
                    }
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@with_config $crate::ProptestConfig::default(); $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(
            x in 3usize..10,
            y in -5i32..5,
            z in 0.25f64..0.75,
            b in prop::bool::ANY,
        ) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((-5..5).contains(&y));
            prop_assert!((0.25..0.75).contains(&z));
            let _either_way: bool = b;
        }

        #[test]
        fn vec_and_tuples_compose(
            v in prop::collection::vec((1u32..100).prop_map(|n| n as f64), 2..6),
            exact in prop::collection::vec(0u64..10, 4),
        ) {
            prop_assert!(v.len() >= 2 && v.len() < 6);
            prop_assert_eq!(exact.len(), 4);
            prop_assume!(!v.is_empty());
            prop_assert!(v.iter().all(|&x| x >= 1.0));
            prop_assert_ne!(v.len(), 0);
        }
    }

    #[test]
    fn seeds_differ_per_test_name() {
        assert_ne!(super::seed_for("a"), super::seed_for("b"));
        assert_eq!(super::seed_for("a"), super::seed_for("a"));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn oneof_select_option_flat_map_compose(
            choice in prop_oneof![
                (0u32..10).prop_map(|v| v as u64),
                Just(99u64),
            ],
            picked in prop::sample::select(vec!["a", "b", "c"]),
            maybe in prop::option::of(1u8..5),
            dependent in (2usize..5).prop_flat_map(|len| {
                prop::collection::vec(0u32..10, len)
            }),
        ) {
            prop_assert!(choice < 10 || choice == 99);
            prop_assert!(["a", "b", "c"].contains(&picked));
            if let Some(v) = maybe {
                prop_assert!((1..5).contains(&v));
            }
            prop_assert!(dependent.len() >= 2 && dependent.len() <= 5);
        }

        #[test]
        fn boxed_strategies_generate(x in (1i32..4).boxed()) {
            prop_assert!((1..4).contains(&x));
        }
    }
}
