//! A minimal, dependency-free drop-in for the subset of the `proptest` API
//! this workspace uses: random property testing **without shrinking**.
//!
//! The container this repository builds in has no access to crates.io, so
//! the workspace vendors the property-testing surface it needs. Supported:
//!
//! * the [`proptest!`] macro with `#![proptest_config(...)]` and
//!   `arg in strategy` parameter lists;
//! * [`Strategy`] for numeric ranges, tuples (up to 6), `.prop_map`,
//!   [`Just`], `prop::collection::vec` (exact or ranged length) and
//!   `prop::bool::ANY`;
//! * [`prop_assert!`], [`prop_assert_eq!`], [`prop_assert_ne!`] and
//!   [`prop_assume!`].
//!
//! Cases are generated from a seed derived from the test's name, so runs
//! are fully deterministic: a property that passes once keeps passing.
//! Failures report the case index; there is no shrinking, so the reported
//! values are the raw failing sample.

#![forbid(unsafe_code)]

use rand::rngs::StdRng;
use rand::Rng as _;

/// The RNG handed to strategies.
pub type TestRng = StdRng;

/// Runner configuration; only the number of cases is supported.
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// How many random cases to run per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` random cases per property.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 64 }
    }
}

/// A generator of random values (no shrinking).
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// The strategy returned by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f64);

macro_rules! impl_tuple_strategy {
    ($(($($s:ident / $idx:tt),+)),+) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )+};
}

impl_tuple_strategy!(
    (A / 0),
    (A / 0, B / 1),
    (A / 0, B / 1, C / 2),
    (A / 0, B / 1, C / 2, D / 3),
    (A / 0, B / 1, C / 2, D / 3, E / 4),
    (A / 0, B / 1, C / 2, D / 3, E / 4, F / 5)
);

/// Strategy combinators namespace (`prop::collection::vec`, `prop::bool`).
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        use crate::{Strategy, TestRng};
        use rand::Rng as _;

        /// A length specification: exact or a range.
        #[derive(Debug, Clone, Copy)]
        pub struct SizeRange {
            min: usize,
            /// Exclusive upper bound.
            max: usize,
        }

        impl From<usize> for SizeRange {
            fn from(exact: usize) -> Self {
                Self {
                    min: exact,
                    max: exact + 1,
                }
            }
        }

        impl From<core::ops::Range<usize>> for SizeRange {
            fn from(r: core::ops::Range<usize>) -> Self {
                assert!(r.start < r.end, "empty size range");
                Self {
                    min: r.start,
                    max: r.end,
                }
            }
        }

        /// The strategy returned by [`vec()`](fn@vec).
        #[derive(Debug, Clone)]
        pub struct VecStrategy<S> {
            element: S,
            size: SizeRange,
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let len = rng.gen_range(self.size.min..self.size.max);
                (0..len).map(|_| self.element.generate(rng)).collect()
            }
        }

        /// A vector of values from `element` with a length drawn from
        /// `size` (an exact `usize` or a `Range<usize>`).
        pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
            VecStrategy {
                element,
                size: size.into(),
            }
        }
    }

    /// Boolean strategies.
    pub mod bool {
        use crate::{Strategy, TestRng};
        use rand::Rng as _;

        /// Uniformly random booleans.
        #[derive(Debug, Clone, Copy)]
        pub struct Any;

        /// Uniformly random booleans (`prop::bool::ANY`).
        pub const ANY: Any = Any;

        impl Strategy for Any {
            type Value = bool;
            fn generate(&self, rng: &mut TestRng) -> bool {
                rng.gen::<bool>()
            }
        }
    }
}

/// Everything a property-test file needs.
pub mod prelude {
    pub use crate::{
        prop, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Just,
        ProptestConfig, Strategy,
    };
}

/// Derives a per-test RNG seed from the test's name, so every property is
/// deterministic but different properties see different streams.
pub fn seed_for(test_name: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in test_name.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Builds the deterministic per-test RNG (used by the [`proptest!`]
/// expansion, which cannot assume the caller depends on `rand` directly).
pub fn new_rng(seed: u64) -> TestRng {
    use rand::SeedableRng as _;
    TestRng::seed_from_u64(seed)
}

/// Fails the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return ::core::result::Result::Err(format!(
                "assertion failed: {}", stringify!($cond)
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::core::result::Result::Err(format!($($fmt)+));
        }
    };
}

/// Fails the current case unless the two values are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::core::result::Result::Err(format!(
                "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
                stringify!($left), stringify!($right), l, r
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::core::result::Result::Err(format!($($fmt)+));
        }
    }};
}

/// Fails the current case if the two values are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            return ::core::result::Result::Err(format!(
                "assertion failed: {} != {}\n  both: {:?}",
                stringify!($left), stringify!($right), l
            ));
        }
    }};
}

/// Discards the current case (counts as a pass) unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::core::result::Result::Ok(());
        }
    };
}

/// Declares deterministic random property tests.
///
/// Supports the `#![proptest_config(...)]` header and `arg in strategy`
/// parameter lists; shrinking is not implemented.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@with_config $cfg; $($rest)*);
    };
    (@with_config $cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident ( $( $arg:ident in $strat:expr ),* $(,)? ) $body:block
    )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let mut rng: $crate::TestRng =
                    $crate::new_rng($crate::seed_for(stringify!($name)));
                for case in 0..config.cases {
                    let outcome: ::core::result::Result<(), ::std::string::String> = (|| {
                        $( let $arg = $crate::Strategy::generate(&($strat), &mut rng); )*
                        $body
                        ::core::result::Result::Ok(())
                    })();
                    if let ::core::result::Result::Err(message) = outcome {
                        panic!("property {} failed at case {case}: {message}", stringify!($name));
                    }
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@with_config $crate::ProptestConfig::default(); $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(
            x in 3usize..10,
            y in -5i32..5,
            z in 0.25f64..0.75,
            b in prop::bool::ANY,
        ) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((-5..5).contains(&y));
            prop_assert!((0.25..0.75).contains(&z));
            let _either_way: bool = b;
        }

        #[test]
        fn vec_and_tuples_compose(
            v in prop::collection::vec((1u32..100).prop_map(|n| n as f64), 2..6),
            exact in prop::collection::vec(0u64..10, 4),
        ) {
            prop_assert!(v.len() >= 2 && v.len() < 6);
            prop_assert_eq!(exact.len(), 4);
            prop_assume!(!v.is_empty());
            prop_assert!(v.iter().all(|&x| x >= 1.0));
            prop_assert_ne!(v.len(), 0);
        }
    }

    #[test]
    fn seeds_differ_per_test_name() {
        assert_ne!(super::seed_for("a"), super::seed_for("b"));
        assert_eq!(super::seed_for("a"), super::seed_for("a"));
    }
}
