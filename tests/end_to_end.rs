//! End-to-end integration tests spanning all workspace crates: the full
//! protocol under different noise families, opinion counts and delivery
//! semantics, checked against the majority-preservation analysis.

use noisy_plurality::prelude::*;

/// The headline claim of Theorem 1 at a simulable scale: rumor spreading
/// succeeds for k ∈ {2, 3, 5} under uniform ε-noise.
#[test]
fn rumor_spreading_succeeds_across_opinion_counts() {
    for &k in &[2usize, 3, 5] {
        let eps = 0.35;
        let noise = NoiseMatrix::uniform(k, eps).expect("valid noise");
        let params = ProtocolParams::builder(500, k)
            .epsilon(eps)
            .seed(100 + k as u64)
            .build()
            .expect("valid params");
        let protocol = TwoStageProtocol::new(params, noise).expect("compatible dimensions");
        let outcome = protocol
            .run_rumor_spreading(Opinion::new(k - 1))
            .expect("run completes");
        assert!(
            outcome.succeeded(),
            "k = {k}: expected success, final = {}",
            outcome.final_distribution()
        );
    }
}

/// Theorem 2 at a simulable scale: plurality consensus recovers the
/// plurality opinion even when it holds well under half of the votes.
#[test]
fn plurality_consensus_without_absolute_majority() {
    let eps = 0.35;
    let k = 4;
    let noise = NoiseMatrix::uniform(k, eps).expect("valid noise");
    let params = ProtocolParams::builder(800, k)
        .epsilon(eps)
        .seed(11)
        .build()
        .expect("valid params");
    // Plurality (35%) is far from an absolute majority.
    let outcome = run_plurality_consensus(&params, &noise, &[280, 200, 180, 140])
        .expect("run completes");
    assert!(outcome.succeeded(), "final = {}", outcome.final_distribution());
    assert_eq!(outcome.winning_opinion(), Some(Opinion::new(0)));
}

/// The protocol works identically under the three delivery semantics of
/// Section 3.2 (processes O, B, P) — the empirical face of Claim 1/Lemma 3.
#[test]
fn all_delivery_semantics_solve_the_same_instance() {
    let eps = 0.35;
    for semantics in DeliverySemantics::ALL {
        let noise = NoiseMatrix::uniform(3, eps).expect("valid noise");
        let params = ProtocolParams::builder(500, 3)
            .epsilon(eps)
            .seed(21)
            .delivery(semantics)
            .build()
            .expect("valid params");
        let outcome =
            run_plurality_consensus(&params, &noise, &[200, 150, 150]).expect("run completes");
        assert!(
            outcome.succeeded(),
            "process {} failed: {}",
            semantics.label(),
            outcome.final_distribution()
        );
    }
}

/// The m.p. analysis and the protocol agree on the Section 4 counterexample:
/// the noise destroys the plurality, and the protocol indeed converges away
/// from it (consensus on a wrong opinion or no consensus at all).
#[test]
fn counterexample_noise_defeats_the_protocol_as_predicted() {
    let bad = families::diagonally_dominant_counterexample(0.05).expect("valid matrix");
    // The LP certifies that a 0.1-biased distribution towards opinion 0 is
    // not preserved.
    let report = bad.majority_preservation(0, 0.1).expect("analysis runs");
    assert!(!report.preserves_majority());

    let params = ProtocolParams::builder(500, 3)
        .epsilon(0.05)
        .seed(31)
        .build()
        .expect("valid params");
    let outcome = run_plurality_consensus(&params, &bad, &[220, 180, 100]).expect("run completes");
    assert!(
        !outcome.succeeded(),
        "the protocol should not recover a plurality the channel destroys: {}",
        outcome.final_distribution()
    );
}

/// Conversely, a matrix certified m.p. by the LP lets the protocol succeed —
/// here the cyclic ("close opinion") noise family with a mild switching
/// probability. (With a larger switching probability the same family stops
/// being m.p. at small biases, which the LP also detects.)
#[test]
fn cyclic_noise_is_mp_and_the_protocol_succeeds_under_it() {
    let mild = families::cyclic(4, 0.05).expect("valid matrix");
    let report = mild.majority_preservation(2, 0.05).expect("analysis runs");
    assert!(report.preserves_majority());
    assert!(
        report.max_epsilon() > 0.3,
        "mild cyclic noise should leave a healthy margin, got {}",
        report.max_epsilon()
    );

    // The same family with heavy switching fails the m.p. test at small
    // biases: neighbours of the plurality opinion soak up its losses.
    let heavy = families::cyclic(4, 0.15).expect("valid matrix");
    let heavy_report = heavy.majority_preservation(2, 0.05).expect("analysis runs");
    assert!(!heavy_report.preserves_majority());

    let params = ProtocolParams::builder(600, 4)
        .epsilon(0.25)
        .seed(41)
        .build()
        .expect("valid params");
    let outcome =
        run_plurality_consensus(&params, &mild, &[150, 150, 210, 90]).expect("run completes");
    assert!(outcome.succeeded(), "final = {}", outcome.final_distribution());
    assert_eq!(outcome.winning_opinion(), Some(Opinion::new(2)));
}

/// The measured per-node memory stays within a small constant factor of the
/// paper's `log log n + log 1/ε` scale (Theorems 1 and 2).
#[test]
fn memory_footprint_matches_the_theorem_scale() {
    let eps = 0.35;
    let noise = NoiseMatrix::uniform(2, eps).expect("valid noise");
    let params = ProtocolParams::builder(800, 2)
        .epsilon(eps)
        .seed(51)
        .build()
        .expect("valid params");
    let outcome = run_rumor_spreading(&params, &noise).expect("run completes");
    let measured_bits = outcome.memory().bits_per_node() as f64;
    let scale = bounds::memory_bound_bits(800, eps);
    assert!(
        measured_bits <= 16.0 * scale,
        "measured {measured_bits} bits vs scale {scale}"
    );
}

/// Round counts stay within a constant factor of the `log n / ε²` scale and
/// grow with n (Theorem 1's complexity claim, qualitatively).
#[test]
fn rounds_scale_with_log_n_over_eps_squared() {
    let eps = 0.4;
    let noise = NoiseMatrix::uniform(2, eps).expect("valid noise");
    let mut measured = Vec::new();
    for &n in &[300usize, 1_200] {
        let params = ProtocolParams::builder(n, 2)
            .epsilon(eps)
            .seed(61)
            .build()
            .expect("valid params");
        let outcome = run_rumor_spreading(&params, &noise).expect("run completes");
        assert!(outcome.succeeded());
        let normalized = outcome.rounds() as f64 / bounds::rounds_bound(n, eps);
        measured.push(normalized);
    }
    // The normalized constants should be of the same order of magnitude.
    let ratio = measured[1] / measured[0];
    assert!(
        ratio > 0.3 && ratio < 3.0,
        "normalized round constants diverge: {measured:?}"
    );
}

/// Stage 1's guarantees (Lemma 4): starting from a single source, at the end
/// of Stage 1 every node is opinionated and the bias towards the source's
/// opinion is positive.
#[test]
fn stage1_records_show_full_activation_and_positive_bias() {
    let eps = 0.35;
    let noise = NoiseMatrix::uniform(3, eps).expect("valid noise");
    let params = ProtocolParams::builder(600, 3)
        .epsilon(eps)
        .seed(71)
        .build()
        .expect("valid params");
    let protocol = TwoStageProtocol::new(params, noise).expect("compatible");
    let outcome = protocol
        .run_rumor_spreading(Opinion::new(0))
        .expect("run completes");
    let last_stage1 = outcome
        .stage_records(StageId::One)
        .last()
        .expect("stage 1 ran");
    assert!(
        (last_stage1.opinionated_fraction_after() - 1.0).abs() < 1e-9,
        "not everyone opinionated after Stage 1: {}",
        last_stage1.distribution_after()
    );
    assert!(last_stage1.bias_after().unwrap() > 0.0);
    // And Stage 2 amplifies that bias to 1 (consensus).
    let last = outcome.phase_records().last().unwrap();
    assert!((last.bias_after().unwrap() - 1.0).abs() < 1e-9);
}
