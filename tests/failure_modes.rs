//! Failure-injection and adversarial-configuration tests: the protocol and
//! its substrates must degrade predictably, not silently.

use noisy_plurality::prelude::*;

/// Resetting noise towards a fixed opinion overwhelms any plurality of a
/// different opinion: the m.p. analysis predicts it, and the protocol indeed
/// converges to the reset target instead of the initial plurality.
#[test]
fn reset_noise_hijacks_consensus_towards_its_target() {
    let noise = families::reset_to_opinion(3, 0.5, 2).expect("valid matrix");
    let report = noise.majority_preservation(0, 0.2).expect("analysis runs");
    assert!(!report.preserves_majority());

    let params = ProtocolParams::builder(500, 3)
        .epsilon(0.2)
        .seed(1)
        .build()
        .expect("valid params");
    let outcome =
        run_plurality_consensus(&params, &noise, &[250, 150, 100]).expect("run completes");
    assert!(!outcome.succeeded());
    // The hijacker wins: the final plurality is the reset target.
    assert_eq!(outcome.winning_opinion(), Some(Opinion::new(2)));
}

/// Degenerate and malformed configurations are rejected with errors, never
/// panics.
#[test]
fn malformed_configurations_are_rejected_cleanly() {
    // k = 1 systems are meaningless.
    assert!(NoiseMatrix::uniform(1, 0.1).is_err());
    assert!(ProtocolParams::builder(100, 1).build().is_err());
    // Epsilon outside (0, 1).
    assert!(ProtocolParams::builder(100, 2).epsilon(0.0).build().is_err());
    assert!(ProtocolParams::builder(100, 2).epsilon(1.0).build().is_err());
    // Tied initial plurality.
    let noise = NoiseMatrix::uniform(2, 0.2).expect("valid noise");
    let params = ProtocolParams::builder(100, 2)
        .epsilon(0.2)
        .build()
        .expect("valid params");
    assert!(run_plurality_consensus(&params, &noise, &[50, 50]).is_err());
    // Counts exceeding n.
    assert!(run_plurality_consensus(&params, &noise, &[90, 20]).is_err());
    // Mismatched noise dimension.
    let wrong = NoiseMatrix::uniform(3, 0.2).expect("valid noise");
    assert!(TwoStageProtocol::new(params, wrong).is_err());
}

/// An all-undecided network (no initial opinions at all) is rejected for
/// plurality consensus rather than looping forever.
#[test]
fn empty_initial_opinion_set_is_rejected() {
    let noise = NoiseMatrix::uniform(2, 0.2).expect("valid noise");
    let params = ProtocolParams::builder(100, 2)
        .epsilon(0.2)
        .build()
        .expect("valid params");
    let err = run_plurality_consensus(&params, &noise, &[0, 0]).unwrap_err();
    assert!(matches!(err, ProtocolError::BadInitialCounts { .. }));
}

/// Extremely weak noise margins (ε far below what the schedule was tuned
/// for) leave the outcome unreliable — but the run still terminates within
/// its schedule and reports an honest (non-)success.
#[test]
fn undersized_epsilon_terminates_and_reports_honestly() {
    // The channel barely preserves anything: eps_matrix = 0.02, while the
    // schedule is tuned for eps = 0.4 (far too optimistic).
    let noise = NoiseMatrix::uniform(2, 0.02).expect("valid noise");
    let params = ProtocolParams::builder(300, 2)
        .epsilon(0.4)
        .seed(3)
        .build()
        .expect("valid params");
    let schedule_rounds = params.schedule().total_rounds();
    let outcome = run_plurality_consensus(&params, &noise, &[160, 120]).expect("run completes");
    assert_eq!(outcome.rounds(), schedule_rounds);
    // No assertion on success: the point is termination + honest reporting.
    let bias = outcome
        .final_distribution()
        .bias_towards(outcome.correct_opinion());
    assert!(bias.is_some());
}

/// Node-level invariants hold even under the hostile reset channel: node
/// counts are conserved and every agent ends in a legal state.
#[test]
fn node_conservation_under_hostile_noise() {
    let noise = families::reset_to_opinion(4, 0.9, 1).expect("valid matrix");
    let params = ProtocolParams::builder(400, 4)
        .epsilon(0.3)
        .seed(5)
        .build()
        .expect("valid params");
    let outcome =
        run_plurality_consensus(&params, &noise, &[100, 90, 90, 80]).expect("run completes");
    let dist = outcome.final_distribution();
    assert_eq!(dist.num_nodes(), 400);
    assert_eq!(dist.counts().iter().sum::<usize>() + dist.undecided(), 400);
}

/// The Appendix D regime, qualitatively: if Stage 2 is run directly from a
/// tiny opinionated set whose size is far below Θ(log n / ε²), the guarantee
/// evaporates; with an adequately sized set it holds. (Theorem 2's |S|
/// requirement.)
#[test]
fn stage2_needs_a_large_enough_opinionated_set() {
    let eps = 0.35;
    let noise = NoiseMatrix::uniform(2, eps).expect("valid noise");
    let params = ProtocolParams::builder(800, 2)
        .epsilon(eps)
        .seed(7)
        .build()
        .expect("valid params");
    let protocol = TwoStageProtocol::new(params, noise).expect("compatible");

    // Adequate set: most of the network is opinionated with a solid bias —
    // the "majority consensus subroutine" setting of Theorem 2.
    let good = protocol.run_stage2_only(&[480, 320]).expect("run completes");
    assert!(good.succeeded(), "final = {}", good.final_distribution());

    // Tiny set: 8 opinionated nodes. Most agents never collect ell messages
    // in the early phases, and the per-phase majority signal is swamped by
    // noise; the protocol should not be able to certify success reliably.
    // We only assert the run terminates and stays in a legal state (the
    // quantitative version is experiment F7 in the bench harness).
    let tiny = protocol.run_stage2_only(&[5, 3]).expect("run completes");
    let dist = tiny.final_distribution();
    assert_eq!(dist.counts().iter().sum::<usize>() + dist.undecided(), 800);
}
