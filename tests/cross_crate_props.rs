//! Cross-crate property-based tests: invariants that must hold across the
//! noise, simulator and protocol layers for randomly drawn configurations.
//!
//! The instances are kept deliberately small (a few hundred nodes, noiseless
//! or mildly noisy channels) so that the whole suite stays fast in debug
//! builds; the large-scale statistical claims live in the bench harness.

use noisy_plurality::prelude::*;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Under a noiseless channel, the protocol always reaches consensus on
    /// the initial plurality opinion, whatever the (unique-plurality)
    /// initial configuration.
    #[test]
    fn noiseless_protocol_always_recovers_the_plurality(
        k in 2usize..5,
        seed in 0u64..1_000,
        shares in prop::collection::vec(10usize..60, 4),
    ) {
        // Build counts with a unique plurality on opinion 0.
        let mut counts: Vec<usize> = shares.into_iter().take(k).collect();
        while counts.len() < k {
            counts.push(10);
        }
        let max_other = counts[1..].iter().copied().max().unwrap_or(0);
        counts[0] = max_other + 20;
        let n: usize = counts.iter().sum::<usize>() + 50;

        let noise = NoiseMatrix::identity(k).unwrap();
        let params = ProtocolParams::builder(n, k)
            .epsilon(0.45)
            .seed(seed)
            .build()
            .unwrap();
        let outcome = run_plurality_consensus(&params, &noise, &counts).unwrap();
        prop_assert!(outcome.succeeded(), "counts {counts:?}: {}", outcome.final_distribution());
    }

    /// The bias reported in the final phase record always matches the final
    /// distribution, and message counts are consistent across records.
    #[test]
    fn outcome_bookkeeping_is_internally_consistent(
        seed in 0u64..1_000,
        eps_step in 1u32..4,
    ) {
        let eps = 0.25 + 0.05 * f64::from(eps_step);
        let noise = NoiseMatrix::uniform(3, eps).unwrap();
        let params = ProtocolParams::builder(300, 3)
            .epsilon(eps)
            .seed(seed)
            .build()
            .unwrap();
        let outcome = run_plurality_consensus(&params, &noise, &[120, 90, 60]).unwrap();

        // Total messages = sum over phases.
        let total_from_records: u64 = outcome.phase_records().iter().map(|r| r.messages()).sum();
        prop_assert_eq!(total_from_records, outcome.messages());
        // Total rounds = sum over phases.
        let rounds_from_records: u64 = outcome.phase_records().iter().map(|r| r.rounds()).sum();
        prop_assert_eq!(rounds_from_records, outcome.rounds());
        // The last record's distribution equals the outcome's distribution.
        let last = outcome.phase_records().last().unwrap();
        prop_assert_eq!(last.distribution_after(), outcome.final_distribution());
        // Node conservation.
        let dist = outcome.final_distribution();
        prop_assert_eq!(dist.counts().iter().sum::<usize>() + dist.undecided(), 300);
    }

    /// For every matrix in the uniform family, the exact LP margin equals
    /// the closed-form `(ε + ε/(k−1))·δ`, and scaling δ scales the margin
    /// linearly — connecting the `noisy-lp`, `noisy-channel` and protocol
    /// layers on the quantity Theorem 1 depends on.
    #[test]
    fn uniform_family_margin_is_linear_in_delta(
        k in 2usize..6,
        eps_scale in 0.1f64..0.9,
        delta in 0.01f64..0.5,
    ) {
        let eps = eps_scale * (1.0 - 1.0 / k as f64);
        let p = NoiseMatrix::uniform(k, eps).unwrap();
        let closed_form = |d: f64| (eps + eps / (k as f64 - 1.0)) * d;
        let r1 = p.majority_preservation(0, delta).unwrap();
        let r2 = p.majority_preservation(0, delta / 2.0).unwrap();
        prop_assert!((r1.worst_margin() - closed_form(delta)).abs() < 1e-6);
        prop_assert!((r2.worst_margin() - closed_form(delta / 2.0)).abs() < 1e-6);
        prop_assert!((r1.worst_margin() - 2.0 * r2.worst_margin()).abs() < 1e-6);
    }

    /// The Stage 2 sample-majority operator, fed with samples drawn through
    /// the real simulator inboxes, amplifies a solid plurality rather than
    /// favouring a minority (Monte-Carlo check of the mechanism behind
    /// Proposition 1). The bias and sample size are chosen so the expected
    /// amplification dwarfs the sampling noise of one phase; a small
    /// statistical slack keeps the property deterministic in practice.
    #[test]
    fn sample_majority_never_favours_a_minority(
        seed in 0u64..1_000,
        bias_step in 2u32..6,
    ) {
        let bias = 0.05 * f64::from(bias_step);
        let n = 200usize;
        let majority = ((n as f64) * (1.0 + bias) / 2.0).round() as usize;
        let counts = [majority, n - majority];
        let noise = NoiseMatrix::uniform(2, 0.3).unwrap();
        let config = SimConfig::builder(n, 2).seed(seed).build().unwrap();
        let mut net = Network::new(config, noise).unwrap();
        net.seed_counts(&counts).unwrap();

        // One Stage-2-like phase: 2L rounds of pushing, then sample L.
        let sample_size = 61u32;
        net.begin_phase();
        for _ in 0..(2 * sample_size) {
            net.push_round(|_, s| s.opinion());
        }
        let inboxes = net.end_phase();
        let mut rng = StdRng::seed_from_u64(seed ^ 0xABCD);
        let mut wins = [0u64; 2];
        for node in 0..n {
            if let Some(sample) = inboxes.sample_without_replacement(node, sample_size, &mut rng) {
                if let Some(winner) = Inboxes::majority_of_counts(&sample, &mut rng) {
                    wins[winner.index()] += 1;
                }
            }
        }
        // Allow 3-sigma slack on the node-level binomial fluctuation.
        let slack = 3.0 * (n as f64).sqrt();
        prop_assert!(
            wins[0] as f64 + slack >= wins[1] as f64,
            "bias {bias}: majority won {} nodes vs minority {}",
            wins[0],
            wins[1]
        );
    }
}
