//! # noisy-plurality
//!
//! A faithful, laptop-scale reproduction of
//! *"Noisy Rumor Spreading and Plurality Consensus"* (Fraigniaud & Natale,
//! PODC 2016). The crate is a thin facade that re-exports the workspace
//! crates under one coherent namespace:
//!
//! * [`lp`] — a from-scratch dense simplex solver used by the
//!   majority-preservation test.
//! * [`noise`] — noise matrices over `k` opinions, standard families, and the
//!   (ε, δ)-majority-preserving membership test of Section 4.
//! * [`sim`] — the noisy uniform push model simulator with the three delivery
//!   semantics (processes **O**, **B**, **P**) used in the paper's analysis.
//! * [`protocol`] — the paper's two-stage rumor-spreading / plurality
//!   consensus protocol, phase schedules, theoretical bounds, memory
//!   accounting, and the observation layer
//!   ([`Session`](protocol::Session) / [`Observer`](protocol::Observer) /
//!   [`StopCondition`](protocol::StopCondition)) that makes executions
//!   watchable phase by phase and stoppable early.
//! * [`dynamics`] — baseline opinion dynamics (voter, 3-majority, h-majority,
//!   undecided-state, median rule) running on the same substrate.
//! * [`analysis`] — statistics, sweeps, table emitters and the built-in
//!   observers (trajectory recorder, streaming per-phase aggregates, JSONL
//!   stream sink) used by the experiment harness.
//! * [`mod@bench`] — the declarative scenario API
//!   ([`ScenarioSpec`](bench::spec::ScenarioSpec) +
//!   [`Runner`](bench::runner::Runner)) and the registry behind the `xp`
//!   experiment driver.
//!
//! See `DESIGN.md` for the system inventory and the per-experiment index,
//! and `EXPERIMENTS.md` for the paper-vs-measured comparison produced by the
//! `noisy-bench` experiment binaries.
//!
//! # Quickstart
//!
//! ```
//! use noisy_plurality::prelude::*;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // 3 opinions, uniform epsilon-noise, 1_000 nodes.
//! let noise = NoiseMatrix::uniform(3, 0.25)?;
//! let params = ProtocolParams::builder(1_000, 3)
//!     .epsilon(0.25)
//!     .seed(7)
//!     .build()?;
//! let outcome = run_rumor_spreading(&params, &noise)?;
//! assert!(outcome.consensus_reached());
//! assert_eq!(outcome.winning_opinion(), Some(Opinion::new(0)));
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use gossip_analysis as analysis;
pub use noisy_bench as bench;
pub use noisy_channel as noise;
pub use noisy_lp as lp;
pub use opinion_dynamics as dynamics;
pub use plurality_core as protocol;
pub use pushsim as sim;

/// Convenience prelude exporting the types used by virtually every
/// experiment and example.
pub mod prelude {
    pub use gossip_analysis::{
        ci::WilsonInterval,
        observe::{OnlineStats, StreamSink, TrajectoryRecorder},
        stats::SampleStats,
        sweep::{Sweep, SweepRow},
        table::Table,
    };
    pub use noisy_bench::{
        runner::{RunReport, Runner},
        spec::{InitSpec, Metric, ObserveMode, ScenarioKind, ScenarioSpec, SpecError, StopSpec},
    };
    pub use noisy_channel::{
        families, MpReport, NoiseError, NoiseMatrix, NoiseSpec, PairwiseMargin,
    };
    pub use opinion_dynamics::{
        Dynamics, DynamicsOutcome, HMajority, MedianRule, RuleSpec, ThreeMajority,
        UndecidedState, Voter,
    };
    pub use plurality_core::{
        bounds, run_plurality_consensus, run_rumor_spreading, ExecutionBackend, MemoryMeter,
        NoObserver, Observer, Outcome, PhaseRecord, PhaseSnapshot, ProtocolConstants,
        ProtocolError, ProtocolParams, Schedule, Session, StageId, StopCondition,
        TwoStageProtocol,
    };
    pub use pushsim::{
        AdoptionScope, CountingNetwork, DeliverySemantics, Inboxes, Network, NodeState, Opinion,
        OpinionDistribution, PhaseObservation, PhaseTally, PushBackend, RoundReport, SimConfig,
        SimError,
    };
}
