//! Which noise channels allow plurality consensus at all?
//!
//! Section 4 of the paper characterizes the noise matrices for which the
//! problems are solvable through the (ε, δ)-majority-preserving property.
//! This example evaluates that property — via the exact LP of Section 4,
//! solved with the in-repo simplex solver — for several matrix families and
//! a grid of biases δ, and prints the largest admissible ε for each. It also
//! demonstrates the paper's two headline facts:
//!
//! * the uniform ε-noise family is m.p. for *every* δ, and
//! * diagonal dominance is *not* sufficient (the Section 4 counterexample
//!   reverses a 10% majority).
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example noise_characterization
//! ```

use noisy_plurality::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let deltas = [0.02, 0.05, 0.1, 0.2, 0.4];

    let matrices: Vec<(&str, NoiseMatrix)> = vec![
        ("uniform k=3, eps=0.1", NoiseMatrix::uniform(3, 0.1)?),
        ("uniform k=5, eps=0.1", NoiseMatrix::uniform(5, 0.1)?),
        ("cyclic k=5, lambda=0.2", families::cyclic(5, 0.2)?),
        (
            "reset->0 k=3, lambda=0.3",
            families::reset_to_opinion(3, 0.3, 0)?,
        ),
        (
            "diag-dominant counterexample eps=0.1",
            families::diagonally_dominant_counterexample(0.1)?,
        ),
        (
            "near-uniform band k=4 (Eq. 17)",
            families::near_uniform_band(4, 0.4, 0.18, 0.22)?,
        ),
    ];

    println!("largest eps for which each matrix is (eps, delta)-majority-preserving");
    println!("with respect to opinion 0 ('-' means the majority itself is destroyed):");
    println!();

    let mut headers = vec!["matrix".to_string()];
    headers.extend(deltas.iter().map(|d| format!("delta={d}")));
    let mut table = Table::new(headers);

    for (name, matrix) in &matrices {
        let mut row = vec![name.to_string()];
        for &delta in &deltas {
            let report = matrix.majority_preservation(0, delta)?;
            if report.preserves_majority() {
                row.push(format!("{:.3}", report.max_epsilon()));
            } else {
                row.push("-".to_string());
            }
        }
        table.push_row(row);
    }
    print!("{table}");

    // The counterexample in action: a 60/40 split is reversed in one step.
    println!();
    let bad = families::diagonally_dominant_counterexample(0.1)?;
    let c = [0.6, 0.4, 0.0];
    let after = bad.apply(&c);
    println!("counterexample applied to c = {c:?}:");
    println!("  c . P = [{:.3}, {:.3}, {:.3}]  (majority reversed!)", after[0], after[1], after[2]);

    // Eq. (18): the closed-form sufficient condition for near-uniform bands.
    println!();
    println!("Eq. (18) sufficient condition vs the exact LP for the band family:");
    for (q_l, q_u) in [(0.2, 0.2), (0.18, 0.22), (0.1, 0.3)] {
        let matrix = families::near_uniform_band(4, 0.4, q_l, q_u)?;
        let delta = 0.2;
        let sufficient =
            noisy_plurality::noise::mp::near_uniform_sufficient_epsilon(0.4, q_l, q_u, delta);
        let exact = matrix.majority_preservation(0, delta)?;
        println!(
            "  q in [{q_l}, {q_u}]: Eq. (18) gives eps = {:>8}, exact LP margin/delta = {:.3}",
            sufficient.map_or("none".to_string(), |e| format!("{e:.3}")),
            exact.max_epsilon()
        );
    }
    Ok(())
}
