//! Plurality consensus as collective decision making: an ant colony choosing
//! among candidate nest sites.
//!
//! The paper motivates plurality consensus with biological ensembles such as
//! house-hunting ants: scouts return with (noisy) assessments of k candidate
//! nest sites, and the colony must commit to the site initially preferred by
//! the largest group of scouts — even though every recruitment signal can be
//! misunderstood. This example seeds a population of 5 000 ants with scouts
//! for 4 sites (30% / 25% / 25% / 20% of the scouts) and lets the two-stage
//! protocol recover the plurality choice under heavy signalling noise. For
//! comparison, it also runs the undecided-state and 3-majority baselines on
//! the exact same instance.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example ant_nest_selection
//! ```

use noisy_plurality::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let colony_size = 5_000;
    let num_sites = 4;
    let epsilon = 0.3;
    // 40% of the colony starts with an initial preference (the scouts); the
    // rest is undecided and must be recruited.
    let scout_counts = [600, 500, 500, 400];

    let noise = NoiseMatrix::uniform(num_sites, epsilon)?;
    let params = ProtocolParams::builder(colony_size, num_sites)
        .epsilon(epsilon)
        .seed(42)
        .build()?;

    // Is the signalling noise even survivable? Check the (eps, delta)-m.p.
    // property for the initial scout bias.
    let scouts_total: usize = scout_counts.iter().sum();
    let initial_bias = (scout_counts[0] - scout_counts[1]) as f64 / scouts_total as f64;
    let report = noise.majority_preservation(0, initial_bias)?;
    println!(
        "initial scout bias {:.3}; worst-case post-noise margin {:.4} (m.p. for eps = {:.3})",
        initial_bias,
        report.worst_margin(),
        report.max_epsilon()
    );

    let protocol = TwoStageProtocol::new(params.clone(), noise.clone())?;
    let outcome = protocol.run_plurality_consensus(&scout_counts)?;

    println!();
    println!("== two-stage protocol ==");
    println!("final distribution : {}", outcome.final_distribution());
    println!(
        "colony committed to site {:?} (correct: {})",
        outcome.winning_opinion().map(|o| o.index()),
        outcome.correct_opinion().index()
    );
    println!("succeeded          : {}", outcome.succeeded());
    println!("rounds             : {}", outcome.rounds());

    // Baselines on the same instance and noise, with the same round budget.
    println!();
    println!("== baselines under the same noise ==");
    let budget = outcome.rounds();
    let mut table = Table::new(vec!["dynamics", "rounds", "winner", "plurality share"]);
    let baselines: Vec<Box<dyn Dynamics>> = vec![
        Box::new(UndecidedState::new()),
        Box::new(ThreeMajority::new()),
        Box::new(Voter::new()),
    ];
    for mut dynamics in baselines {
        let config = SimConfig::builder(colony_size, num_sites).seed(42).build()?;
        let mut net = Network::new(config, noise.clone())?;
        net.seed_counts(&scout_counts)?;
        let mut rng = StdRng::seed_from_u64(7);
        let result = dynamics.run(&mut net, &mut rng, budget);
        let dist = result.final_distribution();
        let share = dist.counts().iter().max().copied().unwrap_or(0) as f64
            / dist.num_nodes() as f64;
        table.push_row(vec![
            dynamics.name().to_string(),
            result.rounds().to_string(),
            result
                .winner()
                .map_or("-".to_string(), |o| o.index().to_string()),
            format!("{share:.3}"),
        ]);
    }
    print!("{table}");
    println!();
    println!(
        "(the protocol reaches exact consensus on the correct site; the baselines stall \
         at a noise-dependent plurality share or drift to the wrong site)"
    );
    Ok(())
}
