//! The Poissonization argument, empirically: processes O, B and P.
//!
//! The paper's analysis (Section 3.2) replaces the real push process
//! (process O) first by a balls-into-bins process (B, Claim 1) and then by
//! independent Poisson arrivals (P, Lemma 3). This example runs the full
//! two-stage protocol under all three delivery semantics on identical
//! instances and shows that round counts, success rates and bias
//! trajectories agree — which is exactly why the paper can transfer w.h.p.
//! results from P back to O.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example delivery_semantics
//! ```

use noisy_plurality::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let num_nodes = 2_000;
    let num_opinions = 3;
    let epsilon = 0.25;
    let trials = 5;
    let noise = NoiseMatrix::uniform(num_opinions, epsilon)?;

    let mut table = Table::new(vec![
        "process",
        "successes",
        "mean rounds",
        "mean final bias",
    ]);

    for semantics in DeliverySemantics::ALL {
        let mut successes = 0u64;
        let mut rounds = SampleStats::new();
        let mut final_bias = SampleStats::new();
        for trial in 0..trials {
            let params = ProtocolParams::builder(num_nodes, num_opinions)
                .epsilon(epsilon)
                .seed(1_000 + trial)
                .delivery(semantics)
                .build()?;
            let outcome = run_plurality_consensus(&params, &noise, &[450, 350, 200])?;
            if outcome.succeeded() {
                successes += 1;
            }
            rounds.push(outcome.rounds() as f64);
            final_bias.push(
                outcome
                    .final_distribution()
                    .bias_towards(outcome.correct_opinion())
                    .unwrap_or(0.0),
            );
        }
        table.push_row(vec![
            format!("{} ({semantics:?})", semantics.label()),
            format!("{successes}/{trials}"),
            format!("{:.0}", rounds.mean()),
            format!("{:.3}", final_bias.mean()),
        ]);
    }
    print!("{table}");
    println!();
    println!(
        "All three processes solve the instance with the same schedule — the empirical \
         face of Claim 1 and Lemma 3."
    );
    Ok(())
}
