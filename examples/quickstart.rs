//! Quickstart: describe an experiment as a [`ScenarioSpec`], run it, and
//! round-trip it through the spec text format.
//!
//! One agent out of 2 000 knows the "correct" opinion (one of k = 3
//! values); every message is garbled by a uniform ε-noise channel. The
//! two-stage protocol of Fraigniaud & Natale (PODC 2016) nevertheless
//! drives the whole population to the correct opinion in O(log n / ε²)
//! rounds — and with the scenario API that experiment is *data*: the same
//! text below could live in a `.spec` file and run via
//! `xp run --spec path.spec`.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use noisy_plurality::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Describe the run declaratively: rumor spreading from source opinion
    // 1, n = 2000 nodes, k = 3 opinions, swept over three noise levels,
    // five trials per level.
    let mut spec = ScenarioSpec::new(ScenarioKind::RumorSpreading { source: 1 }, 2_000, 3);
    spec.epsilon = 0.25;
    spec.noise = NoiseSpec::Uniform { epsilon: 0.25 };
    spec.trials = 5;
    spec.seed = 2016;
    spec.sweep.eps = vec![0.15, 0.25, 0.4];
    spec.metrics = vec![
        Metric::Success,
        Metric::Rounds,
        Metric::RoundsNorm,
        Metric::Stage1Bias,
        Metric::MemoryBits,
    ];

    // The spec *is* the experiment: its text form round-trips exactly.
    let text = spec.to_text();
    println!("scenario spec:\n\n{text}");
    assert_eq!(ScenarioSpec::from_text(&text)?, spec);

    // Execute it through the generic protocol stack. The backend is
    // `auto`: each point resolves agent-level vs count-based simulation
    // from the calibrated cost model.
    let report = Runner::new(spec)?.run()?;
    println!("results:\n");
    print!("{}", report.to_table());

    // The report is structured, not just text: the paper's prediction is a
    // flat normalized round count, i.e. rounds scale like 1/eps^2.
    println!();
    for point in report.points() {
        let noisy_bench::runner::PointSummary::Protocol(summary) = &point.summary else {
            unreachable!("rumor scenarios aggregate protocol summaries");
        };
        println!(
            "eps = {:<4}  ->  {:>5.0} rounds, success {}",
            point.point.eps,
            summary.rounds.mean(),
            summary.success,
        );
    }
    Ok(())
}
