//! Quickstart: spread a single rumor through a noisy anonymous population.
//!
//! One agent out of 2 000 knows the "correct" opinion (one of k = 3 values).
//! Every message exchanged is garbled by a uniform ε-noise channel. The
//! two-stage protocol of Fraigniaud & Natale (PODC 2016) nevertheless drives
//! the whole population to the correct opinion in O(log n / ε²) rounds.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use noisy_plurality::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let num_nodes = 2_000;
    let num_opinions = 3;
    let epsilon = 0.25;

    // The k-ary generalization of the paper's Eq. (1) noise: an opinion
    // survives the channel with probability 1/k + eps.
    let noise = NoiseMatrix::uniform(num_opinions, epsilon)?;
    println!("noise matrix:\n{noise}");

    let params = ProtocolParams::builder(num_nodes, num_opinions)
        .epsilon(epsilon)
        .seed(2016)
        .build()?;
    let schedule = params.schedule();
    println!(
        "schedule: {} Stage-1 phases ({} rounds), {} Stage-2 phases ({} rounds)",
        schedule.stage1_phases(),
        schedule.stage1_rounds(),
        schedule.stage2_phases(),
        schedule.stage2_rounds(),
    );

    let protocol = TwoStageProtocol::new(params.clone(), noise)?;
    let outcome = protocol.run_rumor_spreading(Opinion::new(1))?;

    println!();
    println!("correct opinion : {}", outcome.correct_opinion());
    println!("final state     : {}", outcome.final_distribution());
    println!("consensus       : {}", outcome.consensus_reached());
    println!("succeeded       : {}", outcome.succeeded());
    println!("rounds          : {}", outcome.rounds());
    println!(
        "rounds / (ln n / eps^2): {:.2}",
        outcome.rounds() as f64 / params.theoretical_round_scale()
    );
    println!("messages        : {}", outcome.messages());
    println!("memory per node : {} bits", outcome.memory().bits_per_node());

    println!();
    println!("bias towards the correct opinion after each phase:");
    let mut table = Table::new(vec!["stage", "phase", "opinionated", "bias"]);
    for record in outcome.phase_records() {
        table.push_row(vec![
            record.stage().to_string(),
            record.phase().to_string(),
            format!("{:.3}", record.opinionated_fraction_after()),
            record
                .bias_after()
                .map_or("-".to_string(), |b| format!("{b:+.4}")),
        ]);
    }
    print!("{table}");
    Ok(())
}
