//! Result of running a baseline dynamics.

use pushsim::{Opinion, OpinionDistribution};

/// The result of running a [`Dynamics`](crate::Dynamics) until consensus or
/// a round limit.
#[derive(Debug, Clone, PartialEq)]
pub struct DynamicsOutcome {
    name: &'static str,
    rounds: u64,
    messages: u64,
    final_distribution: OpinionDistribution,
}

impl DynamicsOutcome {
    pub(crate) fn new(
        name: &'static str,
        rounds: u64,
        messages: u64,
        final_distribution: OpinionDistribution,
    ) -> Self {
        Self {
            name,
            rounds,
            messages,
            final_distribution,
        }
    }

    /// The name of the dynamics that produced this outcome.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// The number of rounds executed by the run.
    pub fn rounds(&self) -> u64 {
        self.rounds
    }

    /// The number of messages pushed during the run.
    pub fn messages(&self) -> u64 {
        self.messages
    }

    /// The opinion distribution at the end of the run.
    pub fn final_distribution(&self) -> &OpinionDistribution {
        &self.final_distribution
    }

    /// `true` if the run ended in consensus (every agent opinionated on the
    /// same opinion).
    pub fn converged(&self) -> bool {
        self.final_distribution.is_consensus()
    }

    /// The final plurality opinion, if one exists.
    pub fn winner(&self) -> Option<Opinion> {
        self.final_distribution.plurality()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accessors_report_the_run() {
        let dist = OpinionDistribution::from_counts(vec![10, 0], 0).unwrap();
        let outcome = DynamicsOutcome::new("voter", 17, 99, dist);
        assert_eq!(outcome.name(), "voter");
        assert_eq!(outcome.rounds(), 17);
        assert_eq!(outcome.messages(), 99);
        assert!(outcome.converged());
        assert_eq!(outcome.winner(), Some(Opinion::new(0)));
    }

    #[test]
    fn non_consensus_outcome_is_reported_as_such() {
        let dist = OpinionDistribution::from_counts(vec![6, 4], 0).unwrap();
        let outcome = DynamicsOutcome::new("voter", 5, 10, dist);
        assert!(!outcome.converged());
        assert_eq!(outcome.winner(), Some(Opinion::new(0)));
    }
}
