//! # opinion-dynamics
//!
//! Baseline opinion dynamics running under the same **noisy uniform push
//! model** as the main protocol, used by the experiment harness as
//! comparators (experiment T1 of DESIGN.md).
//!
//! The paper's related-work section points at several elementary dynamics
//! that solve (noiseless) plurality or majority consensus:
//!
//! * the **voter model** (adopt a random received opinion),
//! * the **3-majority dynamics** and its generalization **h-majority**
//!   (adopt the majority among a few sampled opinions) \[9, 13\],
//! * the **undecided-state dynamics** \[5, 8\],
//! * the **median rule** of Doerr et al. \[15\] (opinions as integers,
//!   move to the median of observed values).
//!
//! None of these were designed for the noisy channel studied by Fraigniaud &
//! Natale; running them under the same noise matrix shows where simple
//! dynamics break down and how much the two-stage protocol buys.
//!
//! All dynamics implement the **backend-generic** [`Dynamics`] trait: each
//! rule is written once against [`pushsim::PushBackend`] and runs unchanged
//! on the agent-level [`Network`] *and* the count-based
//! [`CountingNetwork`](pushsim::CountingNetwork) (O(k²) random draws per
//! step, independent of the population size). One
//! [`step`](Dynamics::step) is a full synchronous update (every opinionated
//! agent pushes, then every agent applies the rule to the messages it
//! received), and [`run`](Dynamics::run) iterates until consensus or a
//! round limit.
//!
//! The per-backend mechanics live in the backend's decision operators
//! (`resolve_*` on [`pushsim::PushBackend`]): per-agent inbox sampling on
//! the agent backend, closed count-level forms of process P on the counting
//! backend. The count-level forms are exact for the voter, undecided-state
//! and h-majority rules; the median rule's two same-inbox draws are
//! mean-field approximated (see
//! [`resolve_median`](pushsim::PushBackend::resolve_median)).
//!
//! # Example
//!
//! ```
//! use noisy_channel::NoiseMatrix;
//! use opinion_dynamics::{Dynamics, ThreeMajority};
//! use pushsim::{Network, Opinion, SimConfig};
//! use rand::{rngs::StdRng, SeedableRng};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let noise = NoiseMatrix::uniform(2, 0.4)?;
//! let config = SimConfig::builder(300, 2).seed(1).build()?;
//! let mut net = Network::new(config, noise)?;
//! net.seed_counts(&[200, 100])?;
//!
//! let mut rng = StdRng::seed_from_u64(2);
//! let outcome = ThreeMajority::new().run(&mut net, &mut rng, 2_000);
//! // Under channel noise the baseline has no absorbing state, so it hovers
//! // near — but not exactly at — consensus on the plurality opinion.
//! assert_eq!(outcome.winner(), Some(Opinion::new(0)));
//! let share = outcome.final_distribution().counts()[0] as f64 / 300.0;
//! assert!(share > 0.8);
//! # Ok(())
//! # }
//! ```
//!
//! The same dynamics on the counting backend at a population the agent
//! backend could not touch:
//!
//! ```
//! use noisy_channel::NoiseMatrix;
//! use opinion_dynamics::{Dynamics, ThreeMajority};
//! use pushsim::{CountingNetwork, DeliverySemantics, SimConfig};
//! use rand::{rngs::StdRng, SeedableRng};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let noise = NoiseMatrix::uniform(2, 0.4)?;
//! let config = SimConfig::builder(1_000_000, 2)
//!     .seed(1)
//!     .delivery(DeliverySemantics::Poissonized)
//!     .build()?;
//! let mut net = CountingNetwork::new(config, noise)?;
//! net.seed_counts(&[700_000, 300_000])?;
//! let mut rng = StdRng::seed_from_u64(2);
//! let outcome = ThreeMajority::new().run(&mut net, &mut rng, 600);
//! let share = outcome.final_distribution().counts()[0] as f64 / 1e6;
//! assert!(share > 0.9);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod majority;
mod median;
mod outcome;
mod rule;
mod undecided;
mod voter;

pub use majority::{HMajority, ThreeMajority};
pub use median::MedianRule;
pub use outcome::DynamicsOutcome;
pub use rule::RuleSpec;
pub use undecided::UndecidedState;
pub use voter::Voter;

use plurality_core::observe::{NoObserver, Observer, PhaseSnapshot, RunProgress, StopCondition};
use pushsim::{Network, Opinion, PushBackend};
use rand::rngs::StdRng;

/// A synchronous opinion dynamics over the noisy uniform push model,
/// generic over the simulation backend.
///
/// Implementors define one update step in terms of the backend's phase
/// lifecycle and decision operators; the provided [`run`](Dynamics::run)
/// method iterates steps until consensus or a limit. The default backend
/// parameter keeps `Box<dyn Dynamics>` meaning "a dynamics over the
/// agent-level [`Network`]".
pub trait Dynamics<B: PushBackend = Network> {
    /// A short human-readable name for tables and plots.
    fn name(&self) -> &'static str;

    /// Executes one synchronous update: every opinionated agent pushes its
    /// opinion, messages are delivered through the noisy channel, and every
    /// agent applies the dynamics' update rule to its received multiset.
    /// Decision randomness comes from `rng` (delivery randomness from the
    /// backend's own RNG).
    fn step(&mut self, net: &mut B, rng: &mut StdRng);

    /// Runs the dynamics until the network reaches consensus or at least
    /// `max_rounds` rounds have been executed, whichever comes first (a step
    /// that was already in progress when the limit is hit is finished, so
    /// the actual round count can exceed `max_rounds` by one step).
    ///
    /// Equivalent to [`run_until`](Dynamics::run_until) with the stop
    /// condition `max-rounds OR consensus` and no observer; kept as the
    /// concise entry point for budgeted runs.
    fn run(&mut self, net: &mut B, rng: &mut StdRng, max_rounds: u64) -> DynamicsOutcome {
        self.run_until(
            net,
            rng,
            None,
            &StopCondition::Any(vec![
                StopCondition::MaxRounds(max_rounds),
                StopCondition::ConsensusReached,
            ]),
            &mut NoObserver,
        )
    }

    /// Runs the dynamics until `stop` fires, notifying `observer` after
    /// every step — the observable generalization of
    /// [`run`](Dynamics::run), mirroring the protocol's
    /// `Session` API.
    ///
    /// Each step is reported as one "phase" with `stage = None`;
    /// `reference` (usually the initial plurality opinion) is the opinion
    /// the snapshots' bias — and hence
    /// [`StopCondition::BiasAtLeast`] / [`StopCondition::Plateau`] — is
    /// measured against; with `None` the bias is undefined and those
    /// conditions never fire. Observation never touches `rng` or the
    /// backend's delivery RNG, so attaching any observer leaves the
    /// execution bit-identical.
    ///
    /// The stop condition is evaluated *before* each step on the current
    /// state (the consensus poll uses [`PushBackend::is_consensus`], O(k)
    /// on both backends), so a [`StopCondition::ScheduleExhausted`]
    /// condition — which never fires — would loop forever: budget the run
    /// with [`StopCondition::MaxRounds`] or a convergence condition.
    fn run_until(
        &mut self,
        net: &mut B,
        rng: &mut StdRng,
        reference: Option<Opinion>,
        stop: &StopCondition,
        observer: &mut dyn Observer,
    ) -> DynamicsOutcome {
        let start_rounds = net.rounds_executed();
        let start_messages = net.messages_sent();
        let mut progress = RunProgress::for_stop(stop);
        progress.sync(0, net.is_consensus());
        let mut step_index = 0usize;
        let mut messages_before = 0u64;
        while !stop.should_stop(&progress) {
            observer.on_phase_begin(None, step_index);
            self.step(net, rng);
            let distribution = net.distribution();
            let bias = reference.and_then(|r| distribution.bias_towards(r));
            let total_rounds = net.rounds_executed() - start_rounds;
            let total_messages = net.messages_sent() - start_messages;
            let snapshot = PhaseSnapshot::new(
                None,
                step_index,
                total_rounds - progress.rounds(),
                total_rounds,
                total_messages - messages_before,
                total_messages,
                distribution,
                bias,
            )
            .with_topology(net.config().topology().label());
            observer.on_phase_end(&snapshot);
            progress.note_phase(&snapshot);
            messages_before = total_messages;
            step_index += 1;
        }
        observer.on_finish();
        let final_distribution = net.distribution();
        DynamicsOutcome::new(
            self.name(),
            net.rounds_executed() - start_rounds,
            net.messages_sent() - start_messages,
            final_distribution,
        )
    }
}

/// Helper shared by the single-round dynamics: one phase of exactly one
/// push round, ready for a `resolve_*` decision operator.
pub(crate) fn one_round_phase<B: PushBackend>(net: &mut B) {
    net.begin_phase();
    net.push_opinionated_round();
    net.end_phase();
}

#[cfg(test)]
mod tests {
    use super::*;
    use noisy_channel::NoiseMatrix;
    use pushsim::{CountingNetwork, DeliverySemantics, Opinion, SimConfig};
    use rand::SeedableRng;

    fn biased_network(seed: u64) -> Network {
        // Noiseless channel: the classic setting in which all these dynamics
        // are known to reach consensus.
        let noise = NoiseMatrix::identity(2).unwrap();
        let config = SimConfig::builder(300, 2).seed(seed).build().unwrap();
        let mut net = Network::new(config, noise).unwrap();
        net.seed_counts(&[210, 90]).unwrap();
        net
    }

    /// Without noise, every baseline dynamics drives a strongly biased
    /// instance to consensus within a generous round budget, and the
    /// majority-seeking dynamics converge on the plurality opinion.
    #[test]
    fn all_dynamics_converge_without_noise() {
        let dynamics: Vec<(Box<dyn Dynamics>, bool)> = vec![
            // The voter model converges but its winner is only *likely* to be
            // the plurality opinion, so we do not assert the winner for it.
            (Box::new(Voter::new()), false),
            (Box::new(ThreeMajority::new()), true),
            (Box::new(HMajority::new(5)), true),
            (Box::new(UndecidedState::new()), true),
            (Box::new(MedianRule::new()), true),
        ];
        for (i, (mut dyn_, check_winner)) in dynamics.into_iter().enumerate() {
            let mut net = biased_network(40 + i as u64);
            let mut rng = StdRng::seed_from_u64(140 + i as u64);
            let outcome = dyn_.run(&mut net, &mut rng, 6_000);
            assert!(
                outcome.converged(),
                "{} did not converge: {}",
                dyn_.name(),
                outcome.final_distribution()
            );
            if check_winner {
                assert_eq!(
                    outcome.winner(),
                    Some(Opinion::new(0)),
                    "{} converged on the wrong opinion",
                    dyn_.name()
                );
            }
        }
    }

    /// The same trait objects, boxed over the *counting* backend: every
    /// rule is one generic implementation, so the whole baseline suite also
    /// runs count-based.
    #[test]
    fn all_dynamics_run_on_the_counting_backend() {
        let dynamics: Vec<Box<dyn Dynamics<CountingNetwork>>> = vec![
            Box::new(Voter::new()),
            Box::new(ThreeMajority::new()),
            Box::new(HMajority::new(5)),
            Box::new(UndecidedState::new()),
            Box::new(MedianRule::new()),
        ];
        for (i, mut dyn_) in dynamics.into_iter().enumerate() {
            let noise = NoiseMatrix::uniform(2, 0.3).unwrap();
            let config = SimConfig::builder(50_000, 2)
                .seed(70 + i as u64)
                .delivery(DeliverySemantics::Poissonized)
                .build()
                .unwrap();
            let mut net = CountingNetwork::new(config, noise).unwrap();
            net.seed_counts(&[35_000, 15_000]).unwrap();
            let mut rng = StdRng::seed_from_u64(170 + i as u64);
            let outcome = dyn_.run(&mut net, &mut rng, 120);
            let dist = outcome.final_distribution();
            assert_eq!(
                dist.num_nodes(),
                50_000,
                "{} does not conserve the population: {dist}",
                dyn_.name()
            );
        }
    }

    /// Under the paper's noise, the majority-seeking baselines still drive a
    /// strongly biased instance to near-consensus on the plurality opinion
    /// (they lack an absorbing state, so exact consensus is not guaranteed).
    #[test]
    fn majority_dynamics_reach_near_consensus_under_noise() {
        let noise = NoiseMatrix::uniform(2, 0.45).unwrap();
        let dynamics: Vec<Box<dyn Dynamics>> = vec![
            Box::new(ThreeMajority::new()),
            Box::new(HMajority::new(7)),
        ];
        for (i, mut dyn_) in dynamics.into_iter().enumerate() {
            let config = SimConfig::builder(300, 2).seed(60 + i as u64).build().unwrap();
            let mut net = Network::new(config, noise.clone()).unwrap();
            net.seed_counts(&[210, 90]).unwrap();
            let mut rng = StdRng::seed_from_u64(160 + i as u64);
            let outcome = dyn_.run(&mut net, &mut rng, 300);
            let dist = outcome.final_distribution();
            let plurality_share = dist.counts()[0] as f64 / dist.num_nodes() as f64;
            assert!(
                plurality_share > 0.85,
                "{} only reached a plurality share of {plurality_share}: {dist}",
                dyn_.name()
            );
        }
    }

    #[test]
    fn run_until_observes_every_step_and_honours_stop_conditions() {
        #[derive(Default)]
        struct Trace {
            steps: usize,
            last_bias: Option<f64>,
            finished: bool,
        }
        impl Observer for Trace {
            fn on_phase_end(&mut self, snapshot: &PhaseSnapshot) {
                assert_eq!(snapshot.stage(), None, "dynamics steps are stage-less");
                assert_eq!(snapshot.phase(), self.steps);
                self.steps += 1;
                self.last_bias = snapshot.bias();
            }
            fn on_finish(&mut self) {
                self.finished = true;
            }
        }

        let noise = NoiseMatrix::identity(2).unwrap();
        let config = SimConfig::builder(300, 2).seed(21).build().unwrap();
        let mut net = Network::new(config, noise).unwrap();
        net.seed_counts(&[210, 90]).unwrap();
        let mut rng = StdRng::seed_from_u64(22);
        let mut trace = Trace::default();
        let stop = StopCondition::Any(vec![
            StopCondition::BiasAtLeast(0.9),
            StopCondition::MaxRounds(5_000),
        ]);
        let outcome = ThreeMajority::new().run_until(
            &mut net,
            &mut rng,
            Some(Opinion::new(0)),
            &stop,
            &mut trace,
        );
        assert!(trace.finished);
        assert!(trace.steps > 0);
        assert!(
            trace.last_bias.unwrap() >= 0.9,
            "the bias threshold ended the run: {:?}",
            trace.last_bias
        );
        assert!(outcome.rounds() < 5_000, "stopped well before the budget");
    }

    #[test]
    fn run_until_with_an_observer_matches_run_bit_for_bit() {
        // Attaching an observer must not perturb the RNG streams: the same
        // seeds produce the same outcome with and without observation.
        let run_one = |observed: bool| {
            let noise = NoiseMatrix::uniform(2, 0.35).unwrap();
            let config = SimConfig::builder(400, 2).seed(31).build().unwrap();
            let mut net = Network::new(config, noise).unwrap();
            net.seed_counts(&[250, 100]).unwrap();
            let mut rng = StdRng::seed_from_u64(32);
            let stop = StopCondition::Any(vec![
                StopCondition::MaxRounds(200),
                StopCondition::ConsensusReached,
            ]);
            if observed {
                struct Count(usize);
                impl Observer for Count {
                    fn on_phase_end(&mut self, _: &PhaseSnapshot) {
                        self.0 += 1;
                    }
                }
                let mut count = Count(0);
                let outcome = Voter::new().run_until(
                    &mut net,
                    &mut rng,
                    Some(Opinion::new(0)),
                    &stop,
                    &mut count,
                );
                assert!(count.0 > 0);
                outcome
            } else {
                Voter::new().run(&mut net, &mut rng, 200)
            }
        };
        let plain = run_one(false);
        let observed = run_one(true);
        assert_eq!(plain.final_distribution(), observed.final_distribution());
        assert_eq!(plain.rounds(), observed.rounds());
        assert_eq!(plain.messages(), observed.messages());
    }

    #[test]
    fn run_stops_immediately_on_a_consensus_network() {
        let noise = NoiseMatrix::uniform(2, 0.3).unwrap();
        let config = SimConfig::builder(50, 2).seed(3).build().unwrap();
        let mut net = Network::new(config, noise).unwrap();
        net.seed_counts(&[50, 0]).unwrap();
        let mut rng = StdRng::seed_from_u64(4);
        let outcome = Voter::new().run(&mut net, &mut rng, 100);
        assert!(outcome.converged());
        assert_eq!(outcome.rounds(), 0);
    }

    #[test]
    fn run_respects_the_round_limit() {
        // With zero opinionated nodes nothing can ever happen; the run must
        // stop at the limit and report no consensus (all nodes undecided).
        let noise = NoiseMatrix::uniform(2, 0.3).unwrap();
        let config = SimConfig::builder(50, 2).seed(5).build().unwrap();
        let mut net = Network::new(config, noise).unwrap();
        let mut rng = StdRng::seed_from_u64(6);
        let outcome = Voter::new().run(&mut net, &mut rng, 25);
        assert!(!outcome.converged());
        assert_eq!(outcome.rounds(), 25);

        // A dynamics whose step spans several rounds may overshoot by at
        // most one step.
        let mut net = Network::new(
            SimConfig::builder(50, 2).seed(7).build().unwrap(),
            NoiseMatrix::uniform(2, 0.3).unwrap(),
        )
        .unwrap();
        let outcome = ThreeMajority::new().run(&mut net, &mut rng, 25);
        assert!(!outcome.converged());
        assert!(outcome.rounds() >= 25 && outcome.rounds() < 25 + 6);
    }

    #[test]
    fn counting_run_stops_on_consensus_and_respects_the_limit() {
        let make = |seed| {
            let noise = NoiseMatrix::uniform(2, 0.3).unwrap();
            let config = SimConfig::builder(1_000, 2)
                .seed(seed)
                .delivery(DeliverySemantics::Poissonized)
                .build()
                .unwrap();
            CountingNetwork::new(config, noise).unwrap()
        };
        let mut net = make(5);
        net.seed_counts(&[1_000, 0]).unwrap();
        let mut rng = StdRng::seed_from_u64(15);
        let outcome = Voter::new().run(&mut net, &mut rng, 100);
        assert!(outcome.converged());
        assert_eq!(outcome.rounds(), 0);
        assert_eq!(outcome.winner(), Some(Opinion::new(0)));

        let mut net = make(6);
        let outcome = Voter::new().run(&mut net, &mut rng, 25);
        assert!(!outcome.converged());
        assert_eq!(outcome.rounds(), 25);
    }
}
