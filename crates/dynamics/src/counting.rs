//! Count-based execution of the baseline dynamics: O(k²) random draws per
//! update step, independent of the population size.
//!
//! Each dynamics' update rule depends on an agent's received multiset only
//! through threshold events ("got at least one / at least h messages") and
//! uniform draws from the multiset. Under the Poissonized process P those
//! have closed count-level forms (see the [`pushsim::counting`] module
//! docs), so a whole population update is a handful of binomial and
//! multinomial draws.
//!
//! Exactness: the voter, undecided-state and h-majority rules translate
//! exactly (each agent makes at most one uniform draw, or a
//! without-replacement sample, from its inbox). The median rule draws *two*
//! messages with replacement from the same inbox; the count-level form
//! treats them as independent categorical draws, which ignores an `O(1/Λ)`
//! correlation through the inbox size — the mean-field limit the dynamics
//! literature analyses. All rules conserve the population exactly.

use crate::{Dynamics, DynamicsOutcome, HMajority, MedianRule, ThreeMajority, UndecidedState, Voter};
use noisy_channel::sampling::{binomial, multinomial};
use pushsim::CountingNetwork;

/// A dynamics that can also run on the count-based backend.
///
/// Randomness comes from the network's own RNG, so runs are reproducible
/// from the [`SimConfig`](pushsim::SimConfig) seed alone.
pub trait CountingDynamics: Dynamics {
    /// Executes one update step on the counting backend (the count-level
    /// counterpart of [`Dynamics::step`]).
    fn step_counts(&mut self, net: &mut CountingNetwork);

    /// Runs the dynamics until consensus or at least `max_rounds` rounds,
    /// mirroring [`Dynamics::run`].
    fn run_counts(&mut self, net: &mut CountingNetwork, max_rounds: u64) -> DynamicsOutcome {
        let start_rounds = net.rounds_executed();
        let start_messages = net.messages_sent();
        while net.rounds_executed() - start_rounds < max_rounds {
            if net.distribution().is_consensus() {
                break;
            }
            self.step_counts(net);
        }
        let final_distribution = net.distribution();
        DynamicsOutcome::new(
            self.name(),
            net.rounds_executed() - start_rounds,
            net.messages_sent() - start_messages,
            final_distribution,
        )
    }
}

/// One push round, phase-finished: every opinionated agent pushes its
/// opinion; returns the activation probability and post-noise weights.
fn one_push_round(net: &mut CountingNetwork) -> (f64, Vec<f64>) {
    net.begin_phase();
    net.push_round_all_opinionated();
    net.end_phase();
    let p_active = net.tally().activation_probability();
    let weights: Vec<f64> = net.tally().post_noise().iter().map(|&h| h as f64).collect();
    (p_active, weights)
}

impl CountingDynamics for Voter {
    fn step_counts(&mut self, net: &mut CountingNetwork) {
        let (p_active, weights) = one_push_round(net);
        let k = net.num_opinions();
        // Every agent that received something re-adopts a uniform received
        // message, independent of its current state.
        let mut leavers = vec![0u64; k];
        let mut active_total = 0u64;
        for (o, leave) in leavers.iter_mut().enumerate() {
            let group = net.counts()[o];
            *leave = binomial(group, p_active, net.rng_mut());
            active_total += *leave;
        }
        let undecided_active = binomial(net.undecided(), p_active, net.rng_mut());
        active_total += undecided_active;
        let joiners = if active_total == 0 {
            vec![0; k]
        } else {
            multinomial(active_total, &weights, net.rng_mut())
        };
        net.apply_deltas(&leavers, &joiners, -(undecided_active as i64));
    }
}

impl CountingDynamics for UndecidedState {
    fn step_counts(&mut self, net: &mut CountingNetwork) {
        let (p_active, weights) = one_push_round(net);
        let k = net.num_opinions();
        let total_weight: f64 = weights.iter().sum();
        // Opinionated agents look at one received message: agreement keeps
        // the opinion, disagreement resets to undecided.
        let mut leavers = vec![0u64; k];
        let mut resets = 0u64;
        for o in 0..k {
            let group = net.counts()[o];
            let active = binomial(group, p_active, net.rng_mut());
            if active == 0 {
                continue;
            }
            let p_agree = if total_weight > 0.0 {
                weights[o] / total_weight
            } else {
                0.0
            };
            let disagree = active - binomial(active, p_agree, net.rng_mut());
            leavers[o] = disagree;
            resets += disagree;
        }
        // Undecided agents adopt one received message.
        let undecided_active = binomial(net.undecided(), p_active, net.rng_mut());
        let joiners = if undecided_active == 0 {
            vec![0; k]
        } else {
            multinomial(undecided_active, &weights, net.rng_mut())
        };
        net.apply_deltas(&leavers, &joiners, resets as i64 - undecided_active as i64);
    }
}

impl CountingDynamics for MedianRule {
    fn step_counts(&mut self, net: &mut CountingNetwork) {
        let (p_active, weights) = one_push_round(net);
        let k = net.num_opinions();
        // Pair distribution q ⊗ q over the k² (first, second) observations.
        let total_weight: f64 = weights.iter().sum();
        let pair_weights: Vec<f64> = if total_weight > 0.0 {
            (0..k * k)
                .map(|cell| weights[cell / k] * weights[cell % k])
                .collect()
        } else {
            vec![0.0; k * k]
        };
        let mut leavers = vec![0u64; k];
        let mut joiners = vec![0u64; k];
        for (o, leave) in leavers.iter_mut().enumerate() {
            let group = net.counts()[o];
            let active = binomial(group, p_active, net.rng_mut());
            if active == 0 {
                continue;
            }
            *leave = active;
            let pairs = multinomial(active, &pair_weights, net.rng_mut());
            for a in 0..k {
                for b in 0..k {
                    let mut triple = [o, a, b];
                    triple.sort_unstable();
                    joiners[triple[1]] += pairs[a * k + b];
                }
            }
        }
        let undecided_active = binomial(net.undecided(), p_active, net.rng_mut());
        if undecided_active > 0 {
            let adopted = multinomial(undecided_active, &weights, net.rng_mut());
            for (j, a) in joiners.iter_mut().zip(adopted) {
                *j += a;
            }
        }
        net.apply_deltas(&leavers, &joiners, -(undecided_active as i64));
    }
}

impl CountingDynamics for HMajority {
    fn step_counts(&mut self, net: &mut CountingNetwork) {
        let h = u64::from(self.h());
        net.begin_phase();
        for _ in 0..2 * h {
            net.push_round_all_opinionated();
        }
        net.end_phase();
        net.apply_sample_majority(h);
    }
}

impl CountingDynamics for ThreeMajority {
    fn step_counts(&mut self, net: &mut CountingNetwork) {
        HMajority::new(3).step_counts(net);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use noisy_channel::NoiseMatrix;
    use pushsim::{DeliverySemantics, Opinion, SimConfig};

    fn counting_net(n: usize, k: usize, eps: f64, seed: u64) -> CountingNetwork {
        let noise = NoiseMatrix::uniform(k, eps).unwrap();
        let config = SimConfig::builder(n, k)
            .seed(seed)
            .delivery(DeliverySemantics::Poissonized)
            .build()
            .unwrap();
        CountingNetwork::new(config, noise).unwrap()
    }

    #[test]
    fn counting_majority_dynamics_amplify_a_plurality() {
        let mut net = counting_net(100_000, 2, 0.4, 1);
        net.seed_counts(&[70_000, 30_000]).unwrap();
        let outcome = ThreeMajority::new().run_counts(&mut net, 600);
        let dist = outcome.final_distribution();
        let share = dist.counts()[0] as f64 / dist.num_nodes() as f64;
        assert!(share > 0.9, "plurality share {share}: {dist}");
        assert_eq!(dist.num_nodes(), 100_000, "population must be conserved");
    }

    #[test]
    fn counting_voter_conserves_population_and_recruits_undecided() {
        let mut net = counting_net(50_000, 3, 0.3, 2);
        net.seed_counts(&[20_000, 10_000, 5_000]).unwrap();
        let mut voter = Voter::new();
        for _ in 0..30 {
            voter.step_counts(&mut net);
        }
        let dist = net.distribution();
        assert_eq!(dist.num_nodes(), 50_000);
        assert!(dist.undecided() < 15_000, "undecided should shrink: {dist}");
    }

    #[test]
    fn counting_undecided_state_creates_undecided_under_disagreement() {
        let mut net = counting_net(10_000, 2, 0.45, 3);
        net.seed_counts(&[5_000, 5_000]).unwrap();
        let mut dynamics = UndecidedState::new();
        dynamics.step_counts(&mut net);
        let dist = net.distribution();
        assert!(dist.undecided() > 0, "balanced camps must produce undecided agents");
        assert_eq!(dist.num_nodes(), 10_000);
    }

    #[test]
    fn counting_median_moves_to_the_median_opinion() {
        // Opinion 0 holds the plurality but opinion 1 is the median of the
        // initial multiset; under a noiseless channel the median rule
        // should concentrate on 1.
        let noise = NoiseMatrix::identity(3).unwrap();
        let config = SimConfig::builder(90_000, 3)
            .seed(4)
            .delivery(DeliverySemantics::Poissonized)
            .build()
            .unwrap();
        let mut net = CountingNetwork::new(config, noise).unwrap();
        net.seed_counts(&[40_000, 35_000, 15_000]).unwrap();
        let outcome = MedianRule::new().run_counts(&mut net, 200);
        let dist = outcome.final_distribution();
        let share = dist.counts()[1] as f64 / dist.num_nodes() as f64;
        assert!(share > 0.9, "median share {share}: {dist}");
    }

    #[test]
    fn counting_run_stops_on_consensus() {
        let mut net = counting_net(1_000, 2, 0.3, 5);
        net.seed_counts(&[1_000, 0]).unwrap();
        let outcome = Voter::new().run_counts(&mut net, 100);
        assert!(outcome.converged());
        assert_eq!(outcome.rounds(), 0);
        assert_eq!(outcome.winner(), Some(Opinion::new(0)));
    }

    #[test]
    fn counting_run_respects_the_round_limit() {
        let mut net = counting_net(1_000, 2, 0.3, 6);
        let outcome = Voter::new().run_counts(&mut net, 25);
        assert!(!outcome.converged());
        assert_eq!(outcome.rounds(), 25);
    }
}
