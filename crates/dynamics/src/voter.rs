//! The voter model: adopt one uniformly random received opinion.

use crate::{one_round_phase, Dynamics};
use pushsim::{AdoptionScope, PushBackend};
use rand::rngs::StdRng;

/// The classic **voter model** adapted to the push setting: in every round
/// each opinionated agent pushes its opinion, and every agent that received
/// at least one message adopts one of the received opinions chosen uniformly
/// at random (counting multiplicities). Undecided agents join the process by
/// the same rule.
///
/// Without noise the voter model reaches consensus in `O(n)` expected rounds
/// on the complete graph but offers only a weak plurality guarantee (the
/// probability of winning equals the initial share). With noise it has no
/// absorbing state at all — which is precisely why the paper's protocol
/// needs its sample-majority stage.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Voter {
    _private: (),
}

impl Voter {
    /// Creates a voter-model dynamics.
    pub fn new() -> Self {
        Self::default()
    }
}

impl<B: PushBackend> Dynamics<B> for Voter {
    fn name(&self) -> &'static str {
        "voter"
    }

    fn step(&mut self, net: &mut B, rng: &mut StdRng) {
        one_round_phase(net);
        net.resolve_uniform_adoption(AdoptionScope::AllAgents, rng);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use noisy_channel::NoiseMatrix;
    use pushsim::{CountingNetwork, DeliverySemantics, Network, Opinion, SimConfig};
    use rand::SeedableRng;

    #[test]
    fn a_single_opinion_network_stays_put() {
        let noise = NoiseMatrix::identity(2).unwrap();
        let config = SimConfig::builder(40, 2).seed(1).build().unwrap();
        let mut net = Network::new(config, noise).unwrap();
        net.seed_counts(&[40, 0]).unwrap();
        let mut rng = StdRng::seed_from_u64(2);
        let mut voter = Voter::new();
        for _ in 0..20 {
            voter.step(&mut net, &mut rng);
        }
        assert!(net.distribution().is_consensus_on(Opinion::new(0)));
    }

    #[test]
    fn undecided_nodes_are_recruited() {
        let noise = NoiseMatrix::identity(2).unwrap();
        let config = SimConfig::builder(60, 2).seed(3).build().unwrap();
        let mut net = Network::new(config, noise).unwrap();
        net.seed_counts(&[20, 10]).unwrap();
        let mut rng = StdRng::seed_from_u64(4);
        let mut voter = Voter::new();
        let undecided_before = net.distribution().undecided();
        for _ in 0..30 {
            voter.step(&mut net, &mut rng);
        }
        assert!(net.distribution().undecided() < undecided_before);
    }

    #[test]
    fn counting_voter_conserves_population_and_recruits_undecided() {
        // The same generic implementation, on the counting backend.
        let noise = NoiseMatrix::uniform(3, 0.3).unwrap();
        let config = SimConfig::builder(50_000, 3)
            .seed(2)
            .delivery(DeliverySemantics::Poissonized)
            .build()
            .unwrap();
        let mut net = CountingNetwork::new(config, noise).unwrap();
        net.seed_counts(&[20_000, 10_000, 5_000]).unwrap();
        let mut rng = StdRng::seed_from_u64(12);
        let mut voter = Voter::new();
        for _ in 0..30 {
            voter.step(&mut net, &mut rng);
        }
        let dist = net.distribution();
        assert_eq!(dist.num_nodes(), 50_000);
        assert!(dist.undecided() < 15_000, "undecided should shrink: {dist}");
    }

    #[test]
    fn name_is_stable() {
        assert_eq!(Dynamics::<Network>::name(&Voter::new()), "voter");
    }
}
