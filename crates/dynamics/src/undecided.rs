//! The undecided-state dynamics.

use crate::{one_round_phase, Dynamics};
use pushsim::PushBackend;
use rand::rngs::StdRng;

/// The **undecided-state dynamics** \[5, 8\] adapted to the push setting:
/// each agent looks at one uniformly random message it received this round
/// and
///
/// * adopts it if the agent is currently undecided,
/// * becomes undecided if the message differs from the agent's opinion,
/// * keeps its opinion if the message agrees with it.
///
/// Agents that received nothing do not change state. In the noiseless gossip
/// model this dynamics solves plurality consensus with polylogarithmic
/// convergence time provided the initial bias is large enough; under the
/// paper's channel noise, spurious disagreements constantly push agents back
/// to the undecided state, which is one of the failure modes experiment T1
/// quantifies.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct UndecidedState {
    _private: (),
}

impl UndecidedState {
    /// Creates an undecided-state dynamics.
    pub fn new() -> Self {
        Self::default()
    }
}

impl<B: PushBackend> Dynamics<B> for UndecidedState {
    fn name(&self) -> &'static str {
        "undecided-state"
    }

    fn step(&mut self, net: &mut B, rng: &mut StdRng) {
        one_round_phase(net);
        net.resolve_undecided_state(rng);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use noisy_channel::NoiseMatrix;
    use pushsim::{CountingNetwork, DeliverySemantics, Network, Opinion, SimConfig};
    use rand::SeedableRng;

    #[test]
    fn agreement_is_absorbing_without_noise() {
        let noise = NoiseMatrix::identity(2).unwrap();
        let config = SimConfig::builder(50, 2).seed(1).build().unwrap();
        let mut net = Network::new(config, noise).unwrap();
        net.seed_counts(&[50, 0]).unwrap();
        let mut rng = StdRng::seed_from_u64(2);
        let mut dynamics = UndecidedState::new();
        for _ in 0..20 {
            dynamics.step(&mut net, &mut rng);
        }
        assert!(net.distribution().is_consensus_on(Opinion::new(0)));
    }

    #[test]
    fn disagreement_creates_undecided_nodes() {
        // Two equal camps with no noise: after one round some agents must
        // have seen the other opinion and become undecided.
        let noise = NoiseMatrix::identity(2).unwrap();
        let config = SimConfig::builder(200, 2).seed(3).build().unwrap();
        let mut net = Network::new(config, noise).unwrap();
        net.seed_counts(&[100, 100]).unwrap();
        let mut rng = StdRng::seed_from_u64(4);
        let mut dynamics = UndecidedState::new();
        dynamics.step(&mut net, &mut rng);
        assert!(net.distribution().undecided() > 0);
    }

    #[test]
    fn counting_undecided_state_creates_undecided_under_disagreement() {
        // The same generic implementation, on the counting backend.
        let noise = NoiseMatrix::uniform(2, 0.45).unwrap();
        let config = SimConfig::builder(10_000, 2)
            .seed(3)
            .delivery(DeliverySemantics::Poissonized)
            .build()
            .unwrap();
        let mut net = CountingNetwork::new(config, noise).unwrap();
        net.seed_counts(&[5_000, 5_000]).unwrap();
        let mut rng = StdRng::seed_from_u64(13);
        let mut dynamics = UndecidedState::new();
        dynamics.step(&mut net, &mut rng);
        let dist = net.distribution();
        assert!(dist.undecided() > 0, "balanced camps must produce undecided agents");
        assert_eq!(dist.num_nodes(), 10_000);
    }

    #[test]
    fn solves_plurality_with_three_opinions_without_noise() {
        let noise = NoiseMatrix::identity(3).unwrap();
        let config = SimConfig::builder(600, 3).seed(5).build().unwrap();
        let mut net = Network::new(config, noise).unwrap();
        net.seed_counts(&[300, 180, 120]).unwrap();
        let mut rng = StdRng::seed_from_u64(6);
        let outcome = UndecidedState::new().run(&mut net, &mut rng, 3_000);
        assert!(outcome.converged());
        assert_eq!(outcome.winner(), Some(Opinion::new(0)));
    }
}
