//! h-majority dynamics (and the classic 3-majority special case).

use crate::Dynamics;
use pushsim::PushBackend;
use rand::rngs::StdRng;

/// The **h-majority dynamics** adapted to the push model: one step is a
/// mini-phase of `2h` push rounds (so that almost every agent receives at
/// least `h` messages); at the end of the step, every agent that received at
/// least `h` messages draws a uniform sample of `h` of them without
/// replacement and adopts the most frequent opinion in the sample, breaking
/// ties uniformly at random. Agents with fewer than `h` received messages do
/// not change state.
///
/// The classic formulation of \[9\] lets each agent *pull* the opinions of
/// `h` uniformly random agents per round; in the paper's push-only,
/// noise-on-every-message model the equivalent information is only available
/// by accumulating pushed messages over a few rounds, which is exactly how
/// the paper's own Stage 2 gathers its samples. For `h = 3` this is the
/// 3-majority dynamics; larger `h` interpolates towards Stage 2 (which uses
/// `ℓ = Θ(1/ε²)`).
///
/// The update is the backend's sample-majority decision operator
/// ([`PushBackend::resolve_sample_majority`]) — the very same operator
/// Stage 2 of the protocol uses, on either backend.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HMajority {
    h: u32,
}

impl HMajority {
    /// Creates an h-majority dynamics.
    ///
    /// # Panics
    ///
    /// Panics if `h == 0`.
    pub fn new(h: u32) -> Self {
        assert!(h > 0, "the sample size h must be positive");
        Self { h }
    }

    /// The per-step sample size `h`.
    pub fn h(&self) -> u32 {
        self.h
    }
}

impl<B: PushBackend> Dynamics<B> for HMajority {
    fn name(&self) -> &'static str {
        "h-majority"
    }

    fn step(&mut self, net: &mut B, rng: &mut StdRng) {
        net.begin_phase();
        for _ in 0..2 * self.h {
            net.push_opinionated_round();
        }
        net.end_phase();
        net.resolve_sample_majority(u64::from(self.h), rng);
    }
}

/// The **3-majority dynamics** \[9\]: the `h = 3` special case of
/// [`HMajority`], packaged separately because it is the comparator most
/// often cited alongside the paper.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ThreeMajority {
    _private: (),
}

impl ThreeMajority {
    /// Creates a 3-majority dynamics.
    pub fn new() -> Self {
        Self::default()
    }
}

impl<B: PushBackend> Dynamics<B> for ThreeMajority {
    fn name(&self) -> &'static str {
        "3-majority"
    }

    fn step(&mut self, net: &mut B, rng: &mut StdRng) {
        HMajority::new(3).step(net, rng);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use noisy_channel::NoiseMatrix;
    use pushsim::{CountingNetwork, DeliverySemantics, Network, Opinion, SimConfig};
    use rand::SeedableRng;

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_sample_size_is_rejected() {
        let _ = HMajority::new(0);
    }

    #[test]
    fn h_accessor() {
        assert_eq!(HMajority::new(5).h(), 5);
    }

    #[test]
    fn consensus_is_absorbing_without_noise() {
        let noise = NoiseMatrix::identity(3).unwrap();
        let config = SimConfig::builder(60, 3).seed(1).build().unwrap();
        let mut net = Network::new(config, noise).unwrap();
        net.seed_counts(&[60, 0, 0]).unwrap();
        let mut rng = StdRng::seed_from_u64(2);
        let mut dynamics = ThreeMajority::new();
        for _ in 0..10 {
            dynamics.step(&mut net, &mut rng);
        }
        assert!(net.distribution().is_consensus_on(Opinion::new(0)));
    }

    #[test]
    fn three_majority_amplifies_a_clear_majority_quickly() {
        let noise = NoiseMatrix::identity(2).unwrap();
        let config = SimConfig::builder(400, 2).seed(3).build().unwrap();
        let mut net = Network::new(config, noise).unwrap();
        net.seed_counts(&[280, 120]).unwrap();
        let mut rng = StdRng::seed_from_u64(4);
        let outcome = ThreeMajority::new().run(&mut net, &mut rng, 500);
        assert!(outcome.converged());
        assert_eq!(outcome.winner(), Some(Opinion::new(0)));
        // 3-majority converges in polylogarithmic time on easy instances:
        // it should be dramatically faster than the round limit.
        assert!(outcome.rounds() < 200, "took {} rounds", outcome.rounds());
    }

    #[test]
    fn counting_majority_dynamics_amplify_a_plurality() {
        // The same generic implementation, on the counting backend at a
        // population size the agent backend could not sweep.
        let noise = NoiseMatrix::uniform(2, 0.4).unwrap();
        let config = SimConfig::builder(100_000, 2)
            .seed(1)
            .delivery(DeliverySemantics::Poissonized)
            .build()
            .unwrap();
        let mut net = CountingNetwork::new(config, noise).unwrap();
        net.seed_counts(&[70_000, 30_000]).unwrap();
        let mut rng = StdRng::seed_from_u64(11);
        let outcome = ThreeMajority::new().run(&mut net, &mut rng, 600);
        let dist = outcome.final_distribution();
        let share = dist.counts()[0] as f64 / dist.num_nodes() as f64;
        assert!(share > 0.9, "plurality share {share}: {dist}");
        assert_eq!(dist.num_nodes(), 100_000, "population must be conserved");
    }

    #[test]
    fn larger_h_needs_fewer_update_steps() {
        // With a larger sample the dynamics needs at most as many *update
        // steps* (each step of h-majority spans 2h rounds).
        let steps_with = |h: u32| {
            let noise = NoiseMatrix::identity(2).unwrap();
            let config = SimConfig::builder(300, 2).seed(5).build().unwrap();
            let mut net = Network::new(config, noise).unwrap();
            net.seed_counts(&[200, 100]).unwrap();
            let mut rng = StdRng::seed_from_u64(6);
            let rounds = HMajority::new(h).run(&mut net, &mut rng, 2_000).rounds();
            rounds.div_ceil(u64::from(2 * h))
        };
        let s3 = steps_with(3);
        let s15 = steps_with(15);
        assert!(s15 <= s3, "h=15 took {s15} steps vs h=3 {s3}");
    }
}
