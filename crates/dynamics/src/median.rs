//! The median rule of Doerr et al. (stabilizing consensus).

use crate::{one_round_phase, Dynamics};
use pushsim::PushBackend;
use rand::rngs::StdRng;

/// The **median rule** \[15\]: opinions are treated as integers; in every
/// round each agent looks at two uniformly random received messages (with
/// replacement) and moves to the *median* of its own opinion and the two
/// observed values. Undecided agents adopt one random received opinion.
///
/// In the noiseless setting the median rule solves stabilizing consensus in
/// `O(log n)` rounds and tolerates `O(√n)` adversarial corruptions per
/// round; under the paper's channel noise it converges to the median of the
/// initial opinions rather than the plurality, which is exactly the
/// behavioural difference experiment T1 illustrates.
///
/// On the counting backend the rule is mean-field approximated (the two
/// draws are treated as independent categorical observations; see
/// [`PushBackend::resolve_median`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MedianRule {
    _private: (),
}

impl MedianRule {
    /// Creates a median-rule dynamics.
    pub fn new() -> Self {
        Self::default()
    }
}

impl<B: PushBackend> Dynamics<B> for MedianRule {
    fn name(&self) -> &'static str {
        "median"
    }

    fn step(&mut self, net: &mut B, rng: &mut StdRng) {
        one_round_phase(net);
        net.resolve_median(rng);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use noisy_channel::NoiseMatrix;
    use pushsim::{CountingNetwork, DeliverySemantics, Network, Opinion, SimConfig};
    use rand::SeedableRng;

    #[test]
    fn consensus_is_absorbing_without_noise() {
        let noise = NoiseMatrix::identity(3).unwrap();
        let config = SimConfig::builder(60, 3).seed(1).build().unwrap();
        let mut net = Network::new(config, noise).unwrap();
        net.seed_counts(&[0, 60, 0]).unwrap();
        let mut rng = StdRng::seed_from_u64(2);
        let mut dynamics = MedianRule::new();
        for _ in 0..10 {
            dynamics.step(&mut net, &mut rng);
        }
        assert!(net.distribution().is_consensus_on(Opinion::new(1)));
    }

    #[test]
    fn converges_to_the_median_opinion_not_the_plurality() {
        // Opinion 0 holds the plurality but opinion 1 is the median of the
        // initial multiset; the median rule should end on opinion 1.
        let noise = NoiseMatrix::identity(3).unwrap();
        let config = SimConfig::builder(900, 3).seed(3).build().unwrap();
        let mut net = Network::new(config, noise).unwrap();
        net.seed_counts(&[400, 350, 150]).unwrap();
        let mut rng = StdRng::seed_from_u64(4);
        let outcome = MedianRule::new().run(&mut net, &mut rng, 2_000);
        assert!(outcome.converged());
        assert_eq!(outcome.winner(), Some(Opinion::new(1)));
    }

    #[test]
    fn counting_median_moves_to_the_median_opinion() {
        // The same generic implementation on the counting backend: opinion
        // 0 holds the plurality but opinion 1 is the median of the initial
        // multiset; under a noiseless channel the median rule should
        // concentrate on 1.
        let noise = NoiseMatrix::identity(3).unwrap();
        let config = SimConfig::builder(90_000, 3)
            .seed(4)
            .delivery(DeliverySemantics::Poissonized)
            .build()
            .unwrap();
        let mut net = CountingNetwork::new(config, noise).unwrap();
        net.seed_counts(&[40_000, 35_000, 15_000]).unwrap();
        let mut rng = StdRng::seed_from_u64(14);
        let outcome = MedianRule::new().run(&mut net, &mut rng, 200);
        let dist = outcome.final_distribution();
        let share = dist.counts()[1] as f64 / dist.num_nodes() as f64;
        assert!(share > 0.9, "median share {share}: {dist}");
    }

    #[test]
    fn two_opinion_majority_is_recovered() {
        // With two opinions the median coincides with the majority.
        let noise = NoiseMatrix::identity(2).unwrap();
        let config = SimConfig::builder(400, 2).seed(5).build().unwrap();
        let mut net = Network::new(config, noise).unwrap();
        net.seed_counts(&[260, 140]).unwrap();
        let mut rng = StdRng::seed_from_u64(6);
        let outcome = MedianRule::new().run(&mut net, &mut rng, 2_000);
        assert!(outcome.converged());
        assert_eq!(outcome.winner(), Some(Opinion::new(0)));
    }
}
