//! Declarative selection of a baseline dynamics rule.
//!
//! A [`RuleSpec`] names one of this crate's dynamics together with its
//! parameters, deferring the choice of simulation backend: the boxed rule
//! is materialized per run with [`RuleSpec::build`], which is generic over
//! [`PushBackend`]. This is what makes the baselines configurable from
//! scenario spec files — the experiment layer stores the textual form
//! (`voter`, `h-majority(15)`, …) and instantiates the rule on whichever
//! backend the run resolves to.
//!
//! ```
//! use opinion_dynamics::RuleSpec;
//! use pushsim::Network;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let spec: RuleSpec = "h-majority(15)".parse()?;
//! let rule = spec.build::<Network>();
//! assert_eq!(rule.name(), "h-majority");
//! // The canonical text form round-trips.
//! assert_eq!(spec.to_string().parse::<RuleSpec>()?, spec);
//! # Ok(())
//! # }
//! ```

use crate::{Dynamics, HMajority, MedianRule, ThreeMajority, UndecidedState, Voter};
use pushsim::PushBackend;
use std::fmt;
use std::str::FromStr;

/// A baseline dynamics rule plus its parameters, independent of the
/// simulation backend.
///
/// Textual forms accepted by [`FromStr`] (and produced by `Display`):
/// `voter`, `3-majority`, `h-majority(h)`, `undecided`, `median`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RuleSpec {
    /// The voter model ([`Voter`]).
    Voter,
    /// The 3-majority dynamics ([`ThreeMajority`]).
    ThreeMajority,
    /// The h-majority dynamics with sample size `h` ([`HMajority`]).
    HMajority {
        /// Number of received opinions sampled per update.
        h: u32,
    },
    /// The undecided-state dynamics ([`UndecidedState`]).
    Undecided,
    /// The median rule ([`MedianRule`]).
    Median,
}

impl RuleSpec {
    /// Every rule family at its default parameterization, in the order the
    /// experiment tables print them.
    pub const ALL: [RuleSpec; 5] = [
        RuleSpec::Voter,
        RuleSpec::ThreeMajority,
        RuleSpec::HMajority { h: 15 },
        RuleSpec::Undecided,
        RuleSpec::Median,
    ];

    /// Instantiates the rule for the backend `B`.
    pub fn build<B: PushBackend>(&self) -> Box<dyn Dynamics<B>> {
        match *self {
            RuleSpec::Voter => Box::new(Voter::new()),
            RuleSpec::ThreeMajority => Box::new(ThreeMajority::new()),
            RuleSpec::HMajority { h } => Box::new(HMajority::new(h)),
            RuleSpec::Undecided => Box::new(UndecidedState::new()),
            RuleSpec::Median => Box::new(MedianRule::new()),
        }
    }
}

impl fmt::Display for RuleSpec {
    /// The canonical textual form (parseable back via [`FromStr`]).
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            RuleSpec::Voter => write!(f, "voter"),
            RuleSpec::ThreeMajority => write!(f, "3-majority"),
            RuleSpec::HMajority { h } => write!(f, "h-majority({h})"),
            RuleSpec::Undecided => write!(f, "undecided"),
            RuleSpec::Median => write!(f, "median"),
        }
    }
}

impl FromStr for RuleSpec {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let s = s.trim();
        match s.to_ascii_lowercase().as_str() {
            "voter" => return Ok(RuleSpec::Voter),
            "3-majority" => return Ok(RuleSpec::ThreeMajority),
            "undecided" => return Ok(RuleSpec::Undecided),
            "median" => return Ok(RuleSpec::Median),
            _ => {}
        }
        if let Some(rest) = s.strip_prefix("h-majority(") {
            if let Some(arg) = rest.strip_suffix(')') {
                if let Ok(h) = arg.trim().parse::<u32>() {
                    if h >= 1 {
                        return Ok(RuleSpec::HMajority { h });
                    }
                }
            }
        }
        Err(format!(
            "unknown dynamics rule {s:?} (expected voter, 3-majority, h-majority(h), \
             undecided or median)"
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pushsim::{CountingNetwork, Network};

    #[test]
    fn display_round_trips_for_every_rule() {
        for spec in RuleSpec::ALL {
            let text = spec.to_string();
            assert_eq!(text.parse::<RuleSpec>().unwrap(), spec, "round-trip {text}");
        }
    }

    #[test]
    fn build_produces_the_named_rule_on_both_backends() {
        assert_eq!(RuleSpec::Voter.build::<Network>().name(), "voter");
        assert_eq!(
            RuleSpec::HMajority { h: 7 }.build::<CountingNetwork>().name(),
            "h-majority"
        );
        assert_eq!(RuleSpec::Median.build::<Network>().name(), "median");
    }

    #[test]
    fn malformed_rules_are_rejected() {
        for text in ["", "votter", "h-majority", "h-majority()", "h-majority(0)", "h-majority(x)"] {
            assert!(text.parse::<RuleSpec>().is_err(), "{text:?} must not parse");
        }
    }
}
