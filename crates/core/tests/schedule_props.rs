//! Property-based tests for the protocol schedule arithmetic (public API
//! only): the schedule must stay well-formed and monotone over the whole
//! admissible parameter range, because every experiment derives its round
//! budget from it.

use plurality_core::{ProtocolConstants, ProtocolParams};
use proptest::prelude::*;

fn params(n: usize, k: usize, eps: f64, constants: ProtocolConstants) -> ProtocolParams {
    ProtocolParams::builder(n, k)
        .epsilon(eps)
        .constants(constants)
        .build()
        .expect("strategy only generates valid parameters")
}

fn constants_strategy() -> impl Strategy<Value = ProtocolConstants> {
    // s < beta < phi, all positive; c and c_final positive.
    (0.1f64..2.0, 0.1f64..2.0, 0.1f64..2.0, 0.5f64..12.0, 0.5f64..6.0).prop_map(
        |(s, d1, d2, c, c_final)| ProtocolConstants {
            s,
            beta: s + d1,
            phi: s + d1 + d2,
            c,
            c_final,
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The schedule is always non-empty, with positive phase lengths, odd
    /// Stage 2 sample sizes, and a total round count that fits the paper's
    /// shape: at least one Stage 1 phase of Θ(log n/ε²) and a final Stage 2
    /// phase at least as long as the amplification phases.
    #[test]
    fn schedule_is_well_formed(
        n in 4usize..200_000,
        k in 2usize..10,
        eps in 0.02f64..0.95,
        constants in constants_strategy(),
    ) {
        let p = params(n, k, eps, constants);
        let schedule = p.schedule();
        prop_assert!(schedule.stage1_phases() >= 2);
        prop_assert!(schedule.stage2_phases() >= 2);
        prop_assert!(schedule.stage1_phase_lengths().iter().all(|&l| l >= 1));
        prop_assert!(schedule.stage2_sample_sizes().iter().all(|&l| l >= 3 && l % 2 == 1));
        prop_assert_eq!(
            schedule.total_rounds(),
            schedule.stage1_rounds() + schedule.stage2_rounds()
        );
        let sizes = schedule.stage2_sample_sizes();
        prop_assert!(sizes.last().unwrap() >= sizes.first().unwrap());
    }

    /// Total rounds are monotone in the difficulty of the instance: they
    /// never decrease when n grows or when ε shrinks (with everything else
    /// fixed).
    #[test]
    fn rounds_are_monotone_in_n_and_eps(
        n in 16usize..50_000,
        k in 2usize..6,
        eps in 0.05f64..0.8,
        constants in constants_strategy(),
    ) {
        let base = params(n, k, eps, constants).schedule().total_rounds();
        let bigger_n = params(2 * n, k, eps, constants).schedule().total_rounds();
        let smaller_eps = params(n, k, eps / 2.0, constants).schedule().total_rounds();
        prop_assert!(bigger_n >= base, "doubling n shrank the schedule: {base} -> {bigger_n}");
        prop_assert!(smaller_eps >= base, "halving eps shrank the schedule: {base} -> {smaller_eps}");
    }

    /// The schedule's total length stays within a constant factor of the
    /// theoretical `ln n / ε²` scale (the constant depends only on the
    /// protocol constants, not on n or ε).
    #[test]
    fn rounds_track_the_theoretical_scale(
        n in 64usize..100_000,
        eps in 0.05f64..0.6,
        constants in constants_strategy(),
    ) {
        let p = params(n, 3, eps, constants);
        let total = p.schedule().total_rounds() as f64;
        let scale = p.theoretical_round_scale();
        let normalized = total / scale;
        // Very generous envelope: the point is that the ratio cannot blow up
        // with n or eps, only with the constants (bounded by the strategy).
        let constant_budget = 4.0 * (constants.s + constants.phi + 3.0 * constants.c + 3.0 * constants.c_final) + 40.0;
        prop_assert!(
            normalized <= constant_budget,
            "normalized rounds {normalized} exceeded budget {constant_budget}"
        );
    }
}
