//! Error type for protocol configuration and execution.

use std::error::Error;
use std::fmt;

/// Errors produced when configuring or running the two-stage protocol.
#[derive(Debug, Clone, PartialEq)]
pub enum ProtocolError {
    /// The system must contain at least two agents.
    TooFewNodes {
        /// The number of agents requested.
        found: usize,
    },
    /// The system must have at least two opinions.
    TooFewOpinions {
        /// The number of opinions requested.
        found: usize,
    },
    /// The noise parameter ε must lie in `(0, 1)`.
    InvalidEpsilon {
        /// The offending value.
        value: f64,
    },
    /// A protocol constant is out of its admissible range (the paper requires
    /// `φ > β > s > 0` and a positive Stage-2 constant `c`).
    InvalidConstant {
        /// Name of the offending constant.
        name: &'static str,
        /// The offending value.
        value: f64,
    },
    /// The supplied noise matrix has the wrong dimension.
    NoiseDimensionMismatch {
        /// Number of opinions configured.
        expected: usize,
        /// Dimension of the supplied matrix.
        found: usize,
    },
    /// An opinion index is out of range.
    OpinionOutOfRange {
        /// The offending opinion index.
        opinion: usize,
        /// The number of opinions configured.
        num_opinions: usize,
    },
    /// The initial opinion counts are inconsistent with the configuration.
    BadInitialCounts {
        /// Explanation of the inconsistency.
        reason: String,
    },
    /// An error bubbled up from the underlying simulator.
    Simulation(String),
}

impl fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProtocolError::TooFewNodes { found } => {
                write!(f, "protocol needs at least 2 nodes, got {found}")
            }
            ProtocolError::TooFewOpinions { found } => {
                write!(f, "protocol needs at least 2 opinions, got {found}")
            }
            ProtocolError::InvalidEpsilon { value } => {
                write!(f, "epsilon {value} must lie strictly between 0 and 1")
            }
            ProtocolError::InvalidConstant { name, value } => {
                write!(f, "protocol constant {name} = {value} is out of range")
            }
            ProtocolError::NoiseDimensionMismatch { expected, found } => write!(
                f,
                "noise matrix is over {found} opinions but the protocol uses {expected}"
            ),
            ProtocolError::OpinionOutOfRange {
                opinion,
                num_opinions,
            } => write!(
                f,
                "opinion {opinion} is out of range for a protocol over {num_opinions} opinions"
            ),
            ProtocolError::BadInitialCounts { reason } => {
                write!(f, "invalid initial opinion counts: {reason}")
            }
            ProtocolError::Simulation(msg) => write!(f, "simulation error: {msg}"),
        }
    }
}

impl Error for ProtocolError {}

impl From<pushsim::SimError> for ProtocolError {
    fn from(err: pushsim::SimError) -> Self {
        ProtocolError::Simulation(err.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_are_informative() {
        assert!(ProtocolError::TooFewNodes { found: 1 }
            .to_string()
            .contains("2 nodes"));
        assert!(ProtocolError::InvalidEpsilon { value: 2.0 }
            .to_string()
            .contains("epsilon"));
        assert!(ProtocolError::InvalidConstant {
            name: "beta",
            value: -1.0
        }
        .to_string()
        .contains("beta"));
        assert!(ProtocolError::BadInitialCounts {
            reason: "too many".into()
        }
        .to_string()
        .contains("too many"));
    }

    #[test]
    fn sim_errors_convert() {
        let sim = pushsim::SimError::TooFewNodes { found: 1 };
        let err: ProtocolError = sim.into();
        assert!(matches!(err, ProtocolError::Simulation(_)));
    }

    #[test]
    fn is_std_error() {
        fn assert_error<E: Error + Send + Sync + 'static>() {}
        assert_error::<ProtocolError>();
    }
}
