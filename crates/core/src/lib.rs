//! # plurality-core
//!
//! The two-stage **noisy rumor spreading / plurality consensus** protocol of
//! Fraigniaud & Natale, *Noisy Rumor Spreading and Plurality Consensus*
//! (PODC 2016), implemented on top of the [`pushsim`] uniform push model
//! simulator and the [`noisy_channel`] noise matrices.
//!
//! ## The protocol in one paragraph
//!
//! The system has `n` anonymous agents and `k` opinions; every transmitted
//! opinion is perturbed by an (ε, δ)-majority-preserving noise matrix. In
//! **Stage 1** (opinion acquisition), opinionated agents repeatedly push
//! their opinion and undecided agents adopt a uniformly random received
//! opinion at the end of each phase; phase lengths grow so that the number
//! of opinionated agents multiplies by `β/ε² + 1` per phase while the bias
//! towards the correct opinion only degrades geometrically, ending at
//! `Ω(√(log n / n))` once every agent is opinionated. In **Stage 2**
//! (sample-majority amplification), every agent pushes its opinion for `2ℓ`
//! rounds, samples `ℓ = Θ(1/ε²)` of the received messages and adopts the
//! sample majority; Proposition 1 shows each phase multiplies the bias by a
//! constant factor `> 1`, so after `⌈log(√n / log n)⌉` phases plus one long
//! final phase the whole system supports the correct opinion, w.h.p. The
//! total running time is `O(log n / ε²)` rounds and each agent uses
//! `O(log log n + log 1/ε)` bits (Theorems 1 and 2).
//!
//! ## Crate layout
//!
//! * [`ProtocolParams`] / [`ProtocolConstants`] / [`Schedule`] — run
//!   parameters and the phase schedules of both stages.
//! * [`TwoStageProtocol`] — the protocol itself, with
//!   [`run_rumor_spreading`](TwoStageProtocol::run_rumor_spreading),
//!   [`run_plurality_consensus`](TwoStageProtocol::run_plurality_consensus)
//!   and [`run_stage2_only`](TwoStageProtocol::run_stage2_only).
//! * [`Outcome`] / [`PhaseRecord`] — per-run and per-phase results
//!   (consensus, winner, bias trajectory, message counts).
//! * [`observe`] / [`Session`] — the observation layer: watch a run phase
//!   by phase through an [`Observer`] (RNG-free, so attaching one never
//!   perturbs an execution) and stop it early with a composable
//!   [`StopCondition`] instead of a hard-coded round budget.
//! * [`MemoryMeter`] — per-node memory accounting in bits.
//! * [`bounds`] — the analytic quantities of the paper (the function
//!   `g(δ, ℓ)`, the Proposition 1 lower bound, Lemma 16's tail bound, the
//!   asymptotic round/memory scales).
//!
//! # Example
//!
//! ```
//! use noisy_channel::NoiseMatrix;
//! use plurality_core::{run_rumor_spreading, ProtocolParams};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let noise = NoiseMatrix::uniform(3, 0.3)?;
//! let params = ProtocolParams::builder(500, 3).epsilon(0.3).seed(7).build()?;
//! let outcome = run_rumor_spreading(&params, &noise)?;
//! assert!(outcome.succeeded());
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bounds;
mod error;
mod memory;
pub mod observe;
mod params;
mod protocol;
mod record;
mod stage1;
mod stage2;

pub use error::ProtocolError;
pub use memory::MemoryMeter;
pub use observe::{
    Fanout, NoObserver, Observer, PhaseSnapshot, RunProgress, StopCondition,
};
pub use params::{ProtocolConstants, ProtocolParams, ProtocolParamsBuilder, Schedule};
pub use protocol::{
    run_plurality_consensus, run_rumor_spreading, ExecutionBackend, Outcome, Session,
    TwoStageProtocol,
};
pub use record::{PhaseRecord, StageId};
