//! Stage 2: sample-majority bias amplification (Section 3.1.2 of the paper).
//!
//! Each phase `j` of Stage 2 lasts `2L` rounds (`L = ℓ` for the first `T′`
//! phases, `L = ℓ′ = Θ(ε⁻² log n)` for the last one). During the phase every
//! opinionated agent pushes its current opinion in every round. At the end
//! of the phase, every agent that received at least `L` messages draws a
//! uniform random sample of `L` of them (without replacement) and switches
//! to the most frequent opinion in the sample, breaking ties uniformly at
//! random.
//!
//! Proposition 1 shows that each such phase multiplies the bias towards the
//! plurality opinion by a constant factor `> 1` (as long as the noise matrix
//! is (ε, δ)-majority-preserving), so after `T′ = ⌈log(√n / log n)⌉` phases
//! the bias exceeds 1/2 and the final long phase completes the convergence
//! (Lemma 12).
//!
//! Like Stage 1, the stage is **backend-generic**: the sample-majority
//! decision operator is [`PushBackend::resolve_sample_majority`], which the
//! agent-level backend implements per agent (a multivariate-hypergeometric
//! draw from the inbox) and the counting backend implements with the
//! count-level closed forms of process P (a binomial threshold event plus
//! `maj(Multinomial(L, h/H))` splits — see `pushsim::counting`).

use crate::memory::MemoryMeter;
use crate::observe::{Observer, PhaseSnapshot, RunProgress, StopCondition};
use crate::record::{PhaseRecord, StageId};
use pushsim::{Opinion, PhaseObservation, PushBackend};
use rand::rngs::StdRng;

/// Runs Stage 2 phases on `net` (any [`PushBackend`]) until the schedule
/// is exhausted or `stop` fires at a phase boundary.
///
/// `sample_sizes` lists the per-phase sample sizes `L` (each phase lasts
/// `2L` rounds), `reference` is the plurality opinion used for bias
/// bookkeeping, `rng` drives sampling and tie-breaking, and `meter`
/// accumulates memory statistics. `observer` and `progress` behave exactly
/// as in Stage 1's `run`: phase-boundary snapshots, no RNG access, shared
/// stop-condition state.
///
/// Returns one [`PhaseRecord`] per executed phase.
#[allow(clippy::too_many_arguments)] // one argument per snapshot field
pub(crate) fn run<B: PushBackend>(
    net: &mut B,
    sample_sizes: &[u64],
    reference: Opinion,
    rng: &mut StdRng,
    meter: &mut MemoryMeter,
    observer: &mut dyn Observer,
    stop: &StopCondition,
    progress: &mut RunProgress,
) -> Vec<PhaseRecord> {
    let mut records = Vec::with_capacity(sample_sizes.len());
    for (phase_index, &sample_size) in sample_sizes.iter().enumerate() {
        if stop.should_stop(progress) {
            break;
        }
        observer.on_phase_begin(Some(StageId::Two), phase_index);
        let rounds = 2 * sample_size;
        net.begin_phase();
        let mut messages = 0u64;
        for _ in 0..rounds {
            // Opinions do not change in the middle of a phase, so pushing
            // the live state every round matches the paper's rule.
            messages += net.push_opinionated_round().messages_sent();
        }
        net.end_phase();
        net.resolve_sample_majority(sample_size, rng);

        meter.record_sample_size(sample_size);
        meter.record_counter(net.observation().max_inbox());
        meter.record_phase();
        let record = PhaseRecord::new(
            StageId::Two,
            phase_index,
            rounds,
            messages,
            net.distribution(),
            reference,
        );
        let snapshot = PhaseSnapshot::new(
            Some(StageId::Two),
            phase_index,
            rounds,
            net.rounds_executed(),
            messages,
            net.messages_sent(),
            record.distribution_after().clone(),
            record.bias_after(),
        )
        .with_topology(net.config().topology().label());
        observer.on_phase_end(&snapshot);
        progress.note_phase(&snapshot);
        records.push(record);
    }
    records
}

#[cfg(test)]
mod tests {
    use super::*;
    use noisy_channel::NoiseMatrix;
    use pushsim::{
        CountingNetwork, DeliverySemantics, Network, OpinionDistribution, SimConfig,
    };
    use rand::SeedableRng;

    fn network(n: usize, k: usize, eps: f64, seed: u64) -> Network {
        let noise = NoiseMatrix::uniform(k, eps).unwrap();
        let config = SimConfig::builder(n, k).seed(seed).build().unwrap();
        Network::new(config, noise).unwrap()
    }

    /// The stage with no observer and no early stop (the pre-observation
    /// call shape).
    fn run_all<B: PushBackend>(
        net: &mut B,
        sample_sizes: &[u64],
        reference: Opinion,
        rng: &mut StdRng,
        meter: &mut MemoryMeter,
    ) -> Vec<PhaseRecord> {
        run(
            net,
            sample_sizes,
            reference,
            rng,
            meter,
            &mut crate::observe::NoObserver,
            &StopCondition::ScheduleExhausted,
            &mut RunProgress::new(),
        )
    }

    #[test]
    fn stage2_amplifies_an_initial_bias_to_consensus() {
        let n = 600;
        let eps = 0.35;
        let mut net = network(n, 3, eps, 10);
        // 40% / 30% / 30% split: bias 0.1 towards opinion 0.
        net.seed_counts(&[240, 180, 180]).unwrap();
        let mut rng = StdRng::seed_from_u64(11);
        let mut meter = MemoryMeter::new(3);
        // A handful of amplification phases followed by one long phase.
        let ell = 61;
        let ell_final = 201;
        let sizes = vec![ell, ell, ell, ell, ell_final];
        let records = run_all(&mut net, &sizes, Opinion::new(0), &mut rng, &mut meter);
        assert_eq!(records.len(), sizes.len());
        let final_dist: OpinionDistribution = net.distribution();
        assert!(
            final_dist.is_consensus_on(Opinion::new(0)),
            "expected consensus on opinion 0, got {final_dist}"
        );
        assert_eq!(meter.max_sample_size(), ell_final);
    }

    #[test]
    fn bias_grows_monotonically_in_expectation() {
        // Run a single amplification phase many times and check that the
        // average bias after the phase exceeds the initial bias.
        let n = 500;
        let eps = 0.35;
        let initial_bias = 0.08;
        let majority = (n as f64 * (1.0 + initial_bias) / 2.0).round() as usize;
        let minority = n - majority;
        let mut total_bias_after = 0.0;
        let trials = 10;
        for seed in 0..trials {
            let mut net = network(n, 2, eps, 100 + seed);
            net.seed_counts(&[majority, minority]).unwrap();
            let mut rng = StdRng::seed_from_u64(200 + seed);
            let mut meter = MemoryMeter::new(2);
            let records = run_all(&mut net, &[41], Opinion::new(0), &mut rng, &mut meter);
            total_bias_after += records[0].bias_after().unwrap();
        }
        let avg = total_bias_after / trials as f64;
        let start = 2.0 * majority as f64 / n as f64 - 1.0;
        assert!(
            avg > start,
            "average bias after one phase ({avg:.3}) should exceed the initial bias ({start:.3})"
        );
    }

    #[test]
    fn counting_stage2_amplifies_an_initial_bias_to_consensus() {
        // The *same* generic run path, instantiated with the counting
        // backend.
        let n = 600;
        let eps = 0.35;
        let noise = NoiseMatrix::uniform(3, eps).unwrap();
        let config = SimConfig::builder(n, 3)
            .seed(10)
            .delivery(DeliverySemantics::Poissonized)
            .build()
            .unwrap();
        let mut net = CountingNetwork::new(config, noise).unwrap();
        net.seed_counts(&[240, 180, 180]).unwrap();
        let mut rng = StdRng::seed_from_u64(11);
        let mut meter = MemoryMeter::new(3);
        let ell = 61;
        let ell_final = 201;
        let sizes = vec![ell, ell, ell, ell, ell_final];
        let records = run_all(&mut net, &sizes, Opinion::new(0), &mut rng, &mut meter);
        assert_eq!(records.len(), sizes.len());
        let final_dist = net.distribution();
        assert!(
            final_dist.is_consensus_on(Opinion::new(0)),
            "expected consensus on opinion 0, got {final_dist}"
        );
        assert_eq!(meter.max_sample_size(), ell_final);
        // Node conservation throughout.
        assert_eq!(final_dist.num_nodes(), n);
    }

    #[test]
    fn counting_stage2_conserves_population_even_with_scarce_messages() {
        // Tiny opinionated population, huge sample size: nobody can collect
        // enough messages, so nothing changes.
        let noise = NoiseMatrix::uniform(2, 0.3).unwrap();
        let config = SimConfig::builder(100, 2)
            .seed(12)
            .delivery(DeliverySemantics::Poissonized)
            .build()
            .unwrap();
        let mut net = CountingNetwork::new(config, noise).unwrap();
        net.seed_counts(&[2, 1]).unwrap();
        let before = net.distribution();
        let mut rng = StdRng::seed_from_u64(13);
        let mut meter = MemoryMeter::new(2);
        run_all(&mut net, &[1001], Opinion::new(0), &mut rng, &mut meter);
        assert_eq!(net.distribution().counts(), before.counts());
    }

    #[test]
    fn nodes_without_enough_messages_keep_their_opinion() {
        // With only 3 opinionated nodes and a huge sample size, nobody can
        // collect enough messages, so nothing changes.
        let mut net = network(100, 2, 0.3, 12);
        net.seed_counts(&[2, 1]).unwrap();
        let before = net.distribution();
        let mut rng = StdRng::seed_from_u64(13);
        let mut meter = MemoryMeter::new(2);
        run_all(&mut net, &[1001], Opinion::new(0), &mut rng, &mut meter);
        assert_eq!(net.distribution().counts(), before.counts());
    }

    #[test]
    fn undecided_nodes_are_recruited_by_stage2() {
        // Stage 2 is also what finishes off stragglers: undecided nodes that
        // receive enough messages adopt the sample majority.
        let n = 300;
        let mut net = network(n, 2, 0.4, 14);
        net.seed_counts(&[200, 40]).unwrap(); // 60 undecided
        let mut rng = StdRng::seed_from_u64(15);
        let mut meter = MemoryMeter::new(2);
        run_all(&mut net, &[31, 31, 101], Opinion::new(0), &mut rng, &mut meter);
        let dist = net.distribution();
        assert_eq!(dist.undecided(), 0, "stragglers should be recruited: {dist}");
        assert!(dist.is_consensus_on(Opinion::new(0)));
    }

    #[test]
    fn ties_do_not_crash_and_resolve_to_some_opinion() {
        // Perfectly tied initial configuration: Stage 2 still drives the
        // system to *some* consensus (symmetry is broken by randomness).
        let n = 200;
        let mut net = network(n, 2, 0.45, 16);
        net.seed_counts(&[100, 100]).unwrap();
        let mut rng = StdRng::seed_from_u64(17);
        let mut meter = MemoryMeter::new(2);
        let sizes = vec![31; 12];
        run_all(&mut net, &sizes, Opinion::new(0), &mut rng, &mut meter);
        let dist = net.distribution();
        assert_eq!(dist.undecided(), 0);
        // Not asserting *which* opinion wins — only that the system is in a
        // legal state and heavily concentrated.
        let max = dist.counts().iter().max().copied().unwrap();
        assert!(max as f64 / n as f64 > 0.9, "distribution {dist}");
    }
}
