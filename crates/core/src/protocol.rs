//! The complete two-stage protocol and its outcome type.

use crate::error::ProtocolError;
use crate::memory::MemoryMeter;
use crate::observe::{NoObserver, Observer, RunProgress, StopCondition};
use crate::params::ProtocolParams;
use crate::record::{PhaseRecord, StageId};
use crate::{stage1, stage2};
use noisy_channel::NoiseMatrix;
use pushsim::{
    BlockCountingNetwork, ChurnSpec, ClockSpec, CountingNetwork, DeliverySemantics, FaultSpec,
    Network, Opinion, OpinionDistribution, PushBackend, SimConfig, TopologySpec,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Calibrated agent-backend phase cost: nanoseconds per (agent × opinion).
/// From `BENCH_pushsim.json` (`pushsim_phase_scaling/agent_batched_B`:
/// ≈ 460 µs per phase at n = 10⁵, k = 3).
const AGENT_NS_PER_AGENT_OPINION: f64 = 1.5;

/// Calibrated counting-backend phase cost: nanoseconds per noise-matrix
/// cell. From `BENCH_pushsim.json` (`pushsim_phase_scaling/counting_P`:
/// ≈ 470 ns per phase at k = 3, independent of n).
const COUNTING_NS_PER_CELL: f64 = 50.0;

/// Which simulation backend a protocol run executes on.
///
/// * [`Agent`](ExecutionBackend::Agent) — the agent-level [`Network`]:
///   every agent is tracked individually, all three delivery semantics
///   (processes O, B, P) are available, and per-phase cost scales with the
///   message volume. This is the reference backend.
/// * [`Counting`](ExecutionBackend::Counting) — the count-based
///   [`CountingNetwork`]: the population is a `k`-vector of opinion counts,
///   each phase costs O(k²) random draws regardless of `n`, and the
///   dynamics follow the paper's Poissonized process P (Definition 4); at
///   phase granularity this is the process the paper's own analysis
///   transfers to the real push process (Claim 1, Lemma 3). Use it for
///   population sizes the agent-level backend cannot touch (`n = 10⁷⁺`).
///   Two bounded approximations apply at large scale: Poisson tails beyond
///   mean 600 use a normal approximation (error < 10⁻³ — reached by the
///   final Stage 2 phase once `ℓ′ > 300`), and sample-majority adoption
///   beyond 65 536 switchers per phase uses an empirical-frequency bulk
///   split (≈ 0.4% perturbation); see the `pushsim::counting` docs.
/// * [`BlockCounting`](ExecutionBackend::BlockCounting) — the degree-class
///   [`BlockCountingNetwork`]: the population is a `C × k` matrix of
///   (degree-class, opinion) counts, each phase costs O(k²·C) draws
///   regardless of `n`, and the dynamics follow process P restricted by the
///   class-to-class edge structure of the configured topology. It is the
///   Poissonized engine for sparse vertex-transitive graphs (ring, torus,
///   random-regular), where `C = 1` and phases are bit-for-bit the counting
///   backend's; see the `pushsim::blockcounting` docs.
/// * [`Auto`](ExecutionBackend::Auto) — picks one of the three per run from
///   the topology's capability requirements and a calibrated cost model;
///   see [`resolve`](ExecutionBackend::resolve).
///
/// All concrete backends implement the same
/// [`PushBackend`](pushsim::PushBackend) trait, so the protocol stages are
/// a single generic code path; this enum is the thin front door that
/// chooses the monomorphization.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum ExecutionBackend {
    /// Agent-level simulation (exact for the configured delivery process).
    #[default]
    Agent,
    /// Count-based simulation (process P at population level, O(k²)/phase).
    Counting,
    /// Degree-class block-counting simulation (process P per degree class,
    /// O(k²·C)/phase on sparse vertex-transitive topologies).
    BlockCounting,
    /// Choose automatically per run, **without changing semantics**: the
    /// count-based backends are only eligible when the run already requests
    /// their native Poissonized delivery on a topology they certify
    /// ([`TopologyCapability`](pushsim::TopologyCapability)); everything
    /// else stays agent-level. Among eligible backends the calibrated cost
    /// model picks the cheaper one.
    Auto,
}

impl ExecutionBackend {
    /// Resolves this request to a concrete backend ([`Agent`],
    /// [`Counting`](Self::Counting) or
    /// [`BlockCounting`](Self::BlockCounting) — never [`Auto`](Self::Auto))
    /// for a run with `num_nodes` agents, `num_opinions` opinions, the
    /// given delivery semantics, communication topology and fault spec.
    ///
    /// [`Agent`]: Self::Agent
    ///
    /// The `Auto` policy is **semantics-preserving**: it is a *speed*
    /// choice among backends that implement the requested process, never a
    /// silent change of process.
    ///
    /// 1. **Delivery semantics first.** The count-based backends implement
    ///    only the Poissonized process P, so requests for process O or B
    ///    resolve to `Agent` at *any* scale. (Historically Auto silently
    ///    switched exact runs above `n = 10⁵` to the counting backend's
    ///    process-P law — a semantics change, not a speed choice. Callers
    ///    that want an O(k²)-per-phase engine at scale request Poissonized
    ///    delivery or a count-based backend explicitly; Claim 1 + Lemma 3
    ///    justify that substitution *statistically*, but it is now the
    ///    caller's stated intent instead of a hidden fallback.)
    /// 2. **Topology capability.** Each backend certifies a topology set
    ///    through [`PushBackend::TOPOLOGY_CAPABILITY`]: the counting
    ///    backend is complete-graph-only, the block-counting backend
    ///    certifies the vertex-transitive families (ring, torus,
    ///    random-regular, complete), and the agent backend takes anything.
    ///    A Poissonized run on a sparse vertex-transitive topology
    ///    resolves to `BlockCounting` — the only backend that implements
    ///    process P on those graphs (the agent backend's deferred delivery
    ///    is complete-graph-only by construction).
    /// 3. **Faults.** Any enabled fault keeps a sparse run agent-level
    ///    (the block-counting backend rejects all faults), and
    ///    delayed-delivery faults resolve complete-graph runs to `Agent` —
    ///    the counting backend cannot buffer individual messages across
    ///    phase boundaries ([`PushBackend::SUPPORTS_DELAY_FAULTS`] is
    ///    `false` for it). The aggregatable fault families (drop,
    ///    duplication, crash, Byzantine) leave the counting backend
    ///    eligible on the complete graph.
    /// 4. **Temporal axes.** Edge churn (`rewire`) and non-`sync` clocks
    ///    need per-agent identity
    ///    ([`PushBackend::TEMPORAL_CAPABILITY`]), so they resolve to
    ///    `Agent` on every topology; population churn and noise schedules
    ///    are aggregate operations that keep the count-based backends
    ///    eligible.
    /// 5. **Cost model.** For Poissonized complete-graph runs, per-phase
    ///    cost is estimated as `1.5 ns · n · k` for the agent backend
    ///    (message volume dominates) vs `50 ns · k²` for the counting
    ///    backend (one multinomial per noise-matrix row); the cheaper
    ///    backend wins. Constants are calibrated from the archived
    ///    `BENCH_pushsim.json` baseline.
    ///
    /// Explicit `Agent` / `Counting` / `BlockCounting` requests are never
    /// overridden (an infeasible explicit request — counting on a ring —
    /// fails at network construction with
    /// [`SimError::UnsupportedTopology`](pushsim::SimError) instead of
    /// being silently rerouted).
    // One parameter per resolution-relevant configuration axis; bundling
    // them into a struct would just move the field list one call up.
    #[allow(clippy::too_many_arguments)]
    pub fn resolve(
        self,
        num_nodes: usize,
        num_opinions: usize,
        delivery: DeliverySemantics,
        topology: TopologySpec,
        fault: FaultSpec,
        churn: ChurnSpec,
        clock: ClockSpec,
    ) -> ExecutionBackend {
        match self {
            ExecutionBackend::Agent
            | ExecutionBackend::Counting
            | ExecutionBackend::BlockCounting => self,
            ExecutionBackend::Auto => {
                // Per-agent temporal axes first: edge churn resamples a
                // materialized graph and clock models gate individual
                // agents' pushes — both exist only at agent level
                // (`TemporalCapability::AGGREGATE` rejects them).
                if !clock.is_sync() || churn.has_edge_churn() {
                    return ExecutionBackend::Agent;
                }
                // Count-based engines only ever represent the Poissonized
                // delivery law; anything else is agent-level territory.
                if !matches!(delivery, DeliverySemantics::Poissonized) {
                    return ExecutionBackend::Agent;
                }
                if !topology.is_complete() {
                    // Sparse Poissonized runs belong to the block-counting
                    // backend whenever it certifies the topology and no
                    // fault is enabled (it rejects all faults). The agent
                    // fallback fails loudly at construction — deferred
                    // delivery is complete-graph-only there — rather than
                    // silently ignoring the graph.
                    let block_eligible = <BlockCountingNetwork as PushBackend>::TOPOLOGY_CAPABILITY
                        .supports(topology)
                        && fault.is_none();
                    return if block_eligible {
                        ExecutionBackend::BlockCounting
                    } else {
                        ExecutionBackend::Agent
                    };
                }
                // Complete graph: the counting backend is eligible unless
                // the fault spec needs per-message delay buffering.
                let counting_eligible = fault.aggregatable()
                    || <CountingNetwork as PushBackend>::SUPPORTS_DELAY_FAULTS;
                if !counting_eligible {
                    return ExecutionBackend::Agent;
                }
                let agent_cost =
                    AGENT_NS_PER_AGENT_OPINION * num_nodes as f64 * num_opinions as f64;
                let counting_cost =
                    COUNTING_NS_PER_CELL * (num_opinions * num_opinions) as f64;
                if agent_cost <= counting_cost {
                    ExecutionBackend::Agent
                } else {
                    ExecutionBackend::Counting
                }
            }
        }
    }
}

impl std::str::FromStr for ExecutionBackend {
    type Err = String;

    /// Parses `"agent"`, `"counting"`, `"blockcounting"` (also spelled
    /// `"block-counting"` or `"block"`) or `"auto"` (case-insensitive) —
    /// the spelling used by the experiment binaries' `--backend` flag.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "agent" => Ok(ExecutionBackend::Agent),
            "counting" => Ok(ExecutionBackend::Counting),
            "blockcounting" | "block-counting" | "block" => Ok(ExecutionBackend::BlockCounting),
            "auto" => Ok(ExecutionBackend::Auto),
            other => Err(format!(
                "unknown backend {other:?} (expected agent, counting, blockcounting or auto)"
            )),
        }
    }
}

/// The result of one protocol execution.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Outcome {
    correct_opinion: Opinion,
    final_distribution: OpinionDistribution,
    rounds: u64,
    messages: u64,
    phase_records: Vec<PhaseRecord>,
    memory: MemoryMeter,
}

impl Outcome {
    /// The correct opinion of the instance: the source's opinion for rumor
    /// spreading, the initial plurality opinion for plurality consensus.
    pub fn correct_opinion(&self) -> Opinion {
        self.correct_opinion
    }

    /// The opinion distribution at the end of the execution.
    pub fn final_distribution(&self) -> &OpinionDistribution {
        &self.final_distribution
    }

    /// `true` if every agent finished opinionated and supporting the same
    /// opinion (whichever it is).
    pub fn consensus_reached(&self) -> bool {
        self.final_distribution.is_consensus()
    }

    /// The final plurality opinion, if one exists (with consensus this is
    /// the unanimous opinion).
    pub fn winning_opinion(&self) -> Option<Opinion> {
        self.final_distribution.plurality()
    }

    /// `true` if the protocol succeeded: consensus was reached *on the
    /// correct opinion*.
    pub fn succeeded(&self) -> bool {
        self.final_distribution.is_consensus_on(self.correct_opinion)
    }

    /// Total number of rounds executed.
    pub fn rounds(&self) -> u64 {
        self.rounds
    }

    /// Total number of messages pushed.
    pub fn messages(&self) -> u64 {
        self.messages
    }

    /// Per-phase records, Stage 1 phases first.
    pub fn phase_records(&self) -> &[PhaseRecord] {
        &self.phase_records
    }

    /// The records of the given stage only.
    pub fn stage_records(&self, stage: StageId) -> impl Iterator<Item = &PhaseRecord> {
        self.phase_records.iter().filter(move |r| r.stage() == stage)
    }

    /// The bias towards the correct opinion at the end of every phase
    /// (`None` entries mean nobody was opinionated yet).
    pub fn bias_trajectory(&self) -> Vec<Option<f64>> {
        self.phase_records.iter().map(|r| r.bias_after()).collect()
    }

    /// The memory-accounting meter of the run.
    pub fn memory(&self) -> &MemoryMeter {
        &self.memory
    }
}

/// The two-stage noisy rumor-spreading / plurality-consensus protocol of
/// Fraigniaud & Natale (PODC 2016).
///
/// A `TwoStageProtocol` owns the run parameters and the noise matrix and can
/// execute independent runs (each run builds a fresh network seeded from the
/// parameters).
///
/// # Example
///
/// ```
/// use noisy_channel::NoiseMatrix;
/// use plurality_core::{ProtocolParams, TwoStageProtocol};
/// use pushsim::Opinion;
///
/// # fn main() -> Result<(), plurality_core::ProtocolError> {
/// let noise = NoiseMatrix::uniform(3, 0.3).expect("valid noise");
/// let params = ProtocolParams::builder(500, 3).epsilon(0.3).seed(1).build()?;
/// let protocol = TwoStageProtocol::new(params, noise)?;
/// let outcome = protocol.run_rumor_spreading(Opinion::new(2))?;
/// assert!(outcome.succeeded());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct TwoStageProtocol {
    params: ProtocolParams,
    noise: NoiseMatrix,
}

impl TwoStageProtocol {
    /// Creates a protocol instance.
    ///
    /// # Errors
    ///
    /// Returns [`ProtocolError::NoiseDimensionMismatch`] if the noise matrix
    /// is not over exactly `params.num_opinions()` opinions.
    pub fn new(params: ProtocolParams, noise: NoiseMatrix) -> Result<Self, ProtocolError> {
        if noise.num_opinions() != params.num_opinions() {
            return Err(ProtocolError::NoiseDimensionMismatch {
                expected: params.num_opinions(),
                found: noise.num_opinions(),
            });
        }
        Ok(Self { params, noise })
    }

    /// The run parameters.
    pub fn params(&self) -> &ProtocolParams {
        &self.params
    }

    /// The noise matrix applied to every message.
    pub fn noise(&self) -> &NoiseMatrix {
        &self.noise
    }

    /// Runs the noisy **rumor spreading** instance: a uniformly random
    /// source node initially holds `source_opinion`, every other node is
    /// undecided, and the protocol must drive the whole system to
    /// `source_opinion` (Theorem 1).
    ///
    /// # Errors
    ///
    /// Returns [`ProtocolError::OpinionOutOfRange`] if the opinion index is
    /// out of range, and propagates simulator errors.
    pub fn run_rumor_spreading(&self, source_opinion: Opinion) -> Result<Outcome, ProtocolError> {
        self.run_rumor_spreading_on(ExecutionBackend::Agent, source_opinion)
    }

    /// Runs the noisy rumor spreading instance on the chosen backend
    /// ([`ExecutionBackend::Auto`] resolves per
    /// [`ExecutionBackend::resolve`]).
    ///
    /// # Errors
    ///
    /// Same as [`run_rumor_spreading`](Self::run_rumor_spreading).
    pub fn run_rumor_spreading_on(
        &self,
        backend: ExecutionBackend,
        source_opinion: Opinion,
    ) -> Result<Outcome, ProtocolError> {
        self.session()
            .run_rumor_spreading_on(backend, source_opinion, &mut NoObserver)
    }

    /// Starts an observable [`Session`] over this protocol: attach
    /// [`Observer`]s and a [`StopCondition`] to its run methods. The
    /// default session (no observer, no stop condition) executes exactly
    /// like the plain `run_*` entry points.
    pub fn session(&self) -> Session<'_> {
        Session {
            protocol: self,
            stop: StopCondition::ScheduleExhausted,
        }
    }

    /// Seeds and runs a rumor-spreading instance on an already-built
    /// backend network.
    fn run_rumor_spreading_generic<B: PushBackend>(
        &self,
        mut net: B,
        source_opinion: Opinion,
        observer: &mut dyn Observer,
        stop: &StopCondition,
    ) -> Result<Outcome, ProtocolError> {
        let mut rng = self.protocol_rng();
        let source = rng.gen_range(0..self.params.num_nodes());
        net.seed_rumor_at(source, source_opinion)?;
        Ok(self.execute(net, rng, source_opinion, observer, stop))
    }

    /// Runs the noisy **plurality consensus** instance: for every opinion
    /// `i`, `initial_counts[i]` nodes initially support `i` (chosen uniformly
    /// at random), the remaining nodes are undecided, and the protocol must
    /// drive the whole system to the plurality opinion (Theorem 2).
    ///
    /// # Errors
    ///
    /// * [`ProtocolError::BadInitialCounts`] if the counts have the wrong
    ///   length, sum to more than `n`, are all zero, or have no unique
    ///   plurality opinion.
    /// * Simulator errors are propagated as [`ProtocolError::Simulation`].
    pub fn run_plurality_consensus(
        &self,
        initial_counts: &[usize],
    ) -> Result<Outcome, ProtocolError> {
        self.run_plurality_consensus_on(ExecutionBackend::Agent, initial_counts)
    }

    /// Runs the noisy plurality consensus instance on the chosen backend
    /// ([`ExecutionBackend::Auto`] resolves per
    /// [`ExecutionBackend::resolve`]).
    ///
    /// # Errors
    ///
    /// Same as [`run_plurality_consensus`](Self::run_plurality_consensus).
    pub fn run_plurality_consensus_on(
        &self,
        backend: ExecutionBackend,
        initial_counts: &[usize],
    ) -> Result<Outcome, ProtocolError> {
        self.session()
            .run_plurality_consensus_on(backend, initial_counts, &mut NoObserver)
    }

    /// Seeds and runs a plurality-consensus instance on an already-built
    /// backend network.
    fn run_plurality_generic<B: PushBackend>(
        &self,
        mut net: B,
        initial_counts: &[usize],
        reference: Opinion,
        observer: &mut dyn Observer,
        stop: &StopCondition,
    ) -> Result<Outcome, ProtocolError> {
        let rng = self.protocol_rng();
        net.seed_counts(initial_counts)?;
        Ok(self.execute(net, rng, reference, observer, stop))
    }

    /// Runs only Stage 2 on an explicitly seeded network. This is the
    /// "majority consensus subroutine" view of the protocol and is used by
    /// the Appendix D experiment (F7), where Stage 1 is deliberately
    /// skipped.
    ///
    /// # Errors
    ///
    /// Returns [`ProtocolError::BadInitialCounts`] under the same conditions
    /// as [`run_plurality_consensus`](Self::run_plurality_consensus).
    pub fn run_stage2_only(&self, initial_counts: &[usize]) -> Result<Outcome, ProtocolError> {
        self.run_stage2_only_on(ExecutionBackend::Agent, initial_counts)
    }

    /// Runs only Stage 2 on the chosen backend.
    ///
    /// # Errors
    ///
    /// Same as [`run_stage2_only`](Self::run_stage2_only).
    pub fn run_stage2_only_on(
        &self,
        backend: ExecutionBackend,
        initial_counts: &[usize],
    ) -> Result<Outcome, ProtocolError> {
        self.session()
            .run_stage2_only_on(backend, initial_counts, &mut NoObserver)
    }

    /// Resolves `backend` and runs the matching continuation on a freshly
    /// built network of the chosen kind — the single place the
    /// `ExecutionBackend` enum is matched on. Each continuation is usually
    /// the same generic function, monomorphized per backend; the observer
    /// is handed through so the closures can share the one `&mut`
    /// borrow. A future fourth backend adds one arm here instead of one
    /// per entry point.
    fn dispatch<T>(
        &self,
        backend: ExecutionBackend,
        observer: &mut dyn Observer,
        agent: impl FnOnce(Network, &mut dyn Observer) -> Result<T, ProtocolError>,
        counting: impl FnOnce(CountingNetwork, &mut dyn Observer) -> Result<T, ProtocolError>,
        block: impl FnOnce(BlockCountingNetwork, &mut dyn Observer) -> Result<T, ProtocolError>,
    ) -> Result<T, ProtocolError> {
        match self.resolve(backend) {
            ExecutionBackend::Agent => agent(self.build_network()?, observer),
            ExecutionBackend::Counting => counting(self.build_counting_network()?, observer),
            ExecutionBackend::BlockCounting => {
                block(self.build_block_counting_network()?, observer)
            }
            ExecutionBackend::Auto => unreachable!("resolve never returns Auto"),
        }
    }

    fn run_stage2_generic<B: PushBackend>(
        &self,
        mut net: B,
        initial_counts: &[usize],
        reference: Opinion,
        observer: &mut dyn Observer,
        stop: &StopCondition,
    ) -> Result<Outcome, ProtocolError> {
        let mut rng = self.protocol_rng();
        net.seed_counts(initial_counts)?;
        let schedule = self.params.schedule();
        let mut meter = MemoryMeter::new(self.params.num_opinions());
        let mut progress = RunProgress::for_stop(stop);
        progress.sync(0, net.is_consensus());
        let records = stage2::run(
            &mut net,
            schedule.stage2_sample_sizes(),
            reference,
            &mut rng,
            &mut meter,
            observer,
            stop,
            &mut progress,
        );
        let outcome = self.outcome_from(net, records, meter, reference);
        observer.on_finish();
        Ok(outcome)
    }

    /// Resolves an [`ExecutionBackend`] request against this protocol's
    /// parameters (see [`ExecutionBackend::resolve`]).
    pub fn resolve(&self, backend: ExecutionBackend) -> ExecutionBackend {
        backend.resolve(
            self.params.num_nodes(),
            self.params.num_opinions(),
            self.params.delivery(),
            self.params.topology(),
            self.params.fault(),
            self.params.churn(),
            self.params.clock(),
        )
    }

    /// Validates plurality-instance initial counts and returns the unique
    /// plurality opinion (the run's reference).
    ///
    /// Public so callers that assemble runs from external data (the
    /// experiment harness's scenario specs) can surface the same
    /// validation as a recoverable error instead of reaching the
    /// `run_*` entry points with inputs they will reject.
    ///
    /// # Errors
    ///
    /// [`ProtocolError::BadInitialCounts`] unless `initial_counts` has
    /// exactly `k` entries, sums to something in `1..=n`, and has a unique
    /// maximum (the plurality opinion the run measures success against).
    pub fn validate_initial_counts(
        &self,
        initial_counts: &[usize],
    ) -> Result<Opinion, ProtocolError> {
        let k = self.params.num_opinions();
        let n = self.params.num_nodes();
        if initial_counts.len() != k {
            return Err(ProtocolError::BadInitialCounts {
                reason: format!("expected {k} counts, got {}", initial_counts.len()),
            });
        }
        let total: usize = initial_counts.iter().sum();
        if total == 0 {
            return Err(ProtocolError::BadInitialCounts {
                reason: "at least one node must hold an opinion".to_string(),
            });
        }
        if total > n {
            return Err(ProtocolError::BadInitialCounts {
                reason: format!("counts sum to {total} but the network has only {n} nodes"),
            });
        }
        let max = *initial_counts.iter().max().expect("non-empty counts");
        let plurality: Vec<usize> = (0..k).filter(|&i| initial_counts[i] == max).collect();
        if plurality.len() != 1 {
            return Err(ProtocolError::BadInitialCounts {
                reason: "the plurality opinion must be unique".to_string(),
            });
        }
        Ok(Opinion::new(plurality[0]))
    }

    /// The run's [`SimConfig`], shared by all three network builders (the
    /// single place the protocol parameters map onto simulator knobs).
    fn sim_config(&self) -> Result<SimConfig, ProtocolError> {
        Ok(SimConfig::builder(self.params.num_nodes(), self.params.num_opinions())
            .seed(self.params.seed())
            .delivery(self.params.delivery())
            .topology(self.params.topology())
            .fault(self.params.fault())
            .churn(self.params.churn())
            .schedule(self.params.noise_schedule())
            .clock(self.params.clock())
            .build()?)
    }

    /// Builds the simulation network for one run.
    fn build_network(&self) -> Result<Network, ProtocolError> {
        Ok(Network::new(self.sim_config()?, self.noise.clone())?)
    }

    /// Builds the count-based network for one run.
    fn build_counting_network(&self) -> Result<CountingNetwork, ProtocolError> {
        Ok(CountingNetwork::new(self.sim_config()?, self.noise.clone())?)
    }

    /// Builds the degree-class block-counting network for one run.
    fn build_block_counting_network(&self) -> Result<BlockCountingNetwork, ProtocolError> {
        Ok(BlockCountingNetwork::new(self.sim_config()?, self.noise.clone())?)
    }

    /// The RNG used for the protocol's own decisions (distinct from the
    /// network's delivery RNG but derived from the same seed so whole runs
    /// are reproducible).
    fn protocol_rng(&self) -> StdRng {
        StdRng::seed_from_u64(self.params.seed().wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ 0x5DEE_CE66)
    }

    /// Runs both stages on an already-seeded network — the single generic
    /// execution path shared by every backend. The observer is notified at
    /// every phase boundary and the stop condition is evaluated there;
    /// with [`NoObserver`] and
    /// [`StopCondition::ScheduleExhausted`] this is byte-for-byte the
    /// schedule-driven execution (observation touches no RNG stream).
    fn execute<B: PushBackend>(
        &self,
        mut net: B,
        mut rng: StdRng,
        reference: Opinion,
        observer: &mut dyn Observer,
        stop: &StopCondition,
    ) -> Outcome {
        let schedule = self.params.schedule();
        let mut meter = MemoryMeter::new(self.params.num_opinions());
        let mut progress = RunProgress::for_stop(stop);
        progress.sync(0, net.is_consensus());
        let mut records = stage1::run(
            &mut net,
            schedule.stage1_phase_lengths(),
            reference,
            &mut rng,
            &mut meter,
            observer,
            stop,
            &mut progress,
        );
        if !stop.should_stop(&progress) {
            observer.on_stage_transition(StageId::One, StageId::Two);
        }
        records.extend(stage2::run(
            &mut net,
            schedule.stage2_sample_sizes(),
            reference,
            &mut rng,
            &mut meter,
            observer,
            stop,
            &mut progress,
        ));
        let outcome = self.outcome_from(net, records, meter, reference);
        observer.on_finish();
        outcome
    }

    fn outcome_from<B: PushBackend>(
        &self,
        net: B,
        records: Vec<PhaseRecord>,
        memory: MemoryMeter,
        reference: Opinion,
    ) -> Outcome {
        Outcome {
            correct_opinion: reference,
            final_distribution: net.distribution(),
            rounds: net.rounds_executed(),
            messages: net.messages_sent(),
            phase_records: records,
            memory,
        }
    }
}

/// An observable execution of a [`TwoStageProtocol`]: the same run entry
/// points, plus an [`Observer`] parameter and a configurable
/// [`StopCondition`].
///
/// Built with [`TwoStageProtocol::session`]. A default session (no stop
/// condition) with [`NoObserver`] executes bit-for-bit like the plain
/// `run_*` methods — observation never touches an RNG stream, and the
/// default stop condition runs the complete schedule.
///
/// # Example
///
/// ```
/// use noisy_channel::NoiseMatrix;
/// use plurality_core::{
///     Observer, PhaseSnapshot, ProtocolParams, StopCondition, TwoStageProtocol,
/// };
/// use plurality_core::ExecutionBackend;
/// use pushsim::Opinion;
///
/// #[derive(Default)]
/// struct BiasTrace(Vec<Option<f64>>);
/// impl Observer for BiasTrace {
///     fn on_phase_end(&mut self, snapshot: &PhaseSnapshot) {
///         self.0.push(snapshot.bias());
///     }
/// }
///
/// # fn main() -> Result<(), plurality_core::ProtocolError> {
/// let noise = NoiseMatrix::uniform(2, 0.35).expect("valid noise");
/// let params = ProtocolParams::builder(500, 2).epsilon(0.35).seed(1).build()?;
/// let protocol = TwoStageProtocol::new(params, noise)?;
/// let mut trace = BiasTrace::default();
/// let outcome = protocol
///     .session()
///     .stop_when(StopCondition::ConsensusReached)
///     .run_rumor_spreading_on(ExecutionBackend::Auto, Opinion::new(0), &mut trace)?;
/// assert_eq!(trace.0.len(), outcome.phase_records().len());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Session<'p> {
    protocol: &'p TwoStageProtocol,
    stop: StopCondition,
}

impl Session<'_> {
    /// Sets the session's stop condition (evaluated at phase boundaries;
    /// the default, [`StopCondition::ScheduleExhausted`], never stops
    /// early).
    #[must_use]
    pub fn stop_when(mut self, stop: StopCondition) -> Self {
        self.stop = stop;
        self
    }

    /// The session's stop condition.
    pub fn stop(&self) -> &StopCondition {
        &self.stop
    }

    /// The protocol this session runs.
    pub fn protocol(&self) -> &TwoStageProtocol {
        self.protocol
    }

    /// Observable variant of
    /// [`TwoStageProtocol::run_rumor_spreading_on`]: `observer` is
    /// notified at every phase boundary and the session's stop condition
    /// may end the run early.
    ///
    /// # Errors
    ///
    /// Same as [`TwoStageProtocol::run_rumor_spreading`].
    pub fn run_rumor_spreading_on(
        &self,
        backend: ExecutionBackend,
        source_opinion: Opinion,
        observer: &mut dyn Observer,
    ) -> Result<Outcome, ProtocolError> {
        let protocol = self.protocol;
        if source_opinion.index() >= protocol.params.num_opinions() {
            return Err(ProtocolError::OpinionOutOfRange {
                opinion: source_opinion.index(),
                num_opinions: protocol.params.num_opinions(),
            });
        }
        protocol.dispatch(
            backend,
            observer,
            |net, observer| {
                protocol.run_rumor_spreading_generic(net, source_opinion, observer, &self.stop)
            },
            |net, observer| {
                protocol.run_rumor_spreading_generic(net, source_opinion, observer, &self.stop)
            },
            |net, observer| {
                protocol.run_rumor_spreading_generic(net, source_opinion, observer, &self.stop)
            },
        )
    }

    /// Observable variant of
    /// [`TwoStageProtocol::run_plurality_consensus_on`].
    ///
    /// # Errors
    ///
    /// Same as [`TwoStageProtocol::run_plurality_consensus`].
    pub fn run_plurality_consensus_on(
        &self,
        backend: ExecutionBackend,
        initial_counts: &[usize],
        observer: &mut dyn Observer,
    ) -> Result<Outcome, ProtocolError> {
        let protocol = self.protocol;
        let reference = protocol.validate_initial_counts(initial_counts)?;
        protocol.dispatch(
            backend,
            observer,
            |net, observer| {
                protocol.run_plurality_generic(net, initial_counts, reference, observer, &self.stop)
            },
            |net, observer| {
                protocol.run_plurality_generic(net, initial_counts, reference, observer, &self.stop)
            },
            |net, observer| {
                protocol.run_plurality_generic(net, initial_counts, reference, observer, &self.stop)
            },
        )
    }

    /// Observable variant of [`TwoStageProtocol::run_stage2_only_on`].
    ///
    /// # Errors
    ///
    /// Same as [`TwoStageProtocol::run_stage2_only`].
    pub fn run_stage2_only_on(
        &self,
        backend: ExecutionBackend,
        initial_counts: &[usize],
        observer: &mut dyn Observer,
    ) -> Result<Outcome, ProtocolError> {
        let protocol = self.protocol;
        let reference = protocol.validate_initial_counts(initial_counts)?;
        protocol.dispatch(
            backend,
            observer,
            |net, observer| {
                protocol.run_stage2_generic(net, initial_counts, reference, observer, &self.stop)
            },
            |net, observer| {
                protocol.run_stage2_generic(net, initial_counts, reference, observer, &self.stop)
            },
            |net, observer| {
                protocol.run_stage2_generic(net, initial_counts, reference, observer, &self.stop)
            },
        )
    }
}

/// Convenience wrapper: runs noisy rumor spreading with the source holding
/// opinion 0.
///
/// # Errors
///
/// Propagates [`TwoStageProtocol::new`] and
/// [`TwoStageProtocol::run_rumor_spreading`] errors.
pub fn run_rumor_spreading(
    params: &ProtocolParams,
    noise: &NoiseMatrix,
) -> Result<Outcome, ProtocolError> {
    TwoStageProtocol::new(params.clone(), noise.clone())?.run_rumor_spreading(Opinion::new(0))
}

/// Convenience wrapper: runs noisy plurality consensus from the given
/// initial counts.
///
/// # Errors
///
/// Propagates [`TwoStageProtocol::new`] and
/// [`TwoStageProtocol::run_plurality_consensus`] errors.
pub fn run_plurality_consensus(
    params: &ProtocolParams,
    noise: &NoiseMatrix,
    initial_counts: &[usize],
) -> Result<Outcome, ProtocolError> {
    TwoStageProtocol::new(params.clone(), noise.clone())?.run_plurality_consensus(initial_counts)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::ProtocolConstants;

    fn uniform_noise(k: usize, eps: f64) -> NoiseMatrix {
        NoiseMatrix::uniform(k, eps).unwrap()
    }

    #[test]
    fn rumor_spreading_succeeds_with_three_opinions() {
        let eps = 0.35;
        let params = ProtocolParams::builder(600, 3)
            .epsilon(eps)
            .seed(42)
            .build()
            .unwrap();
        let protocol = TwoStageProtocol::new(params, uniform_noise(3, eps)).unwrap();
        let outcome = protocol.run_rumor_spreading(Opinion::new(1)).unwrap();
        assert!(outcome.consensus_reached());
        assert!(outcome.succeeded(), "final: {}", outcome.final_distribution());
        assert_eq!(outcome.winning_opinion(), Some(Opinion::new(1)));
        assert_eq!(outcome.correct_opinion(), Opinion::new(1));
        assert!(outcome.rounds() > 0);
        assert!(outcome.messages() > 0);
        assert!(!outcome.phase_records().is_empty());
        assert!(outcome.memory().bits_per_node() > 0);
    }

    #[test]
    fn plurality_consensus_recovers_the_initial_plurality() {
        let eps = 0.35;
        let params = ProtocolParams::builder(600, 3)
            .epsilon(eps)
            .seed(7)
            .build()
            .unwrap();
        let protocol = TwoStageProtocol::new(params, uniform_noise(3, eps)).unwrap();
        // Opinion 2 holds the plurality (but not the absolute majority).
        let outcome = protocol.run_plurality_consensus(&[180, 150, 270]).unwrap();
        assert!(outcome.succeeded(), "final: {}", outcome.final_distribution());
        assert_eq!(outcome.winning_opinion(), Some(Opinion::new(2)));
    }

    #[test]
    fn stage_records_are_split_correctly() {
        let eps = 0.4;
        let params = ProtocolParams::builder(300, 2)
            .epsilon(eps)
            .seed(3)
            .build()
            .unwrap();
        let schedule = params.schedule();
        let protocol = TwoStageProtocol::new(params, uniform_noise(2, eps)).unwrap();
        let outcome = protocol.run_rumor_spreading(Opinion::new(0)).unwrap();
        let stage1_count = outcome.stage_records(StageId::One).count();
        let stage2_count = outcome.stage_records(StageId::Two).count();
        assert_eq!(stage1_count, schedule.stage1_phases());
        assert_eq!(stage2_count, schedule.stage2_phases());
        assert_eq!(
            outcome.phase_records().len(),
            stage1_count + stage2_count
        );
        assert_eq!(outcome.bias_trajectory().len(), outcome.phase_records().len());
    }

    #[test]
    fn invalid_inputs_are_rejected() {
        let params = ProtocolParams::builder(100, 3).epsilon(0.3).build().unwrap();
        let protocol = TwoStageProtocol::new(params.clone(), uniform_noise(3, 0.3)).unwrap();
        assert!(matches!(
            protocol.run_rumor_spreading(Opinion::new(5)),
            Err(ProtocolError::OpinionOutOfRange { .. })
        ));
        assert!(matches!(
            protocol.run_plurality_consensus(&[1, 2]),
            Err(ProtocolError::BadInitialCounts { .. })
        ));
        assert!(matches!(
            protocol.run_plurality_consensus(&[0, 0, 0]),
            Err(ProtocolError::BadInitialCounts { .. })
        ));
        assert!(matches!(
            protocol.run_plurality_consensus(&[50, 50, 0]),
            Err(ProtocolError::BadInitialCounts { .. })
        ));
        assert!(matches!(
            protocol.run_plurality_consensus(&[200, 1, 0]),
            Err(ProtocolError::BadInitialCounts { .. })
        ));
        assert!(matches!(
            TwoStageProtocol::new(params, uniform_noise(4, 0.3)),
            Err(ProtocolError::NoiseDimensionMismatch { .. })
        ));
    }

    #[test]
    fn counting_backend_solves_plurality_consensus() {
        let eps = 0.35;
        let params = ProtocolParams::builder(600, 3)
            .epsilon(eps)
            .seed(7)
            .build()
            .unwrap();
        let protocol = TwoStageProtocol::new(params, uniform_noise(3, eps)).unwrap();
        let outcome = protocol
            .run_plurality_consensus_on(ExecutionBackend::Counting, &[180, 150, 270])
            .unwrap();
        assert!(outcome.succeeded(), "final: {}", outcome.final_distribution());
        assert_eq!(outcome.winning_opinion(), Some(Opinion::new(2)));
        assert_eq!(outcome.final_distribution().num_nodes(), 600);
        assert!(outcome.rounds() > 0);
        assert!(!outcome.phase_records().is_empty());
    }

    #[test]
    fn counting_backend_solves_rumor_spreading() {
        let eps = 0.35;
        let params = ProtocolParams::builder(600, 3)
            .epsilon(eps)
            .seed(42)
            .build()
            .unwrap();
        let protocol = TwoStageProtocol::new(params, uniform_noise(3, eps)).unwrap();
        let outcome = protocol
            .run_rumor_spreading_on(ExecutionBackend::Counting, Opinion::new(1))
            .unwrap();
        assert!(outcome.succeeded(), "final: {}", outcome.final_distribution());
    }

    #[test]
    fn counting_backend_is_reproducible_per_seed() {
        let make = || {
            let params = ProtocolParams::builder(1_000, 2)
                .epsilon(0.4)
                .seed(99)
                .build()
                .unwrap();
            TwoStageProtocol::new(params, uniform_noise(2, 0.4))
                .unwrap()
                .run_plurality_consensus_on(ExecutionBackend::Counting, &[600, 300])
                .unwrap()
        };
        let a = make();
        let b = make();
        assert_eq!(a.final_distribution(), b.final_distribution());
        assert_eq!(a.bias_trajectory(), b.bias_trajectory());
    }

    #[test]
    fn auto_resolution_preserves_the_requested_semantics() {
        use pushsim::DeliverySemantics::{BallsIntoBins, Exact, Poissonized};
        let complete = TopologySpec::Complete;
        let no_fault = FaultSpec::none();
        let no_churn = ChurnSpec::none();
        let sync = ClockSpec::sync();
        // Exact-semantics requests (processes O and B) stay agent-level at
        // *every* scale: the counting backend only implements process P,
        // so resolving them to it would change the delivery law, not just
        // the speed. (The historical policy did exactly that above
        // n = 10⁵.)
        assert_eq!(
            ExecutionBackend::Auto.resolve(1_000, 3, Exact, complete, no_fault, no_churn, sync),
            ExecutionBackend::Agent
        );
        assert_eq!(
            ExecutionBackend::Auto.resolve(10_000_000, 3, Exact, complete, no_fault, no_churn, sync),
            ExecutionBackend::Agent
        );
        assert_eq!(
            ExecutionBackend::Auto.resolve(50_000, 4, BallsIntoBins, complete, no_fault, no_churn, sync),
            ExecutionBackend::Agent
        );
        // Process P is native to the counting backend: the cost model picks
        // counting as soon as n·k message work exceeds k² draw work.
        assert_eq!(
            ExecutionBackend::Auto.resolve(10_000, 3, Poissonized, complete, no_fault, no_churn, sync),
            ExecutionBackend::Counting
        );
        assert_eq!(
            ExecutionBackend::Auto.resolve(30, 3, Poissonized, complete, no_fault, no_churn, sync),
            ExecutionBackend::Agent
        );
        // Non-complete topologies with exact delivery run agent-level,
        // whatever the scale — the count-based backends only implement
        // process P.
        assert_eq!(
            ExecutionBackend::Auto.resolve(10_000_000, 3, Exact, TopologySpec::Ring, no_fault, no_churn, sync),
            ExecutionBackend::Agent
        );
        // Poissonized runs on sparse vertex-transitive topologies resolve
        // to the block-counting backend — the only engine implementing
        // process P on those graphs — at every scale.
        for spec in [
            TopologySpec::Ring,
            TopologySpec::Torus2D,
            TopologySpec::RandomRegular { degree: 8 },
        ] {
            assert_eq!(
                ExecutionBackend::Auto.resolve(30, 3, Poissonized, spec, no_fault, no_churn, sync),
                ExecutionBackend::BlockCounting
            );
            assert_eq!(
                ExecutionBackend::Auto.resolve(10_000_000, 3, Poissonized, spec, no_fault, no_churn, sync),
                ExecutionBackend::BlockCounting
            );
        }
        // Erdős–Rényi is outside the block-counting backend's certified
        // capability (degree-inhomogeneous), so Auto falls back to Agent,
        // and any enabled fault keeps sparse runs agent-level too.
        assert_eq!(
            ExecutionBackend::Auto.resolve(
                10_000,
                3,
                Poissonized,
                TopologySpec::ErdosRenyi { p: 0.1 },
                no_fault,
                no_churn,
                sync
            ),
            ExecutionBackend::Agent
        );
        let dropper: FaultSpec = "drop(0.1)".parse().unwrap();
        assert_eq!(
            ExecutionBackend::Auto.resolve(10_000, 3, Poissonized, TopologySpec::Ring, dropper, no_churn, sync),
            ExecutionBackend::Agent
        );
        // Aggregatable faults keep the counting backend eligible; delayed
        // delivery forces the agent backend, which buffers real messages.
        let aggregatable: FaultSpec = "drop(0.1)+byz(0.05:0)".parse().unwrap();
        assert_eq!(
            ExecutionBackend::Auto.resolve(10_000, 3, Poissonized, complete, aggregatable, no_churn, sync),
            ExecutionBackend::Counting
        );
        let delayed: FaultSpec = "delay(0.2)".parse().unwrap();
        assert_eq!(
            ExecutionBackend::Auto.resolve(10_000, 3, Poissonized, complete, delayed, no_churn, sync),
            ExecutionBackend::Agent
        );
        // Per-agent temporal axes force the agent backend on every
        // topology; the aggregate axes (population churn, schedules) do
        // not change the resolution.
        let skew: ClockSpec = "skew(0.1)".parse().unwrap();
        assert_eq!(
            ExecutionBackend::Auto.resolve(10_000, 3, Poissonized, complete, no_fault, no_churn, skew),
            ExecutionBackend::Agent
        );
        let rewire: ChurnSpec = "rewire(0.5)".parse().unwrap();
        assert_eq!(
            ExecutionBackend::Auto.resolve(
                10_000,
                3,
                Poissonized,
                TopologySpec::RandomRegular { degree: 8 },
                no_fault,
                rewire,
                sync
            ),
            ExecutionBackend::Agent
        );
        let population: ChurnSpec = "join(0.01)+leave(0.01)".parse().unwrap();
        assert_eq!(
            ExecutionBackend::Auto.resolve(10_000, 3, Poissonized, complete, no_fault, population, sync),
            ExecutionBackend::Counting
        );
        // Explicit requests are never overridden.
        assert_eq!(
            ExecutionBackend::Agent.resolve(10_000_000, 3, Exact, complete, no_fault, no_churn, sync),
            ExecutionBackend::Agent
        );
        assert_eq!(
            ExecutionBackend::Counting.resolve(10, 2, Exact, complete, no_fault, no_churn, sync),
            ExecutionBackend::Counting
        );
        assert_eq!(
            ExecutionBackend::BlockCounting.resolve(10, 2, Exact, complete, no_fault, no_churn, sync),
            ExecutionBackend::BlockCounting
        );
    }

    #[test]
    fn sparse_topology_runs_resolve_to_agent_and_solve_rumor_spreading() {
        // End-to-end: the protocol runs on a random-regular graph through
        // Auto, which must resolve to the agent backend.
        let eps = 0.35;
        let params = ProtocolParams::builder(400, 2)
            .epsilon(eps)
            .seed(13)
            .topology(TopologySpec::RandomRegular { degree: 8 })
            .build()
            .unwrap();
        let protocol = TwoStageProtocol::new(params, uniform_noise(2, eps)).unwrap();
        assert_eq!(
            protocol.resolve(ExecutionBackend::Auto),
            ExecutionBackend::Agent
        );
        let outcome = protocol
            .run_rumor_spreading_on(ExecutionBackend::Auto, Opinion::new(0))
            .unwrap();
        assert!(outcome.rounds() > 0);
        assert_eq!(outcome.final_distribution().num_nodes(), 400);
        // An explicit counting request on a sparse topology fails loudly
        // instead of silently switching semantics.
        let err = protocol
            .run_rumor_spreading_on(ExecutionBackend::Counting, Opinion::new(0))
            .unwrap_err();
        assert!(
            matches!(&err, ProtocolError::Simulation(msg) if msg.contains("topology")),
            "expected an unsupported-topology error, got {err}"
        );
    }

    #[test]
    fn backend_parses_from_str() {
        assert_eq!("agent".parse(), Ok(ExecutionBackend::Agent));
        assert_eq!("Counting".parse(), Ok(ExecutionBackend::Counting));
        assert_eq!("blockcounting".parse(), Ok(ExecutionBackend::BlockCounting));
        assert_eq!("Block-Counting".parse(), Ok(ExecutionBackend::BlockCounting));
        assert_eq!("block".parse(), Ok(ExecutionBackend::BlockCounting));
        assert_eq!("AUTO".parse(), Ok(ExecutionBackend::Auto));
        assert!("gpu".parse::<ExecutionBackend>().is_err());
    }

    #[test]
    fn auto_matches_the_backend_it_delegates_to_bit_for_bit() {
        // Auto is a front door, not a third execution path: at a fixed seed
        // its outcome must be identical to running the resolved backend
        // explicitly — on both sides of the policy boundary.
        let eps = 0.35;
        // Small exact run: Auto resolves to Agent.
        let params = ProtocolParams::builder(500, 3)
            .epsilon(eps)
            .seed(33)
            .build()
            .unwrap();
        let protocol = TwoStageProtocol::new(params, uniform_noise(3, eps)).unwrap();
        assert_eq!(
            protocol.resolve(ExecutionBackend::Auto),
            ExecutionBackend::Agent
        );
        let auto = protocol
            .run_plurality_consensus_on(ExecutionBackend::Auto, &[200, 150, 100])
            .unwrap();
        let agent = protocol
            .run_plurality_consensus_on(ExecutionBackend::Agent, &[200, 150, 100])
            .unwrap();
        assert_eq!(auto, agent);

        // Poissonized run: Auto resolves to Counting.
        let params = ProtocolParams::builder(5_000, 3)
            .epsilon(eps)
            .seed(34)
            .delivery(pushsim::DeliverySemantics::Poissonized)
            .build()
            .unwrap();
        let protocol = TwoStageProtocol::new(params, uniform_noise(3, eps)).unwrap();
        assert_eq!(
            protocol.resolve(ExecutionBackend::Auto),
            ExecutionBackend::Counting
        );
        let auto = protocol
            .run_rumor_spreading_on(ExecutionBackend::Auto, Opinion::new(1))
            .unwrap();
        let counting = protocol
            .run_rumor_spreading_on(ExecutionBackend::Counting, Opinion::new(1))
            .unwrap();
        assert_eq!(auto, counting);

        // Sparse Poissonized run: Auto resolves to BlockCounting.
        let params = ProtocolParams::builder(2_000, 3)
            .epsilon(eps)
            .seed(35)
            .delivery(pushsim::DeliverySemantics::Poissonized)
            .topology(TopologySpec::RandomRegular { degree: 8 })
            .build()
            .unwrap();
        let protocol = TwoStageProtocol::new(params, uniform_noise(3, eps)).unwrap();
        assert_eq!(
            protocol.resolve(ExecutionBackend::Auto),
            ExecutionBackend::BlockCounting
        );
        let auto = protocol
            .run_plurality_consensus_on(ExecutionBackend::Auto, &[700, 500, 300])
            .unwrap();
        let block = protocol
            .run_plurality_consensus_on(ExecutionBackend::BlockCounting, &[700, 500, 300])
            .unwrap();
        assert_eq!(auto, block);
    }

    #[test]
    fn block_counting_backend_solves_sparse_poissonized_instances() {
        // End-to-end on every certified sparse family: the generic
        // two-stage protocol stack drives the block-counting backend to
        // consensus under Poissonized delivery.
        let eps = 0.35;
        for topology in [
            TopologySpec::Ring,
            TopologySpec::Torus2D, // 1600 = 40²
            TopologySpec::RandomRegular { degree: 8 },
        ] {
            let params = ProtocolParams::builder(1_600, 3)
                .epsilon(eps)
                .seed(77)
                .delivery(pushsim::DeliverySemantics::Poissonized)
                .topology(topology)
                .build()
                .unwrap();
            let protocol = TwoStageProtocol::new(params, uniform_noise(3, eps)).unwrap();
            let outcome = protocol
                .run_plurality_consensus_on(ExecutionBackend::BlockCounting, &[700, 500, 300])
                .unwrap();
            assert!(
                outcome.consensus_reached(),
                "no consensus on {topology:?}: {}",
                outcome.final_distribution()
            );
            assert_eq!(outcome.final_distribution().num_nodes(), 1_600);
            assert!(outcome.rounds() > 0);
            assert!(!outcome.phase_records().is_empty());
        }
    }

    #[test]
    fn plateau_stop_with_an_oversized_window_runs_the_full_schedule() {
        let eps = 0.35;
        let params = ProtocolParams::builder(400, 2)
            .epsilon(eps)
            .seed(17)
            .build()
            .unwrap();
        let schedule_rounds = params.schedule().total_rounds();
        let protocol = TwoStageProtocol::new(params, uniform_noise(2, eps)).unwrap();
        let plain = protocol.run_rumor_spreading(Opinion::new(0)).unwrap();
        // A plateau window longer than the whole run can never accumulate
        // enough history: the session must behave exactly like the
        // stop-free run, not stall or stop early.
        let stopped = protocol
            .session()
            .stop_when(StopCondition::Plateau {
                window: 100_000,
                tolerance: 1.0,
            })
            .run_rumor_spreading_on(
                ExecutionBackend::Agent,
                Opinion::new(0),
                &mut NoObserver,
            )
            .unwrap();
        assert_eq!(stopped.rounds(), schedule_rounds);
        assert_eq!(stopped, plain);
    }

    #[test]
    fn stage2_only_runs_on_the_counting_backend_too() {
        let eps = 0.35;
        let params = ProtocolParams::builder(500, 2)
            .epsilon(eps)
            .seed(21)
            .build()
            .unwrap();
        let protocol = TwoStageProtocol::new(params, uniform_noise(2, eps)).unwrap();
        let outcome = protocol
            .run_stage2_only_on(ExecutionBackend::Counting, &[300, 200])
            .unwrap();
        assert!(outcome.succeeded(), "final: {}", outcome.final_distribution());
        assert_eq!(outcome.final_distribution().num_nodes(), 500);
    }

    #[test]
    fn runs_are_reproducible_for_a_fixed_seed() {
        let eps = 0.4;
        let make = || {
            let params = ProtocolParams::builder(300, 2)
                .epsilon(eps)
                .seed(99)
                .build()
                .unwrap();
            TwoStageProtocol::new(params, uniform_noise(2, eps))
                .unwrap()
                .run_rumor_spreading(Opinion::new(0))
                .unwrap()
        };
        let a = make();
        let b = make();
        assert_eq!(a.final_distribution(), b.final_distribution());
        assert_eq!(a.rounds(), b.rounds());
        assert_eq!(a.messages(), b.messages());
        assert_eq!(a.bias_trajectory(), b.bias_trajectory());
    }

    #[test]
    fn stage2_only_solves_an_already_biased_instance() {
        let eps = 0.35;
        let params = ProtocolParams::builder(500, 2)
            .epsilon(eps)
            .seed(21)
            .build()
            .unwrap();
        let protocol = TwoStageProtocol::new(params, uniform_noise(2, eps)).unwrap();
        let outcome = protocol.run_stage2_only(&[300, 200]).unwrap();
        assert!(outcome.succeeded(), "final: {}", outcome.final_distribution());
    }

    #[test]
    fn free_functions_mirror_protocol_methods() {
        let eps = 0.4;
        let params = ProtocolParams::builder(300, 2).epsilon(eps).seed(5).build().unwrap();
        let noise = uniform_noise(2, eps);
        let rumor = run_rumor_spreading(&params, &noise).unwrap();
        assert_eq!(rumor.correct_opinion(), Opinion::new(0));
        let plurality = run_plurality_consensus(&params, &noise, &[150, 100]).unwrap();
        assert_eq!(plurality.correct_opinion(), Opinion::new(0));
    }

    #[test]
    fn custom_constants_are_honoured_in_the_schedule() {
        let constants = ProtocolConstants {
            s: 0.5,
            beta: 1.0,
            phi: 2.0,
            c: 3.0,
            c_final: 1.0,
        };
        let params = ProtocolParams::builder(1_000, 2)
            .epsilon(0.3)
            .constants(constants)
            .build()
            .unwrap();
        let default_params = ProtocolParams::builder(1_000, 2).epsilon(0.3).build().unwrap();
        assert!(params.schedule().total_rounds() < default_params.schedule().total_rounds());
    }
}
