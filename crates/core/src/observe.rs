//! The observation layer: watch a run phase by phase, and stop it early.
//!
//! The protocol's most interesting claims are *trajectory-shaped* — the
//! per-phase bias amplification of Lemmas 7 and 12, Stage 1's activation
//! growth (Claims 2–3), the majority-preservation boundary — so executions
//! must be observable while they run, not only summarized afterwards. This
//! module provides the three pieces:
//!
//! * [`Observer`] — a callback trait notified at phase boundaries with a
//!   cheap [`PhaseSnapshot`] (built from the O(k) population tallies both
//!   simulation backends already maintain; no per-agent scan is ever
//!   performed for observation). Attaching an observer **never** touches
//!   any RNG stream: a run with an observer produces bit-for-bit the same
//!   [`Outcome`](crate::Outcome) as a run without one.
//! * [`StopCondition`] — a composable early-exit rule evaluated at phase
//!   boundaries, replacing hard-coded round budgets: stop after a maximum
//!   number of rounds, on consensus, once the bias towards the reference
//!   opinion reaches a threshold, or when the bias plateaus.
//! * [`RunProgress`] — the bookkeeping a run loop maintains so stop
//!   conditions can be evaluated without rescanning the population.
//!
//! Protocol runs attach observers through
//! [`Session`](crate::Session); the baseline dynamics through
//! `Dynamics::run_until` in the `opinion-dynamics` crate. Ready-made
//! observers (trajectory recording, streaming statistics, JSONL sinks)
//! live in the `gossip-analysis` crate.

use crate::record::StageId;
use pushsim::OpinionDistribution;

/// A cheap, self-contained snapshot of the system at the end of one phase.
///
/// Built from the backend's O(k) population tallies: constructing a
/// snapshot costs O(k) time and allocation, independent of the population
/// size, so per-phase observation is free relative to the phase itself
/// (which costs at least one full round of pushes).
#[derive(Debug, Clone, PartialEq)]
pub struct PhaseSnapshot {
    stage: Option<StageId>,
    phase: usize,
    rounds: u64,
    total_rounds: u64,
    messages: u64,
    total_messages: u64,
    distribution: OpinionDistribution,
    bias: Option<f64>,
    topology: String,
}

impl PhaseSnapshot {
    /// Assembles a snapshot. `stage` is `None` for stage-less executions
    /// (the baseline dynamics); `bias` is measured towards the run's
    /// reference opinion and `None` while nobody is opinionated. The
    /// topology label defaults to `"complete"` (the paper's model); runs
    /// on other topologies attach theirs with
    /// [`with_topology`](Self::with_topology).
    #[allow(clippy::too_many_arguments)] // one argument per snapshot field
    pub fn new(
        stage: Option<StageId>,
        phase: usize,
        rounds: u64,
        total_rounds: u64,
        messages: u64,
        total_messages: u64,
        distribution: OpinionDistribution,
        bias: Option<f64>,
    ) -> Self {
        Self {
            stage,
            phase,
            rounds,
            total_rounds,
            messages,
            total_messages,
            distribution,
            bias,
            topology: "complete".to_string(),
        }
    }

    /// Attaches the label of the communication topology the run executes
    /// on (`"complete"`, `"ring"`, `"regular(8)"`, …), so trajectory
    /// output records which graph produced it.
    #[must_use]
    pub fn with_topology(mut self, label: impl Into<String>) -> Self {
        self.topology = label.into();
        self
    }

    /// The stage the phase belongs to (`None` for stage-less executions
    /// such as the baseline dynamics, where every step is one "phase").
    pub fn stage(&self) -> Option<StageId> {
        self.stage
    }

    /// The zero-based phase index within its stage (or the step index for
    /// stage-less executions).
    pub fn phase(&self) -> usize {
        self.phase
    }

    /// Rounds executed during this phase.
    pub fn rounds(&self) -> u64 {
        self.rounds
    }

    /// Rounds executed since the start of the run, this phase included.
    pub fn total_rounds(&self) -> u64 {
        self.total_rounds
    }

    /// Messages pushed during this phase.
    pub fn messages(&self) -> u64 {
        self.messages
    }

    /// Messages pushed since the start of the run, this phase included.
    pub fn total_messages(&self) -> u64 {
        self.total_messages
    }

    /// The opinion distribution at the end of the phase.
    pub fn distribution(&self) -> &OpinionDistribution {
        &self.distribution
    }

    /// The fraction of agents that were opinionated at the end of the
    /// phase.
    pub fn opinionated_fraction(&self) -> f64 {
        self.distribution.opinionated_fraction()
    }

    /// The bias towards the run's reference opinion at the end of the
    /// phase (Definition 1), or `None` if nobody was opinionated.
    pub fn bias(&self) -> Option<f64> {
        self.bias
    }

    /// The label of the communication topology the run executes on
    /// (`"complete"` unless the run attached another with
    /// [`with_topology`](Self::with_topology)).
    pub fn topology(&self) -> &str {
        &self.topology
    }

    /// `true` if every agent supported the same opinion at the end of the
    /// phase.
    pub fn is_consensus(&self) -> bool {
        self.distribution.is_consensus()
    }
}

/// A callback interface notified as a run progresses.
///
/// All methods have empty default bodies, so an observer implements only
/// the events it cares about. Observers receive immutable snapshots and no
/// RNG access: attaching one cannot perturb an execution.
pub trait Observer {
    /// A phase is about to start. `stage` is `None` for stage-less
    /// executions (the baseline dynamics).
    fn on_phase_begin(&mut self, stage: Option<StageId>, phase: usize) {
        let _ = (stage, phase);
    }

    /// A phase finished (its decision operator included); `snapshot`
    /// describes the system at the phase boundary.
    fn on_phase_end(&mut self, snapshot: &PhaseSnapshot) {
        let _ = snapshot;
    }

    /// The protocol moved from one stage to the next (emitted between the
    /// last Stage 1 phase and the first Stage 2 phase, unless a stop
    /// condition ended the run first).
    fn on_stage_transition(&mut self, from: StageId, to: StageId) {
        let _ = (from, to);
    }

    /// The run finished (schedule exhausted or a stop condition fired).
    fn on_finish(&mut self) {}
}

/// The do-nothing observer: the observer-free hot path.
///
/// Observer callbacks fire once per *phase* (never per round or per
/// agent), so even through dynamic dispatch the no-op calls vanish against
/// the cost of the phase itself; the `pushsim_observer_dispatch` benchmark
/// group guards this.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoObserver;

impl Observer for NoObserver {}

impl Observer for &mut dyn Observer {
    fn on_phase_begin(&mut self, stage: Option<StageId>, phase: usize) {
        (**self).on_phase_begin(stage, phase);
    }

    fn on_phase_end(&mut self, snapshot: &PhaseSnapshot) {
        (**self).on_phase_end(snapshot);
    }

    fn on_stage_transition(&mut self, from: StageId, to: StageId) {
        (**self).on_stage_transition(from, to);
    }

    fn on_finish(&mut self) {
        (**self).on_finish();
    }
}

/// Broadcasts every event to several observers, in order.
pub struct Fanout<'a> {
    observers: Vec<&'a mut dyn Observer>,
}

impl<'a> Fanout<'a> {
    /// Builds a fanout over the given observers.
    pub fn new(observers: Vec<&'a mut dyn Observer>) -> Self {
        Self { observers }
    }
}

impl Observer for Fanout<'_> {
    fn on_phase_begin(&mut self, stage: Option<StageId>, phase: usize) {
        for o in &mut self.observers {
            o.on_phase_begin(stage, phase);
        }
    }

    fn on_phase_end(&mut self, snapshot: &PhaseSnapshot) {
        for o in &mut self.observers {
            o.on_phase_end(snapshot);
        }
    }

    fn on_stage_transition(&mut self, from: StageId, to: StageId) {
        for o in &mut self.observers {
            o.on_stage_transition(from, to);
        }
    }

    fn on_finish(&mut self) {
        for o in &mut self.observers {
            o.on_finish();
        }
    }
}

/// A composable early-exit rule, evaluated at phase boundaries.
///
/// The default, [`ScheduleExhausted`](StopCondition::ScheduleExhausted),
/// never stops early: the run executes its full schedule exactly as the
/// budget-less API always did. All other variants end the run at the first
/// phase boundary where they hold; the run's
/// [`Outcome`](crate::Outcome) then simply contains fewer phase records
/// and rounds.
#[derive(Debug, Clone, PartialEq, Default)]
pub enum StopCondition {
    /// Never stop early — run the complete schedule (the default).
    #[default]
    ScheduleExhausted,
    /// Stop once at least this many rounds have run (checked at phase
    /// boundaries, so a phase in progress always completes).
    MaxRounds(u64),
    /// Stop once every agent supports the same opinion.
    ConsensusReached,
    /// Stop once the bias towards the reference opinion reaches the given
    /// threshold.
    BiasAtLeast(f64),
    /// Stop once the bias has moved by no more than `tolerance` over the
    /// last `window` phase transitions (requires `window + 1` finished
    /// phases with a defined bias; `window = 0` never stops).
    Plateau {
        /// Number of most recent phase transitions inspected.
        window: usize,
        /// Maximum bias movement (max − min) tolerated over the window.
        tolerance: f64,
    },
    /// Stop when *any* of the inner conditions holds.
    Any(Vec<StopCondition>),
    /// Stop when *all* of the inner conditions hold (empty: never).
    All(Vec<StopCondition>),
}

impl StopCondition {
    /// Combines conditions into an [`Any`](StopCondition::Any), collapsing
    /// the empty list to [`ScheduleExhausted`](Self::ScheduleExhausted)
    /// and a singleton to the condition itself.
    pub fn any(mut conditions: Vec<StopCondition>) -> StopCondition {
        match conditions.len() {
            0 => StopCondition::ScheduleExhausted,
            1 => conditions.pop().expect("len checked"),
            _ => StopCondition::Any(conditions),
        }
    }

    /// The largest [`Plateau`](Self::Plateau) window anywhere in this
    /// condition — how much bias history its evaluation can ever inspect.
    pub fn max_plateau_window(&self) -> usize {
        match self {
            StopCondition::Plateau { window, .. } => *window,
            StopCondition::Any(conditions) | StopCondition::All(conditions) => conditions
                .iter()
                .map(StopCondition::max_plateau_window)
                .max()
                .unwrap_or(0),
            _ => 0,
        }
    }

    /// `true` if the run should stop given the progress so far.
    pub fn should_stop(&self, progress: &RunProgress) -> bool {
        match self {
            StopCondition::ScheduleExhausted => false,
            StopCondition::MaxRounds(limit) => progress.rounds() >= *limit,
            StopCondition::ConsensusReached => progress.is_consensus(),
            StopCondition::BiasAtLeast(threshold) => {
                progress.bias().is_some_and(|b| b >= *threshold)
            }
            StopCondition::Plateau { window, tolerance } => {
                progress.bias_plateaued(*window, *tolerance)
            }
            StopCondition::Any(conditions) => {
                conditions.iter().any(|c| c.should_stop(progress))
            }
            StopCondition::All(conditions) => {
                !conditions.is_empty() && conditions.iter().all(|c| c.should_stop(progress))
            }
        }
    }
}

/// What a run loop tracks so [`StopCondition`]s can be evaluated in O(1)
/// (plus O(window) for plateaus) at every phase boundary.
#[derive(Debug, Clone, Default)]
pub struct RunProgress {
    rounds: u64,
    consensus: bool,
    phase_count: usize,
    /// Retained bias history; 0 means unbounded.
    keep: usize,
    biases: Vec<Option<f64>>,
}

impl RunProgress {
    /// Fresh progress: zero rounds, no consensus, no bias history (kept
    /// unbounded — prefer [`for_stop`](Self::for_stop) in run loops).
    pub fn new() -> Self {
        Self::default()
    }

    /// Fresh progress retaining only as much bias history as `stop` can
    /// ever inspect (the largest plateau window + 1, at least one entry),
    /// so long runs — the baseline dynamics step once per round — stay
    /// O(1) memory instead of accumulating one entry per phase forever.
    pub fn for_stop(stop: &StopCondition) -> Self {
        Self {
            keep: stop.max_plateau_window() + 1,
            ..Self::default()
        }
    }

    /// Folds a finished phase into the progress.
    pub fn note_phase(&mut self, snapshot: &PhaseSnapshot) {
        self.rounds = snapshot.total_rounds();
        self.consensus = snapshot.is_consensus();
        self.phase_count += 1;
        self.biases.push(snapshot.bias());
        if self.keep > 0 && self.biases.len() > self.keep {
            let excess = self.biases.len() - self.keep;
            self.biases.drain(..excess);
        }
    }

    /// Synchronizes rounds/consensus with the system state without
    /// recording a phase (used to prime the progress before the first
    /// phase, so e.g. [`StopCondition::ConsensusReached`] can fire on an
    /// already-converged instance without executing anything).
    pub fn sync(&mut self, rounds: u64, consensus: bool) {
        self.rounds = rounds;
        self.consensus = consensus;
    }

    /// Rounds executed since the start of the run.
    pub fn rounds(&self) -> u64 {
        self.rounds
    }

    /// `true` if the system was in consensus at the last observation.
    pub fn is_consensus(&self) -> bool {
        self.consensus
    }

    /// The bias after the most recent phase, if any phase finished and
    /// anyone was opinionated.
    pub fn bias(&self) -> Option<f64> {
        self.biases.last().copied().flatten()
    }

    /// Number of finished phases.
    pub fn phases(&self) -> usize {
        self.phase_count
    }

    /// `true` if the bias moved by at most `tolerance` over the last
    /// `window` phase transitions (all of which must have a defined bias).
    /// With a [`for_stop`](Self::for_stop)-bounded history, windows larger
    /// than the retained history never plateau (the retention covers every
    /// window the stop condition contains, so this only affects foreign
    /// queries).
    pub fn bias_plateaued(&self, window: usize, tolerance: f64) -> bool {
        if window == 0 || self.biases.len() < window + 1 {
            return false;
        }
        let recent = &self.biases[self.biases.len() - (window + 1)..];
        let mut min = f64::INFINITY;
        let mut max = f64::NEG_INFINITY;
        for bias in recent {
            let Some(b) = bias else { return false };
            min = min.min(*b);
            max = max.max(*b);
        }
        max - min <= tolerance
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snapshot(
        total_rounds: u64,
        counts: Vec<usize>,
        undecided: usize,
        bias: Option<f64>,
    ) -> PhaseSnapshot {
        let distribution = OpinionDistribution::from_counts(counts, undecided).unwrap();
        PhaseSnapshot::new(
            Some(StageId::One),
            0,
            10,
            total_rounds,
            100,
            100,
            distribution,
            bias,
        )
    }

    #[test]
    fn snapshot_exposes_population_queries() {
        let s = snapshot(10, vec![60, 30, 10], 0, Some(0.3));
        assert_eq!(s.stage(), Some(StageId::One));
        assert_eq!(s.rounds(), 10);
        assert_eq!(s.total_rounds(), 10);
        assert_eq!(s.messages(), 100);
        assert_eq!(s.total_messages(), 100);
        assert!((s.opinionated_fraction() - 1.0).abs() < 1e-12);
        assert_eq!(s.bias(), Some(0.3));
        assert!(!s.is_consensus());
        assert_eq!(s.topology(), "complete", "the default label");
        assert_eq!(s.with_topology("ring").topology(), "ring");
        let c = snapshot(10, vec![100, 0, 0], 0, Some(1.0));
        assert!(c.is_consensus());
    }

    #[test]
    fn schedule_exhausted_never_stops() {
        let mut progress = RunProgress::new();
        progress.note_phase(&snapshot(1_000_000, vec![100, 0, 0], 0, Some(1.0)));
        assert!(!StopCondition::ScheduleExhausted.should_stop(&progress));
    }

    #[test]
    fn max_rounds_and_consensus_fire_when_reached() {
        let mut progress = RunProgress::new();
        assert!(!StopCondition::MaxRounds(10).should_stop(&progress));
        assert!(!StopCondition::ConsensusReached.should_stop(&progress));
        progress.note_phase(&snapshot(10, vec![50, 40, 10], 0, Some(0.1)));
        assert!(StopCondition::MaxRounds(10).should_stop(&progress));
        assert!(!StopCondition::ConsensusReached.should_stop(&progress));
        progress.note_phase(&snapshot(20, vec![100, 0, 0], 0, Some(1.0)));
        assert!(StopCondition::ConsensusReached.should_stop(&progress));
    }

    #[test]
    fn sync_primes_consensus_without_recording_a_phase() {
        let mut progress = RunProgress::new();
        progress.sync(0, true);
        assert!(StopCondition::ConsensusReached.should_stop(&progress));
        assert_eq!(progress.phases(), 0);
        assert_eq!(progress.bias(), None);
    }

    #[test]
    fn bias_threshold_needs_a_defined_bias() {
        let mut progress = RunProgress::new();
        progress.note_phase(&snapshot(5, vec![0, 0, 0], 100, None));
        assert!(!StopCondition::BiasAtLeast(0.5).should_stop(&progress));
        progress.note_phase(&snapshot(10, vec![80, 10, 10], 0, Some(0.7)));
        assert!(StopCondition::BiasAtLeast(0.5).should_stop(&progress));
        assert!(!StopCondition::BiasAtLeast(0.9).should_stop(&progress));
    }

    #[test]
    fn plateau_requires_a_full_window_of_stable_biases() {
        let plateau = StopCondition::Plateau {
            window: 2,
            tolerance: 0.01,
        };
        let mut progress = RunProgress::new();
        progress.note_phase(&snapshot(1, vec![60, 40, 0], 0, Some(0.2)));
        progress.note_phase(&snapshot(2, vec![60, 40, 0], 0, Some(0.2)));
        // Only one transition so far: not enough history.
        assert!(!plateau.should_stop(&progress));
        progress.note_phase(&snapshot(3, vec![60, 40, 0], 0, Some(0.205)));
        assert!(plateau.should_stop(&progress));
        // A moving bias breaks the plateau.
        progress.note_phase(&snapshot(4, vec![80, 20, 0], 0, Some(0.6)));
        assert!(!plateau.should_stop(&progress));
        // window = 0 never stops.
        let degenerate = StopCondition::Plateau {
            window: 0,
            tolerance: 1.0,
        };
        assert!(!degenerate.should_stop(&progress));
    }

    #[test]
    fn plateau_window_longer_than_the_run_never_fires() {
        // A window of W needs W + 1 finished phases; a run shorter than
        // that must execute its complete schedule even with a perfectly
        // flat bias.
        let plateau = StopCondition::Plateau {
            window: 10,
            tolerance: 1.0,
        };
        let mut progress = RunProgress::for_stop(&plateau);
        for round in 1..=8u64 {
            progress.note_phase(&snapshot(round, vec![60, 40, 0], 0, Some(0.2)));
            assert!(
                !plateau.should_stop(&progress),
                "only {round} phases finished, the window needs 11"
            );
        }
        // Once enough history exists, the same flat bias does fire.
        for round in 9..=11u64 {
            progress.note_phase(&snapshot(round, vec![60, 40, 0], 0, Some(0.2)));
        }
        assert!(plateau.should_stop(&progress));
    }

    #[test]
    fn plateau_is_broken_by_undefined_biases() {
        let plateau = StopCondition::Plateau {
            window: 1,
            tolerance: 1.0,
        };
        let mut progress = RunProgress::new();
        progress.note_phase(&snapshot(1, vec![0, 0, 0], 100, None));
        progress.note_phase(&snapshot(2, vec![50, 0, 0], 100, Some(1.0)));
        assert!(!plateau.should_stop(&progress));
        progress.note_phase(&snapshot(3, vec![50, 0, 0], 100, Some(1.0)));
        assert!(plateau.should_stop(&progress));
    }

    #[test]
    fn any_and_all_compose() {
        let mut progress = RunProgress::new();
        progress.note_phase(&snapshot(50, vec![90, 10, 0], 0, Some(0.8)));
        let rounds = StopCondition::MaxRounds(10);
        let consensus = StopCondition::ConsensusReached;
        assert!(StopCondition::Any(vec![rounds.clone(), consensus.clone()])
            .should_stop(&progress));
        assert!(!StopCondition::All(vec![rounds.clone(), consensus.clone()])
            .should_stop(&progress));
        assert!(StopCondition::All(vec![rounds, StopCondition::BiasAtLeast(0.5)])
            .should_stop(&progress));
        assert!(!StopCondition::All(vec![]).should_stop(&progress));
        assert!(!StopCondition::Any(vec![]).should_stop(&progress));
    }

    #[test]
    fn any_constructor_collapses_trivial_lists() {
        assert_eq!(StopCondition::any(vec![]), StopCondition::ScheduleExhausted);
        assert_eq!(
            StopCondition::any(vec![StopCondition::MaxRounds(5)]),
            StopCondition::MaxRounds(5)
        );
        assert!(matches!(
            StopCondition::any(vec![
                StopCondition::MaxRounds(5),
                StopCondition::ConsensusReached
            ]),
            StopCondition::Any(_)
        ));
    }

    #[test]
    fn fanout_broadcasts_to_every_observer() {
        #[derive(Default)]
        struct Counter {
            begins: usize,
            ends: usize,
            transitions: usize,
            finishes: usize,
        }
        impl Observer for Counter {
            fn on_phase_begin(&mut self, _: Option<StageId>, _: usize) {
                self.begins += 1;
            }
            fn on_phase_end(&mut self, _: &PhaseSnapshot) {
                self.ends += 1;
            }
            fn on_stage_transition(&mut self, _: StageId, _: StageId) {
                self.transitions += 1;
            }
            fn on_finish(&mut self) {
                self.finishes += 1;
            }
        }
        let mut a = Counter::default();
        let mut b = Counter::default();
        {
            let mut fanout = Fanout::new(vec![&mut a, &mut b]);
            fanout.on_phase_begin(Some(StageId::One), 0);
            fanout.on_phase_end(&snapshot(1, vec![1, 0, 0], 9, Some(1.0)));
            fanout.on_stage_transition(StageId::One, StageId::Two);
            fanout.on_finish();
        }
        for c in [&a, &b] {
            assert_eq!((c.begins, c.ends, c.transitions, c.finishes), (1, 1, 1, 1));
        }
    }
}
