//! Theoretical quantities from the paper's analysis, used by tests and by
//! the experiment harness to compare measurements against predictions.
//!
//! * [`g`] — the function `g(δ, ℓ)` of Proposition 1 (see also Lemma 15 for
//!   its monotonicity properties).
//! * [`proposition1_lower_bound`] — the sample-majority gap lower bound
//!   `√(2ℓ/π) · g(δ, ℓ) / 4^{k−2}` of Proposition 1.
//! * [`exact_majority_gap_binary`] — the exact value of
//!   `Pr[maj_ℓ = 1] − Pr[maj_ℓ = 2]` for two opinions, computed from
//!   binomial sums (the quantity Lemma 9 lower-bounds).
//! * [`sample_majority_gap`] — a Monte-Carlo estimator of the same gap for
//!   arbitrary `k` (the quantity Proposition 1 lower-bounds).
//! * [`lemma16_tail_bound`] — the Chernoff-style tail bound of Lemma 16.
//! * [`rounds_bound`] and [`memory_bound_bits`] — the asymptotic complexity
//!   scales of Theorems 1 and 2.

use rand::Rng;

/// The function `g(δ, ℓ)` of Proposition 1:
///
/// ```text
/// g(δ, ℓ) = δ (1 − δ²)^{(ℓ−1)/2}            if δ < 1/√ℓ
///         = (1/√ℓ)(1 − 1/ℓ)^{(ℓ−1)/2}        otherwise.
/// ```
///
/// It is non-decreasing in `δ` and non-increasing in `ℓ` (Lemma 15).
///
/// # Panics
///
/// Panics if `delta` is not in `[0, 1]` or `ell < 1`.
pub fn g(delta: f64, ell: u64) -> f64 {
    assert!(
        (0.0..=1.0).contains(&delta),
        "delta must lie in [0, 1], got {delta}"
    );
    assert!(ell >= 1, "ell must be at least 1");
    let l = ell as f64;
    let exponent = (l - 1.0) / 2.0;
    if delta < 1.0 / l.sqrt() {
        delta * (1.0 - delta * delta).powf(exponent)
    } else {
        (1.0 / l.sqrt()) * (1.0 - 1.0 / l).powf(exponent)
    }
}

/// The Proposition 1 lower bound on the sample-majority gap
/// `Pr[maj_ℓ(u) = m] − Pr[maj_ℓ(u) = i]` when the received-opinion
/// distribution is δ-biased towards `m`:
///
/// ```text
/// √(2ℓ/π) · g(δ, ℓ) / 4^{k−2}.
/// ```
///
/// # Panics
///
/// Panics if `k < 2`, `ell < 1`, or `delta ∉ [0, 1]`.
pub fn proposition1_lower_bound(delta: f64, ell: u64, k: usize) -> f64 {
    assert!(k >= 2, "the bound is stated for k >= 2");
    (2.0 * ell as f64 / std::f64::consts::PI).sqrt() * g(delta, ell)
        / 4f64.powi(k as i32 - 2)
}

/// Exact value of `Pr[maj_ℓ = 1] − Pr[maj_ℓ = 2]` for `k = 2` opinions when
/// each of the `ℓ` sampled messages is opinion 1 independently with
/// probability `p1` (ties broken uniformly at random).
///
/// This is the quantity that Lemma 9 lower-bounds by `√(2ℓ/π)·g(2p1−1, ℓ)`.
///
/// # Panics
///
/// Panics if `p1 ∉ [0, 1]` or `ell` is 0 or too large for exact summation
/// (`ell > 10_000`).
pub fn exact_majority_gap_binary(p1: f64, ell: u64) -> f64 {
    assert!((0.0..=1.0).contains(&p1), "p1 must lie in [0, 1]");
    assert!((1..=10_000).contains(&ell), "ell must lie in [1, 10000]");
    let l = ell as usize;
    let p2 = 1.0 - p1;
    // Binomial pmf via iterative updates to avoid factorial overflow.
    // pmf(i) = C(l, i) p1^i p2^(l-i).
    let mut pmf = vec![0.0f64; l + 1];
    // Start from the largest term computed in log-space for stability.
    for (i, value) in pmf.iter_mut().enumerate() {
        let log_c = log_binomial(l as u64, i as u64);
        let log_p = if p1 > 0.0 { i as f64 * p1.ln() } else { f64::NEG_INFINITY };
        let log_q = if p2 > 0.0 {
            (l - i) as f64 * p2.ln()
        } else {
            f64::NEG_INFINITY
        };
        *value = match (i, l - i) {
            (0, _) => log_q.exp() * log_c.exp(),
            (_, 0) => log_p.exp() * log_c.exp(),
            _ => (log_c + log_p + log_q).exp(),
        };
    }
    let mut win1 = 0.0;
    let mut win2 = 0.0;
    for (i, &prob) in pmf.iter().enumerate() {
        let ones = i as f64;
        let twos = (l - i) as f64;
        if ones > twos {
            win1 += prob;
        } else if twos > ones {
            win2 += prob;
        } else {
            win1 += prob / 2.0;
            win2 += prob / 2.0;
        }
    }
    win1 - win2
}

/// `ln C(n, k)` via the log-gamma function (Stirling-series implementation,
/// accurate to ~1e-10 for the ranges used here).
fn log_binomial(n: u64, k: u64) -> f64 {
    if k > n {
        return f64::NEG_INFINITY;
    }
    ln_factorial(n) - ln_factorial(k) - ln_factorial(n - k)
}

/// `ln(n!)` — exact summation for small `n`, Stirling's series beyond.
fn ln_factorial(n: u64) -> f64 {
    if n < 64 {
        (2..=n).map(|i| (i as f64).ln()).sum()
    } else {
        let x = n as f64;
        // Stirling series with the first two correction terms.
        x * x.ln() - x + 0.5 * (2.0 * std::f64::consts::PI * x).ln() + 1.0 / (12.0 * x)
            - 1.0 / (360.0 * x.powi(3))
    }
}

/// Monte-Carlo estimate of the sample-majority gap
/// `Pr[maj_ℓ(u) = m] − Pr[maj_ℓ(u) = i]` when the `ℓ` sampled messages are
/// i.i.d. from `received_distribution` (the paper's `c · P`), with ties
/// broken uniformly at random.
///
/// Returns the estimated gap. Used by experiment F4 to compare the true gap
/// against [`proposition1_lower_bound`].
///
/// # Panics
///
/// Panics if the distribution is empty, has negative entries, does not sum
/// to ~1, or if `m`/`i` are out of range.
pub fn sample_majority_gap<R: Rng + ?Sized>(
    received_distribution: &[f64],
    ell: u64,
    m: usize,
    i: usize,
    trials: u64,
    rng: &mut R,
) -> f64 {
    let k = received_distribution.len();
    assert!(k >= 2, "need at least two opinions");
    assert!(m < k && i < k && m != i, "m and i must be distinct opinions");
    let sum: f64 = received_distribution.iter().sum();
    assert!(
        (sum - 1.0).abs() < 1e-6 && received_distribution.iter().all(|&p| p >= 0.0),
        "received_distribution must be a probability distribution"
    );
    // Precompute the cumulative distribution for inverse-CDF sampling.
    let mut cumulative = Vec::with_capacity(k);
    let mut acc = 0.0;
    for &p in received_distribution {
        acc += p;
        cumulative.push(acc);
    }
    *cumulative.last_mut().expect("non-empty") = 1.0;

    let mut wins_m = 0u64;
    let mut wins_i = 0u64;
    let mut counts = vec![0u32; k];
    for _ in 0..trials {
        counts.iter_mut().for_each(|c| *c = 0);
        for _ in 0..ell {
            let u: f64 = rng.gen();
            let idx = cumulative
                .iter()
                .position(|&c| u <= c)
                .unwrap_or(k - 1);
            counts[idx] += 1;
        }
        let max = *counts.iter().max().expect("non-empty");
        let tied: Vec<usize> = (0..k).filter(|&j| counts[j] == max).collect();
        let winner = tied[rng.gen_range(0..tied.len())];
        if winner == m {
            wins_m += 1;
        } else if winner == i {
            wins_i += 1;
        }
    }
    (wins_m as f64 - wins_i as f64) / trials as f64
}

/// The tail bound of Lemma 16: for `n` i.i.d. variables taking values in
/// `{−1, 0, +1}`,
///
/// ```text
/// Pr[ Σ X ≤ (1−θ) E[Σ X] − θ n ] ≤ exp( −(θ²/4)(E[Σ X] + n) ).
/// ```
///
/// Returns the right-hand side.
///
/// # Panics
///
/// Panics if `theta ∉ (0, 1)` or `n == 0`.
pub fn lemma16_tail_bound(theta: f64, expected_sum: f64, n: u64) -> f64 {
    assert!(theta > 0.0 && theta < 1.0, "theta must lie in (0, 1)");
    assert!(n > 0, "n must be positive");
    (-(theta * theta / 4.0) * (expected_sum + n as f64)).exp()
}

/// The asymptotic round-complexity scale of Theorems 1 and 2:
/// `ln(n) / ε²` (no constants).
pub fn rounds_bound(n: usize, epsilon: f64) -> f64 {
    (n as f64).ln() / (epsilon * epsilon)
}

/// The asymptotic memory scale of Theorems 1 and 2 in bits:
/// `log₂ log₂ n + log₂(1/ε)` (no constants).
pub fn memory_bound_bits(n: usize, epsilon: f64) -> f64 {
    ((n as f64).log2()).max(1.0).log2() + (1.0 / epsilon).log2()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn g_matches_definition_on_both_branches() {
        // Small-delta branch.
        let d: f64 = 0.05;
        let l = 25;
        let expected = d * (1.0 - d * d).powf((l as f64 - 1.0) / 2.0);
        assert!((g(d, l) - expected).abs() < 1e-12);
        // Large-delta branch (delta >= 1/sqrt(l) = 0.2).
        let d = 0.5;
        let expected = (1.0 / 5.0) * (1.0 - 1.0 / 25.0f64).powf(12.0);
        assert!((g(d, 25) - expected).abs() < 1e-12);
    }

    #[test]
    fn g_is_monotone_as_in_lemma_15() {
        // Non-decreasing in delta.
        let l = 49;
        let mut prev = 0.0;
        for step in 0..=20 {
            let d = step as f64 / 20.0;
            let value = g(d, l);
            assert!(value >= prev - 1e-12, "g must be non-decreasing in delta");
            prev = value;
        }
        // Non-increasing in ell for fixed delta.
        let d = 0.3;
        let mut prev = f64::INFINITY;
        for l in [1u64, 3, 9, 25, 81, 243] {
            let value = g(d, l);
            assert!(value <= prev + 1e-12, "g must be non-increasing in ell");
            prev = value;
        }
    }

    #[test]
    #[should_panic(expected = "delta")]
    fn g_rejects_invalid_delta() {
        let _ = g(1.5, 9);
    }

    #[test]
    fn proposition1_bound_decreases_with_k() {
        let b2 = proposition1_lower_bound(0.1, 25, 2);
        let b3 = proposition1_lower_bound(0.1, 25, 3);
        let b5 = proposition1_lower_bound(0.1, 25, 5);
        assert!(b2 > b3 && b3 > b5);
        assert!((b2 / b3 - 4.0).abs() < 1e-9);
    }

    #[test]
    fn exact_binary_gap_has_correct_extremes_and_symmetry() {
        // Unbiased sample: gap 0.
        assert!(exact_majority_gap_binary(0.5, 11).abs() < 1e-12);
        // Certain opinion 1: gap 1.
        assert!((exact_majority_gap_binary(1.0, 11) - 1.0).abs() < 1e-12);
        // Antisymmetry: gap(p) = -gap(1-p).
        let p = 0.62;
        let gap = exact_majority_gap_binary(p, 21);
        let neg = exact_majority_gap_binary(1.0 - p, 21);
        assert!((gap + neg).abs() < 1e-10);
        // Gap grows with the sample size for a fixed biased p.
        assert!(exact_majority_gap_binary(0.6, 51) > exact_majority_gap_binary(0.6, 11));
    }

    #[test]
    fn lemma9_lower_bound_holds_for_the_exact_binary_gap() {
        // Pr[maj=1] - Pr[maj=2] >= sqrt(2 l / pi) g(delta, l) where
        // delta = p1 - p2 (Lemma 9), for odd l.
        for &l in &[5u64, 11, 25, 51, 101] {
            for &p1 in &[0.51, 0.55, 0.6, 0.7, 0.9] {
                let delta = 2.0 * p1 - 1.0;
                let exact = exact_majority_gap_binary(p1, l);
                let bound = (2.0 * l as f64 / std::f64::consts::PI).sqrt() * g(delta, l);
                assert!(
                    exact >= bound - 1e-9,
                    "l={l} p1={p1}: exact {exact} < bound {bound}"
                );
            }
        }
    }

    #[test]
    fn monte_carlo_gap_matches_exact_binary_gap() {
        let mut rng = StdRng::seed_from_u64(7);
        let p1 = 0.6;
        let l = 15;
        let exact = exact_majority_gap_binary(p1, l);
        let estimate = sample_majority_gap(&[p1, 1.0 - p1], l, 0, 1, 200_000, &mut rng);
        assert!(
            (exact - estimate).abs() < 0.01,
            "exact {exact} vs estimate {estimate}"
        );
    }

    #[test]
    fn proposition1_bound_holds_empirically_for_three_opinions() {
        let mut rng = StdRng::seed_from_u64(8);
        let delta = 0.15;
        // Received distribution with bias delta towards opinion 0.
        let c = [1.0 / 3.0 + 2.0 * delta / 3.0, 1.0 / 3.0 - delta / 3.0, 1.0 / 3.0 - delta / 3.0];
        let l = 27;
        let gap = sample_majority_gap(&c, l, 0, 1, 150_000, &mut rng);
        let bound = proposition1_lower_bound(delta, l, 3);
        assert!(gap >= bound - 0.01, "gap {gap} vs bound {bound}");
    }

    #[test]
    fn lemma16_bound_decreases_with_theta_and_n() {
        let loose = lemma16_tail_bound(0.1, 100.0, 1_000);
        let tight = lemma16_tail_bound(0.5, 100.0, 1_000);
        assert!(tight < loose);
        let larger_n = lemma16_tail_bound(0.1, 100.0, 100_000);
        assert!(larger_n < loose);
        assert!(loose <= 1.0 && tight > 0.0);
    }

    #[test]
    fn asymptotic_scales_behave() {
        assert!(rounds_bound(100_000, 0.1) > rounds_bound(1_000, 0.1));
        assert!(rounds_bound(1_000, 0.05) > rounds_bound(1_000, 0.1));
        assert!(memory_bound_bits(1 << 20, 0.1) > memory_bound_bits(1 << 10, 0.1));
    }

    #[test]
    fn ln_factorial_is_accurate() {
        // Compare against direct summation for a value above the Stirling
        // threshold.
        let direct: f64 = (2..=100u64).map(|i| (i as f64).ln()).sum();
        assert!((ln_factorial(100) - direct).abs() < 1e-8);
        assert_eq!(ln_factorial(0), 0.0);
        assert_eq!(ln_factorial(1), 0.0);
    }
}
