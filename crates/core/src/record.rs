//! Per-phase execution records.

use pushsim::{Opinion, OpinionDistribution};

/// Which of the two protocol stages a phase belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum StageId {
    /// Stage 1: opinion acquisition / rumor spreading.
    One,
    /// Stage 2: sample-majority bias amplification.
    Two,
}

impl std::fmt::Display for StageId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StageId::One => write!(f, "stage 1"),
            StageId::Two => write!(f, "stage 2"),
        }
    }
}

/// A record of what one protocol phase did to the system, used by the
/// experiment harness to reconstruct activation-growth and bias
/// trajectories (experiments F5, T3).
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct PhaseRecord {
    stage: StageId,
    phase: usize,
    rounds: u64,
    messages: u64,
    distribution_after: OpinionDistribution,
    bias_after: Option<f64>,
}

impl PhaseRecord {
    /// Creates a record for a finished phase; `reference` is the correct /
    /// plurality opinion the bias is measured against.
    pub(crate) fn new(
        stage: StageId,
        phase: usize,
        rounds: u64,
        messages: u64,
        distribution_after: OpinionDistribution,
        reference: Opinion,
    ) -> Self {
        let bias_after = distribution_after.bias_towards(reference);
        Self {
            stage,
            phase,
            rounds,
            messages,
            distribution_after,
            bias_after,
        }
    }

    /// The stage the phase belongs to.
    pub fn stage(&self) -> StageId {
        self.stage
    }

    /// The zero-based phase index within its stage.
    pub fn phase(&self) -> usize {
        self.phase
    }

    /// The number of rounds the phase lasted.
    pub fn rounds(&self) -> u64 {
        self.rounds
    }

    /// The number of messages pushed during the phase.
    pub fn messages(&self) -> u64 {
        self.messages
    }

    /// The opinion distribution at the end of the phase.
    pub fn distribution_after(&self) -> &OpinionDistribution {
        &self.distribution_after
    }

    /// The fraction of agents that were opinionated at the end of the phase.
    pub fn opinionated_fraction_after(&self) -> f64 {
        self.distribution_after.opinionated_fraction()
    }

    /// The bias towards the correct/plurality opinion at the end of the
    /// phase (Definition 1), or `None` if nobody was opinionated.
    pub fn bias_after(&self) -> Option<f64> {
        self.bias_after
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_computes_bias_and_fraction() {
        let dist = OpinionDistribution::from_counts(vec![60, 30, 10], 100).unwrap();
        let record = PhaseRecord::new(StageId::One, 2, 50, 5_000, dist, Opinion::new(0));
        assert_eq!(record.stage(), StageId::One);
        assert_eq!(record.phase(), 2);
        assert_eq!(record.rounds(), 50);
        assert_eq!(record.messages(), 5_000);
        assert!((record.opinionated_fraction_after() - 0.5).abs() < 1e-12);
        assert!((record.bias_after().unwrap() - 0.3).abs() < 1e-12);
    }

    #[test]
    fn stage_display() {
        assert_eq!(StageId::One.to_string(), "stage 1");
        assert_eq!(StageId::Two.to_string(), "stage 2");
    }
}
