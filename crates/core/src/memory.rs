//! Per-node memory accounting.
//!
//! Theorems 1 and 2 claim the protocol uses `O(log log n + log 1/ε)` bits of
//! memory per node. The implementation keeps, per node, only
//!
//! * its current opinion (`⌈log₂ k⌉` bits),
//! * the index of the current phase (`⌈log₂ (#phases)⌉` bits), and
//! * during a phase, `k` counters of received opinions, each bounded by the
//!   number of messages received in that phase — `O((1/ε²) log n)` w.h.p.,
//!   hence `O(log log n + log 1/ε)` bits each... once capped at the sample
//!   size the protocol actually needs (reservoir-style sampling caps the
//!   counter at `2ℓ`).
//!
//! [`MemoryMeter`] records the largest counter value any node ever had to
//! hold and converts the registers to bits, so experiments can compare the
//! measured footprint against the theoretical scale
//! ([`bounds::memory_bound_bits`](crate::bounds::memory_bound_bits)).

/// Records the per-node register sizes observed during a protocol execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct MemoryMeter {
    max_phase_counter: u64,
    max_sample_size: u64,
    num_phases: u64,
    num_opinions: u64,
}

impl MemoryMeter {
    /// Creates a meter for a protocol over `num_opinions` opinions.
    pub fn new(num_opinions: usize) -> Self {
        Self {
            max_phase_counter: 0,
            max_sample_size: 0,
            num_phases: 0,
            num_opinions: num_opinions as u64,
        }
    }

    /// Records that some node held a per-phase received-message counter with
    /// value `count`.
    pub fn record_counter(&mut self, count: u64) {
        self.max_phase_counter = self.max_phase_counter.max(count);
    }

    /// Records that a phase used samples of size `sample_size`.
    pub fn record_sample_size(&mut self, sample_size: u64) {
        self.max_sample_size = self.max_sample_size.max(sample_size);
    }

    /// Records that one more phase was executed.
    pub fn record_phase(&mut self) {
        self.num_phases += 1;
    }

    /// The largest per-phase received-message counter observed on any node.
    pub fn max_phase_counter(&self) -> u64 {
        self.max_phase_counter
    }

    /// The largest sample size used by any phase.
    pub fn max_sample_size(&self) -> u64 {
        self.max_sample_size
    }

    /// The number of phases executed.
    pub fn num_phases(&self) -> u64 {
        self.num_phases
    }

    /// The per-node memory footprint in bits implied by the recorded
    /// registers:
    ///
    /// * `⌈log₂ k⌉` bits for the current opinion,
    /// * `⌈log₂ (#phases + 1)⌉` bits for the phase counter,
    /// * `⌈log₂ (max sample size + 1)⌉` bits for each of the `k` sample
    ///   counters a node maintains while sampling within a phase.
    ///
    /// The sample counters dominate and scale as `O(log(1/ε²· log n))
    /// = O(log log n + log 1/ε)`, matching the theorem.
    pub fn bits_per_node(&self) -> u64 {
        let opinion_bits = bits_for(self.num_opinions.max(2));
        let phase_bits = bits_for(self.num_phases + 1);
        let counter_bits = bits_for(self.max_sample_size.max(self.max_phase_counter_capped()) + 1);
        opinion_bits + phase_bits + self.num_opinions * counter_bits
    }

    /// The phase counter value the protocol actually needs to retain: counts
    /// beyond twice the sample size never influence a decision, so the
    /// implementation caps them (this mirrors the paper's remark that nodes
    /// need only count up to `O(ε⁻² log n)`).
    fn max_phase_counter_capped(&self) -> u64 {
        if self.max_sample_size == 0 {
            self.max_phase_counter
        } else {
            self.max_phase_counter.min(2 * self.max_sample_size)
        }
    }
}

/// Number of bits needed to represent values in `0..=max_value`.
fn bits_for(max_value: u64) -> u64 {
    64 - max_value.leading_zeros() as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bits_for_small_values() {
        assert_eq!(bits_for(1), 1);
        assert_eq!(bits_for(2), 2);
        assert_eq!(bits_for(3), 2);
        assert_eq!(bits_for(4), 3);
        assert_eq!(bits_for(255), 8);
        assert_eq!(bits_for(256), 9);
    }

    #[test]
    fn meter_tracks_maxima() {
        let mut meter = MemoryMeter::new(3);
        meter.record_counter(5);
        meter.record_counter(17);
        meter.record_counter(9);
        meter.record_sample_size(15);
        meter.record_phase();
        meter.record_phase();
        assert_eq!(meter.max_phase_counter(), 17);
        assert_eq!(meter.max_sample_size(), 15);
        assert_eq!(meter.num_phases(), 2);
    }

    #[test]
    fn bits_grow_slowly_with_counters() {
        let mut small = MemoryMeter::new(2);
        small.record_counter(10);
        small.record_sample_size(10);
        small.record_phase();

        let mut large = MemoryMeter::new(2);
        large.record_counter(10_000);
        large.record_sample_size(10_000);
        large.record_phase();

        let small_bits = small.bits_per_node();
        let large_bits = large.bits_per_node();
        assert!(large_bits > small_bits);
        // 1000x larger counters cost only ~10 extra bits per counter.
        assert!(large_bits - small_bits <= 2 * 10 + 1);
    }

    #[test]
    fn counter_is_capped_by_twice_the_sample_size() {
        let mut meter = MemoryMeter::new(2);
        meter.record_sample_size(8);
        meter.record_counter(1_000_000);
        meter.record_phase();
        // The capped counter (16) needs 5 bits, not 20.
        let bits = meter.bits_per_node();
        let expected = bits_for(2) + bits_for(2) + 2 * bits_for(17);
        assert_eq!(bits, expected);
    }

    #[test]
    fn default_meter_reports_minimal_footprint() {
        let meter = MemoryMeter::new(4);
        assert!(meter.bits_per_node() >= 3);
    }
}
