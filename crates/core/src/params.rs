//! Protocol parameters and the phase schedules of the two stages.

use crate::error::ProtocolError;
use pushsim::{ChurnSpec, ClockSpec, DeliverySemantics, FaultSpec, NoiseSchedule, TopologySpec};

/// The protocol's tunable constants.
///
/// The paper (Section 3.1) leaves the constants of the phase lengths
/// unspecified, requiring only `φ > β > s > 0` for Stage 1 and a
/// "large-enough constant" `c` for Stage 2. The defaults here were calibrated
/// so that the protocol succeeds with high probability at the network sizes
/// the experiment harness simulates (see EXPERIMENTS.md); they can be
/// overridden through the [`ProtocolParamsBuilder`].
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct ProtocolConstants {
    /// Stage 1, phase 0 length multiplier: phase 0 has `(s/ε²)·ln n` rounds.
    pub s: f64,
    /// Stage 1, middle phase length multiplier: phases `1..=T` have `β/ε²`
    /// rounds.
    pub beta: f64,
    /// Stage 1, final phase length multiplier: phase `T+1` has `(φ/ε²)·ln n`
    /// rounds.
    pub phi: f64,
    /// Stage 2 sample size multiplier: each amplification phase samples
    /// `ℓ = ⌈c/ε²⌉` messages (and lasts `2ℓ` rounds).
    pub c: f64,
    /// Stage 2 final phase multiplier: the last phase samples
    /// `ℓ′ = ⌈c_final·ln(n)/ε²⌉` messages.
    pub c_final: f64,
}

impl Default for ProtocolConstants {
    fn default() -> Self {
        // Calibration: the Stage 2 amplification factor per phase behaves
        // like sqrt(2c/pi) x (received margin per unit of bias), so `c` must
        // be large enough that the factor comfortably exceeds e even for the
        // weaker multinomial margins at k > 2, and `c_final` must make the
        // per-node error probability of the last phase o(1/n). The values
        // below give >= 95% success across the experiment grid of
        // EXPERIMENTS.md while keeping the total round count within a small
        // constant of log n / eps^2.
        Self {
            s: 1.0,
            beta: 2.0,
            phi: 3.0,
            c: 8.0,
            c_final: 4.0,
        }
    }
}

impl ProtocolConstants {
    /// The names of the tunable constants, in canonical order — the key
    /// suffixes scenario spec files use (`constants.c = 8`, …).
    pub const FIELD_NAMES: [&'static str; 5] = ["s", "beta", "phi", "c", "c_final"];

    /// Reads a constant by its [`FIELD_NAMES`](Self::FIELD_NAMES) name.
    pub fn get(&self, name: &str) -> Option<f64> {
        match name {
            "s" => Some(self.s),
            "beta" => Some(self.beta),
            "phi" => Some(self.phi),
            "c" => Some(self.c),
            "c_final" => Some(self.c_final),
            _ => None,
        }
    }

    /// Overwrites a constant by name; returns `false` (and changes nothing)
    /// for an unknown name. Range validation still happens at
    /// [`ProtocolParamsBuilder::build`], the single validation point.
    pub fn set(&mut self, name: &str, value: f64) -> bool {
        match name {
            "s" => self.s = value,
            "beta" => self.beta = value,
            "phi" => self.phi = value,
            "c" => self.c = value,
            "c_final" => self.c_final = value,
            _ => return false,
        }
        true
    }

    fn validate(&self) -> Result<(), ProtocolError> {
        let checks = [
            ("s", self.s),
            ("beta", self.beta),
            ("phi", self.phi),
            ("c", self.c),
            ("c_final", self.c_final),
        ];
        for (name, value) in checks {
            if !(value.is_finite() && value > 0.0) {
                return Err(ProtocolError::InvalidConstant { name, value });
            }
        }
        if !(self.phi > self.beta && self.beta > self.s) {
            return Err(ProtocolError::InvalidConstant {
                name: "phi > beta > s",
                value: self.phi,
            });
        }
        Ok(())
    }
}

/// The complete round/phase schedule derived from the parameters.
///
/// Stage 1 phase lengths are in rounds. Stage 2 phases are described by
/// their sample sizes `ℓ`; each such phase lasts `2ℓ` rounds.
#[derive(Debug, Clone, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Schedule {
    stage1_phase_lengths: Vec<u64>,
    stage2_sample_sizes: Vec<u64>,
}

impl Schedule {
    /// Round lengths of the Stage 1 phases (`0, 1, …, T, T+1`).
    pub fn stage1_phase_lengths(&self) -> &[u64] {
        &self.stage1_phase_lengths
    }

    /// Sample sizes `ℓ` of the Stage 2 phases (`0, …, T′`); the phase
    /// lengths in rounds are twice these values.
    pub fn stage2_sample_sizes(&self) -> &[u64] {
        &self.stage2_sample_sizes
    }

    /// The number `T + 2` of Stage 1 phases.
    pub fn stage1_phases(&self) -> usize {
        self.stage1_phase_lengths.len()
    }

    /// The number `T′ + 1` of Stage 2 phases.
    pub fn stage2_phases(&self) -> usize {
        self.stage2_sample_sizes.len()
    }

    /// Total number of rounds of Stage 1.
    pub fn stage1_rounds(&self) -> u64 {
        self.stage1_phase_lengths.iter().sum()
    }

    /// Total number of rounds of Stage 2.
    pub fn stage2_rounds(&self) -> u64 {
        self.stage2_sample_sizes.iter().map(|l| 2 * l).sum()
    }

    /// Total number of rounds of the whole protocol.
    pub fn total_rounds(&self) -> u64 {
        self.stage1_rounds() + self.stage2_rounds()
    }
}

/// Configuration of one protocol execution.
///
/// Construct with [`ProtocolParams::builder`]:
///
/// ```
/// use plurality_core::ProtocolParams;
///
/// # fn main() -> Result<(), plurality_core::ProtocolError> {
/// let params = ProtocolParams::builder(10_000, 3)
///     .epsilon(0.2)
///     .seed(7)
///     .build()?;
/// assert_eq!(params.num_nodes(), 10_000);
/// let schedule = params.schedule();
/// assert!(schedule.total_rounds() > 0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct ProtocolParams {
    num_nodes: usize,
    num_opinions: usize,
    epsilon: f64,
    seed: u64,
    delivery: DeliverySemantics,
    topology: TopologySpec,
    fault: FaultSpec,
    churn: ChurnSpec,
    schedule_noise: NoiseSchedule,
    clock: ClockSpec,
    constants: ProtocolConstants,
}

impl ProtocolParams {
    /// Starts building parameters for `num_nodes` agents and `num_opinions`
    /// opinions.
    pub fn builder(num_nodes: usize, num_opinions: usize) -> ProtocolParamsBuilder {
        ProtocolParamsBuilder {
            num_nodes,
            num_opinions,
            epsilon: 0.2,
            seed: 0,
            delivery: DeliverySemantics::Exact,
            topology: TopologySpec::Complete,
            fault: FaultSpec::default(),
            churn: ChurnSpec::none(),
            schedule_noise: NoiseSchedule::constant(),
            clock: ClockSpec::sync(),
            constants: ProtocolConstants::default(),
        }
    }

    /// The number of agents `n`.
    pub fn num_nodes(&self) -> usize {
        self.num_nodes
    }

    /// The number of opinions `k`.
    pub fn num_opinions(&self) -> usize {
        self.num_opinions
    }

    /// The noise-resilience parameter ε the schedule is tuned for (the noise
    /// matrix is expected to be (ε, δ)-majority-preserving for the relevant
    /// biases δ).
    pub fn epsilon(&self) -> f64 {
        self.epsilon
    }

    /// The RNG seed for the run.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The delivery semantics (process O, B or P) used by the simulation.
    pub fn delivery(&self) -> DeliverySemantics {
        self.delivery
    }

    /// The communication topology the run's network is built over (the
    /// complete graph — the paper's model — unless overridden).
    pub fn topology(&self) -> TopologySpec {
        self.topology
    }

    /// The faults injected into the run's network (all disabled — the
    /// paper's fault-free model — unless overridden).
    pub fn fault(&self) -> FaultSpec {
        self.fault
    }

    /// The population/edge churn applied to the run's network at phase
    /// boundaries (none — the paper's static model — unless overridden).
    pub fn churn(&self) -> ChurnSpec {
        self.churn
    }

    /// The noise schedule `ε(t)` the run's network follows (constant — the
    /// paper's time-invariant channel — unless overridden). Not to be
    /// confused with [`schedule`](Self::schedule), the round/phase plan.
    pub fn noise_schedule(&self) -> NoiseSchedule {
        self.schedule_noise
    }

    /// The clock model of the run's agents (synchronous — the paper's
    /// model — unless overridden).
    pub fn clock(&self) -> ClockSpec {
        self.clock
    }

    /// The tunable protocol constants.
    pub fn constants(&self) -> &ProtocolConstants {
        &self.constants
    }

    /// Computes the full phase schedule of the two stages (Section 3.1).
    ///
    /// * Stage 1 has `T + 2` phases with
    ///   `T = ⌊ln(n / (2(s/ε²)·ln n)) / ln(β/ε² + 1)⌋` (clamped at 0):
    ///   phase 0 lasts `(s/ε²)·ln n` rounds, phases `1..=T` last `β/ε²`
    ///   rounds, and phase `T+1` lasts `(φ/ε²)·ln n` rounds.
    /// * Stage 2 has `T′ + 1 = ⌈ln(√n / ln n)⌉ + 1` phases; phases
    ///   `0..T′` sample `ℓ = ⌈c/ε²⌉` messages (rounded up to an odd number)
    ///   and the final phase samples `ℓ′ = ⌈c_final·ln(n)/ε²⌉` messages.
    pub fn schedule(&self) -> Schedule {
        let n = self.num_nodes as f64;
        let eps2 = self.epsilon * self.epsilon;
        let ln_n = n.ln().max(1.0);
        let cst = &self.constants;

        let phase0 = (cst.s / eps2 * ln_n).ceil().max(1.0) as u64;
        let middle = (cst.beta / eps2).ceil().max(1.0) as u64;
        let last = (cst.phi / eps2 * ln_n).ceil().max(1.0) as u64;

        let growth = (cst.beta / eps2 + 1.0).ln();
        let ratio = n / (2.0 * (cst.s / eps2) * ln_n);
        let t = if ratio > 1.0 && growth > 0.0 {
            (ratio.ln() / growth).floor().max(0.0) as usize
        } else {
            0
        };

        let mut stage1 = Vec::with_capacity(t + 2);
        stage1.push(phase0);
        stage1.extend(std::iter::repeat_n(middle, t));
        stage1.push(last);

        let t_prime = ((n.sqrt() / ln_n).ln().ceil().max(1.0)) as usize;
        let ell = make_odd((cst.c / eps2).ceil().max(3.0) as u64);
        // The final phase is Θ(ε⁻² log n) and asymptotically dominates ℓ;
        // clamp it from below so the property also holds at tiny n where
        // c_final·ln n can drop under c.
        let ell_final = make_odd(((cst.c_final * ln_n / eps2).ceil().max(3.0) as u64).max(ell));
        let mut stage2 = vec![ell; t_prime];
        stage2.push(ell_final);

        Schedule {
            stage1_phase_lengths: stage1,
            stage2_sample_sizes: stage2,
        }
    }

    /// The paper's asymptotic round bound `log n / ε²` (Theorems 1 and 2),
    /// without constants — useful for normalizing measured round counts.
    pub fn theoretical_round_scale(&self) -> f64 {
        (self.num_nodes as f64).ln() / (self.epsilon * self.epsilon)
    }

    /// The paper's memory bound `log log n + log(1/ε)` in bits (Theorems 1
    /// and 2), without constants.
    pub fn theoretical_memory_scale_bits(&self) -> f64 {
        let n = self.num_nodes as f64;
        n.ln().max(1.0).log2() + (1.0 / self.epsilon).log2()
    }
}

/// Rounds `x` up to the next odd integer (the Stage 2 analysis assumes odd
/// sample sizes; Appendix C shows even sizes are never better).
fn make_odd(x: u64) -> u64 {
    if x.is_multiple_of(2) {
        x + 1
    } else {
        x
    }
}

/// Builder for [`ProtocolParams`].
#[derive(Debug, Clone)]
pub struct ProtocolParamsBuilder {
    num_nodes: usize,
    num_opinions: usize,
    epsilon: f64,
    seed: u64,
    delivery: DeliverySemantics,
    topology: TopologySpec,
    fault: FaultSpec,
    churn: ChurnSpec,
    schedule_noise: NoiseSchedule,
    clock: ClockSpec,
    constants: ProtocolConstants,
}

impl ProtocolParamsBuilder {
    /// Sets the noise-resilience parameter ε (default 0.2).
    pub fn epsilon(mut self, epsilon: f64) -> Self {
        self.epsilon = epsilon;
        self
    }

    /// Sets the RNG seed (default 0).
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the delivery semantics (default [`DeliverySemantics::Exact`]).
    pub fn delivery(mut self, delivery: DeliverySemantics) -> Self {
        self.delivery = delivery;
        self
    }

    /// Sets the communication topology (default
    /// [`TopologySpec::Complete`]). Feasibility against `n` and the
    /// delivery process is validated when the run's network is built.
    pub fn topology(mut self, topology: TopologySpec) -> Self {
        self.topology = topology;
        self
    }

    /// Sets the injected faults (default [`FaultSpec::none`], the paper's
    /// fault-free model). Feasibility against `k`, the topology and the
    /// execution backend is validated when the run's network is built.
    pub fn fault(mut self, fault: FaultSpec) -> Self {
        self.fault = fault;
        self
    }

    /// Sets the population/edge churn (default [`ChurnSpec::none`], the
    /// paper's static population). Feasibility against `k`, the topology,
    /// the faults and the execution backend is validated when the run's
    /// network is built.
    pub fn churn(mut self, churn: ChurnSpec) -> Self {
        self.churn = churn;
        self
    }

    /// Sets the noise schedule `ε(t)` (default [`NoiseSchedule::constant`],
    /// the paper's time-invariant channel). Scheduled ε values are
    /// validated against the uniform family's domain when the run's
    /// network is built.
    pub fn noise_schedule(mut self, schedule: NoiseSchedule) -> Self {
        self.schedule_noise = schedule;
        self
    }

    /// Sets the clock model (default [`ClockSpec::sync`], the paper's
    /// synchronous rounds). Backend support is validated when the run's
    /// network is built.
    pub fn clock(mut self, clock: ClockSpec) -> Self {
        self.clock = clock;
        self
    }

    /// Overrides the protocol constants.
    pub fn constants(mut self, constants: ProtocolConstants) -> Self {
        self.constants = constants;
        self
    }

    /// Validates and builds the parameters.
    ///
    /// # Errors
    ///
    /// * [`ProtocolError::TooFewNodes`] / [`ProtocolError::TooFewOpinions`]
    ///   for degenerate systems.
    /// * [`ProtocolError::InvalidEpsilon`] unless `0 < ε < 1`.
    /// * [`ProtocolError::InvalidConstant`] if the constants violate
    ///   `φ > β > s > 0` or are not positive and finite.
    pub fn build(self) -> Result<ProtocolParams, ProtocolError> {
        if self.num_nodes < 2 {
            return Err(ProtocolError::TooFewNodes {
                found: self.num_nodes,
            });
        }
        if self.num_opinions < 2 {
            return Err(ProtocolError::TooFewOpinions {
                found: self.num_opinions,
            });
        }
        if !(self.epsilon.is_finite() && self.epsilon > 0.0 && self.epsilon < 1.0) {
            return Err(ProtocolError::InvalidEpsilon {
                value: self.epsilon,
            });
        }
        self.constants.validate()?;
        Ok(ProtocolParams {
            num_nodes: self.num_nodes,
            num_opinions: self.num_opinions,
            epsilon: self.epsilon,
            seed: self.seed,
            delivery: self.delivery,
            topology: self.topology,
            fault: self.fault,
            churn: self.churn,
            schedule_noise: self.schedule_noise,
            clock: self.clock,
            constants: self.constants,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_validates_inputs() {
        assert!(matches!(
            ProtocolParams::builder(1, 3).build(),
            Err(ProtocolError::TooFewNodes { .. })
        ));
        assert!(matches!(
            ProtocolParams::builder(100, 1).build(),
            Err(ProtocolError::TooFewOpinions { .. })
        ));
        assert!(matches!(
            ProtocolParams::builder(100, 3).epsilon(0.0).build(),
            Err(ProtocolError::InvalidEpsilon { .. })
        ));
        assert!(matches!(
            ProtocolParams::builder(100, 3).epsilon(1.5).build(),
            Err(ProtocolError::InvalidEpsilon { .. })
        ));
        let bad = ProtocolConstants {
            s: 3.0,
            beta: 2.0,
            phi: 1.0,
            c: 4.0,
            c_final: 2.0,
        };
        assert!(matches!(
            ProtocolParams::builder(100, 3).constants(bad).build(),
            Err(ProtocolError::InvalidConstant { .. })
        ));
    }

    #[test]
    fn schedule_shapes_match_the_paper() {
        let params = ProtocolParams::builder(10_000, 3).epsilon(0.2).build().unwrap();
        let schedule = params.schedule();
        // Stage 1 has at least phase 0 and phase T+1.
        assert!(schedule.stage1_phases() >= 2);
        // Stage 2 has at least the final long phase.
        assert!(schedule.stage2_phases() >= 2);
        // Phase 0 and the last Stage-1 phase are Θ(log n / ε²); the middle
        // phases are Θ(1/ε²) and therefore shorter.
        let lengths = schedule.stage1_phase_lengths();
        let first = lengths[0];
        let last = *lengths.last().unwrap();
        assert!(last >= first, "phi > s so the last phase is longer");
        for &middle in &lengths[1..lengths.len() - 1] {
            assert!(middle < first);
        }
        // All Stage 2 sample sizes are odd.
        for &l in schedule.stage2_sample_sizes() {
            assert_eq!(l % 2, 1);
        }
        // The final Stage-2 phase is the longest.
        let sizes = schedule.stage2_sample_sizes();
        assert!(sizes.last().unwrap() >= sizes.first().unwrap());
    }

    #[test]
    fn total_rounds_scale_like_log_n_over_eps_squared() {
        // Doubling 1/eps^2 roughly doubles the total number of rounds.
        let base = ProtocolParams::builder(50_000, 3).epsilon(0.2).build().unwrap();
        let finer = ProtocolParams::builder(50_000, 3)
            .epsilon(0.2 / std::f64::consts::SQRT_2)
            .build()
            .unwrap();
        let r1 = base.schedule().total_rounds() as f64;
        let r2 = finer.schedule().total_rounds() as f64;
        let ratio = r2 / r1;
        assert!(
            ratio > 1.6 && ratio < 2.4,
            "expected roughly 2x rounds, got {ratio}"
        );
    }

    #[test]
    fn schedule_is_well_defined_for_tiny_systems() {
        let params = ProtocolParams::builder(4, 2).epsilon(0.45).build().unwrap();
        let schedule = params.schedule();
        assert!(schedule.total_rounds() > 0);
        assert!(schedule.stage1_phases() >= 2);
    }

    #[test]
    fn theoretical_scales_are_monotone() {
        let small = ProtocolParams::builder(1_000, 3).epsilon(0.2).build().unwrap();
        let large = ProtocolParams::builder(100_000, 3).epsilon(0.2).build().unwrap();
        assert!(large.theoretical_round_scale() > small.theoretical_round_scale());
        assert!(large.theoretical_memory_scale_bits() > small.theoretical_memory_scale_bits());
        let noisy = ProtocolParams::builder(1_000, 3).epsilon(0.05).build().unwrap();
        assert!(noisy.theoretical_round_scale() > small.theoretical_round_scale());
    }

    #[test]
    fn default_constants_satisfy_ordering() {
        let c = ProtocolConstants::default();
        assert!(c.phi > c.beta && c.beta > c.s && c.s > 0.0);
        assert!(c.validate().is_ok());
    }

    #[test]
    fn constants_are_addressable_by_name() {
        let mut c = ProtocolConstants::default();
        for name in ProtocolConstants::FIELD_NAMES {
            let value = c.get(name).expect("every listed field is readable");
            assert!(c.set(name, value + 0.5));
            assert_eq!(c.get(name), Some(value + 0.5));
        }
        assert_eq!(c.get("gamma"), None);
        assert!(!c.set("gamma", 1.0));
    }

    #[test]
    fn accessors_report_builder_values() {
        let params = ProtocolParams::builder(500, 4)
            .epsilon(0.3)
            .seed(11)
            .delivery(DeliverySemantics::Poissonized)
            .build()
            .unwrap();
        assert_eq!(params.num_nodes(), 500);
        assert_eq!(params.num_opinions(), 4);
        assert_eq!(params.epsilon(), 0.3);
        assert_eq!(params.seed(), 11);
        assert_eq!(params.delivery(), DeliverySemantics::Poissonized);
        assert_eq!(params.topology(), TopologySpec::Complete);
        assert!(params.fault().is_none());

        let fault: FaultSpec = "drop(0.1)".parse().unwrap();
        let params = ProtocolParams::builder(500, 4).fault(fault).build().unwrap();
        assert_eq!(params.fault(), fault);

        // The temporal axes default to off and pass through the builder
        // unvalidated (the run's network is the single validation point,
        // exactly like faults and topology).
        assert!(params.churn().is_none());
        assert!(params.noise_schedule().is_const());
        assert!(params.clock().is_sync());
        let churn: ChurnSpec = "join(0.01)+leave(0.02)".parse().unwrap();
        let schedule: NoiseSchedule = "burst(0.4@2:3)".parse().unwrap();
        let clock: ClockSpec = "skew(0.1)".parse().unwrap();
        let params = ProtocolParams::builder(500, 4)
            .churn(churn)
            .noise_schedule(schedule)
            .clock(clock)
            .build()
            .unwrap();
        assert_eq!(params.churn(), churn);
        assert_eq!(params.noise_schedule(), schedule);
        assert_eq!(params.clock(), clock);

        let params = ProtocolParams::builder(500, 4)
            .topology(TopologySpec::RandomRegular { degree: 8 })
            .build()
            .unwrap();
        assert_eq!(
            params.topology(),
            TopologySpec::RandomRegular { degree: 8 }
        );
    }
}
