//! Stage 1: opinion acquisition (Section 3.1.1 of the paper).
//!
//! During each phase of Stage 1,
//!
//! * every agent that already supported an opinion *at the beginning of the
//!   phase* pushes that opinion in every round of the phase;
//! * every agent that was undecided at the beginning of the phase and
//!   receives at least one message during the phase adopts, at the end of
//!   the phase, an opinion chosen uniformly at random (counting
//!   multiplicities) among the messages it received, and starts pushing it
//!   from the next phase on.
//!
//! Opinionated agents never change their opinion during Stage 1. The phase
//! lengths follow the schedule computed by
//! [`ProtocolParams::schedule`](crate::ProtocolParams::schedule): phase 0
//! has `(s/ε²)·ln n` rounds, phases `1..=T` have `β/ε²` rounds, and phase
//! `T+1` has `(φ/ε²)·ln n` rounds, so that the number of opinionated agents
//! multiplies by roughly `β/ε² + 1` per middle phase (Claims 2 and 3) while
//! the bias towards the correct opinion degrades by at most a factor `ε/2`
//! per phase (Lemma 7), ending at `Ω(√(log n / n))` (Lemma 4).
//!
//! The stage is **backend-generic**: it drives any
//! [`PushBackend`] through the shared phase lifecycle
//! (`begin_phase` → opinionated pushes → `end_phase` →
//! `resolve_uniform_adoption` over the undecided agents). Opinions never
//! change mid-phase — adoption happens strictly after `end_phase` — so
//! pushing the live state each round is exactly the paper's
//! "push the opinion held at the beginning of the phase" rule.

use crate::memory::MemoryMeter;
use crate::observe::{Observer, PhaseSnapshot, RunProgress, StopCondition};
use crate::record::{PhaseRecord, StageId};
use pushsim::{AdoptionScope, Opinion, PhaseObservation, PushBackend};
use rand::rngs::StdRng;

/// Runs Stage 1 phases on `net` (any [`PushBackend`]) until the schedule
/// is exhausted or `stop` fires at a phase boundary.
///
/// `phase_lengths` is the Stage 1 schedule (in rounds), `reference` is the
/// correct opinion used for bias bookkeeping, `rng` drives the agents'
/// adoption choices, and `meter` accumulates memory-footprint statistics.
/// `observer` is notified at every phase boundary with a cheap
/// [`PhaseSnapshot`]; observation never touches `rng` or the backend's
/// delivery RNG, so attaching any observer leaves the execution
/// bit-identical. `progress` carries the run's cumulative state for the
/// stop condition (shared with Stage 2).
///
/// Returns one [`PhaseRecord`] per executed phase.
#[allow(clippy::too_many_arguments)] // one argument per snapshot field
pub(crate) fn run<B: PushBackend>(
    net: &mut B,
    phase_lengths: &[u64],
    reference: Opinion,
    rng: &mut StdRng,
    meter: &mut MemoryMeter,
    observer: &mut dyn Observer,
    stop: &StopCondition,
    progress: &mut RunProgress,
) -> Vec<PhaseRecord> {
    let mut records = Vec::with_capacity(phase_lengths.len());
    for (phase_index, &length) in phase_lengths.iter().enumerate() {
        if stop.should_stop(progress) {
            break;
        }
        observer.on_phase_begin(Some(StageId::One), phase_index);
        net.begin_phase();
        let mut messages = 0u64;
        for _ in 0..length {
            messages += net.push_opinionated_round().messages_sent();
        }
        net.end_phase();

        // Undecided agents that received at least one message adopt one
        // uniformly random received opinion; they push from the next phase.
        net.resolve_uniform_adoption(AdoptionScope::UndecidedOnly, rng);

        meter.record_counter(net.observation().max_inbox());
        meter.record_phase();
        let record = PhaseRecord::new(
            StageId::One,
            phase_index,
            length,
            messages,
            net.distribution(),
            reference,
        );
        let snapshot = PhaseSnapshot::new(
            Some(StageId::One),
            phase_index,
            length,
            net.rounds_executed(),
            messages,
            net.messages_sent(),
            record.distribution_after().clone(),
            record.bias_after(),
        )
        .with_topology(net.config().topology().label());
        observer.on_phase_end(&snapshot);
        progress.note_phase(&snapshot);
        records.push(record);
    }
    records
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::ProtocolParams;
    use noisy_channel::NoiseMatrix;
    use pushsim::{
        CountingNetwork, DeliverySemantics, Network, NodeState, OpinionDistribution, SimConfig,
    };
    use rand::SeedableRng;

    fn network(n: usize, k: usize, eps: f64, seed: u64) -> Network {
        let noise = NoiseMatrix::uniform(k, eps).unwrap();
        let config = SimConfig::builder(n, k).seed(seed).build().unwrap();
        Network::new(config, noise).unwrap()
    }

    /// The stage with no observer and no early stop (the pre-observation
    /// call shape).
    fn run_all<B: PushBackend>(
        net: &mut B,
        phase_lengths: &[u64],
        reference: Opinion,
        rng: &mut StdRng,
        meter: &mut MemoryMeter,
    ) -> Vec<PhaseRecord> {
        run(
            net,
            phase_lengths,
            reference,
            rng,
            meter,
            &mut crate::observe::NoObserver,
            &StopCondition::ScheduleExhausted,
            &mut RunProgress::new(),
        )
    }

    #[test]
    fn stage1_activates_every_node_from_a_single_source() {
        let n = 400;
        let eps = 0.3;
        let params = ProtocolParams::builder(n, 3).epsilon(eps).build().unwrap();
        let schedule = params.schedule();
        let mut net = network(n, 3, eps, 1);
        net.seed_rumor(0, Opinion::new(1)).unwrap();
        let mut rng = StdRng::seed_from_u64(2);
        let mut meter = MemoryMeter::new(3);
        let records = run_all(
            &mut net,
            schedule.stage1_phase_lengths(),
            Opinion::new(1),
            &mut rng,
            &mut meter,
        );
        assert_eq!(records.len(), schedule.stage1_phases());
        let final_dist = net.distribution();
        assert_eq!(
            final_dist.undecided(),
            0,
            "all nodes should be opinionated after Stage 1: {final_dist}"
        );
        // The correct opinion should hold a positive bias at the end of
        // Stage 1 (Lemma 4). With these parameters the bias is comfortably
        // positive in practice.
        let bias = final_dist.bias_towards(Opinion::new(1)).unwrap();
        assert!(bias > 0.0, "bias {bias} should be positive");
        // Activation is monotone non-decreasing across phases.
        let mut last = 0.0;
        for r in &records {
            assert!(r.opinionated_fraction_after() >= last);
            last = r.opinionated_fraction_after();
        }
        assert!(meter.max_phase_counter() > 0);
        assert_eq!(meter.num_phases() as usize, records.len());
    }

    #[test]
    fn opinionated_nodes_never_change_opinion_during_stage1() {
        let n = 200;
        let eps = 0.3;
        let mut net = network(n, 2, eps, 3);
        // Seed a sizeable minority of opinion 1 and majority of opinion 0.
        net.seed_counts(&[60, 40]).unwrap();
        let before: Vec<NodeState> = net.states().to_vec();
        let params = ProtocolParams::builder(n, 2).epsilon(eps).build().unwrap();
        let mut rng = StdRng::seed_from_u64(4);
        let mut meter = MemoryMeter::new(2);
        run_all(
            &mut net,
            params.schedule().stage1_phase_lengths(),
            Opinion::new(0),
            &mut rng,
            &mut meter,
        );
        for (node, state) in before.iter().enumerate() {
            if let Some(o) = state.opinion() {
                assert_eq!(
                    net.state(node).opinion(),
                    Some(o),
                    "node {node} changed opinion during Stage 1"
                );
            }
        }
    }

    #[test]
    fn a_phase_with_no_senders_changes_nothing() {
        let mut net = network(50, 2, 0.3, 5);
        // Nobody is opinionated: no messages are ever sent.
        let mut rng = StdRng::seed_from_u64(6);
        let mut meter = MemoryMeter::new(2);
        let records = run_all(&mut net, &[10], Opinion::new(0), &mut rng, &mut meter);
        assert_eq!(records.len(), 1);
        assert_eq!(records[0].messages(), 0);
        let dist: OpinionDistribution = net.distribution();
        assert_eq!(dist.opinionated(), 0);
        assert_eq!(records[0].bias_after(), None);
    }

    #[test]
    fn counting_stage1_activates_every_node_from_a_single_source() {
        // The *same* generic run path, instantiated with the counting
        // backend instead of the agent-level one.
        let n = 400;
        let eps = 0.3;
        let params = ProtocolParams::builder(n, 3).epsilon(eps).build().unwrap();
        let schedule = params.schedule();
        let noise = NoiseMatrix::uniform(3, eps).unwrap();
        let config = SimConfig::builder(n, 3)
            .seed(1)
            .delivery(DeliverySemantics::Poissonized)
            .build()
            .unwrap();
        let mut net = CountingNetwork::new(config, noise).unwrap();
        net.seed_rumor(Opinion::new(1)).unwrap();
        let mut rng = StdRng::seed_from_u64(2);
        let mut meter = MemoryMeter::new(3);
        let records = run_all(
            &mut net,
            schedule.stage1_phase_lengths(),
            Opinion::new(1),
            &mut rng,
            &mut meter,
        );
        assert_eq!(records.len(), schedule.stage1_phases());
        let final_dist = net.distribution();
        assert_eq!(
            final_dist.undecided(),
            0,
            "all nodes should be opinionated after counting Stage 1: {final_dist}"
        );
        assert!(final_dist.bias_towards(Opinion::new(1)).unwrap() > 0.0);
        // Activation is monotone non-decreasing across phases.
        let mut last = 0.0;
        for r in &records {
            assert!(r.opinionated_fraction_after() >= last);
            last = r.opinionated_fraction_after();
        }
        assert!(meter.max_phase_counter() > 0);
    }

    #[test]
    fn newly_opinionated_nodes_do_not_push_within_their_adoption_phase() {
        // With exactly one opinionated node and one round per phase, at most
        // one message can be sent per phase, because adopters only start
        // pushing in the next phase.
        let mut net = network(50, 2, 0.3, 7);
        net.seed_rumor(0, Opinion::new(0)).unwrap();
        let mut rng = StdRng::seed_from_u64(8);
        let mut meter = MemoryMeter::new(2);
        let records = run_all(&mut net, &[1, 1], Opinion::new(0), &mut rng, &mut meter);
        assert_eq!(records[0].messages(), 1);
        // In phase 2 the source plus at most one adopter push.
        assert!(records[1].messages() <= 2);
    }
}
