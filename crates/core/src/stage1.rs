//! Stage 1: opinion acquisition (Section 3.1.1 of the paper).
//!
//! During each phase of Stage 1,
//!
//! * every agent that already supported an opinion *at the beginning of the
//!   phase* pushes that opinion in every round of the phase;
//! * every agent that was undecided at the beginning of the phase and
//!   receives at least one message during the phase adopts, at the end of
//!   the phase, an opinion chosen uniformly at random (counting
//!   multiplicities) among the messages it received, and starts pushing it
//!   from the next phase on.
//!
//! Opinionated agents never change their opinion during Stage 1. The phase
//! lengths follow the schedule computed by
//! [`ProtocolParams::schedule`](crate::ProtocolParams::schedule): phase 0
//! has `(s/ε²)·ln n` rounds, phases `1..=T` have `β/ε²` rounds, and phase
//! `T+1` has `(φ/ε²)·ln n` rounds, so that the number of opinionated agents
//! multiplies by roughly `β/ε² + 1` per middle phase (Claims 2 and 3) while
//! the bias towards the correct opinion degrades by at most a factor `ε/2`
//! per phase (Lemma 7), ending at `Ω(√(log n / n))` (Lemma 4).

use crate::memory::MemoryMeter;
use crate::record::{PhaseRecord, StageId};
use pushsim::{CountingNetwork, Network, Opinion};
use rand::rngs::StdRng;

/// Runs all Stage 1 phases on `net`.
///
/// `phase_lengths` is the Stage 1 schedule (in rounds), `reference` is the
/// correct opinion used for bias bookkeeping, `rng` drives the agents'
/// random choices, and `meter` accumulates memory-footprint statistics.
///
/// Returns one [`PhaseRecord`] per phase.
pub(crate) fn run(
    net: &mut Network,
    phase_lengths: &[u64],
    reference: Opinion,
    rng: &mut StdRng,
    meter: &mut MemoryMeter,
) -> Vec<PhaseRecord> {
    let mut records = Vec::with_capacity(phase_lengths.len());
    for (phase_index, &length) in phase_lengths.iter().enumerate() {
        // Opinions as of the beginning of the phase: only these are pushed,
        // and only agents undecided *now* may adopt at the end of the phase.
        let snapshot: Vec<Option<Opinion>> =
            net.states().iter().map(|s| s.opinion()).collect();

        let num_nodes = net.num_nodes();
        net.begin_phase();
        let mut messages = 0u64;
        for _ in 0..length {
            let report = net.push_round(|node, _state| snapshot[node]);
            messages += report.messages_sent();
        }
        let inboxes = net.end_phase();

        // Decide adoptions while the inboxes are borrowed, apply afterwards.
        let mut adoptions: Vec<(usize, Opinion)> = Vec::new();
        let mut max_received = 0u64;
        for (node, snap) in snapshot.iter().enumerate().take(num_nodes) {
            let received = u64::from(inboxes.received_total(node));
            max_received = max_received.max(received);
            if snap.is_none() && received > 0 {
                if let Some(opinion) = inboxes.sample_one(node, rng) {
                    adoptions.push((node, opinion));
                }
            }
        }
        for (node, opinion) in adoptions {
            net.set_opinion(node, Some(opinion));
        }

        meter.record_counter(max_received);
        meter.record_phase();
        records.push(PhaseRecord::new(
            StageId::One,
            phase_index,
            length,
            messages,
            net.distribution(),
            reference,
        ));
    }
    records
}

/// Runs all Stage 1 phases on a count-based network — O(k²) random draws
/// per phase instead of O(n · rounds).
///
/// Semantically this is Stage 1 under the Poissonized process P: every
/// agent opinionated at the beginning of a phase pushes in every round of
/// the phase; at the end, each undecided agent independently receives a
/// `Poisson(Λ)`-sized inbox and, if non-empty, adopts a uniformly drawn
/// message — which at the count level is one binomial (who received
/// anything) plus one multinomial (which opinion they drew, by Poisson
/// splitting). The adoption randomness comes from the network's own RNG.
pub(crate) fn run_counting(
    net: &mut CountingNetwork,
    phase_lengths: &[u64],
    reference: Opinion,
    meter: &mut MemoryMeter,
) -> Vec<PhaseRecord> {
    let k = net.num_opinions();
    let mut records = Vec::with_capacity(phase_lengths.len());
    for (phase_index, &length) in phase_lengths.iter().enumerate() {
        // Only opinions held at the beginning of the phase are pushed;
        // adopters join the senders from the next phase on.
        let snapshot = net.counts().to_vec();
        net.begin_phase();
        let mut messages = 0u64;
        for _ in 0..length {
            messages += net.push_round_batched(&snapshot).messages_sent();
        }
        net.end_phase();

        let undecided = net.undecided();
        let (adoptions, _silent) = net.sample_one_adoptions(undecided);
        let adopted: u64 = adoptions.iter().sum();
        net.apply_deltas(&vec![0; k], &adoptions, -(adopted as i64));

        meter.record_counter(net.tally().typical_max_inbox());
        meter.record_phase();
        records.push(PhaseRecord::new(
            StageId::One,
            phase_index,
            length,
            messages,
            net.distribution(),
            reference,
        ));
    }
    records
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::ProtocolParams;
    use noisy_channel::NoiseMatrix;
    use pushsim::{DeliverySemantics, NodeState, OpinionDistribution, SimConfig};
    use rand::SeedableRng;

    fn network(n: usize, k: usize, eps: f64, seed: u64) -> Network {
        let noise = NoiseMatrix::uniform(k, eps).unwrap();
        let config = SimConfig::builder(n, k).seed(seed).build().unwrap();
        Network::new(config, noise).unwrap()
    }

    #[test]
    fn stage1_activates_every_node_from_a_single_source() {
        let n = 400;
        let eps = 0.3;
        let params = ProtocolParams::builder(n, 3).epsilon(eps).build().unwrap();
        let schedule = params.schedule();
        let mut net = network(n, 3, eps, 1);
        net.seed_rumor(0, Opinion::new(1)).unwrap();
        let mut rng = StdRng::seed_from_u64(2);
        let mut meter = MemoryMeter::new(3);
        let records = run(
            &mut net,
            schedule.stage1_phase_lengths(),
            Opinion::new(1),
            &mut rng,
            &mut meter,
        );
        assert_eq!(records.len(), schedule.stage1_phases());
        let final_dist = net.distribution();
        assert_eq!(
            final_dist.undecided(),
            0,
            "all nodes should be opinionated after Stage 1: {final_dist}"
        );
        // The correct opinion should hold a positive bias at the end of
        // Stage 1 (Lemma 4). With these parameters the bias is comfortably
        // positive in practice.
        let bias = final_dist.bias_towards(Opinion::new(1)).unwrap();
        assert!(bias > 0.0, "bias {bias} should be positive");
        // Activation is monotone non-decreasing across phases.
        let mut last = 0.0;
        for r in &records {
            assert!(r.opinionated_fraction_after() >= last);
            last = r.opinionated_fraction_after();
        }
        assert!(meter.max_phase_counter() > 0);
        assert_eq!(meter.num_phases() as usize, records.len());
    }

    #[test]
    fn opinionated_nodes_never_change_opinion_during_stage1() {
        let n = 200;
        let eps = 0.3;
        let mut net = network(n, 2, eps, 3);
        // Seed a sizeable minority of opinion 1 and majority of opinion 0.
        net.seed_counts(&[60, 40]).unwrap();
        let before: Vec<NodeState> = net.states().to_vec();
        let params = ProtocolParams::builder(n, 2).epsilon(eps).build().unwrap();
        let mut rng = StdRng::seed_from_u64(4);
        let mut meter = MemoryMeter::new(2);
        run(
            &mut net,
            params.schedule().stage1_phase_lengths(),
            Opinion::new(0),
            &mut rng,
            &mut meter,
        );
        for (node, state) in before.iter().enumerate() {
            if let Some(o) = state.opinion() {
                assert_eq!(
                    net.state(node).opinion(),
                    Some(o),
                    "node {node} changed opinion during Stage 1"
                );
            }
        }
    }

    #[test]
    fn a_phase_with_no_senders_changes_nothing() {
        let mut net = network(50, 2, 0.3, 5);
        // Nobody is opinionated: no messages are ever sent.
        let mut rng = StdRng::seed_from_u64(6);
        let mut meter = MemoryMeter::new(2);
        let records = run(&mut net, &[10], Opinion::new(0), &mut rng, &mut meter);
        assert_eq!(records.len(), 1);
        assert_eq!(records[0].messages(), 0);
        let dist: OpinionDistribution = net.distribution();
        assert_eq!(dist.opinionated(), 0);
        assert_eq!(records[0].bias_after(), None);
    }

    #[test]
    fn counting_stage1_activates_every_node_from_a_single_source() {
        let n = 400;
        let eps = 0.3;
        let params = ProtocolParams::builder(n, 3).epsilon(eps).build().unwrap();
        let schedule = params.schedule();
        let noise = NoiseMatrix::uniform(3, eps).unwrap();
        let config = SimConfig::builder(n, 3)
            .seed(1)
            .delivery(DeliverySemantics::Poissonized)
            .build()
            .unwrap();
        let mut net = CountingNetwork::new(config, noise).unwrap();
        net.seed_rumor(Opinion::new(1)).unwrap();
        let mut meter = MemoryMeter::new(3);
        let records = run_counting(
            &mut net,
            schedule.stage1_phase_lengths(),
            Opinion::new(1),
            &mut meter,
        );
        assert_eq!(records.len(), schedule.stage1_phases());
        let final_dist = net.distribution();
        assert_eq!(
            final_dist.undecided(),
            0,
            "all nodes should be opinionated after counting Stage 1: {final_dist}"
        );
        assert!(final_dist.bias_towards(Opinion::new(1)).unwrap() > 0.0);
        // Activation is monotone non-decreasing across phases.
        let mut last = 0.0;
        for r in &records {
            assert!(r.opinionated_fraction_after() >= last);
            last = r.opinionated_fraction_after();
        }
        assert!(meter.max_phase_counter() > 0);
    }

    #[test]
    fn newly_opinionated_nodes_do_not_push_within_their_adoption_phase() {
        // With exactly one opinionated node and one round per phase, at most
        // one message can be sent per phase, because adopters only start
        // pushing in the next phase.
        let mut net = network(50, 2, 0.3, 7);
        net.seed_rumor(0, Opinion::new(0)).unwrap();
        let mut rng = StdRng::seed_from_u64(8);
        let mut meter = MemoryMeter::new(2);
        let records = run(&mut net, &[1, 1], Opinion::new(0), &mut rng, &mut meter);
        assert_eq!(records[0].messages(), 1);
        // In phase 2 the source plus at most one adopter push.
        assert!(records[1].messages() <= 2);
    }
}
