//! Integration tests of the topology subsystem at the `Network` level:
//! the complete graph is bit-for-bit the pre-topology simulator, and
//! sparse graphs actually constrain where messages travel.

use noisy_channel::NoiseMatrix;
use pushsim::{
    AdoptionScope, DeliverySemantics, Network, Opinion, PushBackend, SimConfig, TopologySpec,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// FNV-style fold of the full phase-by-phase evolution of a seeded run:
/// every inbox count after every phase, and the population tallies after
/// every adoption step.
fn evolution_digest(config: SimConfig) -> u64 {
    let noise = NoiseMatrix::uniform(3, 0.2).unwrap();
    let mut net = Network::new(config, noise).unwrap();
    net.seed_counts(&[200, 100, 50]).unwrap();
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut fold = |value: u64| {
        h ^= value;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    };
    for _ in 0..3 {
        net.begin_phase();
        for _ in 0..4 {
            net.push_round(|_, s| s.opinion());
        }
        net.end_phase();
        for node in 0..net.num_nodes() {
            for &c in net.inboxes().received(node) {
                fold(u64::from(c).wrapping_add(1));
            }
        }
        let mut decide = StdRng::seed_from_u64(42);
        net.resolve_uniform_adoption(AdoptionScope::UndecidedOnly, &mut decide);
        for &c in net.opinion_counts() {
            fold(c as u64);
        }
    }
    h
}

#[test]
fn complete_topology_is_bit_identical_to_the_pre_topology_code_path() {
    // The digests below were captured from the simulator *immediately
    // before* the topology subsystem was introduced (same seeds, same
    // run shape). The default complete topology must reproduce the exact
    // historical RNG streams under all three delivery processes — this is
    // what keeps every fixed-seed fixture in the workspace valid.
    let digest_for = |delivery| {
        evolution_digest(
            SimConfig::builder(500, 3)
                .seed(0xBEEF)
                .delivery(delivery)
                .build()
                .unwrap(),
        )
    };
    assert_eq!(digest_for(DeliverySemantics::Exact), 0x141e_3f19_b666_0616);
    assert_eq!(
        digest_for(DeliverySemantics::BallsIntoBins),
        0x6f78_4738_5a78_2242
    );
    assert_eq!(
        digest_for(DeliverySemantics::Poissonized),
        0xba04_649a_9748_04ed
    );
}

#[test]
fn explicit_complete_topology_matches_the_default() {
    let default_config = SimConfig::builder(500, 3).seed(0xBEEF).build().unwrap();
    let explicit = SimConfig::builder(500, 3)
        .seed(0xBEEF)
        .topology(TopologySpec::Complete)
        .build()
        .unwrap();
    assert_eq!(evolution_digest(default_config), evolution_digest(explicit));
}

fn sparse_net(topology: TopologySpec, n: usize, seed: u64) -> Network {
    let noise = NoiseMatrix::identity(3).unwrap();
    let config = SimConfig::builder(n, 3)
        .seed(seed)
        .topology(topology)
        .build()
        .unwrap();
    Network::new(config, noise).unwrap()
}

#[test]
fn ring_pushes_only_reach_ring_neighbors() {
    let mut net = sparse_net(TopologySpec::Ring, 40, 1);
    net.seed_rumor(10, Opinion::new(0)).unwrap();
    net.begin_phase();
    for _ in 0..50 {
        net.push_round(|_, s| s.opinion());
    }
    let inboxes = net.end_phase();
    assert_eq!(inboxes.total_messages(), 50);
    for node in 0..40 {
        let received = inboxes.received_total(node) > 0;
        assert_eq!(
            received,
            node == 9 || node == 11,
            "node {node}: ring messages from 10 may only land on 9 and 11"
        );
    }
}

#[test]
fn rumor_spreads_hop_by_hop_on_a_ring() {
    // One adoption step per phase: after p phases the rumor has travelled
    // at most p hops from the source in each direction.
    let mut net = sparse_net(TopologySpec::Ring, 30, 2);
    net.seed_rumor(0, Opinion::new(1)).unwrap();
    let mut decide = StdRng::seed_from_u64(9);
    for phase in 1..=5u32 {
        net.begin_phase();
        for _ in 0..20 {
            net.push_round(|_, s| s.opinion());
        }
        net.end_phase();
        net.resolve_uniform_adoption(AdoptionScope::UndecidedOnly, &mut decide);
        for node in 0..30usize {
            let hops = node.min(30 - node);
            if net.state(node).opinion().is_some() {
                assert!(
                    hops <= phase as usize,
                    "node {node} is {hops} hops out but adopted by phase {phase}"
                );
            }
        }
    }
    assert!(
        net.distribution().opinionated() > 5,
        "20 rounds per phase saturate the frontier"
    );
}

#[test]
fn isolated_nodes_stay_silent_under_er_zero() {
    // er(0) has no edges at all: decide offers an opinion but no message
    // can be sent, so the round reports zero pushes.
    let mut net = sparse_net(TopologySpec::ErdosRenyi { p: 0.0 }, 20, 3);
    net.seed_counts(&[10, 5, 0]).unwrap();
    net.begin_phase();
    let report = net.push_round(|_, s| s.opinion());
    assert_eq!(report.messages_sent(), 0);
    assert_eq!(net.end_phase().total_messages(), 0);
    assert_eq!(net.messages_sent(), 0);
}

#[test]
fn sparse_runs_are_reproducible_and_seed_sensitive() {
    let run = |seed| {
        let mut net = sparse_net(TopologySpec::RandomRegular { degree: 4 }, 60, seed);
        net.seed_counts(&[20, 10, 5]).unwrap();
        net.begin_phase();
        for _ in 0..10 {
            net.push_round(|_, s| s.opinion());
        }
        net.end_phase();
        (0..60)
            .map(|u| net.inboxes().received(u).to_vec())
            .collect::<Vec<_>>()
    };
    assert_eq!(run(5), run(5));
    assert_ne!(run(5), run(6));
}

#[test]
fn backend_capability_matches_the_constructors() {
    use pushsim::TopologyCapability;
    const {
        assert!(matches!(
            <Network as PushBackend>::TOPOLOGY_CAPABILITY,
            TopologyCapability::Any
        ));
        assert!(matches!(
            <pushsim::CountingNetwork as PushBackend>::TOPOLOGY_CAPABILITY,
            TopologyCapability::Complete
        ));
        assert!(matches!(
            <pushsim::BlockCountingNetwork as PushBackend>::TOPOLOGY_CAPABILITY,
            TopologyCapability::VertexTransitive
        ));
    }
    // Capabilities form the inclusion chain Complete ⊂ VertexTransitive ⊂
    // Any over the spec families.
    for spec in [
        TopologySpec::Complete,
        TopologySpec::Ring,
        TopologySpec::Torus2D,
        TopologySpec::RandomRegular { degree: 8 },
        TopologySpec::ErdosRenyi { p: 0.1 },
    ] {
        assert!(TopologyCapability::Any.supports(spec));
        if TopologyCapability::Complete.supports(spec) {
            assert!(TopologyCapability::VertexTransitive.supports(spec));
        }
        assert_eq!(
            TopologyCapability::VertexTransitive.supports(spec),
            spec.is_vertex_transitive()
        );
    }
    // The counting constructor rejects what the capability rules out; the
    // config itself must request Poissonized-compatible (complete) wiring.
    let noise = NoiseMatrix::uniform(3, 0.2).unwrap();
    let config = SimConfig::builder(50, 3)
        .topology(TopologySpec::Ring)
        .build()
        .unwrap();
    assert!(matches!(
        pushsim::CountingNetwork::new(config, noise),
        Err(pushsim::SimError::UnsupportedTopology { .. })
    ));
    // The agent constructor rejects sparse deferred delivery (the uniform
    // scatter would silently ignore the graph) …
    let noise = NoiseMatrix::uniform(3, 0.2).unwrap();
    let config = SimConfig::builder(50, 3)
        .topology(TopologySpec::Ring)
        .delivery(pushsim::DeliverySemantics::Poissonized)
        .build()
        .unwrap();
    assert!(matches!(
        Network::new(config.clone(), noise.clone()),
        Err(pushsim::SimError::UnsupportedTopology { .. })
    ));
    // … which is exactly the configuration the block-counting backend
    // accepts.
    assert!(pushsim::BlockCountingNetwork::new(config, noise).is_ok());
}
