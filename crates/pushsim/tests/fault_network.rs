//! Integration tests of the fault-injection subsystem: the all-disabled
//! [`FaultSpec`] is bit-for-bit the pre-fault simulator (same pinned
//! digests on every delivery process and both backends), enabled faults
//! perturb the evolution deterministically, and the capability constants
//! match what the constructors accept.

use noisy_channel::NoiseMatrix;
use pushsim::{
    AdoptionScope, CountingNetwork, DeliverySemantics, FaultSpec, Network, PushBackend,
    SimConfig,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// FNV-style fold of the full phase-by-phase evolution of a seeded agent
/// run — identical to the topology suite's digest, so the pinned
/// constants below are the same historical values.
fn evolution_digest(config: SimConfig) -> u64 {
    let noise = NoiseMatrix::uniform(3, 0.2).unwrap();
    let mut net = Network::new(config, noise).unwrap();
    net.seed_counts(&[200, 100, 50]).unwrap();
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut fold = |value: u64| {
        h ^= value;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    };
    for _ in 0..3 {
        net.begin_phase();
        for _ in 0..4 {
            net.push_round(|_, s| s.opinion());
        }
        net.end_phase();
        for node in 0..net.num_nodes() {
            for &c in net.inboxes().received(node) {
                fold(u64::from(c).wrapping_add(1));
            }
        }
        let mut decide = StdRng::seed_from_u64(42);
        net.resolve_uniform_adoption(AdoptionScope::UndecidedOnly, &mut decide);
        for &c in net.opinion_counts() {
            fold(c as u64);
        }
    }
    h
}

/// Backend-generic digest of the per-phase opinion tallies (the part of
/// the evolution both backends expose identically).
fn tally_digest<B: PushBackend>(mut net: B) -> u64 {
    net.seed_counts(&[200, 100, 50]).unwrap();
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for _ in 0..3 {
        net.begin_phase();
        for _ in 0..4 {
            net.push_opinionated_round();
        }
        net.end_phase();
        let mut decide = StdRng::seed_from_u64(42);
        net.resolve_uniform_adoption(AdoptionScope::UndecidedOnly, &mut decide);
        for &c in net.distribution().counts().iter() {
            fold(&mut h, c as u64);
        }
    }
    h
}

fn fold(h: &mut u64, value: u64) {
    *h ^= value;
    *h = h.wrapping_mul(0x0000_0100_0000_01b3);
}

fn config(delivery: DeliverySemantics, fault: Option<FaultSpec>) -> SimConfig {
    let mut builder = SimConfig::builder(500, 3).seed(0xBEEF).delivery(delivery);
    if let Some(fault) = fault {
        builder = builder.fault(fault);
    }
    builder.build().unwrap()
}

#[test]
fn disabled_faults_reproduce_the_pre_fault_digests_on_every_process() {
    // The pinned digests predate the fault subsystem (and the topology
    // subsystem before it). An explicit all-disabled FaultSpec must leave
    // every RNG stream untouched and reproduce them bit-for-bit — this is
    // what keeps every fixed-seed fixture in the workspace valid.
    for (delivery, expected) in [
        (DeliverySemantics::Exact, 0x141e_3f19_b666_0616),
        (DeliverySemantics::BallsIntoBins, 0x6f78_4738_5a78_2242),
        (DeliverySemantics::Poissonized, 0xba04_649a_9748_04ed),
    ] {
        assert_eq!(
            evolution_digest(config(delivery, None)),
            expected,
            "{delivery:?}: default config must match the historical digest"
        );
        assert_eq!(
            evolution_digest(config(delivery, Some(FaultSpec::none()))),
            expected,
            "{delivery:?}: explicit fault = none must be bit-identical"
        );
    }
}

#[test]
fn disabled_faults_are_bit_identical_on_the_counting_backend() {
    let noise = NoiseMatrix::uniform(3, 0.2).unwrap();
    let default_net =
        CountingNetwork::new(config(DeliverySemantics::Poissonized, None), noise.clone())
            .unwrap();
    let explicit = CountingNetwork::new(
        config(DeliverySemantics::Poissonized, Some(FaultSpec::none())),
        noise,
    )
    .unwrap();
    assert_eq!(tally_digest(default_net), tally_digest(explicit));
}

#[test]
fn enabled_faults_perturb_the_evolution_deterministically() {
    let drop: FaultSpec = "drop(0.5)".parse().unwrap();
    for delivery in [
        DeliverySemantics::Exact,
        DeliverySemantics::BallsIntoBins,
        DeliverySemantics::Poissonized,
    ] {
        let faulty = evolution_digest(config(delivery, Some(drop)));
        assert_ne!(
            faulty,
            evolution_digest(config(delivery, None)),
            "{delivery:?}: dropping half the messages must change the evolution"
        );
        assert_eq!(
            faulty,
            evolution_digest(config(delivery, Some(drop))),
            "{delivery:?}: fault randomness is a pure function of the seed"
        );
    }

    // The aggregatable families perturb the counting backend the same way.
    let noise = NoiseMatrix::uniform(3, 0.2).unwrap();
    let digest_for = |fault: Option<FaultSpec>| {
        tally_digest(
            CountingNetwork::new(
                config(DeliverySemantics::Poissonized, fault),
                noise.clone(),
            )
            .unwrap(),
        )
    };
    assert_ne!(digest_for(Some(drop)), digest_for(None));
    assert_eq!(digest_for(Some(drop)), digest_for(Some(drop)));
}

#[test]
fn crashed_populations_fall_silent_after_their_phase() {
    // crash(1.0@0): every agent freezes once the first phase completes —
    // later rounds push nothing, on both backends.
    let crash: FaultSpec = "crash(1.0@0)".parse().unwrap();
    let noise = NoiseMatrix::uniform(3, 0.2).unwrap();

    fn phase_messages<B: PushBackend>(net: &mut B) -> u64 {
        net.begin_phase();
        let mut sent = 0;
        for _ in 0..4 {
            sent += net.push_opinionated_round().messages_sent();
        }
        net.end_phase();
        sent
    }

    let mut agent =
        Network::new(config(DeliverySemantics::Exact, Some(crash)), noise.clone()).unwrap();
    agent.seed_counts(&[200, 100, 50]).unwrap();
    assert!(phase_messages(&mut agent) > 0, "phase 0 runs normally");
    assert_eq!(phase_messages(&mut agent), 0, "all agents crashed after phase 0");
    assert_eq!(
        agent.distribution().num_nodes(),
        500,
        "crashed agents keep their opinions (count conservation)"
    );

    let mut counting = CountingNetwork::new(
        config(DeliverySemantics::Poissonized, Some(crash)),
        noise,
    )
    .unwrap();
    counting.seed_counts(&[200, 100, 50]).unwrap();
    assert!(phase_messages(&mut counting) > 0);
    assert_eq!(phase_messages(&mut counting), 0);
    assert_eq!(counting.distribution().num_nodes(), 500);
}

#[test]
fn fault_capabilities_match_the_constructors() {
    const {
        assert!(<Network as PushBackend>::SUPPORTS_DELAY_FAULTS);
        assert!(!<CountingNetwork as PushBackend>::SUPPORTS_DELAY_FAULTS);
    }
    let noise = NoiseMatrix::uniform(3, 0.2).unwrap();
    let delayed = config(DeliverySemantics::Poissonized, Some("delay(0.2)".parse().unwrap()));
    assert!(matches!(
        CountingNetwork::new(delayed.clone(), noise.clone()),
        Err(pushsim::SimError::UnsupportedFault { .. })
    ));
    // The agent backend accepts the same configuration.
    assert!(Network::new(delayed, noise).is_ok());
}
