//! Statistical equivalence of the per-message and batched delivery paths,
//! plus exact conservation invariants for the batched engine.
//!
//! The batched engine replaces per-message channel draws with one
//! multinomial per opinion row (`end_phase` of processes B and P) and
//! replaces the agent-level population with counts (`CountingNetwork`).
//! Both transformations are distribution-preserving; these tests check
//! that empirically:
//!
//! * **conservation (exact)** — the batched process-B path delivers exactly
//!   the pushed message count, for every seed;
//! * **χ²-style equivalence (statistical)** — per-opinion delivery totals
//!   from the batched path match a hand-rolled per-message reference
//!   sampler, and the counting backend matches the agent-level backend,
//!   over many seeded phases with deterministic seeds (regression tests,
//!   not flaky ones).

use noisy_channel::NoiseMatrix;
use pushsim::{CountingNetwork, DeliverySemantics, Network, SimConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn noise3() -> NoiseMatrix {
    NoiseMatrix::from_rows(vec![
        vec![0.7, 0.2, 0.1],
        vec![0.15, 0.6, 0.25],
        vec![0.05, 0.25, 0.7],
    ])
    .expect("valid noise")
}

/// Pooled chi-square statistic of observed vs expected category counts.
fn chi_square(observed: &[f64], expected: &[f64]) -> f64 {
    observed
        .iter()
        .zip(expected)
        .filter(|(_, &e)| e > 0.0)
        .map(|(&o, &e)| (o - e) * (o - e) / e)
        .sum()
}

#[test]
fn batched_delivery_conserves_messages_exactly() {
    // Conservation is an invariant, not a statistic: check it per seed.
    for seed in 0..200 {
        let config = SimConfig::builder(120, 3)
            .seed(seed)
            .delivery(DeliverySemantics::BallsIntoBins)
            .build()
            .unwrap();
        let mut net = Network::new(config, noise3()).unwrap();
        net.seed_counts(&[40, 25, 10]).unwrap();
        net.begin_phase();
        for _ in 0..3 {
            net.push_round(|_, s| s.opinion());
        }
        let inboxes = net.end_phase();
        assert_eq!(inboxes.total_messages(), 3 * 75, "seed {seed}");
        let per_node: u64 = (0..120).map(|u| u64::from(inboxes.received_total(u))).sum();
        assert_eq!(per_node, 3 * 75, "seed {seed}");
        let per_opinion: u64 = inboxes.totals_per_opinion().iter().sum();
        assert_eq!(per_opinion, 3 * 75, "seed {seed}");
    }
}

#[test]
fn counting_backend_conserves_pushes_exactly() {
    for seed in 0..200 {
        let config = SimConfig::builder(1_000, 3)
            .seed(seed)
            .delivery(DeliverySemantics::Poissonized)
            .build()
            .unwrap();
        let mut net = CountingNetwork::new(config, noise3()).unwrap();
        net.seed_counts(&[300, 200, 100]).unwrap();
        net.begin_phase();
        for _ in 0..2 {
            net.push_round_all_opinionated();
        }
        let tally = net.end_phase();
        // The noise re-colors but never creates or destroys messages.
        assert_eq!(tally.total(), 2 * 600, "seed {seed}");
        // And the population is conserved through an adoption step.
        let undecided = net.undecided();
        let (adopted, silent) = net.sample_one_adoptions(undecided);
        assert_eq!(adopted.iter().sum::<u64>() + silent, undecided, "seed {seed}");
    }
}

/// The batched multinomial recoloring must match a per-message reference
/// sampler in distribution. χ² over the k delivery categories, aggregated
/// over many phases; with deterministic seeds this is a regression test.
#[test]
fn batched_recoloring_matches_per_message_sampling_in_distribution() {
    let noise = noise3();
    let pending = [4_000u64, 2_500, 1_500];
    let phases = 60;

    // Reference: one channel draw per message (the pre-batching semantics).
    let mut rng = StdRng::seed_from_u64(1_234);
    let mut per_message_totals = [0u64; 3];
    for _ in 0..phases {
        for (opinion, &m) in pending.iter().enumerate() {
            for _ in 0..m {
                per_message_totals[noise.sample(opinion, &mut rng)] += 1;
            }
        }
    }

    // Batched: one multinomial per opinion row.
    let mut rng = StdRng::seed_from_u64(5_678);
    let mut batched_totals = [0u64; 3];
    for _ in 0..phases {
        for (opinion, &m) in pending.iter().enumerate() {
            for (t, c) in batched_totals
                .iter_mut()
                .zip(noise.sample_row_counts(opinion, m, &mut rng))
            {
                *t += c;
            }
        }
    }

    // Both must conserve and match the analytic expectation h = (c · P).
    let volume: u64 = pending.iter().sum::<u64>() * phases;
    assert_eq!(per_message_totals.iter().sum::<u64>(), volume);
    assert_eq!(batched_totals.iter().sum::<u64>(), volume);

    let pending_f: Vec<f64> = pending.iter().map(|&p| p as f64 * phases as f64).collect();
    let expected = noise.apply(&{
        let total: f64 = pending_f.iter().sum();
        pending_f.iter().map(|&p| p / total).collect::<Vec<_>>()
    });
    let expected_counts: Vec<f64> = expected.iter().map(|&e| e * volume as f64).collect();

    let obs_pm: Vec<f64> = per_message_totals.iter().map(|&c| c as f64).collect();
    let obs_b: Vec<f64> = batched_totals.iter().map(|&c| c as f64).collect();
    let chi_pm = chi_square(&obs_pm, &expected_counts);
    let chi_b = chi_square(&obs_b, &expected_counts);
    // 2 degrees of freedom: the 99.9th percentile is ≈ 13.8. Both samplers
    // must sit inside it, i.e. both are unbiased draws of the same
    // multinomial law.
    assert!(chi_pm < 13.8, "per-message sampler drifted: chi² {chi_pm:.2}");
    assert!(chi_b < 13.8, "batched sampler drifted: chi² {chi_b:.2}");
}

/// Process-P phase delivery: the counting backend's aggregate draw
/// (`Poisson(h_j)` + uniform scatter, collapsed to totals) must match the
/// agent-level backend's per-agent Poisson inboxes in distribution.
#[test]
fn counting_and_agent_poissonized_phases_agree_in_distribution() {
    let n = 800;
    let counts = [300usize, 200, 100];
    let phases = 120u64;

    let mut agent_totals = [0f64; 3];
    let mut agent_activated = 0f64;
    for seed in 0..phases {
        let config = SimConfig::builder(n, 3)
            .seed(seed)
            .delivery(DeliverySemantics::Poissonized)
            .build()
            .unwrap();
        let mut net = Network::new(config, noise3()).unwrap();
        net.seed_counts(&counts).unwrap();
        net.begin_phase();
        net.push_round(|_, s| s.opinion());
        let inboxes = net.end_phase();
        for (t, &c) in agent_totals.iter_mut().zip(&inboxes.totals_per_opinion()) {
            *t += c as f64;
        }
        agent_activated += (0..n).filter(|&u| inboxes.has_received(u)).count() as f64;
    }

    let mut counting_totals = [0f64; 3];
    let mut counting_activated = 0f64;
    for seed in 0..phases {
        let config = SimConfig::builder(n, 3)
            .seed(10_000 + seed)
            .delivery(DeliverySemantics::Poissonized)
            .build()
            .unwrap();
        let mut net = CountingNetwork::new(config, noise3()).unwrap();
        net.seed_counts(&counts).unwrap();
        net.begin_phase();
        net.push_round_all_opinionated();
        net.end_phase();
        // Expected delivered volume per opinion under process P is h_j (the
        // Poisson aggregate has mean h_j); use the realized post-noise
        // totals as the counting backend's delivery statistic.
        for (t, &h) in counting_totals.iter_mut().zip(net.tally().post_noise()) {
            *t += h as f64;
        }
        let (adopted, _) = net.sample_one_adoptions(n as u64);
        counting_activated += adopted.iter().sum::<u64>() as f64;
    }

    // Per-opinion mean delivered totals agree within a few standard errors.
    for j in 0..3 {
        let a = agent_totals[j] / phases as f64;
        let c = counting_totals[j] / phases as f64;
        let rel = (a - c).abs() / a.max(1.0);
        assert!(rel < 0.05, "opinion {j}: agent {a:.1} vs counting {c:.1}");
    }
    // Activation probability (≥ 1 message) agrees.
    let a_act = agent_activated / (phases as f64 * n as f64);
    let c_act = counting_activated / (phases as f64 * n as f64);
    assert!(
        (a_act - c_act).abs() < 0.02,
        "activation: agent {a_act:.4} vs counting {c_act:.4}"
    );
}

/// End-to-end: on identical instances, the two backends reach consensus on
/// the same opinion at comparable rates (the backend equivalence statement
/// at the level the experiments consume).
#[test]
fn backends_agree_on_protocol_scale_statistics() {
    // A biased instance both backends must solve essentially always: 60/25/15.
    let n = 600;
    let counts = [360usize, 150, 90];
    let trials = 10u64;
    let mut agent_wins = 0;
    let mut counting_wins = 0;
    for seed in 0..trials {
        let noise = NoiseMatrix::uniform(3, 0.35).unwrap();
        let config = SimConfig::builder(n, 3)
            .seed(seed)
            .delivery(DeliverySemantics::Poissonized)
            .build()
            .unwrap();
        // Mini-protocol: 8 sample-majority phases of the kind Stage 2 runs,
        // applied through each backend's native machinery.
        let mut agent = Network::new(config.clone(), noise.clone()).unwrap();
        agent.seed_counts(&counts).unwrap();
        let mut rng = StdRng::seed_from_u64(seed ^ 0xFEED);
        for _ in 0..8 {
            let sample_size = 41u32;
            agent.begin_phase();
            for _ in 0..(2 * sample_size) {
                agent.push_round(|_, s| s.opinion());
            }
            let inboxes = agent.end_phase();
            let mut switches = Vec::new();
            for node in 0..n {
                if let Some(sample) =
                    inboxes.sample_without_replacement(node, sample_size, &mut rng)
                {
                    if let Some(op) = pushsim::Inboxes::majority_of_counts(&sample, &mut rng) {
                        switches.push((node, op));
                    }
                }
            }
            for (node, op) in switches {
                agent.set_opinion(node, Some(op));
            }
        }
        if agent.distribution().counts()[0] as f64 > 0.9 * n as f64 {
            agent_wins += 1;
        }

        let mut counting = CountingNetwork::new(config, noise).unwrap();
        counting.seed_counts(&counts).unwrap();
        for _ in 0..8 {
            let sample_size = 41u64;
            counting.begin_phase();
            for _ in 0..(2 * sample_size) {
                counting.push_round_all_opinionated();
            }
            counting.end_phase();
            counting.apply_sample_majority(sample_size);
        }
        if counting.distribution().counts()[0] as f64 > 0.9 * n as f64 {
            counting_wins += 1;
        }
    }
    assert!(
        agent_wins >= trials - 1,
        "agent backend only won {agent_wins}/{trials}"
    );
    assert!(
        counting_wins >= trials - 1,
        "counting backend only won {counting_wins}/{trials}"
    );
}
