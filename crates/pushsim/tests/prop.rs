//! Property-based tests for the push-model simulator: conservation laws,
//! determinism, and agreement between delivery semantics.

use noisy_channel::NoiseMatrix;
use proptest::prelude::*;
use pushsim::{DeliverySemantics, Network, Opinion, OpinionDistribution, SimConfig};

fn counts_strategy() -> impl Strategy<Value = Vec<usize>> {
    prop::collection::vec(0usize..30, 2..5)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Messages are conserved: for processes O and B, the number of messages
    /// delivered in a phase equals the number pushed during that phase.
    #[test]
    fn message_conservation(
        counts in counts_strategy(),
        rounds in 1usize..6,
        seed in 0u64..500,
        deferred in prop::bool::ANY,
    ) {
        let k = counts.len();
        let n = counts.iter().sum::<usize>() + 20;
        let delivery = if deferred {
            DeliverySemantics::BallsIntoBins
        } else {
            DeliverySemantics::Exact
        };
        let noise = NoiseMatrix::uniform(k, 0.1).unwrap();
        let config = SimConfig::builder(n, k).seed(seed).delivery(delivery).build().unwrap();
        let mut net = Network::new(config, noise).unwrap();
        net.seed_counts(&counts).unwrap();
        let senders: u64 = counts.iter().sum::<usize>() as u64;

        net.begin_phase();
        for _ in 0..rounds {
            net.push_round(|_, s| s.opinion());
        }
        let inboxes = net.end_phase();
        prop_assert_eq!(inboxes.total_messages(), senders * rounds as u64);
        // Per-node counts also add up to the same total.
        let per_node: u64 = (0..n).map(|u| u64::from(inboxes.received_total(u))).sum();
        prop_assert_eq!(per_node, senders * rounds as u64);
    }

    /// Simulations are deterministic in their seed and differ across seeds
    /// (except in degenerate cases with no senders).
    #[test]
    fn deterministic_in_seed(
        counts in counts_strategy(),
        seed in 0u64..500,
    ) {
        let n = counts.iter().sum::<usize>() + 20;
        let run = |seed: u64| {
            let k = counts.len();
            let noise = NoiseMatrix::uniform(k, 0.15).unwrap();
            let config = SimConfig::builder(n, k).seed(seed).build().unwrap();
            let mut net = Network::new(config, noise).unwrap();
            net.seed_counts(&counts).unwrap();
            net.begin_phase();
            for _ in 0..3 {
                net.push_round(|_, s| s.opinion());
            }
            net.end_phase();
            (0..n).map(|u| net.inboxes().received(u).to_vec()).collect::<Vec<_>>()
        };
        prop_assert_eq!(run(seed), run(seed));
    }

    /// The node-count invariant: opinionated + undecided = n at all times,
    /// and `seed_counts` places exactly the requested numbers.
    #[test]
    fn seeding_invariants(
        counts in counts_strategy(),
        seed in 0u64..500,
    ) {
        let k = counts.len();
        let total: usize = counts.iter().sum();
        let n = total + 50;
        let noise = NoiseMatrix::uniform(k, 0.1).unwrap();
        let config = SimConfig::builder(n, k).seed(seed).build().unwrap();
        let mut net = Network::new(config, noise).unwrap();
        net.seed_counts(&counts).unwrap();
        let dist = net.distribution();
        prop_assert_eq!(dist.counts(), counts.as_slice());
        prop_assert_eq!(dist.undecided() + dist.opinionated(), n);
        prop_assert_eq!(dist.num_nodes(), n);
    }

    /// Processes O and B produce identical *per-opinion totals in
    /// expectation*; here we check the cheap invariant that the totals over
    /// a phase match exactly when the channel is noiseless (delivery cannot
    /// change opinions, only destinations).
    #[test]
    fn exact_and_balls_into_bins_agree_without_noise(
        counts in counts_strategy(),
        seed in 0u64..500,
    ) {
        let k = counts.len();
        let n = counts.iter().sum::<usize>() + 20;
        let noise = NoiseMatrix::identity(k).unwrap();
        let mut totals = Vec::new();
        for delivery in [DeliverySemantics::Exact, DeliverySemantics::BallsIntoBins] {
            let config = SimConfig::builder(n, k).seed(seed).delivery(delivery).build().unwrap();
            let mut net = Network::new(config, noise.clone()).unwrap();
            net.seed_counts(&counts).unwrap();
            net.begin_phase();
            for _ in 0..3 {
                net.push_round(|_, s| s.opinion());
            }
            totals.push(net.end_phase().totals_per_opinion());
        }
        // With a noiseless channel the per-opinion totals are exactly the
        // number of pushes per opinion, independent of the delivery process.
        let expected: Vec<u64> = counts.iter().map(|&c| 3 * c as u64).collect();
        prop_assert_eq!(&totals[0], &expected);
        prop_assert_eq!(&totals[1], &expected);
    }

    /// `OpinionDistribution::bias_towards` is consistent with its fractions:
    /// bias = c_m − max_{i≠m} c_i.
    #[test]
    fn bias_is_consistent_with_fractions(
        counts in prop::collection::vec(0usize..100, 2..6),
        undecided in 0usize..50,
        m_sel in 0usize..6,
    ) {
        prop_assume!(counts.iter().sum::<usize>() > 0);
        let m = m_sel % counts.len();
        let dist = OpinionDistribution::from_counts(counts.clone(), undecided).unwrap();
        let fractions = dist.fractions();
        let expected = fractions[m]
            - fractions
                .iter()
                .enumerate()
                .filter(|(i, _)| *i != m)
                .map(|(_, &f)| f)
                .fold(f64::NEG_INFINITY, f64::max);
        let got = dist.bias_towards(Opinion::new(m)).unwrap();
        prop_assert!((got - expected).abs() < 1e-12);
    }
}
