//! Statistical equivalence of the degree-class block-counting backend and
//! the agent-level backend on the sparse vertex-transitive families, plus
//! exact conservation invariants and the C = 1 collapse to the plain
//! counting backend.
//!
//! The block-counting backend replaces the agent population with a `C × k`
//! matrix of (degree-class, opinion) counts and runs the Poissonized
//! process P per class. On ring, torus and random-regular graphs every
//! node shares one degree class (`C = 1`), so its phases must be
//! *bit-for-bit* the counting backend's; on any topology the noise
//! recoloring preserves the pushed message composition in expectation, so
//! per-opinion delivery totals must match the agent backend (running exact
//! process O on the same graphs) in distribution. All seeds are fixed —
//! these are regression tests, not flaky ones.

use noisy_channel::NoiseMatrix;
use pushsim::{
    BlockCountingNetwork, CountingNetwork, DeliverySemantics, Network, PhaseObservation,
    PushBackend, SimConfig, TopologySpec,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// The sparse vertex-transitive families the backend certifies, with a
/// node count each family accepts (the torus needs a perfect square).
fn sparse_families() -> [(TopologySpec, usize); 3] {
    [
        (TopologySpec::Ring, 800),
        (TopologySpec::Torus2D, 784), // 28²
        (TopologySpec::RandomRegular { degree: 8 }, 800),
    ]
}

fn noise3() -> NoiseMatrix {
    NoiseMatrix::from_rows(vec![
        vec![0.7, 0.2, 0.1],
        vec![0.15, 0.6, 0.25],
        vec![0.05, 0.25, 0.7],
    ])
    .expect("valid noise")
}

fn block_net(topology: TopologySpec, n: usize, seed: u64) -> BlockCountingNetwork {
    let config = SimConfig::builder(n, 3)
        .seed(seed)
        .delivery(DeliverySemantics::Poissonized)
        .topology(topology)
        .build()
        .unwrap();
    BlockCountingNetwork::new(config, noise3()).unwrap()
}

/// Pooled chi-square statistic of observed vs expected category counts.
fn chi_square(observed: &[f64], expected: &[f64]) -> f64 {
    observed
        .iter()
        .zip(expected)
        .filter(|(_, &e)| e > 0.0)
        .map(|(&o, &e)| (o - e) * (o - e) / e)
        .sum()
}

#[test]
fn block_counting_conserves_messages_exactly_on_every_family() {
    // Conservation is an invariant, not a statistic: check it per seed.
    for (topology, n) in sparse_families() {
        for seed in 0..60 {
            let mut net = block_net(topology, n, seed);
            net.seed_counts(&[300, 200, 100]).unwrap();
            net.begin_phase();
            for _ in 0..3 {
                net.push_opinionated_round();
            }
            let tally = net.end_phase();
            // The noise re-colors but never creates or destroys messages.
            assert_eq!(tally.total(), 3 * 600, "{topology} seed {seed}");
            assert_eq!(
                tally.received_totals().iter().sum::<u64>(),
                3 * 600,
                "{topology} seed {seed}"
            );
            // The population is conserved through a decision step.
            let mut rng = StdRng::seed_from_u64(seed ^ 0xDEC1DE);
            net.resolve_sample_majority(5, &mut rng);
            assert_eq!(net.distribution().num_nodes(), n, "{topology} seed {seed}");
        }
    }
}

/// On the vertex-transitive families every node shares one degree class,
/// so a block-counting phase must be *bit-for-bit* a counting-backend
/// phase on the complete graph: same delivery RNG stream, same recoloring,
/// same decisions. This is the C = 1 collapse that makes the backend a
/// strict generalization, checked through the public trait surface.
#[test]
fn single_class_families_collapse_to_the_counting_backend_bit_for_bit() {
    for (topology, n) in sparse_families() {
        let seed = 0xC0FFEE;
        let mut block = block_net(topology, n, seed);
        let complete = SimConfig::builder(n, 3)
            .seed(seed)
            .delivery(DeliverySemantics::Poissonized)
            .build()
            .unwrap();
        let mut counting = CountingNetwork::new(complete, noise3()).unwrap();

        block.seed_counts(&[250, 150, 50]).unwrap();
        counting.seed_counts(&[250, 150, 50]).unwrap();
        let mut block_rng = StdRng::seed_from_u64(99);
        let mut counting_rng = StdRng::seed_from_u64(99);
        for phase in 0..3 {
            block.begin_phase();
            counting.begin_phase();
            for _ in 0..4 {
                block.push_opinionated_round();
                counting.push_opinionated_round();
            }
            block.end_phase();
            counting.end_phase();
            assert_eq!(
                block.observation().received_totals(),
                counting.observation().received_totals(),
                "{topology} phase {phase}: post-noise totals diverged"
            );
            block.resolve_sample_majority(7, &mut block_rng);
            counting.resolve_sample_majority(7, &mut counting_rng);
            assert_eq!(
                block.distribution(),
                counting.distribution(),
                "{topology} phase {phase}: decisions diverged"
            );
        }
        assert_eq!(block.messages_sent(), counting.messages_sent());
    }
}

/// Per-opinion delivery composition: the agent backend (exact process O on
/// the real graph) and the block-counting backend (Poissonized process P
/// per degree class) recolor the same pushed composition through the same
/// noise matrix, so their per-opinion totals must match the analytic
/// expectation `volume · (c · P)` — and hence each other — in
/// distribution. χ² over the k categories, aggregated over many phases.
#[test]
fn block_counting_matches_the_agent_backend_in_distribution() {
    let counts = [300usize, 200, 100];
    let phases = 60u64;
    for (topology, n) in sparse_families() {
        let mut agent_totals = [0f64; 3];
        for seed in 0..phases {
            let config = SimConfig::builder(n, 3)
                .seed(seed)
                .topology(topology)
                .build()
                .unwrap();
            let mut net = Network::new(config, noise3()).unwrap();
            net.seed_counts(&counts).unwrap();
            net.begin_phase();
            net.push_opinionated_round();
            net.end_phase();
            for (t, &c) in agent_totals
                .iter_mut()
                .zip(&net.observation().received_totals())
            {
                *t += c as f64;
            }
        }

        let mut block_totals = [0f64; 3];
        for seed in 0..phases {
            let mut net = block_net(topology, n, 10_000 + seed);
            net.seed_counts(&counts).unwrap();
            net.begin_phase();
            net.push_opinionated_round();
            net.end_phase();
            for (t, &c) in block_totals
                .iter_mut()
                .zip(&net.observation().received_totals())
            {
                *t += c as f64;
            }
        }

        // Expected composition: one round pushes 600 messages with
        // composition (300, 200, 100)/600, recolored by the noise matrix.
        let volume = (600 * phases) as f64;
        let composition: Vec<f64> = counts.iter().map(|&c| c as f64 / 600.0).collect();
        let expected: Vec<f64> = noise3()
            .apply(&composition)
            .iter()
            .map(|&e| e * volume)
            .collect();

        // Process O conserves the volume exactly; both samplers must sit
        // inside a generous χ² envelope around the shared expectation
        // (2 degrees of freedom: the 99.9th percentile is ≈ 13.8; the
        // Poissonized side adds Poisson total-volume variance, so give it
        // slack). With fixed seeds this is a regression bound.
        assert_eq!(
            agent_totals.iter().sum::<f64>(),
            volume,
            "{topology}: process O must conserve"
        );
        let chi_agent = chi_square(&agent_totals, &expected);
        let chi_block = chi_square(&block_totals, &expected);
        assert!(
            chi_agent < 13.8,
            "{topology}: agent composition drifted, chi² {chi_agent:.2}"
        );
        assert!(
            chi_block < 20.0,
            "{topology}: block-counting composition drifted, chi² {chi_block:.2}"
        );

        // And the two backends agree with each other directly.
        for j in 0..3 {
            let a = agent_totals[j] / phases as f64;
            let b = block_totals[j] / phases as f64;
            let rel = (a - b).abs() / a.max(1.0);
            assert!(
                rel < 0.05,
                "{topology} opinion {j}: agent {a:.1} vs block-counting {b:.1}"
            );
        }
    }
}

/// Degree-class destination structure on a genuinely multi-class graph:
/// messages scattered by the class-to-class edge matrix land in classes
/// proportionally to the directed edge counts, exactly conserving volume.
/// (Erdős–Rényi is reachable by explicit construction only — it is the
/// documented annealed approximation — but the class bookkeeping must
/// still conserve and weight destinations by degree.)
#[test]
fn multi_class_scatter_conserves_and_weights_by_degree() {
    let n = 2_000;
    let config = SimConfig::builder(n, 3)
        .seed(7)
        .topology(TopologySpec::ErdosRenyi { p: 0.01 })
        .build()
        .unwrap();
    let mut net = BlockCountingNetwork::new(config, noise3()).unwrap();
    assert!(net.num_classes() > 1, "er(0.01) at n = 2000 buckets");
    net.seed_counts(&[800, 500, 300]).unwrap();
    let mut pushed = 0u64;
    net.begin_phase();
    for _ in 0..5 {
        pushed += net.push_opinionated_round().messages_sent();
    }
    let num_classes = net.num_classes();
    let tally = net.end_phase();
    assert_eq!(tally.total(), pushed, "scatter must conserve volume");
    // Messages only ever land in classes that have edges pointing at them
    // (degree > 0), and the tally splits over exactly the class sizes.
    let mut class_nodes = 0;
    for cls in 0..num_classes {
        class_nodes += tally.class_tally(cls).num_nodes();
    }
    assert_eq!(class_nodes, n);
}
