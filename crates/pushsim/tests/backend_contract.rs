//! The backend contract: one generic property suite, instantiated for
//! every `PushBackend` implementation.
//!
//! Every assertion below is written once against the trait (dyn-free —
//! the suite is a generic function monomorphized per backend) and must hold
//! identically for the agent-level `Network`, the count-based
//! `CountingNetwork` and the degree-class `BlockCountingNetwork` (here
//! driven on a ring, its sparse home turf): population conservation,
//! seeding round-trips, phase and message counters, observation totals,
//! and conservation through every decision operator. This is the seam the
//! whole protocol stack builds on; if the backends ever diverge on one of
//! these observable contracts, this file is where it shows up.

use noisy_channel::NoiseMatrix;
use pushsim::{
    AdoptionScope, BlockCountingNetwork, CountingNetwork, DeliverySemantics, Network, Opinion,
    PhaseObservation, PushBackend, SimConfig, SimError, TopologySpec,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

const N: usize = 240;
const K: usize = 3;

fn config(seed: u64, delivery: DeliverySemantics) -> SimConfig {
    SimConfig::builder(N, K)
        .seed(seed)
        .delivery(delivery)
        .build()
        .unwrap()
}

fn noise() -> NoiseMatrix {
    NoiseMatrix::uniform(K, 0.2).unwrap()
}

fn agent(seed: u64) -> Network {
    Network::new(config(seed, DeliverySemantics::Exact), noise()).unwrap()
}

fn counting(seed: u64) -> CountingNetwork {
    CountingNetwork::new(config(seed, DeliverySemantics::Poissonized), noise()).unwrap()
}

fn block_counting(seed: u64) -> BlockCountingNetwork {
    let config = SimConfig::builder(N, K)
        .seed(seed)
        .delivery(DeliverySemantics::Poissonized)
        .topology(TopologySpec::Ring)
        .build()
        .unwrap();
    BlockCountingNetwork::new(config, noise()).unwrap()
}

/// Seeding round-trips: `seed_counts` is reflected exactly in the
/// distribution, `clear_opinions` resets to all-undecided, `seed_rumor_at`
/// leaves exactly one opinionated agent, and invalid inputs are rejected
/// without corrupting state.
fn check_seeding_roundtrip<B: PushBackend>(net: &mut B) {
    assert_eq!(net.num_nodes(), N);
    assert_eq!(net.num_opinions(), K);
    assert_eq!(net.config().num_nodes(), N);
    assert_eq!(net.noise().num_opinions(), K);

    net.seed_counts(&[100, 50, 20]).unwrap();
    let dist = net.distribution();
    assert_eq!(dist.counts(), &[100, 50, 20]);
    assert_eq!(dist.undecided(), N - 170);
    assert_eq!(dist.num_nodes(), N);
    assert!(!net.is_consensus());

    // Invalid requests fail and leave the distribution untouched.
    assert!(net.seed_counts(&[N + 1, 0, 0]).is_err());
    assert!(net.seed_counts(&[1, 1]).is_err());
    assert!(matches!(
        net.seed_rumor_at(N, Opinion::new(0)),
        Err(SimError::NodeOutOfRange { .. })
    ));
    assert!(net.seed_rumor_at(0, Opinion::new(K)).is_err());

    net.seed_rumor_at(3, Opinion::new(2)).unwrap();
    let dist = net.distribution();
    assert_eq!(dist.opinionated(), 1);
    assert_eq!(dist.count(Opinion::new(2)), 1);

    net.clear_opinions();
    let dist = net.distribution();
    assert_eq!(dist.opinionated(), 0);
    assert_eq!(dist.undecided(), N);

    // Full single-opinion population is a consensus, and is O(k)-visible.
    net.seed_counts(&[0, N, 0]).unwrap();
    assert!(net.is_consensus());
    assert!(net.distribution().is_consensus_on(Opinion::new(1)));
}

/// Phase counters: `rounds_executed` / `messages_sent` advance exactly with
/// the pushed rounds, and the observation's total matches the pushed volume
/// for conserving semantics (process O delivers every message; the
/// counting tally records every pushed message pre-thinning).
fn check_phase_counters<B: PushBackend>(net: &mut B) {
    net.seed_counts(&[80, 40, 10]).unwrap();
    assert_eq!(net.rounds_executed(), 0);
    assert_eq!(net.messages_sent(), 0);

    let rounds = 5u64;
    net.begin_phase();
    let mut pushed = 0u64;
    for round in 0..rounds {
        let report = net.push_opinionated_round();
        assert_eq!(report.round(), round);
        assert_eq!(report.messages_sent(), 130);
        pushed += report.messages_sent();
    }
    let total = net.end_phase().total_received();
    assert_eq!(pushed, rounds * 130);
    assert_eq!(net.rounds_executed(), rounds);
    assert_eq!(net.messages_sent(), pushed);
    assert_eq!(total, pushed, "phase observation must conserve pushes");
    assert_eq!(net.observation().total_received(), pushed);
    assert_eq!(
        net.observation().received_totals().iter().sum::<u64>(),
        pushed
    );
    // The inbox ceiling is positive whenever messages flowed.
    assert!(net.observation().max_inbox() > 0);

    // Counters survive clear_opinions.
    net.clear_opinions();
    assert_eq!(net.rounds_executed(), rounds);
    assert_eq!(net.messages_sent(), pushed);
}

/// Every decision operator conserves the population exactly, and the
/// uniform-adoption operator with `UndecidedOnly` scope never shrinks an
/// opinionated group.
fn check_decision_operators_conserve<B: PushBackend>(net: &mut B, rng: &mut StdRng) {
    net.seed_counts(&[90, 60, 30]).unwrap();
    for (i, sample_size) in [1u64, 3, 7].into_iter().enumerate() {
        net.begin_phase();
        for _ in 0..4 {
            net.push_opinionated_round();
        }
        net.end_phase();

        let before = net.distribution();
        match i {
            0 => {
                net.resolve_uniform_adoption(AdoptionScope::UndecidedOnly, rng);
                let after = net.distribution();
                for o in 0..K {
                    assert!(
                        after.counts()[o] >= before.counts()[o],
                        "UndecidedOnly adoption shrank opinion {o}: {before} -> {after}"
                    );
                }
                assert!(after.undecided() <= before.undecided());
            }
            1 => net.resolve_uniform_adoption(AdoptionScope::AllAgents, rng),
            _ => net.resolve_sample_majority(sample_size, rng),
        }
        assert_eq!(
            net.distribution().num_nodes(),
            N,
            "operator {i} must conserve the population"
        );
    }

    net.begin_phase();
    net.push_opinionated_round();
    net.end_phase();
    net.resolve_undecided_state(rng);
    assert_eq!(net.distribution().num_nodes(), N);

    net.begin_phase();
    net.push_opinionated_round();
    net.end_phase();
    net.resolve_median(rng);
    assert_eq!(net.distribution().num_nodes(), N);
}

/// Fixed seeds give identical runs through the trait surface; different
/// seeds diverge.
fn check_reproducibility<B: PushBackend>(mut make: impl FnMut(u64) -> B) {
    let mut run = |net_seed: u64, rng_seed: u64| {
        let mut net = make(net_seed);
        net.seed_counts(&[70, 50, 30]).unwrap();
        let mut rng = StdRng::seed_from_u64(rng_seed);
        for _ in 0..3 {
            net.begin_phase();
            for _ in 0..4 {
                net.push_opinionated_round();
            }
            net.end_phase();
            net.resolve_sample_majority(3, &mut rng);
        }
        (
            net.observation().received_totals(),
            net.distribution(),
            net.messages_sent(),
        )
    };
    assert_eq!(run(11, 21), run(11, 21));
    assert_ne!(run(11, 21).1, run(12, 22).1);
}

#[test]
fn agent_backend_honours_the_contract() {
    check_seeding_roundtrip(&mut agent(1));
    check_phase_counters(&mut agent(2));
    check_decision_operators_conserve(&mut agent(3), &mut StdRng::seed_from_u64(103));
    check_reproducibility(agent);
}

#[test]
fn counting_backend_honours_the_contract() {
    check_seeding_roundtrip(&mut counting(1));
    check_phase_counters(&mut counting(2));
    check_decision_operators_conserve(&mut counting(3), &mut StdRng::seed_from_u64(103));
    check_reproducibility(counting);
}

#[test]
fn block_counting_backend_honours_the_contract() {
    check_seeding_roundtrip(&mut block_counting(1));
    check_phase_counters(&mut block_counting(2));
    check_decision_operators_conserve(&mut block_counting(3), &mut StdRng::seed_from_u64(103));
    check_reproducibility(block_counting);
}

/// The agent backend's O(k) cached distribution agrees with a fresh
/// state-scan tally after a workload that exercises every mutation path.
#[test]
fn agent_cached_distribution_matches_a_state_scan() {
    let mut net = agent(9);
    let mut rng = StdRng::seed_from_u64(42);
    net.seed_counts(&[100, 70, 30]).unwrap();
    for _ in 0..5 {
        net.begin_phase();
        for _ in 0..3 {
            net.push_opinionated_round();
        }
        net.end_phase();
        net.resolve_sample_majority(2, &mut rng);
        net.resolve_uniform_adoption(AdoptionScope::UndecidedOnly, &mut rng);
        assert_eq!(
            PushBackend::distribution(&net),
            pushsim::OpinionDistribution::from_states(net.states(), net.num_opinions()),
            "cached tallies diverged from the agent states"
        );
    }
}
