//! Integration tests of the temporal-dynamics subsystem: the all-disabled
//! temporal axes (`churn = none`, `schedule = const`, `clock = sync`) are
//! bit-for-bit the pre-temporal simulator (same pinned digests on every
//! delivery process and all three backends), enabled axes perturb the
//! evolution deterministically, the capability constants match what the
//! constructors accept, and the live population follows the deterministic
//! churn arithmetic on every backend that supports it.

use noisy_channel::NoiseMatrix;
use pushsim::{
    AdoptionScope, BlockCountingNetwork, ChurnSpec, ClockSpec, CountingNetwork,
    DeliverySemantics, Network, NoiseSchedule, PushBackend, SimConfig,
    TopologySpec,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// The three temporal axes of one scenario, all parsed from their
/// canonical spec-file spellings.
#[derive(Clone, Copy)]
struct Axes {
    churn: &'static str,
    schedule: &'static str,
    clock: &'static str,
}

const OFF: Axes = Axes {
    churn: "none",
    schedule: "const",
    clock: "sync",
};

fn config(delivery: DeliverySemantics, axes: Option<Axes>) -> SimConfig {
    let mut builder = SimConfig::builder(500, 3).seed(0xBEEF).delivery(delivery);
    if let Some(axes) = axes {
        builder = builder
            .churn(axes.churn.parse().unwrap())
            .schedule(axes.schedule.parse().unwrap())
            .clock(axes.clock.parse().unwrap());
    }
    builder.build().unwrap()
}

/// FNV-style fold of the full phase-by-phase evolution of a seeded agent
/// run — identical to the fault/topology suites' digest, so the pinned
/// constants below are the same historical values.
fn evolution_digest(config: SimConfig) -> u64 {
    let noise = NoiseMatrix::uniform(3, 0.2).unwrap();
    let mut net = Network::new(config, noise).unwrap();
    net.seed_counts(&[200, 100, 50]).unwrap();
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for _ in 0..3 {
        net.begin_phase();
        for _ in 0..4 {
            net.push_round(|_, s| s.opinion());
        }
        net.end_phase();
        for node in 0..net.num_nodes() {
            for &c in net.inboxes().received(node) {
                fold(&mut h, u64::from(c).wrapping_add(1));
            }
        }
        let mut decide = StdRng::seed_from_u64(42);
        net.resolve_uniform_adoption(AdoptionScope::UndecidedOnly, &mut decide);
        for &c in net.opinion_counts() {
            fold(&mut h, c as u64);
        }
    }
    h
}

/// Backend-generic digest of the per-phase opinion tallies (the part of
/// the evolution all backends expose identically).
fn tally_digest<B: PushBackend>(mut net: B) -> u64 {
    net.seed_counts(&[200, 100, 50]).unwrap();
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for _ in 0..3 {
        net.begin_phase();
        for _ in 0..4 {
            net.push_opinionated_round();
        }
        net.end_phase();
        let mut decide = StdRng::seed_from_u64(42);
        net.resolve_uniform_adoption(AdoptionScope::UndecidedOnly, &mut decide);
        for &c in net.distribution().counts().iter() {
            fold(&mut h, c as u64);
        }
    }
    h
}

fn fold(h: &mut u64, value: u64) {
    *h ^= value;
    *h = h.wrapping_mul(0x0000_0100_0000_01b3);
}

#[test]
fn disabled_temporal_reproduces_the_pinned_digests_on_every_process() {
    // The pinned digests predate the temporal subsystem (and the fault and
    // topology subsystems before it). Explicitly-off temporal axes must
    // leave every RNG stream untouched and reproduce them bit-for-bit —
    // this is what keeps every fixed-seed fixture in the workspace valid.
    for (delivery, expected) in [
        (DeliverySemantics::Exact, 0x141e_3f19_b666_0616),
        (DeliverySemantics::BallsIntoBins, 0x6f78_4738_5a78_2242),
        (DeliverySemantics::Poissonized, 0xba04_649a_9748_04ed),
    ] {
        assert_eq!(
            evolution_digest(config(delivery, None)),
            expected,
            "{delivery:?}: default config must match the historical digest"
        );
        assert_eq!(
            evolution_digest(config(delivery, Some(OFF))),
            expected,
            "{delivery:?}: explicitly-off temporal axes must be bit-identical"
        );
    }
}

#[test]
fn disabled_temporal_is_bit_identical_on_the_counting_backends() {
    let noise = NoiseMatrix::uniform(3, 0.2).unwrap();
    let default_net =
        CountingNetwork::new(config(DeliverySemantics::Poissonized, None), noise.clone())
            .unwrap();
    let explicit = CountingNetwork::new(
        config(DeliverySemantics::Poissonized, Some(OFF)),
        noise.clone(),
    )
    .unwrap();
    assert_eq!(tally_digest(default_net), tally_digest(explicit));

    let ring = |axes: Option<Axes>| {
        let mut builder = SimConfig::builder(500, 3)
            .seed(0xBEEF)
            .topology(TopologySpec::Ring)
            .delivery(DeliverySemantics::Poissonized);
        if let Some(axes) = axes {
            builder = builder
                .churn(axes.churn.parse().unwrap())
                .schedule(axes.schedule.parse().unwrap())
                .clock(axes.clock.parse().unwrap());
        }
        BlockCountingNetwork::new(builder.build().unwrap(), noise.clone()).unwrap()
    };
    assert_eq!(tally_digest(ring(None)), tally_digest(ring(Some(OFF))));
}

#[test]
fn unscheduled_phases_leave_the_evolution_untouched() {
    // A schedule whose first scheduled phase lies beyond the run is
    // temporally *armed* but never fires: it must not perturb anything
    // (the swap draws no randomness; off-window phases restore the base
    // matrix, which is exactly what an unscheduled run uses).
    let dormant = Axes {
        schedule: "step(0.4@10)",
        ..OFF
    };
    for delivery in [
        DeliverySemantics::Exact,
        DeliverySemantics::BallsIntoBins,
        DeliverySemantics::Poissonized,
    ] {
        assert_eq!(
            evolution_digest(config(delivery, Some(dormant))),
            evolution_digest(config(delivery, None)),
            "{delivery:?}: a schedule that never fires must be invisible"
        );
    }
}

#[test]
fn enabled_temporal_perturbs_the_evolution_deterministically() {
    let active = [
        Axes {
            churn: "join(0.02)+leave(0.03)",
            ..OFF
        },
        Axes {
            schedule: "step(0.45@1)",
            ..OFF
        },
        Axes {
            clock: "skew(0.3)",
            ..OFF
        },
        Axes {
            clock: "drift(400000)",
            ..OFF
        },
    ];
    for axes in active {
        for delivery in [
            DeliverySemantics::Exact,
            DeliverySemantics::BallsIntoBins,
            DeliverySemantics::Poissonized,
        ] {
            let perturbed = evolution_digest(config(delivery, Some(axes)));
            assert_ne!(
                perturbed,
                evolution_digest(config(delivery, None)),
                "{delivery:?}: churn={} schedule={} clock={} must change the evolution",
                axes.churn,
                axes.schedule,
                axes.clock
            );
            assert_eq!(
                perturbed,
                evolution_digest(config(delivery, Some(axes))),
                "{delivery:?}: temporal randomness is a pure function of the seed"
            );
        }
    }
}

#[test]
fn temporal_capabilities_match_the_constructors() {
    const {
        assert!(<Network as PushBackend>::TEMPORAL_CAPABILITY.population_churn);
        assert!(<Network as PushBackend>::TEMPORAL_CAPABILITY.edge_churn);
        assert!(<Network as PushBackend>::TEMPORAL_CAPABILITY.clock);
        assert!(<CountingNetwork as PushBackend>::TEMPORAL_CAPABILITY.population_churn);
        assert!(<CountingNetwork as PushBackend>::TEMPORAL_CAPABILITY.noise_schedule);
        assert!(!<CountingNetwork as PushBackend>::TEMPORAL_CAPABILITY.edge_churn);
        assert!(!<CountingNetwork as PushBackend>::TEMPORAL_CAPABILITY.clock);
        assert!(!<BlockCountingNetwork as PushBackend>::TEMPORAL_CAPABILITY.clock);
    }
    let noise = NoiseMatrix::uniform(3, 0.2).unwrap();

    // Clock skew needs per-agent identity: rejected by both count-level
    // backends, accepted by the agent backend.
    let skewed = config(
        DeliverySemantics::Poissonized,
        Some(Axes {
            clock: "skew(0.2)",
            ..OFF
        }),
    );
    assert!(matches!(
        CountingNetwork::new(skewed.clone(), noise.clone()),
        Err(pushsim::SimError::UnsupportedTemporal { .. })
    ));
    assert!(Network::new(skewed, noise.clone()).is_ok());

    // The block backend rejects clocks; the agent backend accepts the
    // same axis (with its own delivery constraint: Exact on sparse
    // topologies, Poissonized being count-level-only there).
    let drifting_ring = |delivery| {
        SimConfig::builder(500, 3)
            .seed(1)
            .topology(TopologySpec::Ring)
            .delivery(delivery)
            .clock(ClockSpec::Drift { ppm: 100.0 })
            .build()
            .unwrap()
    };
    assert!(matches!(
        BlockCountingNetwork::new(drifting_ring(DeliverySemantics::Poissonized), noise.clone()),
        Err(pushsim::SimError::UnsupportedTemporal { .. })
    ));
    assert!(Network::new(drifting_ring(DeliverySemantics::Exact), noise.clone()).is_ok());

    // Edge churn (rewire) needs the materialized graph: agent-only.
    let rewired = SimConfig::builder(500, 3)
        .seed(1)
        .topology(TopologySpec::RandomRegular { degree: 8 })
        .churn("rewire(0.5)".parse().unwrap())
        .build()
        .unwrap();
    assert!(matches!(
        BlockCountingNetwork::new(rewired.clone(), noise.clone()),
        Err(pushsim::SimError::UnsupportedTemporal { .. })
    ));
    assert!(Network::new(rewired, noise).is_ok());
}

#[test]
fn live_population_follows_the_deterministic_churn_arithmetic() {
    let churn: ChurnSpec = "join(0.04)+leave(0.02)+burst(0.3@1)".parse().unwrap();
    let noise = NoiseMatrix::uniform(3, 0.2).unwrap();
    let build = |delivery| {
        SimConfig::builder(500, 3)
            .seed(0xBEEF)
            .delivery(delivery)
            .churn(churn)
            .build()
            .unwrap()
    };
    let mut agent = Network::new(build(DeliverySemantics::Exact), noise.clone()).unwrap();
    let mut counting =
        CountingNetwork::new(build(DeliverySemantics::Poissonized), noise.clone()).unwrap();
    let mut block =
        BlockCountingNetwork::new(build(DeliverySemantics::Poissonized), noise).unwrap();
    agent.seed_counts(&[200, 100, 50]).unwrap();
    counting.seed_counts(&[200, 100, 50]).unwrap();
    block.seed_counts(&[200, 100, 50]).unwrap();
    for phase in 0..5u64 {
        // The boundary preceding phase `p` has applied `p` boundaries.
        agent.begin_phase();
        counting.begin_phase();
        block.begin_phase();
        let expected = churn.population_after(500, phase);
        assert_eq!(agent.num_nodes(), expected, "agent population, phase {phase}");
        assert_eq!(
            counting.num_nodes(),
            expected,
            "counting population, phase {phase}"
        );
        assert_eq!(block.num_nodes(), expected, "block population, phase {phase}");
        // Opinion counts + undecided always account for every live agent.
        let counted = counting.counts().iter().sum::<u64>() + counting.undecided();
        assert_eq!(counted as usize, expected);
        agent.push_round(|_, s| s.opinion());
        counting.push_round_all_opinionated();
        block.push_round_all_opinionated();
        agent.end_phase();
        counting.end_phase();
        block.end_phase();
    }
    // The burst at boundary 2 (after_phase 1) is visible: the population
    // dips below the initial size before the joins recover it.
    assert!(churn.population_after(500, 2) < 500);
}

#[test]
fn schedules_swap_the_noise_at_their_boundaries_and_restore_it_after() {
    let noise = NoiseMatrix::uniform(3, 0.1).unwrap();
    let config = SimConfig::builder(500, 3)
        .seed(7)
        .delivery(DeliverySemantics::Poissonized)
        .schedule("burst(0.45@1:2)".parse().unwrap())
        .build()
        .unwrap();
    let mut net = CountingNetwork::new(config, noise.clone()).unwrap();
    net.seed_counts(&[200, 100, 50]).unwrap();
    let schedule = NoiseSchedule::Burst {
        epsilon: 0.45,
        start_phase: 1,
        width: 2,
    };
    for phase in 0..5u64 {
        net.begin_phase();
        // The uniform family's diagonal is 1/k + ε, so the live matrix
        // exposes the effective ε of the phase directly.
        let expected = schedule.epsilon_at(phase).unwrap_or(0.1);
        let diagonal = net.noise().entry(0, 0);
        assert!(
            (diagonal - (1.0 / 3.0 + expected)).abs() < 1e-12,
            "phase {phase}: live ε must follow the schedule (diagonal {diagonal})"
        );
        net.push_round_all_opinionated();
        net.end_phase();
    }
}
