//! The backend abstraction: one phase-structured interface over both
//! simulators.
//!
//! The paper's whole analytic strategy is that the three delivery processes
//! are interchangeable at phase granularity: process **O** (the real push
//! process) and process **B** (balls-into-bins, Definition 3) are
//! distributionally equivalent per phase (**Claim 1**), and w.h.p. events
//! transfer between process **B** and the Poissonized process **P**
//! (Definition 4) in both directions (**Lemma 3**). Protocol rules only
//! ever look at the *multiset* of messages received during a phase, never
//! at arrival order or sender identity. [`PushBackend`] captures exactly
//! that contract, so the same protocol and dynamics code runs unchanged on
//! either substrate:
//!
//! * [`Network`] — the agent-level backend. Exact for whichever process the
//!   [`SimConfig`] requests (O, B or P); per-phase cost scales with `n` and
//!   the message volume. Its [`PhaseObservation`] is [`Inboxes`].
//! * [`CountingNetwork`] — the count-based backend. Implements process P at
//!   the population level in O(k²) random draws per phase regardless of
//!   `n`; justified for O/B configurations by Claim 1 + Lemma 3 (phase
//!   granularity). Its [`PhaseObservation`] is [`PhaseTally`].
//! * [`BlockCountingNetwork`] — the degree-class block-counting backend:
//!   the same count-level process P, aggregated per (degree class,
//!   opinion) block instead of per opinion, which extends the O(k²·C)
//!   phase cost to sparse degree-homogeneous topologies (ring, torus,
//!   `regular(d)`; `C = 1` there). Its [`PhaseObservation`] is
//!   [`BlockPhaseTally`].
//!
//! Which topologies a backend is certified for is a static capability
//! ([`TopologyCapability`]) that backend-selection policies consult
//! instead of hard-coding backend names.
//!
//! ## The phase lifecycle
//!
//! ```text
//! begin_phase → push_opinionated_round × r → end_phase → resolve_*(…)
//! ```
//!
//! [`end_phase`](PushBackend::end_phase) yields the backend's
//! [`PhaseObservation`] (per-opinion received totals, message volume, an
//! inbox-size ceiling for memory accounting). The `resolve_*` methods are
//! the paper's **decision operators** applied to the finished phase; each
//! backend implements them natively (per-agent loops vs closed count-level
//! forms):
//!
//! * [`resolve_uniform_adoption`](PushBackend::resolve_uniform_adoption) —
//!   adopt one uniformly random received message (Stage 1's adoption rule
//!   for [`AdoptionScope::UndecidedOnly`]; the voter model for
//!   [`AdoptionScope::AllAgents`]).
//! * [`resolve_sample_majority`](PushBackend::resolve_sample_majority) —
//!   agents with at least `L` received messages adopt the majority of a
//!   uniform without-replacement sample of `L` of them (Stage 2's rule,
//!   Section 3.1.2; also the h-majority dynamics).
//! * [`resolve_undecided_state`](PushBackend::resolve_undecided_state) —
//!   the undecided-state dynamics operator (one uniform draw; agreement
//!   keeps the opinion, disagreement resets to undecided, undecided agents
//!   adopt).
//! * [`resolve_median`](PushBackend::resolve_median) — the median-rule
//!   operator (two uniform draws with replacement; move to the median of
//!   own opinion and the two observations).
//!
//! All decision randomness flows through the explicit `rng` parameter so a
//! protocol can keep its own reproducible decision stream, separate from
//! the network's delivery RNG.

use crate::blockcounting::{BlockCountingNetwork, BlockPhaseTally};
use crate::config::SimConfig;
use crate::counting::{
    median_plan, undecided_state_plan, uniform_adoption_all_plan, CountingNetwork, PhaseTally,
};
use crate::distribution::OpinionDistribution;
use crate::error::SimError;
use crate::inbox::Inboxes;
use crate::network::{Network, RoundReport};
use crate::opinion::{NodeState, Opinion};
use crate::temporal::TemporalCapability;
use crate::topology::TopologySpec;
use noisy_channel::NoiseMatrix;
use rand::rngs::StdRng;

/// What a finished phase exposes to the layers above, unifying the
/// agent-level [`Inboxes`] and the count-level [`PhaseTally`] behind the
/// aggregate queries the protocol actually asks.
pub trait PhaseObservation {
    /// Per-opinion totals of the messages observed in the phase (post-noise
    /// delivered counts on the agent backend, the `h_j` of Definition 4 on
    /// the counting backend).
    fn received_totals(&self) -> Vec<u64>;

    /// Total number of messages observed in the phase.
    fn total_received(&self) -> u64;

    /// A ceiling on the largest single inbox of the phase: the observed
    /// maximum on the agent backend, a Chernoff-style w.h.p. ceiling on the
    /// counting backend. Feeds the protocol's memory accounting.
    fn max_inbox(&self) -> u64;

    /// Mean number of messages received per agent this phase.
    fn mean_received(&self) -> f64;

    /// Population variance of the per-agent received counts: measured
    /// exactly on the agent backend (an O(n) scan of the inboxes), the
    /// Poisson closed form `Var = Λ = mean` on the counting backend. The
    /// F8 experiment compares these across processes O/B/P (Claim 1 and
    /// Lemma 3 predict they agree per node while the totals differ).
    fn received_variance(&self) -> f64;

    /// Fraction of agents that received at least one message this phase:
    /// measured on the agent backend, `1 − e^{−Λ}` on the counting
    /// backend.
    fn fraction_with_messages(&self) -> f64;
}

impl PhaseObservation for Inboxes {
    fn received_totals(&self) -> Vec<u64> {
        self.totals_per_opinion()
    }

    fn total_received(&self) -> u64 {
        self.total_messages()
    }

    fn max_inbox(&self) -> u64 {
        self.max_received()
    }

    fn mean_received(&self) -> f64 {
        if self.num_nodes() == 0 {
            0.0
        } else {
            self.total_messages() as f64 / self.num_nodes() as f64
        }
    }

    fn received_variance(&self) -> f64 {
        let n = self.num_nodes();
        if n == 0 {
            return 0.0;
        }
        let mean = self.mean_received();
        (0..n)
            .map(|node| {
                let d = f64::from(self.received_total(node)) - mean;
                d * d
            })
            .sum::<f64>()
            / n as f64
    }

    fn fraction_with_messages(&self) -> f64 {
        let n = self.num_nodes();
        if n == 0 {
            return 0.0;
        }
        (0..n).filter(|&node| self.has_received(node)).count() as f64 / n as f64
    }
}

impl PhaseObservation for PhaseTally {
    fn received_totals(&self) -> Vec<u64> {
        self.post_noise().to_vec()
    }

    fn total_received(&self) -> u64 {
        self.total()
    }

    fn max_inbox(&self) -> u64 {
        self.typical_max_inbox()
    }

    fn mean_received(&self) -> f64 {
        self.mean_inbox()
    }

    fn received_variance(&self) -> f64 {
        // Per-node inboxes are independent Poisson(Λ) sums under process P
        // (Definition 4), so the variance equals the mean.
        self.mean_inbox()
    }

    fn fraction_with_messages(&self) -> f64 {
        self.activation_probability()
    }
}

impl PhaseObservation for BlockPhaseTally {
    fn received_totals(&self) -> Vec<u64> {
        BlockPhaseTally::received_totals(self)
    }

    fn total_received(&self) -> u64 {
        self.total()
    }

    fn max_inbox(&self) -> u64 {
        self.typical_max_inbox()
    }

    fn mean_received(&self) -> f64 {
        self.mean_inbox()
    }

    fn received_variance(&self) -> f64 {
        // A Poisson mixture over the degree classes: law of total variance
        // (equals the mean when C = 1, where the mixture degenerates).
        BlockPhaseTally::received_variance(self)
    }

    fn fraction_with_messages(&self) -> f64 {
        BlockPhaseTally::fraction_with_messages(self)
    }
}

/// The set of topology families a backend is statically certified for.
///
/// Ordered by inclusion: `Complete ⊂ VertexTransitive ⊂ Any`. Each backend
/// declares its capability as
/// [`PushBackend::TOPOLOGY_CAPABILITY`]; backend-selection policies (the
/// `Auto` resolver in the core crate) consult [`supports`](Self::supports)
/// instead of hard-coding backend names, so adding a backend never changes
/// the policy code.
///
/// The capability is the *certified* set — the families on which the
/// backend's law provably matches the agent-level model, hence the only
/// families an automatic policy may route to it. A backend may still
/// *accept* more at construction time as an explicit opt-in (the
/// block-counting backend accepts `er(p)` by exact-degree bucketing, a
/// documented mean-field approximation).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TopologyCapability {
    /// Only the complete graph (the paper's model): the backend needs
    /// global agent exchangeability.
    Complete,
    /// Every degree-homogeneous family — complete, ring, torus,
    /// `regular(d)` (see [`TopologySpec::is_vertex_transitive`]): the
    /// backend needs exchangeability only within a degree class.
    VertexTransitive,
    /// Every family, including `er(p)`: the backend tracks individual
    /// agents and neighbor lists.
    Any,
}

impl TopologyCapability {
    /// `true` if `topology` belongs to this certified set.
    pub fn supports(self, topology: TopologySpec) -> bool {
        match self {
            TopologyCapability::Complete => topology.is_complete(),
            TopologyCapability::VertexTransitive => topology.is_vertex_transitive(),
            TopologyCapability::Any => true,
        }
    }
}

/// Which agents the uniform-adoption decision operator applies to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AdoptionScope {
    /// Only agents that are currently undecided adopt (Stage 1's rule:
    /// opinionated agents never change opinion during Stage 1).
    UndecidedOnly,
    /// Every agent that received at least one message re-adopts (the voter
    /// model's rule).
    AllAgents,
}

/// A simulation backend for the noisy uniform push model, driven in phases.
///
/// See the [module documentation](self) for the lifecycle and the paper
/// lemmas justifying each implementation's semantics. All methods that make
/// random *decisions* take an explicit `rng`; delivery randomness stays
/// inside the backend (seeded by its [`SimConfig`]).
pub trait PushBackend {
    /// The phase result type ([`Inboxes`] or [`PhaseTally`]).
    type Observation: PhaseObservation;

    /// Static capability: the set of topology families this backend is
    /// certified for. The agent backend handles [`TopologyCapability::Any`]
    /// (it pushes along explicit neighbor lists); the counting backend only
    /// [`TopologyCapability::Complete`] — its whole O(k²)-per-phase
    /// reformulation rests on global agent exchangeability; the
    /// block-counting backend [`TopologyCapability::VertexTransitive`] —
    /// within-class exchangeability on degree-homogeneous families.
    /// Constructors reject configurations outside their certified set
    /// (modulo documented opt-ins) and backend-selection policies consult
    /// this constant instead of hard-coding backend names.
    const TOPOLOGY_CAPABILITY: TopologyCapability;

    /// Static capability: `true` if the backend can simulate the `delay`
    /// family of [`FaultSpec`](crate::FaultSpec) (messages deferred to the
    /// next phase). The agent backend can (it buffers the delayed
    /// post-noise counts and scatters them at the next `begin_phase`); the
    /// counting backend cannot — deferring individual messages across the
    /// phase boundary needs per-message identity its aggregate
    /// reformulation gives up — and its constructor rejects such
    /// configurations. All other fault families (drop, dup, crash,
    /// Byzantine) are supported by both backends. Backend-selection
    /// policies consult this constant instead of hard-coding backend
    /// names.
    const SUPPORTS_DELAY_FAULTS: bool;

    /// Static capability: which temporal features
    /// ([`ChurnSpec`](crate::ChurnSpec),
    /// [`NoiseSchedule`](crate::NoiseSchedule),
    /// [`ClockSpec`](crate::ClockSpec)) the backend can simulate. The agent
    /// backend supports everything
    /// ([`TemporalCapability::FULL`]); the counting backends support the
    /// aggregate subset ([`TemporalCapability::AGGREGATE`]): population
    /// churn and noise schedules are O(k) bulk operations on the count
    /// vectors, but edge churn and clock skew need per-agent identity
    /// (explicit adjacency, per-agent clock rates) that the count-level
    /// reformulation gives up. Constructors reject configurations outside
    /// their capability and backend-selection policies consult this
    /// constant instead of hard-coding backend names.
    const TEMPORAL_CAPABILITY: TemporalCapability;

    /// The simulation configuration.
    fn config(&self) -> &SimConfig;

    /// The noise matrix acting on every transmitted message.
    fn noise(&self) -> &NoiseMatrix;

    /// The number of agents `n`.
    fn num_nodes(&self) -> usize {
        self.config().num_nodes()
    }

    /// The number of opinions `k`.
    fn num_opinions(&self) -> usize {
        self.config().num_opinions()
    }

    /// The current opinion distribution. O(k) on both backends.
    fn distribution(&self) -> OpinionDistribution;

    /// `true` if every agent is opinionated on the same opinion. O(k) on
    /// both backends (the agent backend maintains population tallies
    /// incrementally), so it is cheap enough to poll every round.
    fn is_consensus(&self) -> bool {
        self.distribution().is_consensus()
    }

    /// Resets every agent to undecided (keeping round/message counters).
    fn clear_opinions(&mut self);

    /// Seeds a plurality instance: `counts[i]` agents adopt opinion `i`,
    /// the rest become undecided.
    ///
    /// # Errors
    ///
    /// Propagates the backend's validation errors (wrong length, counts
    /// exceeding `n`).
    fn seed_counts(&mut self, counts: &[usize]) -> Result<(), SimError>;

    /// Seeds a rumor instance: agent `source` adopts `opinion`, everyone
    /// else becomes undecided. (The counting backend's agents are
    /// exchangeable, so it only validates `source` and records the count.)
    ///
    /// # Errors
    ///
    /// Propagates the backend's validation errors (source or opinion out of
    /// range).
    fn seed_rumor_at(&mut self, source: usize, opinion: Opinion) -> Result<(), SimError>;

    /// Starts a new phase.
    ///
    /// # Panics
    ///
    /// Panics if a phase is already open.
    fn begin_phase(&mut self);

    /// Executes one synchronous round in which every opinionated agent
    /// pushes its current opinion — the only push rule the protocol and all
    /// baseline dynamics use (opinions never change mid-phase, so pushing
    /// the live state equals pushing a begin-of-phase snapshot).
    ///
    /// # Panics
    ///
    /// Panics if no phase is open.
    fn push_opinionated_round(&mut self) -> RoundReport;

    /// Finishes the open phase and returns its observation.
    ///
    /// # Panics
    ///
    /// Panics if no phase is open.
    fn end_phase(&mut self) -> &Self::Observation;

    /// The observation of the most recently finished phase.
    fn observation(&self) -> &Self::Observation;

    /// Total number of rounds executed so far.
    fn rounds_executed(&self) -> u64;

    /// Total number of messages pushed so far.
    fn messages_sent(&self) -> u64;

    /// The backend's own (delivery) RNG, for callers that want one
    /// reproducible randomness source.
    fn rng_mut(&mut self) -> &mut StdRng;

    /// Decision operator: every agent in `scope` that received at least one
    /// message this phase adopts one uniformly random received message
    /// (counting multiplicities). Stage 1 adoption / voter model.
    fn resolve_uniform_adoption(&mut self, scope: AdoptionScope, rng: &mut StdRng);

    /// Decision operator: every agent that received at least `sample_size`
    /// messages draws that many without replacement and adopts the sample
    /// majority, ties broken uniformly at random. Stage 2 / h-majority.
    fn resolve_sample_majority(&mut self, sample_size: u64, rng: &mut StdRng);

    /// Decision operator of the undecided-state dynamics: each agent that
    /// received at least one message draws one uniformly; undecided agents
    /// adopt it, opinionated agents keep their opinion on agreement and
    /// become undecided on disagreement.
    fn resolve_undecided_state(&mut self, rng: &mut StdRng);

    /// Decision operator of the median rule: each agent that received at
    /// least one message draws two uniformly (with replacement) and moves
    /// to the median of its own opinion and the two observations; undecided
    /// agents adopt the first draw.
    fn resolve_median(&mut self, rng: &mut StdRng);
}

impl PushBackend for Network {
    type Observation = Inboxes;

    const TOPOLOGY_CAPABILITY: TopologyCapability = TopologyCapability::Any;

    const SUPPORTS_DELAY_FAULTS: bool = true;

    const TEMPORAL_CAPABILITY: TemporalCapability = TemporalCapability::FULL;

    fn config(&self) -> &SimConfig {
        Network::config(self)
    }

    fn noise(&self) -> &NoiseMatrix {
        Network::noise(self)
    }

    fn num_nodes(&self) -> usize {
        // The live population (population churn moves it away from the
        // configured initial size).
        Network::num_nodes(self)
    }

    fn distribution(&self) -> OpinionDistribution {
        Network::distribution(self)
    }

    fn clear_opinions(&mut self) {
        Network::clear_opinions(self);
    }

    fn seed_counts(&mut self, counts: &[usize]) -> Result<(), SimError> {
        Network::seed_counts(self, counts)
    }

    fn seed_rumor_at(&mut self, source: usize, opinion: Opinion) -> Result<(), SimError> {
        Network::seed_rumor(self, source, opinion)
    }

    fn begin_phase(&mut self) {
        Network::begin_phase(self);
    }

    fn push_opinionated_round(&mut self) -> RoundReport {
        self.push_round(|_, state| state.opinion())
    }

    fn end_phase(&mut self) -> &Inboxes {
        Network::end_phase(self)
    }

    fn observation(&self) -> &Inboxes {
        self.inboxes()
    }

    fn rounds_executed(&self) -> u64 {
        Network::rounds_executed(self)
    }

    fn messages_sent(&self) -> u64 {
        Network::messages_sent(self)
    }

    fn rng_mut(&mut self) -> &mut StdRng {
        Network::rng_mut(self)
    }

    fn resolve_uniform_adoption(&mut self, scope: AdoptionScope, rng: &mut StdRng) {
        let mut changes: Vec<(usize, Opinion)> = Vec::new();
        for node in 0..self.num_nodes() {
            if self.fault_frozen(node) {
                continue;
            }
            if scope == AdoptionScope::UndecidedOnly && self.state(node).opinion().is_some() {
                continue;
            }
            if let Some(opinion) = self.inboxes().sample_one(node, rng) {
                changes.push((node, opinion));
            }
        }
        for (node, opinion) in changes {
            self.set_opinion(node, Some(opinion));
        }
    }

    fn resolve_sample_majority(&mut self, sample_size: u64, rng: &mut StdRng) {
        let sample_size_u32 = u32::try_from(sample_size).unwrap_or(u32::MAX);
        let mut changes: Vec<(usize, Opinion)> = Vec::new();
        for node in 0..self.num_nodes() {
            if self.fault_frozen(node) {
                continue;
            }
            let Some(sample) = self
                .inboxes()
                .sample_without_replacement(node, sample_size_u32, rng)
            else {
                continue;
            };
            if let Some(opinion) = Inboxes::majority_of_counts(&sample, rng) {
                changes.push((node, opinion));
            }
        }
        for (node, opinion) in changes {
            self.set_opinion(node, Some(opinion));
        }
    }

    fn resolve_undecided_state(&mut self, rng: &mut StdRng) {
        let mut changes: Vec<(usize, Option<Opinion>)> = Vec::new();
        for node in 0..self.num_nodes() {
            if self.fault_frozen(node) {
                continue;
            }
            let Some(message) = self.inboxes().sample_one(node, rng) else {
                continue;
            };
            match self.state(node) {
                NodeState::Undecided => changes.push((node, Some(message))),
                NodeState::Opinionated(own) if own != message => changes.push((node, None)),
                NodeState::Opinionated(_) => {}
            }
        }
        for (node, opinion) in changes {
            self.set_opinion(node, opinion);
        }
    }

    fn resolve_median(&mut self, rng: &mut StdRng) {
        let mut changes: Vec<(usize, Opinion)> = Vec::new();
        for node in 0..self.num_nodes() {
            if self.fault_frozen(node) {
                continue;
            }
            let Some(first) = self.inboxes().sample_one(node, rng) else {
                continue;
            };
            match self.state(node) {
                NodeState::Undecided => changes.push((node, first)),
                NodeState::Opinionated(own) => {
                    let second = self
                        .inboxes()
                        .sample_one(node, rng)
                        .expect("node has received at least one message");
                    let mut triple = [own.index(), first.index(), second.index()];
                    triple.sort_unstable();
                    changes.push((node, Opinion::new(triple[1])));
                }
            }
        }
        for (node, opinion) in changes {
            self.set_opinion(node, Some(opinion));
        }
    }
}

impl PushBackend for CountingNetwork {
    type Observation = PhaseTally;

    const TOPOLOGY_CAPABILITY: TopologyCapability = TopologyCapability::Complete;

    const SUPPORTS_DELAY_FAULTS: bool = false;

    const TEMPORAL_CAPABILITY: TemporalCapability = TemporalCapability::AGGREGATE;

    fn config(&self) -> &SimConfig {
        CountingNetwork::config(self)
    }

    fn noise(&self) -> &NoiseMatrix {
        CountingNetwork::noise(self)
    }

    fn num_nodes(&self) -> usize {
        // The live population (population churn moves it away from the
        // configured initial size).
        CountingNetwork::num_nodes(self)
    }

    fn distribution(&self) -> OpinionDistribution {
        CountingNetwork::distribution(self)
    }

    fn clear_opinions(&mut self) {
        CountingNetwork::clear_opinions(self);
    }

    fn seed_counts(&mut self, counts: &[usize]) -> Result<(), SimError> {
        CountingNetwork::seed_counts(self, counts)
    }

    fn seed_rumor_at(&mut self, source: usize, opinion: Opinion) -> Result<(), SimError> {
        if source >= self.num_nodes() {
            return Err(SimError::NodeOutOfRange {
                node: source,
                num_nodes: self.num_nodes(),
            });
        }
        self.seed_rumor(opinion)
    }

    fn begin_phase(&mut self) {
        CountingNetwork::begin_phase(self);
    }

    fn push_opinionated_round(&mut self) -> RoundReport {
        self.push_round_all_opinionated()
    }

    fn end_phase(&mut self) -> &PhaseTally {
        CountingNetwork::end_phase(self)
    }

    fn observation(&self) -> &PhaseTally {
        self.tally()
    }

    fn rounds_executed(&self) -> u64 {
        CountingNetwork::rounds_executed(self)
    }

    fn messages_sent(&self) -> u64 {
        CountingNetwork::messages_sent(self)
    }

    fn rng_mut(&mut self) -> &mut StdRng {
        CountingNetwork::rng_mut(self)
    }

    fn resolve_uniform_adoption(&mut self, scope: AdoptionScope, rng: &mut StdRng) {
        match scope {
            AdoptionScope::UndecidedOnly => {
                let undecided = self.undecided();
                let (adoptions, _silent) = self.sample_one_adoptions_with(undecided, rng);
                let adopted: u64 = adoptions.iter().sum();
                let leavers = vec![0u64; self.num_opinions()];
                self.apply_deltas(&leavers, &adoptions, -(adopted as i64));
            }
            AdoptionScope::AllAgents => {
                let (leavers, joiners, undecided_delta) =
                    uniform_adoption_all_plan(self.counts(), self.undecided(), self.tally(), rng);
                self.apply_deltas(&leavers, &joiners, undecided_delta);
            }
        }
    }

    fn resolve_sample_majority(&mut self, sample_size: u64, rng: &mut StdRng) {
        self.apply_sample_majority_with(sample_size, rng);
    }

    fn resolve_undecided_state(&mut self, rng: &mut StdRng) {
        let (leavers, joiners, undecided_delta) =
            undecided_state_plan(self.counts(), self.undecided(), self.tally(), rng);
        self.apply_deltas(&leavers, &joiners, undecided_delta);
    }

    /// Count-level median rule (see `median_plan` in the counting module
    /// for the mean-field approximation it documents).
    fn resolve_median(&mut self, rng: &mut StdRng) {
        let (leavers, joiners, undecided_delta) =
            median_plan(self.counts(), self.undecided(), self.tally(), rng);
        self.apply_deltas(&leavers, &joiners, undecided_delta);
    }
}

impl PushBackend for BlockCountingNetwork {
    type Observation = BlockPhaseTally;

    const TOPOLOGY_CAPABILITY: TopologyCapability = TopologyCapability::VertexTransitive;

    const SUPPORTS_DELAY_FAULTS: bool = false;

    const TEMPORAL_CAPABILITY: TemporalCapability = TemporalCapability::AGGREGATE;

    fn num_nodes(&self) -> usize {
        // The live population (population churn moves it away from the
        // configured initial size).
        BlockCountingNetwork::num_nodes(self)
    }

    fn config(&self) -> &SimConfig {
        BlockCountingNetwork::config(self)
    }

    fn noise(&self) -> &NoiseMatrix {
        BlockCountingNetwork::noise(self)
    }

    fn distribution(&self) -> OpinionDistribution {
        BlockCountingNetwork::distribution(self)
    }

    fn clear_opinions(&mut self) {
        BlockCountingNetwork::clear_opinions(self);
    }

    fn seed_counts(&mut self, counts: &[usize]) -> Result<(), SimError> {
        BlockCountingNetwork::seed_counts(self, counts)
    }

    fn seed_rumor_at(&mut self, source: usize, opinion: Opinion) -> Result<(), SimError> {
        BlockCountingNetwork::seed_rumor_at(self, source, opinion)
    }

    fn begin_phase(&mut self) {
        BlockCountingNetwork::begin_phase(self);
    }

    fn push_opinionated_round(&mut self) -> RoundReport {
        self.push_round_all_opinionated()
    }

    fn end_phase(&mut self) -> &BlockPhaseTally {
        BlockCountingNetwork::end_phase(self)
    }

    fn observation(&self) -> &BlockPhaseTally {
        self.tally()
    }

    fn rounds_executed(&self) -> u64 {
        BlockCountingNetwork::rounds_executed(self)
    }

    fn messages_sent(&self) -> u64 {
        BlockCountingNetwork::messages_sent(self)
    }

    fn rng_mut(&mut self) -> &mut StdRng {
        BlockCountingNetwork::rng_mut(self)
    }

    fn resolve_uniform_adoption(&mut self, scope: AdoptionScope, rng: &mut StdRng) {
        BlockCountingNetwork::resolve_uniform_adoption_per_class(self, scope, rng);
    }

    fn resolve_sample_majority(&mut self, sample_size: u64, rng: &mut StdRng) {
        BlockCountingNetwork::resolve_sample_majority_per_class(self, sample_size, rng);
    }

    fn resolve_undecided_state(&mut self, rng: &mut StdRng) {
        BlockCountingNetwork::resolve_undecided_state_per_class(self, rng);
    }

    fn resolve_median(&mut self, rng: &mut StdRng) {
        BlockCountingNetwork::resolve_median_per_class(self, rng);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::DeliverySemantics;
    use rand::SeedableRng;

    fn agent_net(n: usize, seed: u64) -> Network {
        let noise = NoiseMatrix::uniform(3, 0.2).unwrap();
        let config = SimConfig::builder(n, 3).seed(seed).build().unwrap();
        Network::new(config, noise).unwrap()
    }

    fn counting_net(n: usize, seed: u64) -> CountingNetwork {
        let noise = NoiseMatrix::uniform(3, 0.2).unwrap();
        let config = SimConfig::builder(n, 3)
            .seed(seed)
            .delivery(DeliverySemantics::Poissonized)
            .build()
            .unwrap();
        CountingNetwork::new(config, noise).unwrap()
    }

    /// One generic phase through the trait, usable with either backend.
    fn one_phase<B: PushBackend>(net: &mut B, rounds: u64) -> u64 {
        net.begin_phase();
        let mut messages = 0;
        for _ in 0..rounds {
            messages += net.push_opinionated_round().messages_sent();
        }
        net.end_phase().total_received();
        messages
    }

    #[test]
    fn generic_phase_drives_both_backends() {
        let mut agent = agent_net(300, 1);
        PushBackend::seed_counts(&mut agent, &[100, 50, 20]).unwrap();
        let pushed = one_phase(&mut agent, 3);
        assert_eq!(pushed, 3 * 170);
        assert_eq!(agent.observation().total_received(), 3 * 170);

        let mut counting = counting_net(300, 1);
        PushBackend::seed_counts(&mut counting, &[100, 50, 20]).unwrap();
        let pushed = one_phase(&mut counting, 3);
        assert_eq!(pushed, 3 * 170);
        assert_eq!(counting.observation().total_received(), 3 * 170);
    }

    #[test]
    fn agent_resolve_uniform_adoption_matches_scope() {
        let mut net = agent_net(200, 2);
        net.seed_counts(&[40, 20, 0]).unwrap();
        one_phase(&mut net, 4);
        let before = net.distribution();
        let mut rng = StdRng::seed_from_u64(3);
        net.resolve_uniform_adoption(AdoptionScope::UndecidedOnly, &mut rng);
        let after = net.distribution();
        // Opinionated agents never lose their opinion under UndecidedOnly.
        for o in 0..3 {
            assert!(after.counts()[o] >= before.counts()[o]);
        }
        assert!(after.undecided() <= before.undecided());
        assert_eq!(after.num_nodes(), 200);
    }

    #[test]
    fn counting_resolve_uniform_adoption_conserves_population() {
        let mut net = counting_net(10_000, 4);
        PushBackend::seed_counts(&mut net, &[4_000, 2_000, 1_000]).unwrap();
        one_phase(&mut net, 2);
        let mut rng = StdRng::seed_from_u64(5);
        net.resolve_uniform_adoption(AdoptionScope::AllAgents, &mut rng);
        assert_eq!(net.distribution().num_nodes(), 10_000);
        net.resolve_uniform_adoption(AdoptionScope::UndecidedOnly, &mut rng);
        assert_eq!(net.distribution().num_nodes(), 10_000);
    }

    #[test]
    fn resolve_sample_majority_conserves_population_on_both_backends() {
        let mut agent = agent_net(300, 6);
        PushBackend::seed_counts(&mut agent, &[150, 100, 50]).unwrap();
        one_phase(&mut agent, 10);
        let mut rng = StdRng::seed_from_u64(7);
        agent.resolve_sample_majority(5, &mut rng);
        assert_eq!(PushBackend::distribution(&agent).num_nodes(), 300);

        let mut counting = counting_net(300, 6);
        PushBackend::seed_counts(&mut counting, &[150, 100, 50]).unwrap();
        one_phase(&mut counting, 10);
        counting.resolve_sample_majority(5, &mut rng);
        assert_eq!(PushBackend::distribution(&counting).num_nodes(), 300);
    }

    #[test]
    fn counting_seed_rumor_at_validates_the_source() {
        let mut net = counting_net(50, 8);
        assert!(net.seed_rumor_at(49, Opinion::new(1)).is_ok());
        assert_eq!(net.counts(), &[0, 1, 0]);
        assert!(matches!(
            net.seed_rumor_at(50, Opinion::new(1)),
            Err(SimError::NodeOutOfRange { .. })
        ));
    }

    #[test]
    fn phase_statistics_are_consistent_on_both_backends() {
        // Agent backend: measured moments over the real inboxes.
        let mut agent = agent_net(500, 11);
        PushBackend::seed_counts(&mut agent, &[200, 100, 50]).unwrap();
        one_phase(&mut agent, 4);
        let obs = PushBackend::observation(&agent);
        let n = 500.0;
        assert!((obs.mean_received() - obs.total_received() as f64 / n).abs() < 1e-12);
        let frac = obs.fraction_with_messages();
        assert!((0.0..=1.0).contains(&frac));
        assert!(frac > 0.5, "4 rounds of 350 pushers reach most of 500 nodes");
        assert!(obs.received_variance() > 0.0);

        // Counting backend: the Poisson closed forms.
        let mut counting = counting_net(500, 11);
        PushBackend::seed_counts(&mut counting, &[200, 100, 50]).unwrap();
        one_phase(&mut counting, 4);
        let obs = PushBackend::observation(&counting);
        let lambda = obs.mean_received();
        assert!((obs.received_variance() - lambda).abs() < 1e-12);
        assert!((obs.fraction_with_messages() - (1.0 - (-lambda).exp())).abs() < 1e-9);
    }

    #[test]
    fn is_consensus_matches_the_distribution_on_both_backends() {
        let mut agent = agent_net(100, 9);
        assert!(!PushBackend::is_consensus(&agent));
        PushBackend::seed_counts(&mut agent, &[100, 0, 0]).unwrap();
        assert!(PushBackend::is_consensus(&agent));

        let mut counting = counting_net(100, 9);
        assert!(!PushBackend::is_consensus(&counting));
        PushBackend::seed_counts(&mut counting, &[0, 100, 0]).unwrap();
        assert!(PushBackend::is_consensus(&counting));
    }
}
