//! Per-agent received-message multisets.

use crate::opinion::Opinion;
use rand::Rng;

/// The multiset of messages every agent received during one phase, stored as
/// per-agent, per-opinion counts.
///
/// The protocols of the paper never need the arrival *order* of messages
/// within a phase (their rules depend only on the received multiset
/// `R_j(u)` — this is exactly what makes Claim 1 work), so counts are a
/// faithful and memory-efficient representation: `n × k` `u32`s instead of
/// unbounded per-message logs.
///
/// [`Inboxes`] also offers the two sampling primitives protocols need:
///
/// * [`sample_one`](Inboxes::sample_one) — one message chosen uniformly at
///   random, counting multiplicities (Stage 1's rule);
/// * [`sample_without_replacement`](Inboxes::sample_without_replacement) —
///   a uniform random sample of fixed size from the multiset (Stage 2's
///   rule), implemented as a sequential multivariate-hypergeometric draw.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Inboxes {
    /// Flattened `num_nodes × num_opinions` counts.
    counts: Vec<u32>,
    num_opinions: usize,
    total_messages: u64,
}

impl Inboxes {
    /// Creates empty inboxes for `num_nodes` agents over `num_opinions`
    /// opinions.
    pub(crate) fn new(num_nodes: usize, num_opinions: usize) -> Self {
        Self {
            counts: vec![0; num_nodes * num_opinions],
            num_opinions,
            total_messages: 0,
        }
    }

    /// Re-shapes the inboxes for a new number of agents (population
    /// churn changes `n` at phase boundaries); all counts reset. Keeps
    /// the allocation when the population shrinks.
    pub(crate) fn resize(&mut self, num_nodes: usize) {
        self.counts.clear();
        self.counts.resize(num_nodes * self.num_opinions, 0);
        self.total_messages = 0;
    }

    /// Clears all counts (reused between phases to avoid reallocation).
    pub(crate) fn clear(&mut self) {
        self.counts.iter_mut().for_each(|c| *c = 0);
        self.total_messages = 0;
    }

    /// Records the delivery of one message with `opinion` to `node`.
    pub(crate) fn deliver(&mut self, node: usize, opinion: usize) {
        self.counts[node * self.num_opinions + opinion] += 1;
        self.total_messages += 1;
    }

    /// Records the delivery of `count` copies of `opinion` to `node`.
    /// (Kept for tests and future per-agent bulk paths; the batched
    /// deliveries go through [`scatter_uniform`](Self::scatter_uniform).)
    #[cfg_attr(not(test), allow(dead_code))]
    pub(crate) fn deliver_many(&mut self, node: usize, opinion: usize, count: u32) {
        self.counts[node * self.num_opinions + opinion] += count;
        self.total_messages += u64::from(count);
    }

    /// Throws `totals[j]` exchangeable copies of each opinion `j` into
    /// uniformly random inboxes — the placement step of the batched
    /// process-B/P delivery. The noise has already been applied at the
    /// count level, so the inner loop is a bare `gen_range` + increment
    /// (no per-message channel sampling).
    pub(crate) fn scatter_uniform<R: Rng + ?Sized>(&mut self, totals: &[u64], rng: &mut R) {
        debug_assert_eq!(totals.len(), self.num_opinions);
        let n = self.num_nodes();
        let k = self.num_opinions;
        for (opinion, &h) in totals.iter().enumerate() {
            for _ in 0..h {
                let node = rng.gen_range(0..n);
                self.counts[node * k + opinion] += 1;
            }
            self.total_messages += h;
        }
    }

    /// The number of agents the inboxes were created for.
    pub fn num_nodes(&self) -> usize {
        self.counts.len().checked_div(self.num_opinions).unwrap_or(0)
    }

    /// The number of opinions `k`.
    pub fn num_opinions(&self) -> usize {
        self.num_opinions
    }

    /// Total number of messages delivered in the phase, over all agents.
    pub fn total_messages(&self) -> u64 {
        self.total_messages
    }

    /// Per-opinion received counts of one agent.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    pub fn received(&self, node: usize) -> &[u32] {
        &self.counts[node * self.num_opinions..(node + 1) * self.num_opinions]
    }

    /// The number of messages `node` received in the phase.
    pub fn received_total(&self, node: usize) -> u32 {
        self.received(node).iter().sum()
    }

    /// `true` if `node` received at least one message.
    pub fn has_received(&self, node: usize) -> bool {
        self.received(node).iter().any(|&c| c > 0)
    }

    /// The largest single inbox of the phase (the maximum over agents of
    /// [`received_total`](Self::received_total)) — the quantity the
    /// protocol's memory meter tracks.
    pub fn max_received(&self) -> u64 {
        self.counts
            .chunks_exact(self.num_opinions.max(1))
            .map(|chunk| chunk.iter().map(|&c| u64::from(c)).sum())
            .max()
            .unwrap_or(0)
    }

    /// Aggregated per-opinion counts over all agents.
    pub fn totals_per_opinion(&self) -> Vec<u64> {
        let mut totals = vec![0u64; self.num_opinions];
        for chunk in self.counts.chunks_exact(self.num_opinions) {
            for (t, &c) in totals.iter_mut().zip(chunk) {
                *t += u64::from(c);
            }
        }
        totals
    }

    /// Draws one message uniformly at random (counting multiplicities) from
    /// the multiset `node` received, or `None` if the agent received
    /// nothing.
    ///
    /// This is the opinion-adoption rule of Stage 1: "chosen u.a.r. (counting
    /// multiplicities) from the received opinions".
    pub fn sample_one<R: Rng + ?Sized>(&self, node: usize, rng: &mut R) -> Option<Opinion> {
        let row = self.received(node);
        let total: u32 = row.iter().sum();
        if total == 0 {
            return None;
        }
        let mut target = rng.gen_range(0..total);
        for (i, &c) in row.iter().enumerate() {
            if target < c {
                return Some(Opinion::new(i));
            }
            target -= c;
        }
        unreachable!("target is below the total count")
    }

    /// Draws a uniform random sample of `sample_size` messages *without
    /// replacement* from the multiset `node` received, returning per-opinion
    /// counts of the sample. Returns `None` if the agent received fewer than
    /// `sample_size` messages.
    ///
    /// This is the sampling step of Stage 2 ("starts drawing a random
    /// uniform sample S(u) of size L from R_j(u)"). The draw is a sequential
    /// multivariate-hypergeometric sample, exactly equivalent to shuffling
    /// the received multiset and taking a prefix, and runs in
    /// `O(k · sample_size)` time — negligible for the `ℓ = O(1/ε²)` sample
    /// sizes the protocol uses.
    pub fn sample_without_replacement<R: Rng + ?Sized>(
        &self,
        node: usize,
        sample_size: u32,
        rng: &mut R,
    ) -> Option<Vec<u32>> {
        let row = self.received(node);
        let total: u32 = row.iter().sum();
        if total < sample_size {
            return None;
        }
        let mut remaining_population = total;
        let mut remaining_sample = sample_size;
        let mut sample = vec![0u32; self.num_opinions];
        for (i, &available) in row.iter().enumerate() {
            if remaining_sample == 0 {
                break;
            }
            // Draw the number of copies of opinion i in the sample from the
            // hypergeometric conditional distribution by simulating the
            // sequential draws of this stratum.
            let drawn = hypergeometric_draw(available, remaining_population, remaining_sample, rng);
            sample[i] = drawn;
            remaining_sample -= drawn;
            remaining_population -= available;
        }
        Some(sample)
    }

    /// The most frequent opinion in the per-opinion count vector `counts`,
    /// breaking ties uniformly at random — the paper's `maj(·)` operator.
    pub fn majority_of_counts<R: Rng + ?Sized>(counts: &[u32], rng: &mut R) -> Option<Opinion> {
        let max = *counts.iter().max()?;
        if max == 0 {
            return None;
        }
        let tied: Vec<usize> = counts
            .iter()
            .enumerate()
            .filter(|(_, &c)| c == max)
            .map(|(i, _)| i)
            .collect();
        let pick = tied[rng.gen_range(0..tied.len())];
        Some(Opinion::new(pick))
    }
}

/// Number of marked items drawn when taking `sample_size` items uniformly
/// without replacement from a population of `population` items of which
/// `marked` are marked.
///
/// Sampled by the direct sequential method: walk through the `sample_size`
/// draws, each time drawing a marked item with probability
/// `remaining_marked / remaining_population`. This is exact and fast for the
/// sample sizes used by the protocol (`ℓ = O(1/ε²)`).
fn hypergeometric_draw<R: Rng + ?Sized>(
    marked: u32,
    population: u32,
    sample_size: u32,
    rng: &mut R,
) -> u32 {
    debug_assert!(marked <= population);
    debug_assert!(sample_size <= population);
    let mut remaining_marked = marked;
    let mut remaining_population = population;
    let mut drawn = 0;
    for _ in 0..sample_size {
        if remaining_marked == 0 {
            break;
        }
        if rng.gen_range(0..remaining_population) < remaining_marked {
            drawn += 1;
            remaining_marked -= 1;
        }
        remaining_population -= 1;
    }
    drawn
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn filled_inboxes() -> Inboxes {
        let mut inboxes = Inboxes::new(3, 3);
        inboxes.deliver(0, 0);
        inboxes.deliver(0, 0);
        inboxes.deliver(0, 2);
        inboxes.deliver_many(1, 1, 5);
        inboxes
    }

    #[test]
    fn delivery_and_accessors() {
        let inboxes = filled_inboxes();
        assert_eq!(inboxes.num_nodes(), 3);
        assert_eq!(inboxes.num_opinions(), 3);
        assert_eq!(inboxes.total_messages(), 8);
        assert_eq!(inboxes.received(0), &[2, 0, 1]);
        assert_eq!(inboxes.received(1), &[0, 5, 0]);
        assert_eq!(inboxes.received_total(0), 3);
        assert!(inboxes.has_received(1));
        assert!(!inboxes.has_received(2));
        assert_eq!(inboxes.totals_per_opinion(), vec![2, 5, 1]);
        assert_eq!(inboxes.max_received(), 5);
    }

    #[test]
    fn clear_resets_everything() {
        let mut inboxes = filled_inboxes();
        inboxes.clear();
        assert_eq!(inboxes.total_messages(), 0);
        assert!(!inboxes.has_received(0));
        assert_eq!(inboxes.totals_per_opinion(), vec![0, 0, 0]);
    }

    #[test]
    fn sample_one_respects_multiplicities() {
        let inboxes = filled_inboxes();
        let mut rng = StdRng::seed_from_u64(1);
        // Node 2 received nothing.
        assert_eq!(inboxes.sample_one(2, &mut rng), None);
        // Node 0 received {0, 0, 2}: opinion 0 should come up ~2/3 of the time.
        let trials = 30_000;
        let zeros = (0..trials)
            .filter(|_| inboxes.sample_one(0, &mut rng) == Some(Opinion::new(0)))
            .count();
        let frac = zeros as f64 / trials as f64;
        assert!((frac - 2.0 / 3.0).abs() < 0.02, "fraction {frac}");
        // Node 1 only ever received opinion 1.
        for _ in 0..100 {
            assert_eq!(inboxes.sample_one(1, &mut rng), Some(Opinion::new(1)));
        }
    }

    #[test]
    fn sample_without_replacement_is_exhaustive_at_full_size() {
        let inboxes = filled_inboxes();
        let mut rng = StdRng::seed_from_u64(2);
        // Sampling all 3 messages of node 0 returns exactly its counts.
        let s = inboxes.sample_without_replacement(0, 3, &mut rng).unwrap();
        assert_eq!(s, vec![2, 0, 1]);
        // Asking for more than was received fails.
        assert!(inboxes.sample_without_replacement(0, 4, &mut rng).is_none());
    }

    #[test]
    fn sample_without_replacement_has_hypergeometric_marginals() {
        // Node receives 6 copies of opinion 0 and 4 of opinion 1; sampling 5
        // without replacement, the expected number of opinion-0 copies is
        // 5 * 6/10 = 3.
        let mut inboxes = Inboxes::new(1, 2);
        inboxes.deliver_many(0, 0, 6);
        inboxes.deliver_many(0, 1, 4);
        let mut rng = StdRng::seed_from_u64(3);
        let trials = 20_000;
        let mut sum = 0u64;
        for _ in 0..trials {
            let s = inboxes.sample_without_replacement(0, 5, &mut rng).unwrap();
            assert_eq!(s.iter().sum::<u32>(), 5);
            assert!(s[0] <= 6 && s[1] <= 4);
            sum += u64::from(s[0]);
        }
        let mean = sum as f64 / trials as f64;
        assert!((mean - 3.0).abs() < 0.05, "mean {mean}");
    }

    #[test]
    fn majority_breaks_ties_uniformly() {
        let mut rng = StdRng::seed_from_u64(4);
        assert_eq!(Inboxes::majority_of_counts(&[0, 0, 0], &mut rng), None);
        assert_eq!(
            Inboxes::majority_of_counts(&[1, 3, 2], &mut rng),
            Some(Opinion::new(1))
        );
        // Tie between opinions 0 and 2: each should win about half the time.
        let trials = 20_000;
        let zeros = (0..trials)
            .filter(|_| {
                Inboxes::majority_of_counts(&[4, 1, 4], &mut rng) == Some(Opinion::new(0))
            })
            .count();
        let frac = zeros as f64 / trials as f64;
        assert!((frac - 0.5).abs() < 0.02, "fraction {frac}");
    }

    #[test]
    fn hypergeometric_draw_edge_cases() {
        let mut rng = StdRng::seed_from_u64(5);
        assert_eq!(hypergeometric_draw(0, 10, 5, &mut rng), 0);
        assert_eq!(hypergeometric_draw(10, 10, 5, &mut rng), 5);
        assert_eq!(hypergeometric_draw(3, 3, 3, &mut rng), 3);
    }
}
