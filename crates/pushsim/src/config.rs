//! Simulation configuration.

use crate::error::SimError;
use crate::fault::FaultSpec;
use crate::temporal::{ChurnSpec, ClockSpec, NoiseSchedule};
use crate::topology::TopologySpec;

/// How messages pushed during a phase are delivered to the agents.
///
/// The three variants correspond to the three processes of Section 3.2 of
/// the paper. See the crate-level documentation for details. Protocol
/// correctness results are stated for [`Exact`](DeliverySemantics::Exact)
/// (process O); the other two exist to validate the paper's Poissonization
/// argument empirically and to speed up very large simulations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum DeliverySemantics {
    /// Process **O**: each message is noised and delivered to a uniformly
    /// random agent in the round it is pushed.
    #[default]
    Exact,
    /// Process **B**: messages accumulate during the phase and are noised
    /// and thrown into agents, like balls into bins, at `end_phase`.
    BallsIntoBins,
    /// Process **P**: at `end_phase`, every agent receives an independent
    /// `Poisson(h_i / n)` number of copies of each opinion `i`, where `h_i`
    /// is the number of post-noise messages carrying opinion `i`.
    Poissonized,
}

impl DeliverySemantics {
    /// All delivery semantics, in the order O, B, P.
    pub const ALL: [DeliverySemantics; 3] = [
        DeliverySemantics::Exact,
        DeliverySemantics::BallsIntoBins,
        DeliverySemantics::Poissonized,
    ];

    /// A short human-readable label ("O", "B" or "P") matching the paper's
    /// process names.
    pub fn label(self) -> &'static str {
        match self {
            DeliverySemantics::Exact => "O",
            DeliverySemantics::BallsIntoBins => "B",
            DeliverySemantics::Poissonized => "P",
        }
    }

    /// The spelling used by scenario spec files and `--delivery`-style
    /// flags; accepted back by the [`FromStr`](std::str::FromStr) impl.
    pub fn spec_name(self) -> &'static str {
        match self {
            DeliverySemantics::Exact => "exact",
            DeliverySemantics::BallsIntoBins => "balls",
            DeliverySemantics::Poissonized => "poisson",
        }
    }
}

impl std::str::FromStr for DeliverySemantics {
    type Err = String;

    /// Parses the spec-file spelling (`"exact"`, `"balls"`, `"poisson"`) or
    /// the paper's process letter (`"O"`, `"B"`, `"P"`), case-insensitive.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "exact" | "o" => Ok(DeliverySemantics::Exact),
            "balls" | "balls-into-bins" | "b" => Ok(DeliverySemantics::BallsIntoBins),
            "poisson" | "poissonized" | "p" => Ok(DeliverySemantics::Poissonized),
            other => Err(format!(
                "unknown delivery semantics {other:?} (expected exact, balls or poisson)"
            )),
        }
    }
}

/// Configuration of a [`Network`](crate::Network).
///
/// Use [`SimConfig::builder`] to construct one.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct SimConfig {
    num_nodes: usize,
    num_opinions: usize,
    seed: u64,
    delivery: DeliverySemantics,
    topology: TopologySpec,
    fault: FaultSpec,
    churn: ChurnSpec,
    schedule: NoiseSchedule,
    clock: ClockSpec,
}

impl SimConfig {
    /// Starts building a configuration for `num_nodes` agents and
    /// `num_opinions` opinions.
    pub fn builder(num_nodes: usize, num_opinions: usize) -> SimConfigBuilder {
        SimConfigBuilder {
            num_nodes,
            num_opinions,
            seed: 0,
            delivery: DeliverySemantics::Exact,
            topology: TopologySpec::Complete,
            fault: FaultSpec::default(),
            churn: ChurnSpec::default(),
            schedule: NoiseSchedule::default(),
            clock: ClockSpec::default(),
        }
    }

    /// The number of agents `n`.
    pub fn num_nodes(&self) -> usize {
        self.num_nodes
    }

    /// The number of opinions `k`.
    pub fn num_opinions(&self) -> usize {
        self.num_opinions
    }

    /// The RNG seed of the simulation.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The delivery semantics (process O, B or P).
    pub fn delivery(&self) -> DeliverySemantics {
        self.delivery
    }

    /// The communication topology (the complete graph unless overridden).
    pub fn topology(&self) -> TopologySpec {
        self.topology
    }

    /// The injected faults (all disabled unless overridden).
    pub fn fault(&self) -> FaultSpec {
        self.fault
    }

    /// The population/edge churn (all disabled unless overridden).
    pub fn churn(&self) -> ChurnSpec {
        self.churn
    }

    /// The noise schedule (`const` unless overridden).
    pub fn schedule(&self) -> NoiseSchedule {
        self.schedule
    }

    /// The activation clock (`sync` unless overridden).
    pub fn clock(&self) -> ClockSpec {
        self.clock
    }
}

/// Builder for [`SimConfig`].
#[derive(Debug, Clone)]
pub struct SimConfigBuilder {
    num_nodes: usize,
    num_opinions: usize,
    seed: u64,
    delivery: DeliverySemantics,
    topology: TopologySpec,
    fault: FaultSpec,
    churn: ChurnSpec,
    schedule: NoiseSchedule,
    clock: ClockSpec,
}

impl SimConfigBuilder {
    /// Sets the RNG seed (default 0). Two simulations with the same
    /// configuration and seed evolve identically.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the delivery semantics (default [`DeliverySemantics::Exact`]).
    pub fn delivery(mut self, delivery: DeliverySemantics) -> Self {
        self.delivery = delivery;
        self
    }

    /// Sets the communication topology (default
    /// [`TopologySpec::Complete`], the paper's model). Non-complete
    /// topologies allow [`DeliverySemantics::Exact`] (agent-level push
    /// along neighbor lists) and — on degree-homogeneous families
    /// ([`TopologySpec::is_vertex_transitive`]) —
    /// [`DeliverySemantics::Poissonized`], realized per degree class by
    /// the block-counting backend. Process B stays complete-graph-only:
    /// its balls-into-bins scatter is a *uniform*-bin notion no backend
    /// localizes to a sparse graph.
    pub fn topology(mut self, topology: TopologySpec) -> Self {
        self.topology = topology;
        self
    }

    /// Sets the injected faults (default [`FaultSpec::none`], i.e. the
    /// fault-free paper model). Enabled faults require the complete
    /// graph: a duplicated or delayed message is re-scattered *uniformly*,
    /// which only makes sense when every agent can reach every other.
    pub fn fault(mut self, fault: FaultSpec) -> Self {
        self.fault = fault;
        self
    }

    /// Sets the population/edge churn (default [`ChurnSpec::none`], i.e.
    /// the static-population paper model). Population churn (`join`,
    /// `leave`, `burst`) requires the complete graph and does not
    /// compose with crash/Byzantine/delay faults; edge churn (`rewire`)
    /// requires a re-sampleable randomized topology (`regular(d)` or
    /// `er(p)`) under exact delivery.
    pub fn churn(mut self, churn: ChurnSpec) -> Self {
        self.churn = churn;
        self
    }

    /// Sets the noise schedule (default [`NoiseSchedule::Const`], the
    /// paper's constant channel). Non-constant schedules swap in the
    /// uniform ε-noise family per phase; scheduled ε values must lie in
    /// `(0, 1 − 1/k]` (the upper bound is checked when the backend is
    /// built).
    pub fn schedule(mut self, schedule: NoiseSchedule) -> Self {
        self.schedule = schedule;
        self
    }

    /// Sets the activation clock (default [`ClockSpec::Sync`], the
    /// paper's lockstep rounds). Non-`sync` clocks need the agent
    /// backend.
    pub fn clock(mut self, clock: ClockSpec) -> Self {
        self.clock = clock;
        self
    }

    /// Validates and builds the configuration.
    ///
    /// # Errors
    ///
    /// * [`SimError::TooFewNodes`] if fewer than 2 nodes are requested.
    /// * [`SimError::TooFewOpinions`] if fewer than 2 opinions are requested.
    /// * [`SimError::InvalidTopology`] if the topology parameters are
    ///   infeasible for the node count ([`TopologySpec::check`]).
    /// * [`SimError::UnsupportedTopology`] if a non-complete topology is
    ///   combined with process B, or a non-vertex-transitive one (`er(p)`)
    ///   with process P.
    /// * [`SimError::InvalidFault`] if the fault parameters are infeasible
    ///   ([`FaultSpec::check`]).
    /// * [`SimError::UnsupportedFault`] if enabled faults are combined
    ///   with a non-complete topology.
    /// * [`SimError::InvalidTemporal`] if the churn, schedule or clock
    ///   parameters are infeasible ([`ChurnSpec::check`],
    ///   [`NoiseSchedule::check`], [`ClockSpec::check`]).
    /// * [`SimError::UnsupportedTemporal`] if population churn is
    ///   combined with a non-complete topology or with
    ///   crash/Byzantine/delay faults, or edge churn (`rewire`) with a
    ///   non-resampleable topology or deferred delivery.
    pub fn build(self) -> Result<SimConfig, SimError> {
        if self.num_nodes < 2 {
            return Err(SimError::TooFewNodes {
                found: self.num_nodes,
            });
        }
        if self.num_opinions < 2 {
            return Err(SimError::TooFewOpinions {
                found: self.num_opinions,
            });
        }
        self.topology.check(self.num_nodes)?;
        // Process B is a uniform-bins notion no backend localizes to a
        // sparse graph; process P localizes per degree class, so it is
        // admitted exactly on the degree-homogeneous families the
        // block-counting backend is certified for. Keeping `er(p) + P`
        // out here guarantees automatic backend selection never faces a
        // Poissonized configuration it cannot route faithfully.
        if !self.topology.is_complete() {
            let admitted = match self.delivery {
                DeliverySemantics::Exact => true,
                DeliverySemantics::Poissonized => self.topology.is_vertex_transitive(),
                DeliverySemantics::BallsIntoBins => false,
            };
            if !admitted {
                return Err(SimError::UnsupportedTopology {
                    topology: self.topology.label(),
                    context: format!("deferred delivery (process {})", self.delivery.label()),
                });
            }
        }
        self.fault.check(self.num_opinions)?;
        if !self.fault.is_none() && !self.topology.is_complete() {
            return Err(SimError::UnsupportedFault {
                fault: self.fault.label(),
                context: format!("the non-complete topology {}", self.topology.label()),
            });
        }
        self.churn.check(self.num_opinions)?;
        self.schedule.check()?;
        self.clock.check()?;
        if self.churn.has_population_churn() {
            // Join/leave/burst reshape the population; on a sparse graph
            // that is graph surgery with no canonical semantics, and
            // crash/Byzantine/delay faults pin per-agent identity that
            // arrivals and departures would scramble.
            if !self.topology.is_complete() {
                return Err(SimError::UnsupportedTemporal {
                    feature: "population churn".to_string(),
                    context: format!("the non-complete topology {}", self.topology.label()),
                });
            }
            if self.fault.crash.is_some()
                || self.fault.byzantine.is_some()
                || self.fault.delay != 0.0
            {
                return Err(SimError::UnsupportedTemporal {
                    feature: "population churn".to_string(),
                    context: format!(
                        "the identity-pinning fault spec {}",
                        self.fault.label()
                    ),
                });
            }
        }
        if self.churn.has_edge_churn() {
            if !self.topology.is_resampleable() {
                return Err(SimError::UnsupportedTemporal {
                    feature: "edge churn (rewire)".to_string(),
                    context: format!(
                        "the non-resampleable topology {}",
                        self.topology.label()
                    ),
                });
            }
            if self.delivery != DeliverySemantics::Exact {
                return Err(SimError::UnsupportedTemporal {
                    feature: "edge churn (rewire)".to_string(),
                    context: format!(
                        "deferred delivery (process {})",
                        self.delivery.label()
                    ),
                });
            }
        }
        Ok(SimConfig {
            num_nodes: self.num_nodes,
            num_opinions: self.num_opinions,
            seed: self.seed,
            delivery: self.delivery,
            topology: self.topology,
            fault: self.fault,
            churn: self.churn,
            schedule: self.schedule,
            clock: self.clock,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_defaults_and_overrides() {
        let c = SimConfig::builder(10, 3).build().unwrap();
        assert_eq!(c.num_nodes(), 10);
        assert_eq!(c.num_opinions(), 3);
        assert_eq!(c.seed(), 0);
        assert_eq!(c.delivery(), DeliverySemantics::Exact);

        let c = SimConfig::builder(10, 3)
            .seed(99)
            .delivery(DeliverySemantics::Poissonized)
            .build()
            .unwrap();
        assert_eq!(c.seed(), 99);
        assert_eq!(c.delivery(), DeliverySemantics::Poissonized);
    }

    #[test]
    fn builder_rejects_degenerate_systems() {
        assert_eq!(
            SimConfig::builder(1, 3).build().unwrap_err(),
            SimError::TooFewNodes { found: 1 }
        );
        assert_eq!(
            SimConfig::builder(10, 1).build().unwrap_err(),
            SimError::TooFewOpinions { found: 1 }
        );
    }

    #[test]
    fn delivery_labels_match_paper_processes() {
        assert_eq!(DeliverySemantics::Exact.label(), "O");
        assert_eq!(DeliverySemantics::BallsIntoBins.label(), "B");
        assert_eq!(DeliverySemantics::Poissonized.label(), "P");
        assert_eq!(DeliverySemantics::ALL.len(), 3);
        assert_eq!(DeliverySemantics::default(), DeliverySemantics::Exact);
    }

    #[test]
    fn topology_defaults_to_complete_and_validates_at_build() {
        let c = SimConfig::builder(10, 3).build().unwrap();
        assert_eq!(c.topology(), TopologySpec::Complete);

        let c = SimConfig::builder(10, 3)
            .topology(TopologySpec::Ring)
            .build()
            .unwrap();
        assert_eq!(c.topology(), TopologySpec::Ring);

        // Infeasible parameters fail at build.
        assert!(matches!(
            SimConfig::builder(10, 3).topology(TopologySpec::Torus2D).build(),
            Err(SimError::InvalidTopology { .. })
        ));
        // Process B is complete-graph-only.
        assert!(matches!(
            SimConfig::builder(10, 3)
                .topology(TopologySpec::Ring)
                .delivery(DeliverySemantics::BallsIntoBins)
                .build(),
            Err(SimError::UnsupportedTopology { .. })
        ));
        // Process P is admitted on vertex-transitive sparse families (the
        // block-counting backend realizes it per degree class) …
        for topology in [
            TopologySpec::Ring,
            TopologySpec::RandomRegular { degree: 4 },
        ] {
            assert!(SimConfig::builder(10, 3)
                .topology(topology)
                .delivery(DeliverySemantics::Poissonized)
                .build()
                .is_ok());
        }
        // … but not on er(p), whose realizations are degree-heterogeneous.
        assert!(matches!(
            SimConfig::builder(10, 3)
                .topology(TopologySpec::ErdosRenyi { p: 0.5 })
                .delivery(DeliverySemantics::Poissonized)
                .build(),
            Err(SimError::UnsupportedTopology { .. })
        ));
        // The complete graph keeps all three processes.
        for delivery in DeliverySemantics::ALL {
            assert!(SimConfig::builder(10, 3).delivery(delivery).build().is_ok());
        }
    }

    #[test]
    fn fault_defaults_to_none_and_validates_at_build() {
        use crate::fault::ByzantineFault;

        let c = SimConfig::builder(10, 3).build().unwrap();
        assert!(c.fault().is_none());

        let byz = FaultSpec {
            byzantine: Some(ByzantineFault {
                fraction: 0.1,
                opinion: 1,
            }),
            ..FaultSpec::default()
        };
        let c = SimConfig::builder(10, 3).fault(byz).build().unwrap();
        assert_eq!(c.fault(), byz);

        // Infeasible fault parameters fail at build (opinion >= k).
        let bad = FaultSpec {
            byzantine: Some(ByzantineFault {
                fraction: 0.1,
                opinion: 3,
            }),
            ..FaultSpec::default()
        };
        assert!(matches!(
            SimConfig::builder(10, 3).fault(bad).build(),
            Err(SimError::InvalidFault { .. })
        ));
        // Faults are complete-graph-only.
        assert!(matches!(
            SimConfig::builder(10, 3)
                .topology(TopologySpec::Ring)
                .fault(byz)
                .build(),
            Err(SimError::UnsupportedFault { .. })
        ));
        // A disabled spec composes with every topology.
        assert!(SimConfig::builder(10, 3)
            .topology(TopologySpec::Ring)
            .fault(FaultSpec::none())
            .build()
            .is_ok());
    }

    #[test]
    fn temporal_defaults_to_off_and_validates_at_build() {
        use crate::temporal::BurstChurn;

        let c = SimConfig::builder(10, 3).build().unwrap();
        assert!(c.churn().is_none());
        assert!(c.schedule().is_const());
        assert!(c.clock().is_sync());

        let churn = ChurnSpec {
            join: 0.02,
            leave: 0.05,
            ..ChurnSpec::default()
        };
        let c = SimConfig::builder(10, 3).churn(churn).build().unwrap();
        assert_eq!(c.churn(), churn);

        // Infeasible parameters fail at build.
        assert!(matches!(
            SimConfig::builder(10, 3)
                .churn(ChurnSpec {
                    join: 2.0,
                    ..ChurnSpec::default()
                })
                .build(),
            Err(SimError::InvalidTemporal { .. })
        ));
        // Population churn is complete-graph-only.
        assert!(matches!(
            SimConfig::builder(10, 3)
                .topology(TopologySpec::Ring)
                .churn(churn)
                .build(),
            Err(SimError::UnsupportedTemporal { .. })
        ));
        // … and does not compose with identity-pinning faults.
        assert!(matches!(
            SimConfig::builder(10, 3)
                .churn(churn)
                .fault("crash(0.1@0)".parse().unwrap())
                .build(),
            Err(SimError::UnsupportedTemporal { .. })
        ));
        // Message-level faults compose fine.
        assert!(SimConfig::builder(10, 3)
            .churn(churn)
            .fault("drop(0.1)+dup(0.1)".parse().unwrap())
            .build()
            .is_ok());
        // Bursts validate like rates.
        assert!(SimConfig::builder(10, 3)
            .churn(ChurnSpec {
                burst: Some(BurstChurn {
                    fraction: 0.3,
                    after_phase: 1,
                }),
                ..ChurnSpec::default()
            })
            .build()
            .is_ok());

        // Edge churn needs a resampleable topology under exact delivery.
        let rewire = ChurnSpec {
            rewire: 0.5,
            ..ChurnSpec::default()
        };
        assert!(SimConfig::builder(10, 3)
            .topology(TopologySpec::RandomRegular { degree: 4 })
            .churn(rewire)
            .build()
            .is_ok());
        for bad in [TopologySpec::Complete, TopologySpec::Ring] {
            assert!(matches!(
                SimConfig::builder(16, 3).topology(bad).churn(rewire).build(),
                Err(SimError::UnsupportedTemporal { .. })
            ));
        }
        assert!(matches!(
            SimConfig::builder(10, 3)
                .topology(TopologySpec::RandomRegular { degree: 4 })
                .delivery(DeliverySemantics::Poissonized)
                .churn(rewire)
                .build(),
            Err(SimError::UnsupportedTemporal { .. })
        ));

        // Schedules and clocks validate their own parameters.
        assert!(matches!(
            SimConfig::builder(10, 3)
                .schedule("step(1.5@0)".parse().unwrap())
                .build(),
            Err(SimError::InvalidTemporal { .. })
        ));
        assert!(SimConfig::builder(10, 3)
            .schedule("burst(0.05@2:3)".parse().unwrap())
            .clock("skew(0.1)".parse().unwrap())
            .build()
            .is_ok());
    }

    #[test]
    fn delivery_spec_names_round_trip_through_from_str() {
        for semantics in DeliverySemantics::ALL {
            assert_eq!(semantics.spec_name().parse(), Ok(semantics));
            assert_eq!(semantics.label().parse(), Ok(semantics));
        }
        assert!("teleport".parse::<DeliverySemantics>().is_err());
    }
}
