//! Communication topologies for the push model.
//!
//! The paper's model is stated on the complete graph — every push lands on
//! a uniformly random agent — but graph-structured push is the natural
//! bridge to the LOCAL-model literature the repository tracks (fractional
//! coloring, linear-in-Δ lower bounds), where *who can talk to whom* is
//! the whole story. This module adds that axis:
//!
//! * [`TopologySpec`] — a small, copyable description of a topology family
//!   (`complete`, `ring`, `torus`, `regular(d)`, `er(p)`), with a
//!   round-trippable textual form used by scenario spec files.
//! * [`Topology`] — the materialized graph: flat CSR-style neighbor lists
//!   (`offsets` + `neighbors`), built once per [`Network`](crate::Network)
//!   and consulted on every push.
//!
//! Under a non-complete topology every opinionated agent pushes to a
//! uniformly random *neighbor* instead of a uniformly random node. The
//! complete graph is special-cased: it stores no adjacency at all and
//! draws destinations with the same single `gen_range(0..n)` the
//! pre-topology simulator used, so complete-graph runs are **bit-for-bit
//! identical** to the historical RNG stream (all fixed-seed fixtures
//! remain valid).
//!
//! Random families (`regular(d)`, `er(p)`) are built from a *dedicated*
//! RNG derived from the simulation seed, so the delivery RNG stream is
//! never perturbed by graph construction and the graph is a deterministic
//! function of the seed.
//!
//! ## Support boundaries
//!
//! On the agent backend only process O
//! ([`DeliverySemantics::Exact`](crate::DeliverySemantics)) is defined on
//! sparse topologies: the deferred processes B and P shuffle phase
//! messages into *uniform* bins, which is a complete-graph notion (a
//! pending count has no sender, hence no neighborhood). The count-based
//! backends recover the deferred process P off the complete graph by
//! aggregating over exchangeable blocks: per opinion on the complete graph
//! ([`CountingNetwork`](crate::CountingNetwork)), per (degree class,
//! opinion) on degree-homogeneous families
//! ([`BlockCountingNetwork`](crate::BlockCountingNetwork), via
//! [`DegreeClasses`]). Which backend is certified for which family is
//! expressed by [`TopologyCapability`](crate::TopologyCapability); the
//! boundaries are enforced at construction time
//! ([`SimError::UnsupportedTopology`]).

use crate::error::SimError;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::Rng;
use std::collections::HashSet;
use std::fmt;
use std::str::FromStr;

/// A description of a communication topology family.
///
/// The textual form (`Display` / [`FromStr`]) round-trips exactly and is
/// the spelling scenario spec files use (`topology = regular(8)`).
#[derive(Debug, Clone, Copy, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum TopologySpec {
    /// The complete graph: every push lands on a uniformly random node
    /// (the paper's model; the default).
    #[default]
    Complete,
    /// The cycle: node `i` is adjacent to `i ± 1 (mod n)`.
    Ring,
    /// The 2-dimensional torus grid: `n` must be a perfect square
    /// `side²`; node `(r, c)` is adjacent to its four wrap-around grid
    /// neighbors.
    Torus2D,
    /// A uniformly random simple `d`-regular graph (stub matching with
    /// edge-swap repair); requires `1 ≤ d < n` and `n·d` even.
    RandomRegular {
        /// The degree `d` of every node.
        degree: usize,
    },
    /// The Erdős–Rényi graph `G(n, p)`: every unordered pair is an edge
    /// independently with probability `p ∈ [0, 1]`.
    ErdosRenyi {
        /// The edge probability.
        p: f64,
    },
}

impl PartialEq for TopologySpec {
    fn eq(&self, other: &Self) -> bool {
        use TopologySpec::*;
        match (self, other) {
            (Complete, Complete) | (Ring, Ring) | (Torus2D, Torus2D) => true,
            (RandomRegular { degree: a }, RandomRegular { degree: b }) => a == b,
            // Bitwise comparison keeps Eq/Hash lawful (NaN never parses
            // into a spec: `check` rejects non-finite probabilities).
            (ErdosRenyi { p: a }, ErdosRenyi { p: b }) => a.to_bits() == b.to_bits(),
            _ => false,
        }
    }
}

impl Eq for TopologySpec {}

impl std::hash::Hash for TopologySpec {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        core::mem::discriminant(self).hash(state);
        match self {
            TopologySpec::RandomRegular { degree } => degree.hash(state),
            TopologySpec::ErdosRenyi { p } => p.to_bits().hash(state),
            _ => {}
        }
    }
}

impl TopologySpec {
    /// `true` for the complete graph (the paper's model).
    pub fn is_complete(&self) -> bool {
        matches!(self, TopologySpec::Complete)
    }

    /// `true` for families whose every realization is degree-homogeneous
    /// by construction — the complete graph, the ring, the torus and
    /// `regular(d)` — i.e. families with a single degree class, where all
    /// agents are exchangeable at the population level. (Strictly, a
    /// random `regular(d)` realization need not admit a vertex-transitive
    /// automorphism group; degree homogeneity is the property the
    /// block-counting aggregation actually needs, and the conventional
    /// name sticks.) `er(p)` is not: its realizations carry a nontrivial
    /// degree distribution, so the block-counting backend buckets them by
    /// exact degree only when explicitly requested.
    pub fn is_vertex_transitive(&self) -> bool {
        !matches!(self, TopologySpec::ErdosRenyi { .. })
    }

    /// `true` for the randomized families (`regular(d)`, `er(p)`) whose
    /// realizations can be resampled from a fresh RNG draw — the
    /// families edge churn ([`ChurnSpec::rewire`](crate::ChurnSpec))
    /// can rewire at phase boundaries. The deterministic families
    /// (`ring`, `torus`) have a single realization and nothing to
    /// resample; the complete graph has no materialized edges at all.
    pub fn is_resampleable(&self) -> bool {
        matches!(
            self,
            TopologySpec::RandomRegular { .. } | TopologySpec::ErdosRenyi { .. }
        )
    }

    /// The short human-readable label of the topology (identical to the
    /// `Display` form), recorded in phase snapshots and result tables.
    pub fn label(&self) -> String {
        self.to_string()
    }

    /// Checks that this topology can be built over `num_nodes` agents.
    ///
    /// # Errors
    ///
    /// [`SimError::InvalidTopology`] if the parameters are infeasible:
    /// a torus whose `n` is not a perfect square, a `regular(d)` with
    /// `d = 0`, `d ≥ n` or `n·d` odd, or an `er(p)` with `p` outside
    /// `[0, 1]`.
    pub fn check(&self, num_nodes: usize) -> Result<(), SimError> {
        let fail = |reason: String| Err(SimError::InvalidTopology { reason });
        match *self {
            TopologySpec::Complete => Ok(()),
            TopologySpec::Ring => {
                // A 1-node "ring" would be a self-loop, breaking the
                // simple-graph invariant every built topology satisfies.
                if num_nodes >= 2 {
                    Ok(())
                } else {
                    fail(format!("ring needs at least 2 nodes, got {num_nodes}"))
                }
            }
            TopologySpec::Torus2D => {
                let side = (num_nodes as f64).sqrt().round() as usize;
                if side * side == num_nodes {
                    Ok(())
                } else {
                    fail(format!(
                        "torus needs a perfect-square number of nodes, got {num_nodes}"
                    ))
                }
            }
            TopologySpec::RandomRegular { degree } => {
                if degree == 0 || degree >= num_nodes {
                    fail(format!(
                        "regular({degree}) needs 1 <= degree < n = {num_nodes}"
                    ))
                } else if !(num_nodes * degree).is_multiple_of(2) {
                    fail(format!(
                        "regular({degree}) needs an even number of stubs, \
                         but n*d = {num_nodes}*{degree} is odd"
                    ))
                } else {
                    Ok(())
                }
            }
            TopologySpec::ErdosRenyi { p } => {
                if p.is_finite() && (0.0..=1.0).contains(&p) {
                    Ok(())
                } else {
                    fail(format!("er(p) needs a probability in [0, 1], got {p}"))
                }
            }
        }
    }
}

impl fmt::Display for TopologySpec {
    /// The canonical spec-file spelling: `complete`, `ring`, `torus`,
    /// `regular(d)`, `er(p)`.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TopologySpec::Complete => write!(f, "complete"),
            TopologySpec::Ring => write!(f, "ring"),
            TopologySpec::Torus2D => write!(f, "torus"),
            TopologySpec::RandomRegular { degree } => write!(f, "regular({degree})"),
            TopologySpec::ErdosRenyi { p } => write!(f, "er({p})"),
        }
    }
}

impl FromStr for TopologySpec {
    type Err = String;

    /// Parses the canonical spelling (case-insensitive): `complete`,
    /// `ring`, `torus` (or `torus2d`), `regular(d)`, `er(p)` (or
    /// `erdos-renyi(p)`).
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let s = s.trim();
        let lower = s.to_ascii_lowercase();
        match lower.as_str() {
            "complete" => return Ok(TopologySpec::Complete),
            "ring" => return Ok(TopologySpec::Ring),
            "torus" | "torus2d" => return Ok(TopologySpec::Torus2D),
            _ => {}
        }
        let parameterized = |name: &str| -> Option<&str> {
            lower
                .strip_prefix(name)?
                .strip_prefix('(')?
                .strip_suffix(')')
        };
        if let Some(arg) = parameterized("regular") {
            if let Ok(degree) = arg.trim().parse::<usize>() {
                return Ok(TopologySpec::RandomRegular { degree });
            }
        }
        if let Some(arg) = parameterized("er").or_else(|| parameterized("erdos-renyi")) {
            if let Ok(p) = arg.trim().parse::<f64>() {
                return Ok(TopologySpec::ErdosRenyi { p });
            }
        }
        Err(format!(
            "unknown topology {s:?} (expected complete, ring, torus, regular(d) or er(p))"
        ))
    }
}

/// A materialized communication graph: flat CSR-style neighbor lists.
///
/// Built once by [`Topology::build`] and then read-only. The complete
/// graph stores no adjacency (destinations are drawn directly as
/// `gen_range(0..n)`, preserving the pre-topology RNG stream bit for
/// bit); every other family stores `offsets` (length `n + 1`) into a flat
/// `neighbors` array.
#[derive(Debug, Clone, PartialEq)]
pub struct Topology {
    spec: TopologySpec,
    num_nodes: usize,
    /// CSR row offsets (length `n + 1`); empty for the complete graph.
    offsets: Vec<usize>,
    /// Flat neighbor list; each undirected edge appears twice.
    neighbors: Vec<u32>,
}

impl Topology {
    /// Builds the graph described by `spec` over `num_nodes` agents.
    ///
    /// `rng` drives the construction of random families (`regular(d)`,
    /// `er(p)`); deterministic families never touch it. Callers that need
    /// a stable delivery RNG stream (the simulator does) should pass a
    /// *dedicated* RNG derived from the seed.
    ///
    /// # Errors
    ///
    /// [`SimError::InvalidTopology`] under the same conditions as
    /// [`TopologySpec::check`], or if a random-regular graph could not be
    /// realized (practically unreachable for feasible `(n, d)`).
    pub fn build(
        spec: TopologySpec,
        num_nodes: usize,
        rng: &mut StdRng,
    ) -> Result<Self, SimError> {
        spec.check(num_nodes)?;
        let edges = match spec {
            TopologySpec::Complete => {
                return Ok(Self {
                    spec,
                    num_nodes,
                    offsets: Vec::new(),
                    neighbors: Vec::new(),
                })
            }
            TopologySpec::Ring => ring_edges(num_nodes),
            TopologySpec::Torus2D => torus_edges(num_nodes),
            TopologySpec::RandomRegular { degree } => {
                random_regular_edges(num_nodes, degree, rng)?
            }
            TopologySpec::ErdosRenyi { p } => erdos_renyi_edges(num_nodes, p, rng),
        };
        let (offsets, neighbors) = csr_from_edges(num_nodes, &edges);
        Ok(Self {
            spec,
            num_nodes,
            offsets,
            neighbors,
        })
    }

    /// The family this graph was built from.
    pub fn spec(&self) -> TopologySpec {
        self.spec
    }

    /// Re-sizes a **complete** graph in place (population churn moves `n`
    /// at phase boundaries; the complete graph stores no adjacency, so the
    /// destination range is the only state to update).
    pub(crate) fn resize_complete(&mut self, num_nodes: usize) {
        debug_assert!(
            self.is_complete(),
            "only the adjacency-free complete graph can be resized in place"
        );
        self.num_nodes = num_nodes;
    }

    /// The number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.num_nodes
    }

    /// `true` for the complete graph.
    pub fn is_complete(&self) -> bool {
        self.spec.is_complete()
    }

    /// The number of undirected edges (`n·(n−1)/2` for the complete
    /// graph).
    pub fn num_edges(&self) -> u64 {
        if self.is_complete() {
            let n = self.num_nodes as u64;
            n * (n - 1) / 2
        } else {
            self.neighbors.len() as u64 / 2
        }
    }

    /// The degree of `node`. On the complete graph every node can reach
    /// all `n` nodes (pushes may land on the sender itself, exactly like
    /// the paper's uniform push).
    pub fn degree(&self, node: usize) -> usize {
        if self.is_complete() {
            self.num_nodes
        } else {
            self.offsets[node + 1] - self.offsets[node]
        }
    }

    /// The neighbor list of `node` (empty slice on the complete graph,
    /// which stores no adjacency).
    pub fn neighbors(&self, node: usize) -> &[u32] {
        if self.is_complete() {
            &[]
        } else {
            &self.neighbors[self.offsets[node]..self.offsets[node + 1]]
        }
    }

    /// `true` if `node` has someone to push to (always true on the
    /// complete graph; sparse nodes with degree 0 — possible under
    /// `er(p)` — stay silent).
    pub fn can_push(&self, node: usize) -> bool {
        self.is_complete() || self.degree(node) > 0
    }

    /// Draws the destination of one push from `node`: a uniformly random
    /// node on the complete graph (one `gen_range(0..n)`, bit-identical
    /// to the pre-topology simulator), a uniformly random neighbor
    /// otherwise.
    ///
    /// # Panics
    ///
    /// Panics if `node` has no neighbors (guard with
    /// [`can_push`](Self::can_push)).
    #[inline]
    pub fn push_destination(&self, node: usize, rng: &mut StdRng) -> usize {
        if self.is_complete() {
            rng.gen_range(0..self.num_nodes)
        } else {
            let row = &self.neighbors[self.offsets[node]..self.offsets[node + 1]];
            row[rng.gen_range(0..row.len())] as usize
        }
    }

    /// `true` if the graph is connected (BFS from node 0; the complete
    /// graph trivially is). Used by tests and diagnostics — consensus on
    /// a disconnected graph is generally unreachable.
    pub fn is_connected(&self) -> bool {
        if self.is_complete() {
            return true;
        }
        let n = self.num_nodes;
        let mut seen = vec![false; n];
        let mut queue = std::collections::VecDeque::from([0usize]);
        seen[0] = true;
        let mut visited = 1usize;
        while let Some(v) = queue.pop_front() {
            for &w in self.neighbors(v) {
                let w = w as usize;
                if !seen[w] {
                    seen[w] = true;
                    visited += 1;
                    queue.push_back(w);
                }
            }
        }
        visited == n
    }

    /// The degree-class decomposition of this graph, derived from the CSR
    /// adjacency in `O(n + |E|)`. This is the general (materialized) path;
    /// [`DegreeClasses::build`] derives the same decomposition
    /// analytically for the deterministic families without ever building
    /// the graph.
    pub fn degree_classes(&self) -> DegreeClasses {
        DegreeClasses::from_topology(self)
    }
}

/// The degree-class decomposition of a topology: nodes bucketed by exact
/// degree, plus the class-to-class directed edge counts.
///
/// This is the state space of the
/// [`BlockCountingNetwork`](crate::BlockCountingNetwork): within a degree
/// class all agents are exchangeable under uniform-neighbor push, so
/// delivery only needs to know *how many* messages flow from class `c` to
/// class `c'`, never which node sent them. A uniform push from a node of
/// class `c` lands in class `c'` with probability
/// `E[c][c'] / (n_c · d_c)`, where `E[c][c']` counts ordered adjacent
/// pairs — the per-class analogue of the complete graph's uniform
/// destination.
///
/// Degree-homogeneous families (ring, torus, `regular(d)`, complete) have
/// a single class (`C = 1`); `er(p)` realizations are bucketed by exact
/// degree. Classes are sorted by increasing degree and every class is
/// non-empty. Isolated nodes (degree 0, possible under `er(p)`) form a
/// silent class: they never push and never receive.
#[derive(Debug, Clone, PartialEq)]
pub struct DegreeClasses {
    /// Per-class population `n_c` (every class non-empty).
    sizes: Vec<u64>,
    /// Per-class degree `d_c`, strictly increasing across classes. The
    /// complete graph reports degree `n` (a push may land on the sender,
    /// exactly like the paper's uniform push).
    degrees: Vec<u64>,
    /// Row-major `C×C` matrix of directed edge counts `E[c][c']`: ordered
    /// pairs `(u, v)` with `u` in class `c`, `v` in class `c'` and `v`
    /// reachable from `u` in one push. Row sums satisfy
    /// `Σ_c' E[c][c'] = n_c · d_c`.
    edges: Vec<u64>,
    /// `node → class` map; `None` when `C = 1` (every node is class 0).
    class_of: Option<Vec<u32>>,
    num_nodes: usize,
}

impl DegreeClasses {
    /// A single-class decomposition: all `num_nodes` nodes share `degree`.
    fn single(num_nodes: usize, degree: u64) -> Self {
        Self {
            sizes: vec![num_nodes as u64],
            degrees: vec![degree],
            edges: vec![num_nodes as u64 * degree],
            class_of: None,
            num_nodes,
        }
    }

    /// Derives the decomposition for `spec` over `num_nodes` agents.
    ///
    /// Deterministic and degree-homogeneous families (`complete`, `ring`,
    /// `torus`, `regular(d)`) are resolved **analytically** — no graph is
    /// ever materialized, so construction is `O(1)` even at `n = 10⁷`.
    /// `regular(d)` is exact for *any* realization (every node has degree
    /// `d` by construction, and `E = n·d` directed pairs regardless of
    /// which matching was drawn). Only `er(p)` builds the graph: `rng`
    /// must then be the same dedicated topology RNG the agent backend
    /// uses, so both backends bucket the *same* realization.
    ///
    /// # Errors
    ///
    /// [`SimError::InvalidTopology`] under the same conditions as
    /// [`TopologySpec::check`].
    pub fn build(
        spec: TopologySpec,
        num_nodes: usize,
        rng: &mut StdRng,
    ) -> Result<Self, SimError> {
        spec.check(num_nodes)?;
        Ok(match spec {
            TopologySpec::Complete => Self::single(num_nodes, num_nodes as u64),
            // n = 2 degenerates to a single edge (degree 1, not 2).
            TopologySpec::Ring => Self::single(num_nodes, if num_nodes == 2 { 1 } else { 2 }),
            TopologySpec::Torus2D => {
                // Wraparound parallels are deduplicated by the builder:
                // side = 1 is a single isolated node, side = 2 a 4-cycle.
                let side = (num_nodes as f64).sqrt().round() as usize;
                let degree = match side {
                    1 => 0,
                    2 => 2,
                    _ => 4,
                };
                Self::single(num_nodes, degree)
            }
            TopologySpec::RandomRegular { degree } => Self::single(num_nodes, degree as u64),
            TopologySpec::ErdosRenyi { .. } => {
                Topology::build(spec, num_nodes, rng)?.degree_classes()
            }
        })
    }

    /// Buckets a materialized graph by exact degree.
    fn from_topology(topo: &Topology) -> Self {
        let n = topo.num_nodes();
        if topo.is_complete() {
            return Self::single(n, n as u64);
        }
        let mut distinct: Vec<usize> = (0..n).map(|v| topo.degree(v)).collect();
        distinct.sort_unstable();
        distinct.dedup();
        let class_index = |deg: usize| distinct.binary_search(&deg).expect("degree was collected");
        let c = distinct.len();
        let mut sizes = vec![0u64; c];
        let mut edges = vec![0u64; c * c];
        let mut class_of = vec![0u32; n];
        for (v, slot) in class_of.iter_mut().enumerate() {
            let cv = class_index(topo.degree(v));
            *slot = cv as u32;
            sizes[cv] += 1;
        }
        for v in 0..n {
            let cv = class_of[v] as usize;
            for &w in topo.neighbors(v) {
                edges[cv * c + class_of[w as usize] as usize] += 1;
            }
        }
        Self {
            sizes,
            degrees: distinct.iter().map(|&d| d as u64).collect(),
            edges,
            class_of: (c > 1).then_some(class_of),
            num_nodes: n,
        }
    }

    /// The number of degree classes `C`.
    pub fn num_classes(&self) -> usize {
        self.sizes.len()
    }

    /// The total number of nodes across all classes.
    pub fn num_nodes(&self) -> usize {
        self.num_nodes
    }

    /// The population `n_c` of class `class`.
    pub fn size(&self, class: usize) -> u64 {
        self.sizes[class]
    }

    /// The common degree `d_c` of class `class`.
    pub fn degree(&self, class: usize) -> u64 {
        self.degrees[class]
    }

    /// The directed edge count `E[from][to]` (ordered adjacent pairs).
    pub fn directed_edges(&self, from: usize, to: usize) -> u64 {
        self.edges[from * self.num_classes() + to]
    }

    /// The class of `node`.
    pub fn class_of(&self, node: usize) -> usize {
        debug_assert!(node < self.num_nodes);
        match &self.class_of {
            Some(map) => map[node] as usize,
            None => 0,
        }
    }

    /// The destination-class distribution of a uniform push from class
    /// `from`: entry `c'` is `E[from][c'] / (n_from · d_from)`. All zeros
    /// for a silent (degree-0) class.
    pub fn destination_probabilities(&self, from: usize) -> Vec<f64> {
        let c = self.num_classes();
        let stubs = self.sizes[from] * self.degrees[from];
        if stubs == 0 {
            return vec![0.0; c];
        }
        (0..c)
            .map(|to| self.edges[from * c + to] as f64 / stubs as f64)
            .collect()
    }
}

/// Cycle edges `i — i+1 (mod n)`, deduplicated for `n = 2`.
fn ring_edges(n: usize) -> Vec<(u32, u32)> {
    if n == 2 {
        return vec![(0, 1)];
    }
    (0..n).map(|i| (i as u32, ((i + 1) % n) as u32)).collect()
}

/// 2-D torus grid edges over `side × side` nodes (right and down per node
/// covers every edge once), deduplicated for `side ≤ 2` where wraparound
/// would create parallel edges.
fn torus_edges(n: usize) -> Vec<(u32, u32)> {
    let side = (n as f64).sqrt().round() as usize;
    debug_assert_eq!(side * side, n, "checked by TopologySpec::check");
    let mut edges = Vec::with_capacity(2 * n);
    // xlint: allow(map-order) — dedup membership check only; edges are emitted in loop order, the set is never iterated
    let mut seen = HashSet::new();
    let id = |r: usize, c: usize| (r * side + c) as u32;
    for r in 0..side {
        for c in 0..side {
            let here = id(r, c);
            for (nr, nc) in [(r, (c + 1) % side), ((r + 1) % side, c)] {
                let there = id(nr, nc);
                if here != there && seen.insert(normalize(here, there)) {
                    edges.push((here, there));
                }
            }
        }
    }
    edges
}

fn normalize(a: u32, b: u32) -> (u32, u32) {
    if a < b {
        (a, b)
    } else {
        (b, a)
    }
}

/// A uniformly random simple `d`-regular graph via stub matching with
/// edge-swap repair: pair up shuffled stubs, then swap away self-loops and
/// parallel edges (the standard practical construction — plain rejection
/// has success probability `≈ e^{−(d²−1)/4}` per attempt and is hopeless
/// for `d = 8`).
fn random_regular_edges(
    n: usize,
    d: usize,
    rng: &mut StdRng,
) -> Result<Vec<(u32, u32)>, SimError> {
    let mut stubs: Vec<u32> = Vec::with_capacity(n * d);
    for v in 0..n {
        stubs.extend(std::iter::repeat_n(v as u32, d));
    }
    for _attempt in 0..20 {
        stubs.shuffle(rng);
        let mut edges: Vec<(u32, u32)> = stubs.chunks_exact(2).map(|c| (c[0], c[1])).collect();
        if swap_repair(&mut edges, rng) {
            return Ok(edges);
        }
    }
    Err(SimError::InvalidTopology {
        reason: format!("failed to realize a simple {d}-regular graph on {n} nodes"),
    })
}

/// Repairs a stub pairing in place: while a self-loop or parallel edge
/// remains, swap its endpoints with a random *good* edge when the swap
/// produces two fresh simple edges. Returns `false` if the iteration
/// budget runs out (caller reshuffles and retries).
fn swap_repair(edges: &mut [(u32, u32)], rng: &mut StdRng) -> bool {
    // xlint: allow(map-order) — membership insert/contains/remove only; repair order comes from the `bad` Vec and the seeded RNG, the set is never iterated
    let mut seen: HashSet<(u32, u32)> = HashSet::with_capacity(edges.len());
    let mut bad: Vec<usize> = Vec::new();
    for (i, &(a, b)) in edges.iter().enumerate() {
        if a == b || !seen.insert(normalize(a, b)) {
            bad.push(i);
        }
    }
    let mut budget = 200 * edges.len() + 1_000;
    while let Some(&i) = bad.last() {
        if budget == 0 {
            return false;
        }
        budget -= 1;
        let j = rng.gen_range(0..edges.len());
        if j == i || bad.contains(&j) {
            continue;
        }
        let (a, b) = edges[i];
        let (c, d) = edges[j];
        // Propose the 2-swap (a,b),(c,d) → (a,d),(c,b).
        if a == d || c == b {
            continue;
        }
        let e1 = normalize(a, d);
        let e2 = normalize(c, b);
        if e1 == e2 || seen.contains(&e1) || seen.contains(&e2) {
            continue;
        }
        // Edge i was never inserted into `seen` (it is bad); edge j was.
        seen.remove(&normalize(c, d));
        seen.insert(e1);
        seen.insert(e2);
        edges[i] = (a, d);
        edges[j] = (c, b);
        bad.pop();
    }
    true
}

/// `G(n, p)` via the Batagelj–Brandes geometric-skip enumeration: expected
/// `O(n + |E|)` time instead of `O(n²)` Bernoulli draws.
fn erdos_renyi_edges(n: usize, p: f64, rng: &mut StdRng) -> Vec<(u32, u32)> {
    let mut edges = Vec::new();
    if p <= 0.0 || n < 2 {
        return edges;
    }
    if p >= 1.0 {
        for v in 1..n {
            for w in 0..v {
                edges.push((w as u32, v as u32));
            }
        }
        return edges;
    }
    let ln_q = (1.0 - p).ln();
    let mut v: usize = 1;
    let mut w: i64 = -1;
    while v < n {
        let r: f64 = rng.gen_range(0.0..1.0);
        w += 1 + ((1.0 - r).ln() / ln_q).floor() as i64;
        while v < n && w >= v as i64 {
            w -= v as i64;
            v += 1;
        }
        if v < n {
            edges.push((w as u32, v as u32));
        }
    }
    edges
}

/// Builds CSR offsets + flat neighbor lists from an undirected edge list.
fn csr_from_edges(n: usize, edges: &[(u32, u32)]) -> (Vec<usize>, Vec<u32>) {
    let mut offsets = vec![0usize; n + 1];
    for &(a, b) in edges {
        offsets[a as usize + 1] += 1;
        offsets[b as usize + 1] += 1;
    }
    for i in 0..n {
        offsets[i + 1] += offsets[i];
    }
    let mut cursor = offsets.clone();
    let mut neighbors = vec![0u32; edges.len() * 2];
    for &(a, b) in edges {
        neighbors[cursor[a as usize]] = b;
        cursor[a as usize] += 1;
        neighbors[cursor[b as usize]] = a;
        cursor[b as usize] += 1;
    }
    (offsets, neighbors)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn build(spec: TopologySpec, n: usize) -> Topology {
        let mut rng = StdRng::seed_from_u64(7);
        Topology::build(spec, n, &mut rng).unwrap()
    }

    /// Every CSR invariant a built graph must satisfy: symmetric, simple,
    /// in-range.
    fn check_invariants(topo: &Topology) {
        let n = topo.num_nodes();
        let mut edge_count = 0u64;
        for v in 0..n {
            let row = topo.neighbors(v);
            assert_eq!(row.len(), topo.degree(v));
            let mut distinct = HashSet::new();
            for &w in row {
                let w = w as usize;
                assert!(w < n, "neighbor in range");
                assert_ne!(w, v, "no self-loops");
                assert!(distinct.insert(w), "no parallel edges");
                assert!(
                    topo.neighbors(w).contains(&(v as u32)),
                    "adjacency is symmetric"
                );
            }
            edge_count += row.len() as u64;
        }
        assert_eq!(edge_count / 2, topo.num_edges());
    }

    #[test]
    fn complete_stores_no_adjacency_and_always_pushes() {
        let topo = build(TopologySpec::Complete, 10);
        assert!(topo.is_complete());
        assert!(topo.neighbors(3).is_empty());
        assert_eq!(topo.degree(3), 10);
        assert_eq!(topo.num_edges(), 45);
        assert!(topo.can_push(0));
        assert!(topo.is_connected());
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..50 {
            assert!(topo.push_destination(0, &mut rng) < 10);
        }
    }

    #[test]
    fn ring_is_a_connected_2_regular_cycle() {
        let topo = build(TopologySpec::Ring, 9);
        check_invariants(&topo);
        assert!(topo.is_connected());
        for v in 0..9 {
            assert_eq!(topo.degree(v), 2);
        }
        assert!(topo.neighbors(0).contains(&1));
        assert!(topo.neighbors(0).contains(&8));
        // n = 2 degenerates to a single edge; n = 1 would be a self-loop
        // and is rejected.
        let tiny = build(TopologySpec::Ring, 2);
        check_invariants(&tiny);
        assert_eq!(tiny.degree(0), 1);
        assert!(tiny.is_connected());
        let mut rng = StdRng::seed_from_u64(1);
        assert!(matches!(
            Topology::build(TopologySpec::Ring, 1, &mut rng),
            Err(SimError::InvalidTopology { .. })
        ));
    }

    #[test]
    fn torus_is_4_regular_on_a_square() {
        let topo = build(TopologySpec::Torus2D, 36);
        check_invariants(&topo);
        assert!(topo.is_connected());
        for v in 0..36 {
            assert_eq!(topo.degree(v), 4);
        }
        // Node (1, 1) = 7 touches 1, 13, 6, 8 on a 6 × 6 grid.
        let mut row: Vec<u32> = topo.neighbors(7).to_vec();
        row.sort_unstable();
        assert_eq!(row, vec![1, 6, 8, 13]);
        // Non-square sizes are rejected.
        let mut rng = StdRng::seed_from_u64(1);
        assert!(matches!(
            Topology::build(TopologySpec::Torus2D, 37, &mut rng),
            Err(SimError::InvalidTopology { .. })
        ));
        // side = 2 dedupes wraparound parallels: degree 2, not 4.
        let small = build(TopologySpec::Torus2D, 4);
        check_invariants(&small);
        assert_eq!(small.degree(0), 2);
    }

    #[test]
    fn random_regular_is_simple_regular_and_deterministic_in_the_seed() {
        for &(n, d) in &[(50usize, 3usize), (200, 8), (101, 4)] {
            let topo = build(TopologySpec::RandomRegular { degree: d }, n);
            check_invariants(&topo);
            for v in 0..n {
                assert_eq!(topo.degree(v), d, "every node has degree {d}");
            }
            assert!(topo.is_connected(), "regular({d}) on {n} nodes connects");
        }
        let a = build(TopologySpec::RandomRegular { degree: 8 }, 200);
        let b = build(TopologySpec::RandomRegular { degree: 8 }, 200);
        assert_eq!(a, b, "same seed, same graph");
        // Infeasible parameters are rejected up front.
        let mut rng = StdRng::seed_from_u64(1);
        for (n, d) in [(10, 0), (10, 10), (9, 3)] {
            assert!(matches!(
                Topology::build(TopologySpec::RandomRegular { degree: d }, n, &mut rng),
                Err(SimError::InvalidTopology { .. })
            ));
        }
    }

    #[test]
    fn erdos_renyi_matches_the_expected_edge_count() {
        let n = 2_000;
        let p = 0.01;
        let topo = build(TopologySpec::ErdosRenyi { p }, n);
        check_invariants(&topo);
        let expected = p * (n * (n - 1) / 2) as f64;
        let observed = topo.num_edges() as f64;
        assert!(
            (observed - expected).abs() < 4.0 * expected.sqrt(),
            "observed {observed}, expected {expected}"
        );
        // Extremes: p = 0 is empty (nobody can push), p = 1 is complete.
        let empty = build(TopologySpec::ErdosRenyi { p: 0.0 }, 50);
        assert_eq!(empty.num_edges(), 0);
        assert!(!empty.can_push(0));
        let full = build(TopologySpec::ErdosRenyi { p: 1.0 }, 20);
        check_invariants(&full);
        assert_eq!(full.num_edges(), 190);
        // Out-of-range probabilities are rejected.
        assert!(TopologySpec::ErdosRenyi { p: 1.5 }.check(10).is_err());
        assert!(TopologySpec::ErdosRenyi { p: f64::NAN }.check(10).is_err());
    }

    #[test]
    fn push_destination_is_a_uniform_neighbor() {
        let topo = build(TopologySpec::Ring, 10);
        let mut rng = StdRng::seed_from_u64(3);
        let mut hits = [0u32; 10];
        for _ in 0..10_000 {
            hits[topo.push_destination(5, &mut rng)] += 1;
        }
        assert_eq!(hits[4] + hits[6], 10_000, "only the two ring neighbors");
        let frac = f64::from(hits[4]) / 10_000.0;
        assert!((frac - 0.5).abs() < 0.03, "uniform split, got {frac}");
    }

    /// Row sums of the directed edge-count matrix must equal the stub
    /// count `n_c · d_c` of each class, and sizes must cover every node.
    fn check_class_invariants(classes: &DegreeClasses) {
        let c = classes.num_classes();
        let total: u64 = (0..c).map(|i| classes.size(i)).sum();
        assert_eq!(total, classes.num_nodes() as u64);
        for i in 0..c {
            assert!(classes.size(i) > 0, "class {i} is non-empty");
            if i > 0 {
                assert!(classes.degree(i) > classes.degree(i - 1), "sorted by degree");
            }
            let row: u64 = (0..c).map(|j| classes.directed_edges(i, j)).sum();
            assert_eq!(row, classes.size(i) * classes.degree(i), "row sum = stubs");
            let probs = classes.destination_probabilities(i);
            let mass: f64 = probs.iter().sum();
            if classes.degree(i) > 0 {
                assert!((mass - 1.0).abs() < 1e-12, "probabilities sum to 1");
            } else {
                assert_eq!(mass, 0.0, "silent class pushes nowhere");
            }
        }
    }

    #[test]
    fn analytic_degree_classes_match_the_materialized_graph() {
        // Every degree-homogeneous family, including the degenerate
        // dedup cases (ring n = 2, torus side ≤ 2), must agree with the
        // CSR-derived bucketing of the same realization.
        let cases = [
            (TopologySpec::Complete, 10usize),
            (TopologySpec::Ring, 9),
            (TopologySpec::Ring, 2),
            (TopologySpec::Torus2D, 36),
            (TopologySpec::Torus2D, 4),
            (TopologySpec::Torus2D, 1),
            (TopologySpec::RandomRegular { degree: 8 }, 200),
            (TopologySpec::RandomRegular { degree: 3 }, 50),
        ];
        for (spec, n) in cases {
            let mut rng = StdRng::seed_from_u64(7);
            let analytic = DegreeClasses::build(spec, n, &mut rng).unwrap();
            let materialized = build(spec, n).degree_classes();
            assert_eq!(analytic, materialized, "{spec} on {n} nodes");
            check_class_invariants(&analytic);
            assert_eq!(analytic.num_classes(), 1, "{spec} is degree-homogeneous");
            assert_eq!(analytic.class_of(n - 1), 0);
        }
        assert!(matches!(
            DegreeClasses::build(TopologySpec::Torus2D, 37, &mut StdRng::seed_from_u64(7)),
            Err(SimError::InvalidTopology { .. })
        ));
    }

    #[test]
    fn erdos_renyi_degree_classes_bucket_the_same_realization() {
        let spec = TopologySpec::ErdosRenyi { p: 0.01 };
        let n = 2_000;
        let topo = build(spec, n);
        let mut rng = StdRng::seed_from_u64(7);
        let classes = DegreeClasses::build(spec, n, &mut rng).unwrap();
        assert_eq!(classes, topo.degree_classes(), "same seed, same buckets");
        check_class_invariants(&classes);
        assert!(classes.num_classes() > 1, "er(p) has a degree distribution");
        for v in 0..n {
            assert_eq!(
                classes.degree(classes.class_of(v)),
                topo.degree(v) as u64,
                "node {v} sits in the class of its own degree"
            );
        }
        // Directed edges are symmetric in aggregate: E[c][c'] = E[c'][c].
        for i in 0..classes.num_classes() {
            for j in 0..classes.num_classes() {
                assert_eq!(classes.directed_edges(i, j), classes.directed_edges(j, i));
            }
        }
    }

    #[test]
    fn vertex_transitivity_is_a_family_property() {
        assert!(TopologySpec::Complete.is_vertex_transitive());
        assert!(TopologySpec::Ring.is_vertex_transitive());
        assert!(TopologySpec::Torus2D.is_vertex_transitive());
        assert!(TopologySpec::RandomRegular { degree: 8 }.is_vertex_transitive());
        assert!(!TopologySpec::ErdosRenyi { p: 0.5 }.is_vertex_transitive());
    }

    #[test]
    fn spec_text_round_trips() {
        let specs = [
            TopologySpec::Complete,
            TopologySpec::Ring,
            TopologySpec::Torus2D,
            TopologySpec::RandomRegular { degree: 8 },
            TopologySpec::ErdosRenyi { p: 0.001 },
        ];
        for spec in specs {
            let text = spec.to_string();
            assert_eq!(text.parse::<TopologySpec>().unwrap(), spec, "{text}");
            assert_eq!(spec.label(), text);
        }
        assert_eq!("TORUS2D".parse::<TopologySpec>().unwrap(), TopologySpec::Torus2D);
        assert_eq!(
            "erdos-renyi(0.5)".parse::<TopologySpec>().unwrap(),
            TopologySpec::ErdosRenyi { p: 0.5 }
        );
        assert!("hypercube".parse::<TopologySpec>().is_err());
        assert!("regular(x)".parse::<TopologySpec>().is_err());
        assert_eq!(TopologySpec::default(), TopologySpec::Complete);
    }
}
