//! Fault injection for the push model.
//!
//! The paper's only perturbation is the ε-noisy channel; this module adds
//! the rest of the classical fault space — the perturbations the
//! LOCAL-model literature stresses algorithms with — as a declarative
//! [`FaultSpec`] applied *inside* the delivery path:
//!
//! * **drop** — every message is lost independently with probability `p`
//!   (after noise, before delivery).
//! * **dup** — every surviving message is duplicated independently with
//!   probability `p`; the copy lands on an independently chosen agent.
//! * **delay** — every surviving message is deferred independently with
//!   probability `p` and delivered at the *start of the next phase*
//!   instead of its own (a one-phase adversarial reordering).
//! * **crash(f@s)** — a fraction `f` of agents crash at the end of phase
//!   `s` (0-based): they participate normally through phase `s`, then
//!   never push or adopt again (they still *receive*, but ignore, later
//!   messages), keeping whatever opinion they held when they crashed.
//! * **byz(f:j)** — a fraction `f` of agents is Byzantine: they always
//!   push the fixed opinion `j` (before noise), never adopt, and ignore
//!   what they receive.
//!
//! Like [`TopologySpec`](crate::TopologySpec), a `FaultSpec` has a
//! canonical textual form that round-trips through `Display`/[`FromStr`]
//! and is the spelling scenario spec files use
//! (`fault = drop(0.1)+byz(0.05:0)`). The all-disabled spec prints as
//! `none`.
//!
//! ## Support boundaries
//!
//! Fault injection is defined on the complete graph only (a duplicated or
//! delayed message is re-scattered *uniformly*, which is a complete-graph
//! notion), and the count-based
//! [`CountingNetwork`](crate::CountingNetwork) supports the *aggregatable*
//! subset: drop/dup as binomial thinning/inflation of the post-noise
//! per-opinion counts, crash/Byzantine as count transfers between pools.
//! Delayed delivery needs per-message identity across the phase boundary
//! and is agent-backend-only (see
//! [`PushBackend::SUPPORTS_DELAY_FAULTS`](crate::PushBackend::SUPPORTS_DELAY_FAULTS)).
//! Both boundaries are enforced at construction time
//! ([`SimError::UnsupportedFault`]).
//!
//! All fault randomness is drawn from a **dedicated seed-derived RNG**
//! (`seed ^ FAULT_SEED_SALT`), so an all-disabled spec leaves every
//! existing RNG stream bit-for-bit intact — the fixed-seed fixtures of the
//! workspace remain valid under the fault-capable simulator.

use crate::error::SimError;
use std::fmt;
use std::str::FromStr;

/// Crashed agents: a fraction of the population falls silent at the end
/// of a given phase.
#[derive(Debug, Clone, Copy)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct CrashFault {
    /// The fraction of agents that crash, in `[0, 1]`.
    pub fraction: f64,
    /// The 0-based phase index *after* which the crashed agents are
    /// silent: they participate normally in phases `0..=after_phase` and
    /// are dead from phase `after_phase + 1` on.
    pub after_phase: u64,
}

/// Byzantine agents: a fraction of the population always pushes a fixed
/// opinion and never changes its own.
#[derive(Debug, Clone, Copy)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct ByzantineFault {
    /// The fraction of agents that are Byzantine, in `[0, 1]`.
    pub fraction: f64,
    /// The opinion the Byzantine agents push every round (must be
    /// `< num_opinions`).
    pub opinion: usize,
}

/// A declarative description of the faults injected into a run.
///
/// The default value disables every fault family and is guaranteed not to
/// perturb any RNG stream of the simulation (`fault = none` is bit-for-bit
/// the pre-fault simulator). The textual form (`Display` / [`FromStr`])
/// round-trips exactly; families are joined with `+` in the fixed order
/// `drop`, `dup`, `delay`, `crash`, `byz`.
#[derive(Debug, Clone, Copy, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct FaultSpec {
    /// Per-message drop probability in `[0, 1]` (applied post-noise).
    pub drop: f64,
    /// Per-message duplication probability in `[0, 1]` (applied to
    /// messages that survive the drop coin; the copy is delivered to an
    /// independently chosen uniform agent).
    pub duplicate: f64,
    /// Per-message delay probability in `[0, 1]`: delayed messages are
    /// delivered at the start of the *next* phase. Agent backend only.
    pub delay: f64,
    /// Crashed agents, if any.
    pub crash: Option<CrashFault>,
    /// Byzantine agents, if any.
    pub byzantine: Option<ByzantineFault>,
}

impl PartialEq for FaultSpec {
    fn eq(&self, other: &Self) -> bool {
        // Bitwise comparison keeps Eq/Hash lawful (NaN never survives
        // `check`, which rejects non-finite probabilities).
        let pair = |a: Option<CrashFault>, b: Option<CrashFault>| match (a, b) {
            (None, None) => true,
            (Some(x), Some(y)) => {
                x.fraction.to_bits() == y.fraction.to_bits() && x.after_phase == y.after_phase
            }
            _ => false,
        };
        let byz = |a: Option<ByzantineFault>, b: Option<ByzantineFault>| match (a, b) {
            (None, None) => true,
            (Some(x), Some(y)) => {
                x.fraction.to_bits() == y.fraction.to_bits() && x.opinion == y.opinion
            }
            _ => false,
        };
        self.drop.to_bits() == other.drop.to_bits()
            && self.duplicate.to_bits() == other.duplicate.to_bits()
            && self.delay.to_bits() == other.delay.to_bits()
            && pair(self.crash, other.crash)
            && byz(self.byzantine, other.byzantine)
    }
}

impl Eq for FaultSpec {}

impl std::hash::Hash for FaultSpec {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.drop.to_bits().hash(state);
        self.duplicate.to_bits().hash(state);
        self.delay.to_bits().hash(state);
        if let Some(c) = self.crash {
            c.fraction.to_bits().hash(state);
            c.after_phase.hash(state);
        } else {
            u64::MAX.hash(state);
        }
        if let Some(b) = self.byzantine {
            b.fraction.to_bits().hash(state);
            b.opinion.hash(state);
        } else {
            u64::MAX.hash(state);
        }
    }
}

impl FaultSpec {
    /// The all-disabled spec (identical to `FaultSpec::default()`),
    /// spelled `none`.
    pub fn none() -> Self {
        FaultSpec::default()
    }

    /// `true` when every fault family is disabled. A disabled spec is
    /// guaranteed not to perturb any RNG stream of the simulation.
    pub fn is_none(&self) -> bool {
        self.drop == 0.0
            && self.duplicate == 0.0
            && self.delay == 0.0
            && self.crash.is_none()
            && self.byzantine.is_none()
    }

    /// `true` when the spec only uses the aggregatable subset the
    /// count-based backend supports (everything except delayed delivery).
    pub fn aggregatable(&self) -> bool {
        self.delay == 0.0
    }

    /// The short human-readable label (identical to the `Display` form),
    /// recorded in result tables and error messages.
    pub fn label(&self) -> String {
        self.to_string()
    }

    /// Checks that this fault spec is well-formed for a system with
    /// `num_opinions` opinions.
    ///
    /// # Errors
    ///
    /// [`SimError::InvalidFault`] if a probability or fraction is outside
    /// `[0, 1]` (or non-finite), the Byzantine opinion is `>=
    /// num_opinions`, or the crashed and Byzantine fractions together
    /// exceed the whole population.
    pub fn check(&self, num_opinions: usize) -> Result<(), SimError> {
        let fail = |reason: String| Err(SimError::InvalidFault { reason });
        let probability = |name: &str, p: f64| {
            if p.is_finite() && (0.0..=1.0).contains(&p) {
                Ok(())
            } else {
                Err(SimError::InvalidFault {
                    reason: format!("{name} needs a probability in [0, 1], got {p}"),
                })
            }
        };
        probability("drop(p)", self.drop)?;
        probability("dup(p)", self.duplicate)?;
        probability("delay(p)", self.delay)?;
        let mut faulty_fraction = 0.0;
        if let Some(crash) = self.crash {
            probability("crash(f@s)", crash.fraction)?;
            faulty_fraction += crash.fraction;
        }
        if let Some(byz) = self.byzantine {
            probability("byz(f:j)", byz.fraction)?;
            if byz.opinion >= num_opinions {
                return fail(format!(
                    "byz opinion {} is out of range for a system with {num_opinions} opinions",
                    byz.opinion
                ));
            }
            faulty_fraction += byz.fraction;
        }
        if faulty_fraction > 1.0 {
            return fail(format!(
                "crashed and Byzantine fractions sum to {faulty_fraction}, \
                 which exceeds the whole population"
            ));
        }
        Ok(())
    }
}

impl fmt::Display for FaultSpec {
    /// The canonical spec-file spelling: `none`, or `+`-joined families in
    /// the fixed order `drop(p)`, `dup(p)`, `delay(p)`, `crash(f@s)`,
    /// `byz(f:j)`.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_none() {
            return write!(f, "none");
        }
        let mut first = true;
        let mut sep = |f: &mut fmt::Formatter<'_>| -> fmt::Result {
            if first {
                first = false;
                Ok(())
            } else {
                write!(f, "+")
            }
        };
        if self.drop != 0.0 {
            sep(f)?;
            write!(f, "drop({})", self.drop)?;
        }
        if self.duplicate != 0.0 {
            sep(f)?;
            write!(f, "dup({})", self.duplicate)?;
        }
        if self.delay != 0.0 {
            sep(f)?;
            write!(f, "delay({})", self.delay)?;
        }
        if let Some(crash) = self.crash {
            sep(f)?;
            write!(f, "crash({}@{})", crash.fraction, crash.after_phase)?;
        }
        if let Some(byz) = self.byzantine {
            sep(f)?;
            write!(f, "byz({}:{})", byz.fraction, byz.opinion)?;
        }
        Ok(())
    }
}

impl FromStr for FaultSpec {
    type Err = String;

    /// Parses the canonical spelling (case-insensitive): `none`, or
    /// `+`-joined `drop(p)`, `dup(p)`, `delay(p)`, `crash(f@s)`,
    /// `byz(f:j)` in any order; each family at most once.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let s = s.trim();
        let lower = s.to_ascii_lowercase();
        if lower == "none" {
            return Ok(FaultSpec::default());
        }
        let mut spec = FaultSpec::default();
        for part in lower.split('+') {
            let part = part.trim();
            let parameterized = |name: &str| -> Option<&str> {
                part.strip_prefix(name)?.strip_prefix('(')?.strip_suffix(')')
            };
            let duplicate_family =
                |name: &str| -> String { format!("fault family {name} given more than once in {s:?}") };
            if let Some(arg) = parameterized("drop") {
                if spec.drop != 0.0 {
                    return Err(duplicate_family("drop"));
                }
                spec.drop = arg
                    .trim()
                    .parse::<f64>()
                    .map_err(|_| format!("drop(p) needs a number, got {arg:?}"))?;
            } else if let Some(arg) = parameterized("dup") {
                if spec.duplicate != 0.0 {
                    return Err(duplicate_family("dup"));
                }
                spec.duplicate = arg
                    .trim()
                    .parse::<f64>()
                    .map_err(|_| format!("dup(p) needs a number, got {arg:?}"))?;
            } else if let Some(arg) = parameterized("delay") {
                if spec.delay != 0.0 {
                    return Err(duplicate_family("delay"));
                }
                spec.delay = arg
                    .trim()
                    .parse::<f64>()
                    .map_err(|_| format!("delay(p) needs a number, got {arg:?}"))?;
            } else if let Some(arg) = parameterized("crash") {
                if spec.crash.is_some() {
                    return Err(duplicate_family("crash"));
                }
                let (fraction, phase) = arg
                    .split_once('@')
                    .ok_or_else(|| format!("crash needs the form crash(f@s), got crash({arg})"))?;
                let fraction = fraction
                    .trim()
                    .parse::<f64>()
                    .map_err(|_| format!("crash(f@s) needs a numeric fraction, got {fraction:?}"))?;
                let after_phase = phase
                    .trim()
                    .parse::<u64>()
                    .map_err(|_| format!("crash(f@s) needs an integer phase, got {phase:?}"))?;
                spec.crash = Some(CrashFault {
                    fraction,
                    after_phase,
                });
            } else if let Some(arg) = parameterized("byz") {
                if spec.byzantine.is_some() {
                    return Err(duplicate_family("byz"));
                }
                let (fraction, opinion) = arg
                    .split_once(':')
                    .ok_or_else(|| format!("byz needs the form byz(f:j), got byz({arg})"))?;
                let fraction = fraction
                    .trim()
                    .parse::<f64>()
                    .map_err(|_| format!("byz(f:j) needs a numeric fraction, got {fraction:?}"))?;
                let opinion = opinion
                    .trim()
                    .parse::<usize>()
                    .map_err(|_| format!("byz(f:j) needs an integer opinion, got {opinion:?}"))?;
                spec.byzantine = Some(ByzantineFault { fraction, opinion });
            } else {
                return Err(format!(
                    "unknown fault {part:?} in {s:?} (expected none, or +-joined \
                     drop(p), dup(p), delay(p), crash(f@s), byz(f:j))"
                ));
            }
        }
        Ok(spec)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::hash_map::DefaultHasher;
    use std::hash::{Hash, Hasher};

    fn full() -> FaultSpec {
        FaultSpec {
            drop: 0.1,
            duplicate: 0.05,
            delay: 0.25,
            crash: Some(CrashFault {
                fraction: 0.1,
                after_phase: 2,
            }),
            byzantine: Some(ByzantineFault {
                fraction: 0.05,
                opinion: 1,
            }),
        }
    }

    #[test]
    fn default_is_none_and_prints_none() {
        let spec = FaultSpec::default();
        assert!(spec.is_none());
        assert!(spec.aggregatable());
        assert_eq!(spec.to_string(), "none");
        assert_eq!("none".parse::<FaultSpec>().unwrap(), spec);
        assert_eq!(FaultSpec::none(), spec);
    }

    #[test]
    fn display_round_trips_through_from_str() {
        let cases = [
            FaultSpec {
                drop: 0.25,
                ..FaultSpec::default()
            },
            FaultSpec {
                duplicate: 0.5,
                ..FaultSpec::default()
            },
            FaultSpec {
                delay: 1.0,
                ..FaultSpec::default()
            },
            FaultSpec {
                crash: Some(CrashFault {
                    fraction: 0.3,
                    after_phase: 0,
                }),
                ..FaultSpec::default()
            },
            FaultSpec {
                byzantine: Some(ByzantineFault {
                    fraction: 0.01,
                    opinion: 2,
                }),
                ..FaultSpec::default()
            },
            full(),
        ];
        for spec in cases {
            let text = spec.to_string();
            assert_eq!(text.parse::<FaultSpec>().unwrap(), spec, "{text}");
        }
        assert_eq!(full().to_string(), "drop(0.1)+dup(0.05)+delay(0.25)+crash(0.1@2)+byz(0.05:1)");
    }

    #[test]
    fn parsing_is_case_insensitive_and_order_insensitive() {
        let spec: FaultSpec = "BYZ(0.05:1) + Drop(0.1)".parse().unwrap();
        assert_eq!(spec.drop, 0.1);
        assert_eq!(spec.byzantine.unwrap().opinion, 1);
    }

    #[test]
    fn parse_errors_are_informative() {
        assert!("teleport(0.1)".parse::<FaultSpec>().is_err());
        assert!("drop(0.1)+drop(0.2)".parse::<FaultSpec>().unwrap_err().contains("more than once"));
        assert!("crash(0.1)".parse::<FaultSpec>().unwrap_err().contains("crash(f@s)"));
        assert!("byz(0.1@2)".parse::<FaultSpec>().unwrap_err().contains("byz(f:j)"));
        assert!("drop(zero)".parse::<FaultSpec>().is_err());
    }

    #[test]
    fn check_rejects_out_of_range_parameters() {
        let bad_probability = FaultSpec {
            drop: 1.5,
            ..FaultSpec::default()
        };
        assert!(matches!(
            bad_probability.check(3),
            Err(SimError::InvalidFault { .. })
        ));
        let nan = FaultSpec {
            delay: f64::NAN,
            ..FaultSpec::default()
        };
        assert!(nan.check(3).is_err());
        let byz_out_of_range = FaultSpec {
            byzantine: Some(ByzantineFault {
                fraction: 0.1,
                opinion: 3,
            }),
            ..FaultSpec::default()
        };
        assert!(byz_out_of_range.check(3).is_err());
        assert!(byz_out_of_range.check(4).is_ok());
        let overfull = FaultSpec {
            crash: Some(CrashFault {
                fraction: 0.7,
                after_phase: 0,
            }),
            byzantine: Some(ByzantineFault {
                fraction: 0.5,
                opinion: 0,
            }),
            ..FaultSpec::default()
        };
        assert!(overfull.check(3).is_err());
        assert!(full().check(3).is_ok());
    }

    #[test]
    fn eq_and_hash_are_consistent() {
        let hash = |spec: &FaultSpec| {
            let mut h = DefaultHasher::new();
            spec.hash(&mut h);
            h.finish()
        };
        assert_eq!(full(), full());
        assert_eq!(hash(&full()), hash(&full()));
        let mut other = full();
        other.crash = None;
        assert_ne!(full(), other);
    }

    #[test]
    fn aggregatable_excludes_only_delay() {
        let mut spec = full();
        assert!(!spec.aggregatable());
        spec.delay = 0.0;
        assert!(spec.aggregatable());
    }
}
