//! The count-based simulation backend: exchangeable agent populations as
//! per-opinion counts.
//!
//! Agents in the noisy uniform push model are anonymous and exchangeable —
//! the paper's own analysis never tracks individuals, it works on opinion
//! *counts* (the Poissonized process P of Definition 4 is defined purely in
//! terms of the post-noise totals `h_i`). [`CountingNetwork`] exploits that:
//! instead of `Vec<NodeState>` plus per-agent inboxes, the population is a
//! `k`-vector of opinion counts plus an undecided count, and a whole phase
//! costs **O(k²) random draws** (one multinomial per opinion row of the
//! noise matrix) regardless of `n` — so `n = 10⁷` or `10⁸` runs in the time
//! the agent-level backend needs for `n = 10⁴`.
//!
//! ## Semantics: process P, exactly
//!
//! The backend implements the **Poissonized** delivery process (process P)
//! at the population level, exactly:
//!
//! * pushed counts are re-colored through the noise with one
//!   `Multinomial(pending_i, p_i)` draw per opinion row (exchangeability);
//! * every agent's phase inbox is an independent Poisson vector with means
//!   `h_j / n`. All the per-agent protocol rules used in this workspace
//!   depend on the inbox only through (a) "received at least / at most m
//!   messages" events and (b) uniform draws from the received multiset —
//!   and for Poisson inboxes both have closed count-level forms:
//!   the number of agents in a group of size `g` receiving ≥ 1 message is
//!   `Binomial(g, 1 − e^{−Λ})` with `Λ = Σ_j h_j / n`, a uniformly drawn
//!   message is opinion `j` with probability `h_j / Σ h` independent of the
//!   inbox size (Poisson splitting), and a uniform sample of `L` messages
//!   without replacement from an inbox of size ≥ L has per-opinion counts
//!   `Multinomial(L, h / Σh)` (subsampling a multinomial composition).
//!
//! For configurations with
//! [`DeliverySemantics::Exact`](crate::DeliverySemantics::Exact) or
//! [`DeliverySemantics::BallsIntoBins`](crate::DeliverySemantics::BallsIntoBins),
//! the counting backend still runs
//! process P — the paper's Claim 1 and Lemma 3 are exactly the statement
//! that phase-granular w.h.p. behaviour transfers between the three
//! processes, and `pushsim/tests/equivalence.rs` checks the agreement
//! empirically against the agent-level backend.

use crate::config::SimConfig;
use crate::distribution::OpinionDistribution;
use crate::error::SimError;
use crate::fault::FaultSpec;
use crate::network::{membership_count, ChurnState, RoundReport, ScheduledNoise, FAULT_SEED_SALT};
use crate::opinion::Opinion;
use noisy_channel::sampling::{binomial, multinomial};
use noisy_channel::NoiseMatrix;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Aggregate result of one finished phase of a [`CountingNetwork`]: the
/// post-noise per-opinion message totals `h_j` (Definition 4's parameters).
#[derive(Debug, Clone, PartialEq)]
pub struct PhaseTally {
    post_noise: Vec<u64>,
    num_nodes: usize,
}

impl PhaseTally {
    /// Builds a tally over a population of `num_nodes` agents. Crate-only:
    /// the block-counting backend assembles one tally per degree class
    /// (with `num_nodes` the class population `n_c`), reusing every
    /// closed-form query and count-level decision rule below per class.
    pub(crate) fn new(post_noise: Vec<u64>, num_nodes: usize) -> Self {
        Self {
            post_noise,
            num_nodes,
        }
    }

    /// The population the tally is over: `n` for a whole-network phase, a
    /// class population `n_c` for the block-counting backend's per-class
    /// tallies.
    pub fn num_nodes(&self) -> usize {
        self.num_nodes
    }

    /// The post-noise totals `h_j`: how many messages carrying opinion `j`
    /// the phase delivered in aggregate (before Poisson thinning).
    pub fn post_noise(&self) -> &[u64] {
        &self.post_noise
    }

    /// `H = Σ_j h_j`.
    pub fn total(&self) -> u64 {
        self.post_noise.iter().sum()
    }

    /// The per-agent mean inbox size `Λ = H / n` of process P.
    pub fn mean_inbox(&self) -> f64 {
        self.total() as f64 / self.num_nodes as f64
    }

    /// The probability that one agent receives at least one message:
    /// `1 − e^{−Λ}`.
    pub fn activation_probability(&self) -> f64 {
        -(-self.mean_inbox()).exp_m1()
    }

    /// The probability that one agent receives at least `m` messages:
    /// the upper tail of `Poisson(Λ)`.
    pub fn at_least_probability(&self, m: u64) -> f64 {
        poisson_tail_ge(self.mean_inbox(), m)
    }

    /// A Chernoff-style high-probability ceiling on the largest single
    /// inbox (`Λ + √(2Λ ln n) + ln n`), used for the memory-accounting
    /// meter where the agent-level backend records the observed maximum.
    pub fn typical_max_inbox(&self) -> u64 {
        let lambda = self.mean_inbox();
        let ln_n = (self.num_nodes.max(2) as f64).ln();
        (lambda + (2.0 * lambda * ln_n).sqrt() + ln_n).ceil() as u64
    }
}

/// The upper tail `P(Poisson(λ) ≥ m)`.
///
/// Exact pmf recurrence for moderate `λ`; a continuity-corrected normal
/// approximation beyond `λ = 600` (where `e^{−λ}` approaches the f64
/// underflow cliff and the absolute error of the approximation is below
/// `10⁻³`, far inside the w.h.p. regimes the protocol operates in).
pub fn poisson_tail_ge(lambda: f64, m: u64) -> f64 {
    assert!(
        lambda.is_finite() && lambda >= 0.0,
        "Poisson mean must be finite and non-negative, got {lambda}"
    );
    if m == 0 {
        return 1.0;
    }
    if lambda == 0.0 {
        return 0.0;
    }
    if lambda > 600.0 {
        let z = (m as f64 - 0.5 - lambda) / lambda.sqrt();
        return 1.0 - standard_normal_cdf(z);
    }
    // P(X < m) by the stable pmf recurrence p_{j+1} = p_j · λ/(j+1).
    let mut pmf = (-lambda).exp();
    let mut below = pmf;
    for j in 0..m - 1 {
        pmf *= lambda / (j + 1) as f64;
        below += pmf;
    }
    (1.0 - below).clamp(0.0, 1.0)
}

/// Φ(z) via the Abramowitz–Stegun 7.1.26 erf approximation (|error| < 2e-7).
fn standard_normal_cdf(z: f64) -> f64 {
    let x = z / std::f64::consts::SQRT_2;
    let t = 1.0 / (1.0 + 0.327_591_1 * x.abs());
    let poly = t
        * (0.254_829_592
            + t * (-0.284_496_736 + t * (1.421_413_741 + t * (-1.453_152_027 + t * 1.061_405_429))));
    let erf_abs = 1.0 - poly * (-x * x).exp();
    let erf = if x < 0.0 { -erf_abs } else { erf_abs };
    0.5 * (1.0 + erf)
}

/// The index of the largest count, ties broken uniformly at random — the
/// paper's `maj(·)` over a sampled composition.
fn majority_index<R: Rng + ?Sized>(counts: &[u64], rng: &mut R) -> usize {
    let max = *counts.iter().max().expect("non-empty counts");
    let tied = counts.iter().filter(|&&c| c == max).count();
    let mut pick = rng.gen_range(0..tied);
    for (i, &c) in counts.iter().enumerate() {
        if c == max {
            if pick == 0 {
                return i;
            }
            pick -= 1;
        }
    }
    unreachable!("pick indexes a tied maximum")
}

/// How many exact per-draw samples [`sample_majority_splits`] takes before
/// switching to the estimated-pmf bulk path.
const MAJORITY_EXACT_CAP: u64 = 65_536;

/// Distributes `count` iid draws of `maj(Multinomial(sample_size, weights))`
/// over the opinions: the count-level form of Stage 2's sample-majority
/// adoption (and of h-majority dynamics).
///
/// Up to `MAJORITY_EXACT_CAP` (65 536) draws are sampled exactly (one multinomial
/// composition + tie-broken argmax each). Beyond the cap, the remaining
/// draws are split by a single multinomial over the empirical frequencies
/// of the exact draws — a `O(1/√cap) ≈ 0.4%` perturbation of the adoption
/// probabilities, far below the phase-level sampling noise at the
/// population sizes where the cap binds.
///
/// Returns per-opinion adoption counts summing to exactly `count`.
pub fn sample_majority_splits<R: Rng + ?Sized>(
    count: u64,
    sample_size: u64,
    weights: &[u64],
    rng: &mut R,
) -> Vec<u64> {
    let k = weights.len();
    let mut out = vec![0u64; k];
    if count == 0 || sample_size == 0 || weights.iter().all(|&w| w == 0) {
        return out;
    }
    let weights_f: Vec<f64> = weights.iter().map(|&w| w as f64).collect();
    let exact = count.min(MAJORITY_EXACT_CAP);
    for _ in 0..exact {
        let composition = multinomial(sample_size, &weights_f, rng);
        out[majority_index(&composition, rng)] += 1;
    }
    if count > exact {
        let freq: Vec<f64> = out.iter().map(|&c| c as f64).collect();
        let bulk = multinomial(count - exact, &freq, rng);
        for (o, b) in out.iter_mut().zip(bulk) {
            *o += b;
        }
    }
    out
}

/// The fault pools of a count-based network: Byzantine and crashed agents
/// are carved out of the live population as per-opinion count transfers
/// (the aggregatable reformulation of the agent backend's per-node flags).
#[derive(Debug, Clone)]
struct CountingFaults {
    spec: FaultSpec,
    rng: StdRng,
    /// Opinions the Byzantine agents were *seeded* with (they hold them
    /// forever and always push the fixed Byzantine opinion instead).
    byz_counts: Vec<u64>,
    byz_undecided: u64,
    /// Opinions the crashed agents held at the moment the crash phase
    /// ended; empty until then.
    crashed_counts: Vec<u64>,
    crashed_undecided: u64,
    crash_carved: bool,
    phases_completed: u64,
}

impl CountingFaults {
    fn byz_total(&self) -> u64 {
        self.byz_counts.iter().sum::<u64>() + self.byz_undecided
    }

    fn frozen_counts(&self) -> Vec<u64> {
        self.byz_counts
            .iter()
            .zip(&self.crashed_counts)
            .map(|(&b, &c)| b + c)
            .collect()
    }
}

/// The materialized temporal state of a count-based network: churn as
/// aggregate count transfers plus the scheduled noise swap. Built only
/// when at least one supported temporal axis is enabled (clock skew and
/// edge churn are rejected at construction), so temporal-off runs never
/// touch any temporal RNG stream.
#[derive(Debug, Clone)]
struct CountingTemporal {
    churn: Option<ChurnState>,
    schedule: Option<ScheduledNoise>,
    /// How many phases have fully ended; boundary `b` (preceding phase
    /// `b`) is applied when this equals `b` at `begin_phase`.
    phases_completed: u64,
}

/// Largest-remainder proportional allocation of `draw` agents over
/// population `groups` (exact: each share never exceeds its group and the
/// shares sum to `draw`). The count-level stand-in for drawing the faulty
/// agents uniformly without replacement — the composition of the faulty
/// pool is pinned to its expectation, one more of the bounded
/// approximations the backend documents. Also reused by the
/// block-counting backend to spread seeded opinion counts over degree
/// classes deterministically.
pub(crate) fn proportional_split(groups: &[u64], draw: u64) -> Vec<u64> {
    let population: u64 = groups.iter().sum();
    debug_assert!(draw <= population);
    if population == 0 {
        return vec![0; groups.len()];
    }
    let mut shares: Vec<u64> = Vec::with_capacity(groups.len());
    let mut remainders: Vec<(u128, usize)> = Vec::with_capacity(groups.len());
    let mut assigned = 0u64;
    for (i, &g) in groups.iter().enumerate() {
        let exact = u128::from(draw) * u128::from(g);
        let base = (exact / u128::from(population)) as u64;
        shares.push(base);
        assigned += base;
        remainders.push((exact % u128::from(population), i));
    }
    // Hand the leftover to the largest fractional remainders; a group
    // with remainder 0 has an integral (hence already met) quota.
    remainders.sort_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)));
    for &(remainder, i) in remainders.iter().take((draw - assigned) as usize) {
        debug_assert!(remainder > 0);
        shares[i] += 1;
    }
    shares
}

/// A complete synchronous network of anonymous agents, represented purely by
/// per-opinion population counts — the batched counterpart of
/// [`Network`](crate::Network).
///
/// Drive it in phases exactly like the agent-level backend:
/// [`begin_phase`](Self::begin_phase), one
/// [`push_round_batched`](Self::push_round_batched) per round (counts in),
/// then [`end_phase`](Self::end_phase) (a [`PhaseTally`] out). Population
/// updates between phases go through the count-level rule helpers
/// ([`PhaseTally::activation_probability`], [`sample_majority_splits`], …)
/// plus [`apply_deltas`](Self::apply_deltas).
///
/// See the module documentation for the exactness statement.
#[derive(Debug, Clone)]
pub struct CountingNetwork {
    config: SimConfig,
    noise: NoiseMatrix,
    counts: Vec<u64>,
    undecided: u64,
    rng: StdRng,
    pending: Vec<u64>,
    tally: PhaseTally,
    /// Fault pools; `None` when the config's [`FaultSpec`] is all-disabled,
    /// in which case no fault code path is entered and no fault RNG is
    /// seeded.
    faults: Option<CountingFaults>,
    /// Materialized temporal state; `None` when every temporal axis is
    /// disabled, in which case no temporal code path is ever entered.
    temporal: Option<CountingTemporal>,
    /// The live population: `config.num_nodes()` except under population
    /// churn, which moves it deterministically at phase boundaries.
    population: usize,
    phase_open: bool,
    rounds_executed: u64,
    messages_sent: u64,
}

impl CountingNetwork {
    /// Creates a network of undecided agents.
    ///
    /// # Errors
    ///
    /// * [`SimError::NoiseDimensionMismatch`] if the noise matrix is not
    ///   defined over exactly `config.num_opinions()` opinions.
    /// * [`SimError::UnsupportedTopology`] if the configuration requests a
    ///   non-complete topology: the count-based backend is statically
    ///   complete-graph-only (its
    ///   [`PushBackend::TOPOLOGY_CAPABILITY`](crate::PushBackend::TOPOLOGY_CAPABILITY)
    ///   is [`TopologyCapability::Complete`](crate::TopologyCapability);
    ///   sparse degree-homogeneous families go through
    ///   [`BlockCountingNetwork`](crate::BlockCountingNetwork)).
    /// * [`SimError::UnsupportedFault`] if the configuration enables the
    ///   `delay` fault: deferring individual messages across the phase
    ///   boundary needs per-message identity, which the count-based
    ///   backend gives up (see
    ///   [`PushBackend::SUPPORTS_DELAY_FAULTS`](crate::PushBackend::SUPPORTS_DELAY_FAULTS)).
    /// * [`SimError::UnsupportedTemporal`] if the configuration enables a
    ///   temporal feature outside
    ///   [`TemporalCapability::AGGREGATE`](crate::TemporalCapability::AGGREGATE):
    ///   edge churn (`rewire`) and non-`sync` clocks need per-agent
    ///   identity. Population churn and noise schedules are supported as
    ///   O(k) aggregate operations.
    /// * [`SimError::InvalidTemporal`] if a scheduled ε falls outside the
    ///   uniform noise family's domain for the configured `k`.
    pub fn new(config: SimConfig, noise: NoiseMatrix) -> Result<Self, SimError> {
        if noise.num_opinions() != config.num_opinions() {
            return Err(SimError::NoiseDimensionMismatch {
                expected: config.num_opinions(),
                found: noise.num_opinions(),
            });
        }
        // The whole-population reformulation is built on global agent
        // exchangeability, which only the complete graph provides: on a
        // sparse topology the paper's `h_j` totals do not determine any
        // agent's inbox law. (The same fact is declared statically as
        // `PushBackend::TOPOLOGY_CAPABILITY`, which backend-selection
        // policies consult.)
        if !<Self as crate::PushBackend>::TOPOLOGY_CAPABILITY.supports(config.topology()) {
            return Err(SimError::UnsupportedTopology {
                topology: config.topology().label(),
                context: "the count-based backend".to_string(),
            });
        }
        if !<Self as crate::PushBackend>::SUPPORTS_DELAY_FAULTS && config.fault().delay > 0.0 {
            return Err(SimError::UnsupportedFault {
                fault: config.fault().label(),
                context: "the count-based backend".to_string(),
            });
        }
        if let Some(feature) = <Self as crate::PushBackend>::TEMPORAL_CAPABILITY.first_unsupported(
            &config.churn(),
            &config.schedule(),
            &config.clock(),
        ) {
            return Err(SimError::UnsupportedTemporal {
                feature: feature.to_string(),
                context: "the count-based backend".to_string(),
            });
        }
        let k = config.num_opinions();
        let schedule = ScheduledNoise::build(config.schedule(), k, &noise)?;
        let churn = ChurnState::build(config.churn(), config.seed());
        let temporal = (churn.is_some() || schedule.is_some()).then_some(CountingTemporal {
            churn,
            schedule,
            phases_completed: 0,
        });
        let faults = (!config.fault().is_none()).then(|| CountingFaults {
            spec: config.fault(),
            rng: StdRng::seed_from_u64(config.seed() ^ FAULT_SEED_SALT),
            byz_counts: vec![0; k],
            byz_undecided: 0,
            crashed_counts: vec![0; k],
            crashed_undecided: 0,
            crash_carved: false,
            phases_completed: 0,
        });
        Ok(Self {
            rng: StdRng::seed_from_u64(config.seed()),
            counts: vec![0; k],
            undecided: config.num_nodes() as u64,
            pending: vec![0; k],
            tally: PhaseTally {
                post_noise: vec![0; k],
                num_nodes: config.num_nodes(),
            },
            faults,
            temporal,
            population: config.num_nodes(),
            phase_open: false,
            rounds_executed: 0,
            messages_sent: 0,
            config,
            noise,
        })
    }

    /// The simulation configuration.
    pub fn config(&self) -> &SimConfig {
        &self.config
    }

    /// The number of agents `n` — the **live** population: equal to
    /// `config().num_nodes()` except under population churn, where joins
    /// and departures at phase boundaries move it away from the initial
    /// size (deterministically; see
    /// [`ChurnSpec::population_after`](crate::ChurnSpec::population_after)).
    pub fn num_nodes(&self) -> usize {
        self.population
    }

    /// The number of opinions `k`.
    pub fn num_opinions(&self) -> usize {
        self.config.num_opinions()
    }

    /// The noise matrix acting on every transmitted message.
    pub fn noise(&self) -> &NoiseMatrix {
        &self.noise
    }

    /// Per-opinion population counts of the **live** agents — under faults,
    /// Byzantine and already-crashed agents sit in frozen pools excluded
    /// from these counts (adoption rules only move live agents); use
    /// [`distribution`](Self::distribution) for the whole population.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// The number of live undecided agents (see [`counts`](Self::counts)).
    pub fn undecided(&self) -> u64 {
        self.undecided
    }

    /// The current opinion distribution of the whole population, frozen
    /// fault pools included (Byzantine and crashed agents count with the
    /// opinion they froze with, mirroring the agent-level backend).
    pub fn distribution(&self) -> OpinionDistribution {
        let mut counts: Vec<usize> = self.counts.iter().map(|&c| c as usize).collect();
        let mut undecided = self.undecided as usize;
        if let Some(f) = &self.faults {
            for (c, frozen) in counts.iter_mut().zip(f.frozen_counts()) {
                *c += frozen as usize;
            }
            undecided += (f.byz_undecided + f.crashed_undecided) as usize;
        }
        OpinionDistribution::from_counts(counts, undecided).expect("k >= 2 by construction")
    }

    /// Total number of rounds executed so far.
    pub fn rounds_executed(&self) -> u64 {
        self.rounds_executed
    }

    /// Total number of messages pushed so far.
    pub fn messages_sent(&self) -> u64 {
        self.messages_sent
    }

    /// The tally of the most recently finished phase.
    pub fn tally(&self) -> &PhaseTally {
        &self.tally
    }

    /// A mutable reference to the backend's RNG (for callers that want a
    /// single reproducible randomness source).
    pub fn rng_mut(&mut self) -> &mut StdRng {
        &mut self.rng
    }

    /// Resets every agent to undecided (keeping round/message counters).
    /// Under faults this dissolves the frozen pools; they are carved again
    /// at the next seeding (`seed_counts` / `seed_rumor`).
    pub fn clear_opinions(&mut self) {
        self.counts.iter_mut().for_each(|c| *c = 0);
        self.undecided = self.num_nodes() as u64;
        self.reset_fault_pools();
    }

    /// Zeroes the fault pools ahead of a wholesale repopulation of the
    /// live counts (the caller overwrites `counts`/`undecided` entirely).
    fn reset_fault_pools(&mut self) {
        if let Some(f) = self.faults.as_mut() {
            f.byz_counts.iter_mut().for_each(|c| *c = 0);
            f.byz_undecided = 0;
            f.crashed_counts.iter_mut().for_each(|c| *c = 0);
            f.crashed_undecided = 0;
            f.crash_carved = false;
        }
    }

    /// Carves the Byzantine pool out of the freshly seeded live
    /// population: a proportional (largest-remainder) share of every
    /// opinion group and of the undecided pool, matching the uniform
    /// membership draw of the agent-level backend in expectation.
    fn carve_byzantine(&mut self) {
        let Some(f) = self.faults.as_mut() else {
            return;
        };
        let Some(byz) = f.spec.byzantine else {
            return;
        };
        let byz_count = membership_count(byz.fraction, self.config.num_nodes()) as u64;
        let mut groups: Vec<u64> = self.counts.clone();
        groups.push(self.undecided);
        let shares = proportional_split(&groups, byz_count);
        for ((live, pool), &share) in self
            .counts
            .iter_mut()
            .zip(f.byz_counts.iter_mut())
            .zip(&shares)
        {
            *live -= share;
            *pool += share;
        }
        let undecided_share = shares[shares.len() - 1];
        self.undecided -= undecided_share;
        f.byz_undecided += undecided_share;
    }

    /// Carves the crashed pool out of the live population once the crash
    /// phase has fully ended (called from `end_phase`).
    fn carve_crashed(&mut self) {
        let Some(f) = self.faults.as_mut() else {
            return;
        };
        let Some(crash) = f.spec.crash else {
            return;
        };
        if f.crash_carved || f.phases_completed <= crash.after_phase {
            return;
        }
        let live: u64 = self.counts.iter().sum::<u64>() + self.undecided;
        let crash_count =
            (membership_count(crash.fraction, self.config.num_nodes()) as u64).min(live);
        let mut groups: Vec<u64> = self.counts.clone();
        groups.push(self.undecided);
        let shares = proportional_split(&groups, crash_count);
        for ((live, pool), &share) in self
            .counts
            .iter_mut()
            .zip(f.crashed_counts.iter_mut())
            .zip(&shares)
        {
            *live -= share;
            *pool += share;
        }
        let undecided_share = shares[shares.len() - 1];
        self.undecided -= undecided_share;
        f.crashed_undecided += undecided_share;
        f.crash_carved = true;
    }

    /// Seeds a plurality-consensus instance: `counts[i]` agents adopt
    /// opinion `i`, the rest become undecided. (Agents are exchangeable, so
    /// unlike the agent-level backend there is no placement to randomize.)
    ///
    /// # Errors
    ///
    /// * [`SimError::OpinionOutOfRange`] if `counts.len() ≠ num_opinions()`.
    /// * [`SimError::TooManyInitialOpinions`] if the counts sum to more than
    ///   `num_nodes()`.
    pub fn seed_counts(&mut self, counts: &[usize]) -> Result<(), SimError> {
        if counts.len() != self.num_opinions() {
            return Err(SimError::OpinionOutOfRange {
                opinion: counts.len(),
                num_opinions: self.num_opinions(),
            });
        }
        let total: usize = counts.iter().sum();
        if total > self.num_nodes() {
            return Err(SimError::TooManyInitialOpinions {
                requested: total,
                num_nodes: self.num_nodes(),
            });
        }
        self.reset_fault_pools();
        for (slot, &c) in self.counts.iter_mut().zip(counts) {
            *slot = c as u64;
        }
        self.undecided = (self.num_nodes() - total) as u64;
        self.carve_byzantine();
        Ok(())
    }

    /// Seeds a rumor-spreading instance: one agent adopts `opinion`, every
    /// other agent becomes undecided.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::OpinionOutOfRange`] if the opinion index is out
    /// of range.
    pub fn seed_rumor(&mut self, opinion: Opinion) -> Result<(), SimError> {
        if opinion.index() >= self.num_opinions() {
            return Err(SimError::OpinionOutOfRange {
                opinion: opinion.index(),
                num_opinions: self.num_opinions(),
            });
        }
        self.clear_opinions();
        self.counts[opinion.index()] = 1;
        self.undecided -= 1;
        self.carve_byzantine();
        Ok(())
    }

    /// Starts a new phase, applying the pending temporal phase boundary
    /// (population churn as O(k) count transfers, a scheduled noise swap
    /// — a no-op when every temporal axis is off).
    ///
    /// # Panics
    ///
    /// Panics if a phase is already open.
    pub fn begin_phase(&mut self) {
        assert!(!self.phase_open, "begin_phase called while a phase is open");
        self.apply_phase_boundary();
        self.pending.iter_mut().for_each(|c| *c = 0);
        self.phase_open = true;
    }

    /// Applies the temporal phase boundary preceding the phase about to
    /// open. Churn magnitudes are deterministic
    /// ([`ChurnSpec::population_delta`](crate::ChurnSpec::population_delta));
    /// the *composition* of the leavers is the proportional
    /// (largest-remainder) share of every population group — the same
    /// pinned-to-expectation count-level stand-in for a uniform
    /// without-replacement draw that the fault pools use — while joiner
    /// opinions are drawn from the dedicated churn RNG (a uniform
    /// multinomial split, or the fixed adversarial opinion).
    fn apply_phase_boundary(&mut self) {
        let Some(temporal) = self.temporal.as_mut() else {
            return;
        };
        let boundary = temporal.phases_completed;
        if let Some(s) = temporal.schedule.as_ref() {
            self.noise = s.matrix_for(boundary, self.config.num_opinions());
        }
        let Some(c) = temporal.churn.as_mut() else {
            return;
        };
        if boundary == 0 {
            return;
        }
        let delta = c.spec.population_delta(self.population, boundary);
        if delta.leavers > 0 {
            let mut groups: Vec<u64> = self.counts.clone();
            groups.push(self.undecided);
            let shares = proportional_split(&groups, delta.leavers as u64);
            for (live, &share) in self.counts.iter_mut().zip(&shares) {
                *live -= share;
            }
            self.undecided -= shares[shares.len() - 1];
        }
        if delta.joiners > 0 {
            match c.spec.join_opinion {
                Some(opinion) => self.counts[opinion] += delta.joiners as u64,
                None => {
                    let weights = vec![1.0; self.counts.len()];
                    let split = multinomial(delta.joiners as u64, &weights, &mut c.rng);
                    for (count, j) in self.counts.iter_mut().zip(split) {
                        *count += j;
                    }
                }
            }
        }
        self.population = self.population - delta.leavers + delta.joiners;
    }

    /// Executes one synchronous round in which `senders[i]` **live** agents
    /// push opinion `i` — the counts-in counterpart of
    /// [`Network::push_round`](crate::Network::push_round). Under a
    /// Byzantine fault, the whole Byzantine pool additionally pushes its
    /// fixed opinion every round (included in the report's message count).
    ///
    /// # Panics
    ///
    /// Panics if no phase is open, if `senders.len() ≠ num_opinions()`, or
    /// if more agents push an opinion than exist in the network.
    pub fn push_round_batched(&mut self, senders: &[u64]) -> RoundReport {
        assert!(self.phase_open, "push_round_batched called outside a phase");
        assert_eq!(
            senders.len(),
            self.num_opinions(),
            "senders vector must have one entry per opinion"
        );
        let mut sent: u64 = senders.iter().sum();
        for (p, &s) in self.pending.iter_mut().zip(senders) {
            *p += s;
        }
        if let Some(f) = &self.faults {
            let byz_total = f.byz_total();
            if byz_total > 0 {
                let opinion = f.spec.byzantine.expect("byzantine pool implies a spec").opinion;
                self.pending[opinion] += byz_total;
                sent += byz_total;
            }
        }
        assert!(
            sent <= self.num_nodes() as u64,
            "{sent} senders exceed the {}-agent population",
            self.num_nodes()
        );
        self.messages_sent += sent;
        self.rounds_executed += 1;
        RoundReport::new(self.rounds_executed - 1, sent)
    }

    /// Convenience round: every opinionated agent pushes its current
    /// opinion (the rule of Stage 2 and of all baseline dynamics).
    pub fn push_round_all_opinionated(&mut self) -> RoundReport {
        let senders = self.counts.clone();
        self.push_round_batched(&senders)
    }

    /// Finishes the open phase: applies the noise at the count level (O(k²)
    /// multinomial draws), then any aggregatable faults — binomial thinning
    /// for `drop`, binomial inflation for `dup`, both from the dedicated
    /// fault RNG — and returns the post-noise tally. The crashed pool is
    /// carved out of the live population the first time the crash phase
    /// has fully ended.
    ///
    /// # Panics
    ///
    /// Panics if no phase is open.
    pub fn end_phase(&mut self) -> &PhaseTally {
        assert!(self.phase_open, "end_phase called without an open phase");
        let mut post_noise = self.noise.recolor_counts(&self.pending, &mut self.rng);
        if let Some(f) = self.faults.as_mut() {
            if f.spec.drop > 0.0 || f.spec.duplicate > 0.0 {
                for h in post_noise.iter_mut() {
                    let survivors = *h - binomial(*h, f.spec.drop, &mut f.rng);
                    *h = survivors + binomial(survivors, f.spec.duplicate, &mut f.rng);
                }
            }
            f.phases_completed += 1;
        }
        if let Some(t) = self.temporal.as_mut() {
            t.phases_completed += 1;
        }
        self.tally = PhaseTally {
            post_noise,
            num_nodes: self.num_nodes(),
        };
        self.phase_open = false;
        self.carve_crashed();
        &self.tally
    }

    /// Applies the **sample-majority rule** shared by Stage 2 of the
    /// protocol and the h-majority dynamics: every agent that collected at
    /// least `sample_size` messages this phase (a `Binomial(group,
    /// P(Poisson(Λ) ≥ L))` event per population group, independent of the
    /// agent's opinion) switches to `maj(Multinomial(L, h/H))` — the law of
    /// the majority of a uniform without-replacement sample from a
    /// Poisson-multinomial inbox. Conserves the population exactly.
    ///
    /// Randomness comes from the network's own RNG; use
    /// [`apply_sample_majority_with`](Self::apply_sample_majority_with) to
    /// supply an external decision RNG (as the generic
    /// [`PushBackend`](crate::PushBackend) rules do).
    pub fn apply_sample_majority(&mut self, sample_size: u64) {
        let (leavers, joiners, undecided_delta) = sample_majority_plan(
            &self.counts,
            self.undecided,
            &self.tally,
            sample_size,
            &mut self.rng,
        );
        self.apply_deltas(&leavers, &joiners, undecided_delta);
    }

    /// [`apply_sample_majority`](Self::apply_sample_majority) with an
    /// external decision RNG.
    pub fn apply_sample_majority_with<R: Rng + ?Sized>(&mut self, sample_size: u64, rng: &mut R) {
        let (leavers, joiners, undecided_delta) =
            sample_majority_plan(&self.counts, self.undecided, &self.tally, sample_size, rng);
        self.apply_deltas(&leavers, &joiners, undecided_delta);
    }

    /// Applies a population update: `leavers[i]` agents abandon opinion `i`,
    /// `joiners[i]` agents adopt it, and `undecided_delta` adjusts the
    /// undecided pool (agents must balance: the net flow out of the
    /// opinionated groups must equal the net flow into the undecided pool).
    ///
    /// # Panics
    ///
    /// Panics if any group would go negative or the flows do not balance.
    pub fn apply_deltas(&mut self, leavers: &[u64], joiners: &[u64], undecided_delta: i64) {
        assert_eq!(leavers.len(), self.num_opinions());
        assert_eq!(joiners.len(), self.num_opinions());
        let left: u64 = leavers.iter().sum();
        let joined: u64 = joiners.iter().sum();
        assert_eq!(
            joined as i128 + undecided_delta as i128,
            left as i128,
            "population flows must balance: {joined} joined + Δundecided {undecided_delta} ≠ {left} left"
        );
        for (c, &l) in self.counts.iter_mut().zip(leavers) {
            assert!(*c >= l, "more agents leave an opinion than support it");
            *c -= l;
        }
        for (c, &j) in self.counts.iter_mut().zip(joiners) {
            *c += j;
        }
        if undecided_delta >= 0 {
            self.undecided += undecided_delta as u64;
        } else {
            let drop = (-undecided_delta) as u64;
            assert!(self.undecided >= drop, "undecided pool would go negative");
            self.undecided -= drop;
        }
    }

    /// Count-level form of the "adopt one uniformly received opinion" rule
    /// (Stage 1 adoption, voter model): out of `group` agents, how many
    /// receive at least one message this phase, and which opinions do they
    /// draw? Returns `(per-opinion adoption counts, number of silent
    /// agents)`; adoptions + silent = `group`.
    pub fn sample_one_adoptions(&mut self, group: u64) -> (Vec<u64>, u64) {
        sample_one_plan(&self.tally, self.num_opinions(), group, &mut self.rng)
    }

    /// [`sample_one_adoptions`](Self::sample_one_adoptions) with an external
    /// decision RNG.
    pub fn sample_one_adoptions_with<R: Rng + ?Sized>(
        &mut self,
        group: u64,
        rng: &mut R,
    ) -> (Vec<u64>, u64) {
        sample_one_plan(&self.tally, self.num_opinions(), group, rng)
    }
}

/// Computes the sample-majority population update against a finished phase:
/// `(leavers, joiners, undecided_delta)` for
/// [`CountingNetwork::apply_deltas`].
///
/// The plan functions below are crate-visible so the block-counting
/// backend can apply the identical count-level decision rules once per
/// degree class (each class's tally plays the role of the whole-network
/// tally here).
pub(crate) fn sample_majority_plan<R: Rng + ?Sized>(
    counts: &[u64],
    undecided: u64,
    tally: &PhaseTally,
    sample_size: u64,
    rng: &mut R,
) -> (Vec<u64>, Vec<u64>, i64) {
    let p_pass = tally.at_least_probability(sample_size);
    let mut leavers = vec![0u64; counts.len()];
    let mut switchers = 0u64;
    for (leave, &group) in leavers.iter_mut().zip(counts) {
        *leave = binomial(group, p_pass, rng);
        switchers += *leave;
    }
    let undecided_pass = binomial(undecided, p_pass, rng);
    switchers += undecided_pass;
    let joiners = sample_majority_splits(switchers, sample_size, &tally.post_noise, rng);
    (leavers, joiners, -(undecided_pass as i64))
}

/// Computes the "adopt one uniformly received opinion" split for a group of
/// agents against a finished phase.
pub(crate) fn sample_one_plan<R: Rng + ?Sized>(
    tally: &PhaseTally,
    num_opinions: usize,
    group: u64,
    rng: &mut R,
) -> (Vec<u64>, u64) {
    let p_active = tally.activation_probability();
    let active = binomial(group, p_active, rng);
    let weights: Vec<f64> = tally.post_noise.iter().map(|&h| h as f64).collect();
    let split = if active == 0 {
        vec![0; num_opinions]
    } else {
        multinomial(active, &weights, rng)
    };
    (split, group - active)
}

/// Computes the voter-model update (every agent that received at least one
/// message re-adopts a uniform received message, independent of its current
/// state): `(leavers, joiners, undecided_delta)`.
pub(crate) fn uniform_adoption_all_plan<R: Rng + ?Sized>(
    counts: &[u64],
    undecided: u64,
    tally: &PhaseTally,
    rng: &mut R,
) -> (Vec<u64>, Vec<u64>, i64) {
    let p_active = tally.activation_probability();
    let weights: Vec<f64> = tally.post_noise.iter().map(|&h| h as f64).collect();
    let k = counts.len();
    let mut leavers = vec![0u64; k];
    let mut active_total = 0u64;
    for (leave, &group) in leavers.iter_mut().zip(counts) {
        *leave = binomial(group, p_active, rng);
        active_total += *leave;
    }
    let undecided_active = binomial(undecided, p_active, rng);
    active_total += undecided_active;
    let joiners = if active_total == 0 {
        vec![0; k]
    } else {
        multinomial(active_total, &weights, rng)
    };
    (leavers, joiners, -(undecided_active as i64))
}

/// Computes the undecided-state dynamics update (one uniform draw per
/// active agent: agreement keeps the opinion, disagreement resets to
/// undecided, undecided agents adopt): `(leavers, joiners,
/// undecided_delta)`.
pub(crate) fn undecided_state_plan<R: Rng + ?Sized>(
    counts: &[u64],
    undecided: u64,
    tally: &PhaseTally,
    rng: &mut R,
) -> (Vec<u64>, Vec<u64>, i64) {
    let p_active = tally.activation_probability();
    let weights: Vec<f64> = tally.post_noise.iter().map(|&h| h as f64).collect();
    let total_weight: f64 = weights.iter().sum();
    let k = counts.len();
    // Opinionated agents look at one received message: agreement keeps
    // the opinion, disagreement resets to undecided.
    let mut leavers = vec![0u64; k];
    let mut resets = 0u64;
    for (o, (leave, &group)) in leavers.iter_mut().zip(counts).enumerate() {
        let active = binomial(group, p_active, rng);
        if active == 0 {
            continue;
        }
        let p_agree = if total_weight > 0.0 {
            weights[o] / total_weight
        } else {
            0.0
        };
        let disagree = active - binomial(active, p_agree, rng);
        *leave = disagree;
        resets += disagree;
    }
    // Undecided agents adopt one received message.
    let undecided_active = binomial(undecided, p_active, rng);
    let joiners = if undecided_active == 0 {
        vec![0; k]
    } else {
        multinomial(undecided_active, &weights, rng)
    };
    (leavers, joiners, resets as i64 - undecided_active as i64)
}

/// Computes the count-level median-rule update. The two draws are treated
/// as independent categorical draws from the phase mix, ignoring an
/// `O(1/Λ)` correlation through the shared inbox size — the mean-field
/// limit the dynamics literature analyses. Returns `(leavers, joiners,
/// undecided_delta)`.
pub(crate) fn median_plan<R: Rng + ?Sized>(
    counts: &[u64],
    undecided: u64,
    tally: &PhaseTally,
    rng: &mut R,
) -> (Vec<u64>, Vec<u64>, i64) {
    let p_active = tally.activation_probability();
    let weights: Vec<f64> = tally.post_noise.iter().map(|&h| h as f64).collect();
    let total_weight: f64 = weights.iter().sum();
    let k = counts.len();
    // Pair distribution q ⊗ q over the k² (first, second) observations.
    let pair_weights: Vec<f64> = if total_weight > 0.0 {
        (0..k * k)
            .map(|cell| weights[cell / k] * weights[cell % k])
            .collect()
    } else {
        vec![0.0; k * k]
    };
    let mut leavers = vec![0u64; k];
    let mut joiners = vec![0u64; k];
    for (o, (leave, &group)) in leavers.iter_mut().zip(counts).enumerate() {
        let active = binomial(group, p_active, rng);
        if active == 0 {
            continue;
        }
        *leave = active;
        let pairs = multinomial(active, &pair_weights, rng);
        for a in 0..k {
            for b in 0..k {
                let mut triple = [o, a, b];
                triple.sort_unstable();
                joiners[triple[1]] += pairs[a * k + b];
            }
        }
    }
    let undecided_active = binomial(undecided, p_active, rng);
    if undecided_active > 0 {
        let adopted = multinomial(undecided_active, &weights, rng);
        for (j, a) in joiners.iter_mut().zip(adopted) {
            *j += a;
        }
    }
    (leavers, joiners, -(undecided_active as i64))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::DeliverySemantics;

    fn counting_net(n: usize, k: usize, eps: f64, seed: u64) -> CountingNetwork {
        let noise = NoiseMatrix::uniform(k, eps).unwrap();
        let config = SimConfig::builder(n, k)
            .seed(seed)
            .delivery(DeliverySemantics::Poissonized)
            .build()
            .unwrap();
        CountingNetwork::new(config, noise).unwrap()
    }

    #[test]
    fn noise_dimension_must_match() {
        let noise = NoiseMatrix::uniform(4, 0.2).unwrap();
        let config = SimConfig::builder(50, 3).build().unwrap();
        assert_eq!(
            CountingNetwork::new(config, noise).unwrap_err(),
            SimError::NoiseDimensionMismatch {
                expected: 3,
                found: 4
            }
        );
    }

    #[test]
    fn seeding_and_distribution() {
        let mut net = counting_net(100, 3, 0.2, 1);
        net.seed_counts(&[10, 5, 0]).unwrap();
        let dist = net.distribution();
        assert_eq!(dist.counts(), &[10, 5, 0]);
        assert_eq!(dist.undecided(), 85);
        assert!(net.seed_counts(&[200, 0, 0]).is_err());
        assert!(net.seed_counts(&[1, 1]).is_err());
        net.seed_rumor(Opinion::new(2)).unwrap();
        assert_eq!(net.distribution().counts(), &[0, 0, 1]);
        assert!(net.seed_rumor(Opinion::new(9)).is_err());
    }

    #[test]
    fn phase_conserves_pushed_messages_in_the_tally() {
        let mut net = counting_net(1_000, 3, 0.2, 2);
        net.seed_counts(&[500, 300, 100]).unwrap();
        net.begin_phase();
        for _ in 0..4 {
            let report = net.push_round_all_opinionated();
            assert_eq!(report.messages_sent(), 900);
        }
        let tally = net.end_phase().clone();
        // Noise re-colors but conserves: H = messages pushed.
        assert_eq!(tally.total(), 4 * 900);
        assert_eq!(net.messages_sent(), 4 * 900);
        assert_eq!(net.rounds_executed(), 4);
        assert!((tally.mean_inbox() - 3.6).abs() < 1e-12);
    }

    #[test]
    fn same_seed_gives_identical_phases() {
        let run = |seed| {
            let mut net = counting_net(500, 3, 0.25, seed);
            net.seed_counts(&[100, 80, 60]).unwrap();
            net.begin_phase();
            for _ in 0..5 {
                net.push_round_all_opinionated();
            }
            net.end_phase().post_noise().to_vec()
        };
        assert_eq!(run(9), run(9));
        assert_ne!(run(9), run(10));
    }

    #[test]
    fn sample_one_adoptions_conserve_the_group() {
        let mut net = counting_net(1_000, 2, 0.3, 3);
        net.seed_counts(&[400, 200]).unwrap();
        net.begin_phase();
        net.push_round_all_opinionated();
        net.end_phase();
        let (adopted, silent) = net.sample_one_adoptions(400);
        assert_eq!(adopted.iter().sum::<u64>() + silent, 400);
    }

    #[test]
    fn apply_deltas_balances_population() {
        let mut net = counting_net(100, 2, 0.3, 4);
        net.seed_counts(&[40, 20]).unwrap();
        // 10 agents leave opinion 0; 6 join opinion 1, 4 become undecided.
        net.apply_deltas(&[10, 0], &[0, 6], 4);
        assert_eq!(net.counts(), &[30, 26]);
        assert_eq!(net.undecided(), 44);
        let dist = net.distribution();
        assert_eq!(dist.num_nodes(), 100);
    }

    #[test]
    #[should_panic(expected = "must balance")]
    fn unbalanced_deltas_panic() {
        let mut net = counting_net(100, 2, 0.3, 5);
        net.seed_counts(&[40, 20]).unwrap();
        net.apply_deltas(&[10, 0], &[0, 6], 0);
    }

    #[test]
    fn poisson_tail_matches_direct_summation() {
        // λ = 3, m = 2: P(X ≥ 2) = 1 − e⁻³(1 + 3) ≈ 0.800852.
        let p = poisson_tail_ge(3.0, 2);
        assert!((p - 0.800_851_7).abs() < 1e-6, "got {p}");
        assert_eq!(poisson_tail_ge(3.0, 0), 1.0);
        assert_eq!(poisson_tail_ge(0.0, 3), 0.0);
        // Large-λ normal branch agrees with the exact branch near the seam.
        let exact = poisson_tail_ge(599.0, 600);
        let approx = {
            let z = (600.0 - 0.5 - 601.0) / 601.0_f64.sqrt();
            1.0 - super::standard_normal_cdf(z)
        };
        let exact_601 = poisson_tail_ge(601.0, 600);
        assert!((exact_601 - approx).abs() < 5e-3, "{exact_601} vs {approx}");
        assert!(exact > 0.4 && exact < 0.6);
    }

    #[test]
    fn majority_splits_conserve_and_favour_the_majority() {
        let mut rng = StdRng::seed_from_u64(6);
        let weights = [70u64, 30];
        let splits = sample_majority_splits(10_000, 41, &weights, &mut rng);
        assert_eq!(splits.iter().sum::<u64>(), 10_000);
        // With a 70/30 received mix and sample size 41, the majority wins
        // essentially always.
        assert!(splits[0] > 9_900, "splits {splits:?}");
        // Degenerate cases.
        assert_eq!(
            sample_majority_splits(0, 41, &weights, &mut rng),
            vec![0, 0]
        );
        assert_eq!(
            sample_majority_splits(5, 41, &[0, 0], &mut rng),
            vec![0, 0]
        );
    }

    #[test]
    fn majority_splits_bulk_path_stays_close_to_exact() {
        // Push past MAJORITY_EXACT_CAP to exercise the estimated-pmf bulk.
        let mut rng = StdRng::seed_from_u64(7);
        let weights = [55u64, 45];
        let n = 200_000u64;
        let splits = sample_majority_splits(n, 61, &weights, &mut rng);
        assert_eq!(splits.iter().sum::<u64>(), n);
        let frac = splits[0] as f64 / n as f64;
        // Exact adoption probability for maj(Multinomial(61, (0.55, 0.45)))
        // is P(Bin(61, 0.55) ≥ 31) ≈ 0.785.
        assert!((frac - 0.785).abs() < 0.02, "fraction {frac}");
    }
}
