//! # pushsim
//!
//! A synchronous simulator of the **noisy uniform push model** used by
//! Fraigniaud & Natale, *Noisy Rumor Spreading and Plurality Consensus*
//! (PODC 2016).
//!
//! ## The model
//!
//! * `n` anonymous agents form a communication graph — the complete graph
//!   in the paper's model (the default), or any [`TopologySpec`] family
//!   (`ring`, `torus`, `regular(d)`, `er(p)`; see the [`topology`]
//!   module).
//! * Time proceeds in synchronous rounds. In each round, every *opinionated*
//!   agent may **push** its opinion (an integer in `{0, …, k−1}`) to an agent
//!   chosen uniformly at random (a uniformly random *neighbor* on
//!   non-complete topologies); senders and receivers never learn each
//!   other's identity.
//! * Every pushed opinion passes through a noisy channel described by a
//!   row-stochastic [`NoiseMatrix`](noisy_channel::NoiseMatrix): opinion `i`
//!   is received as `j` with probability `p_{i,j}`.
//! * Agents that do not yet support an opinion are **undecided** and may not
//!   push (they are "not actively aware that the system has started").
//! * Several messages may reach the same agent in one round; all are
//!   received (Appendix A of the paper).
//!
//! ## The three delivery semantics
//!
//! The paper's analysis revolves around three progressively simpler message
//! delivery processes (Section 3.2), all of which are implemented here behind
//! [`DeliverySemantics`]:
//!
//! * **Process O** ([`DeliverySemantics::Exact`]) — the real push process:
//!   each message is noised and delivered to a uniformly random agent in the
//!   round it is sent.
//! * **Process B** ([`DeliverySemantics::BallsIntoBins`]) — at the end of
//!   each *phase*, all messages sent during the phase are independently
//!   re-colored by the noise and thrown into agents chosen uniformly at
//!   random, like balls into bins (Definition 3; Claim 1 shows this is
//!   distributionally equivalent to process O at phase granularity).
//! * **Process P** ([`DeliverySemantics::Poissonized`]) — each agent receives
//!   an independent `Poisson(h_i / n)` number of copies of each opinion `i`,
//!   where `h_i` is the number of post-noise messages carrying opinion `i`
//!   in the phase (Definition 4; Lemma 3 transfers w.h.p. events back to
//!   process O).
//!
//! ## The three backends, one trait
//!
//! The simulator ships **three backends** over the same model, all
//! implementing the [`PushBackend`] trait (the shared phase lifecycle plus
//! the paper's decision operators — see the [`backend`] module docs for the
//! contract and the lemmas behind it):
//!
//! * [`Network`] — the **agent-level** backend: every agent is a
//!   [`NodeState`], inboxes are per-agent multisets. Memory and per-phase
//!   cost scale with `n` and the message volume. The only backend that
//!   handles every topology family and every fault.
//! * [`CountingNetwork`] — the **count-based** backend: agents are
//!   anonymous and exchangeable, so the population is represented as a
//!   `k`-vector of per-opinion counts and a phase costs O(k²) random draws
//!   (one multinomial per noise-matrix row) *independent of `n`* — the
//!   same reformulation the paper's own analysis uses (it reasons about
//!   the counts `h_i` of Definition 4, never about individuals).
//!   Complete-graph-only.
//! * [`BlockCountingNetwork`] — the **degree-class block-counting**
//!   backend: the count-based reformulation localized per degree class
//!   ([`DegreeClasses`](topology::DegreeClasses)), extending the O(k²·C)
//!   phase cost to sparse degree-homogeneous topologies (ring, torus,
//!   `regular(d)` — where `C = 1`); `er(p)` is accepted as an explicit,
//!   documented mean-field opt-in. See the [`blockcounting`] module.
//!
//! Which topology families each backend is *certified* for is a static
//! capability ([`TopologyCapability`]: `Complete ⊂ VertexTransitive ⊂
//! Any`) that automatic backend selection consults.
//!
//! Code written against `PushBackend` (the `plurality-core` protocol
//! stages, every `opinion-dynamics` rule, the experiment harness) runs
//! unchanged on any backend; each backend's phase result is exposed
//! through the [`PhaseObservation`] trait ([`Inboxes`] vs [`PhaseTally`]
//! vs [`BlockPhaseTally`]).
//!
//! ### Backend × delivery semantics support matrix
//!
//! | delivery semantics | `Network` (agent-level) | `CountingNetwork` (count-based) | `BlockCountingNetwork` (block-counting) |
//! |---|---|---|---|
//! | **O** `Exact` | exact, per-message delivery in [`push_round`](Network::push_round) | runs as process P (equivalent at phase granularity: Claim 1 + Lemma 3) | runs as per-class process P (same equivalence, per class) |
//! | **B** `BallsIntoBins` | exact; noise applied in O(k²) multinomial draws at [`end_phase`](Network::end_phase), then a uniform scatter; complete graph only | runs as process P (equivalent at phase granularity: Lemma 3) | runs as per-class process P |
//! | **P** `Poissonized` | exact; k aggregate `Poisson(h_i)` draws + uniform scatter (Poisson superposition); complete graph only | **exact** — the native semantics of the backend | **exact** per degree class — the native semantics |
//!
//! ### Backend × topology support matrix
//!
//! | topology | `Network` | `CountingNetwork` | `BlockCountingNetwork` |
//! |---|---|---|---|
//! | `complete` | ✓ (any delivery) | ✓ certified | ✓ certified (`C = 1`) |
//! | `ring`, `torus`, `regular(d)` | ✓ (process O only) | ✗ rejected | ✓ certified (`C = 1`) |
//! | `er(p)` | ✓ (process O only) | ✗ rejected | accepted opt-in (degree-bucketed, mean-field; never auto-selected) |
//!
//! "Exact" means the backend samples the process's distribution exactly
//! (the batched paths are distribution-preserving reformulations, checked
//! empirically in `tests/equivalence.rs`); "equivalent at phase
//! granularity" means the per-phase aggregate law is the process-P one the
//! paper transfers to the other processes w.h.p. Three bounded
//! approximations qualify the counting backend's "exact": the Poisson
//! upper tail switches to a continuity-corrected normal approximation
//! beyond mean 600 (absolute error < 10⁻³; see
//! [`counting::poisson_tail_ge`]), bulk sample-majority adoption beyond
//! 65 536 switchers uses an empirical-frequency split (≈ 0.4%
//! perturbation; see [`counting::sample_majority_splits`]), and rules
//! that resample the *same* inbox more than once with replacement (only
//! the median baseline dynamics does) are mean-field approximated.
//!
//! ## Fault injection
//!
//! Beyond the ε-noisy channel, runs can inject classical faults through a
//! [`FaultSpec`] (`drop`, `dup`, `delay`, `crash`, `byz` — see the
//! [`fault`] module): the agent backend supports everything, the counting
//! backend the aggregatable subset (no `delay`). All fault randomness is
//! drawn from a dedicated seed-derived RNG, so a disabled spec keeps every
//! RNG stream above bit-for-bit identical to the fault-free simulator.
//!
//! ## Temporal dynamics
//!
//! The paper's model is static; the [`temporal`] module makes its three
//! frozen assumptions configurable axes. A [`ChurnSpec`] moves the
//! *population* (fractional joins and departures at every phase boundary,
//! a one-shot departure burst) or the *graph* (`rewire(q)` independently
//! resamples a `regular(d)`/`er(p)` topology between phases); a
//! [`NoiseSchedule`] moves ε over phases (`step`/`burst`/`ramp`); a
//! [`ClockSpec`] desynchronizes the rounds themselves (`drift(ppm)` /
//! `skew(p)` per-agent participation). What each backend supports is a
//! static [`TemporalCapability`] — the agent backend everything, the
//! counting backend the aggregate subset (population churn and schedules;
//! its rounds are synchronous by construction), the block-counting
//! backend nothing — and automatic backend selection consults it. Like
//! faults, all temporal randomness comes from dedicated seed-salted RNGs,
//! so `ChurnSpec::none()` + `NoiseSchedule::Const` + `ClockSpec::Sync`
//! (the defaults) are **bit-for-bit** the static simulator (pinned by
//! `tests/temporal_network.rs`).
//!
//! Protocols built on top of this crate (see the `plurality-core` crate)
//! interact with the network through *phases*: they call
//! [`Network::begin_phase`], then [`Network::push_round`] once per round,
//! and finally [`Network::end_phase`], after which the per-agent received
//! multisets are available in the returned [`Inboxes`]. The counting
//! backend mirrors the shape with
//! [`push_round_batched`](CountingNetwork::push_round_batched) (counts in)
//! and a [`PhaseTally`] (counts out).
//!
//! # Example
//!
//! ```
//! use noisy_channel::NoiseMatrix;
//! use pushsim::{DeliverySemantics, Network, Opinion, SimConfig};
//!
//! # fn main() -> Result<(), pushsim::SimError> {
//! let noise = NoiseMatrix::uniform(3, 0.2).expect("valid noise");
//! let config = SimConfig::builder(100, 3).seed(42).build()?;
//! let mut net = Network::new(config, noise)?;
//! // One source with opinion 1, everybody else undecided.
//! net.set_opinion(0, Some(Opinion::new(1)));
//!
//! net.begin_phase();
//! for _ in 0..20 {
//!     net.push_round(|_, state| state.opinion());
//! }
//! let inboxes = net.end_phase();
//! // The source pushed 20 messages in total.
//! assert_eq!(inboxes.total_messages(), 20);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod backend;
pub mod blockcounting;
mod config;
pub mod counting;
mod distribution;
mod error;
pub mod fault;
mod inbox;
mod network;
mod opinion;
pub mod poisson;
pub mod temporal;
pub mod topology;

pub use backend::{AdoptionScope, PhaseObservation, PushBackend, TopologyCapability};
pub use blockcounting::{BlockCountingNetwork, BlockPhaseTally};
pub use config::{DeliverySemantics, SimConfig, SimConfigBuilder};
pub use counting::{CountingNetwork, PhaseTally};
pub use distribution::OpinionDistribution;
pub use error::SimError;
pub use fault::{ByzantineFault, CrashFault, FaultSpec};
pub use inbox::Inboxes;
pub use network::{Network, RoundReport};
pub use opinion::{NodeState, Opinion};
pub use temporal::{
    BurstChurn, ChurnSpec, ClockSpec, NoiseSchedule, PopulationDelta, TemporalCapability,
};
pub use topology::{Topology, TopologySpec};
