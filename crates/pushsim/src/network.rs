//! The network simulator: agents, rounds and phase-level message delivery.

use crate::config::{DeliverySemantics, SimConfig};
use crate::distribution::OpinionDistribution;
use crate::error::SimError;
use crate::fault::FaultSpec;
use crate::inbox::Inboxes;
use crate::opinion::{NodeState, Opinion};
use crate::poisson;
use crate::temporal::{ChurnSpec, ClockSpec, NoiseSchedule, CHURN_SEED_SALT, CLOCK_SEED_SALT};
use crate::topology::Topology;
use noisy_channel::{sampling, NoiseMatrix};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

/// Salt mixed into the simulation seed for the topology-construction RNG,
/// so building a random graph (`regular(d)`, `er(p)`) never perturbs the
/// delivery RNG stream — complete-graph runs stay bit-for-bit identical to
/// the pre-topology simulator, and the graph is a deterministic function
/// of the seed.
/// Crate-visible so the block-counting backend derives its `er(p)` degree
/// classes from the *same* realization the agent backend would build.
pub(crate) const TOPOLOGY_SEED_SALT: u64 = 0x7090_1091_C5F0_12AD;

/// Salt mixed into the simulation seed for the fault-injection RNG (both
/// backends), so every drop/dup/delay coin and every crash/Byzantine
/// membership draw comes from a stream of its own — a run with faults
/// disabled never touches it and keeps the delivery and decision streams
/// bit-for-bit identical to the fault-free simulator.
pub(crate) const FAULT_SEED_SALT: u64 = 0xFA17_5EED_0B5E_55ED;

/// The materialized fault state of an agent-level network: who is
/// Byzantine, who will crash, the dedicated fault RNG, and the buffer of
/// delayed messages awaiting the next phase. Built only when the config's
/// [`FaultSpec`] enables at least one family.
#[derive(Debug, Clone)]
struct AgentFaults {
    spec: FaultSpec,
    rng: StdRng,
    /// Per-node flag: always pushes the fixed Byzantine opinion, never
    /// adopts.
    byzantine: Vec<bool>,
    /// Per-node flag: falls silent once `phases_completed` passes the
    /// crash phase.
    crashed: Vec<bool>,
    /// How many phases have fully ended; phase `p` is in flight while
    /// this equals `p`.
    phases_completed: u64,
    /// Post-noise counts of messages delayed out of earlier phases,
    /// delivered (uniform scatter) at the next `begin_phase`.
    delayed: Vec<u64>,
}

impl AgentFaults {
    fn new(spec: FaultSpec, seed: u64, num_nodes: usize, num_opinions: usize) -> Self {
        let mut rng = StdRng::seed_from_u64(seed ^ FAULT_SEED_SALT);
        let mut byzantine = vec![false; num_nodes];
        let mut crashed = vec![false; num_nodes];
        let byz_count = spec
            .byzantine
            .map_or(0, |b| membership_count(b.fraction, num_nodes));
        // `check` bounds the un-rounded fractions by 1.0, but the two
        // rounded counts can still overshoot `n` by one between them
        // (e.g. 0.55 and 0.45 at odd n both rounding up) — clamp the
        // crash pool to whatever population remains.
        let crash_count = spec
            .crash
            .map_or(0, |c| membership_count(c.fraction, num_nodes))
            .min(num_nodes - byz_count);
        if byz_count + crash_count > 0 {
            // One shuffle assigns both disjoint pools (`check` guarantees
            // the fractions fit together in the population).
            let mut ids: Vec<usize> = (0..num_nodes).collect();
            ids.shuffle(&mut rng);
            for &node in &ids[..byz_count] {
                byzantine[node] = true;
            }
            for &node in &ids[byz_count..byz_count + crash_count] {
                crashed[node] = true;
            }
        }
        Self {
            spec,
            rng,
            byzantine,
            crashed,
            phases_completed: 0,
            delayed: vec![0; num_opinions],
        }
    }

    /// `true` once the crash phase has fully ended.
    fn crash_active(&self) -> bool {
        self.spec
            .crash
            .is_some_and(|c| self.phases_completed > c.after_phase)
    }

    /// Thins (drop), inflates (dup) and splits off delayed copies from the
    /// post-noise per-opinion counts of a deferred-delivery phase,
    /// returning what is delivered *now*; the delayed share lands in
    /// `self.delayed` for the next phase.
    fn apply_aggregate(&mut self, post_noise: &[u64]) -> Vec<u64> {
        post_noise
            .iter()
            .enumerate()
            .map(|(opinion, &h)| {
                let survivors = h - sampling::binomial(h, self.spec.drop, &mut self.rng);
                let copies =
                    survivors + sampling::binomial(survivors, self.spec.duplicate, &mut self.rng);
                let deferred = sampling::binomial(copies, self.spec.delay, &mut self.rng);
                self.delayed[opinion] += deferred;
                copies - deferred
            })
            .collect()
    }
}

/// Materialized churn state: the spec and its dedicated RNG. Built only
/// when the config's [`ChurnSpec`] enables at least one churn family.
/// Shared across backends — the count-based backends apply the same spec
/// as aggregate count transfers.
#[derive(Debug, Clone)]
pub(crate) struct ChurnState {
    pub(crate) spec: ChurnSpec,
    pub(crate) rng: StdRng,
}

impl ChurnState {
    /// Builds the churn state for an enabled spec; `None` when churn is
    /// disabled (so the churn RNG is never even seeded).
    pub(crate) fn build(spec: ChurnSpec, seed: u64) -> Option<Self> {
        (!spec.is_none()).then(|| Self {
            spec,
            rng: StdRng::seed_from_u64(seed ^ CHURN_SEED_SALT),
        })
    }
}

/// Per-agent activation clocks. Built only when the config's
/// [`ClockSpec`] is not `sync`.
#[derive(Debug, Clone)]
struct AgentClock {
    spec: ClockSpec,
    rng: StdRng,
    /// Per-agent clock rates `c_i` (drift only; empty under skew).
    rates: Vec<f64>,
}

impl AgentClock {
    fn new(spec: ClockSpec, seed: u64, num_nodes: usize) -> Self {
        let mut rng = StdRng::seed_from_u64(seed ^ CLOCK_SEED_SALT);
        let rates = match spec {
            ClockSpec::Drift { ppm } => {
                let d = ppm * 1e-6;
                (0..num_nodes).map(|_| 1.0 + rng.gen_range(-d..d)).collect()
            }
            ClockSpec::Sync | ClockSpec::Skew { .. } => Vec::new(),
        };
        Self { spec, rng, rates }
    }

    /// Draws the clock state of one freshly joined agent.
    fn admit_joiner(&mut self) {
        if let ClockSpec::Drift { ppm } = self.spec {
            let d = ppm * 1e-6;
            self.rates.push(1.0 + self.rng.gen_range(-d..d));
        }
    }

    /// `true` if `node`'s local clock fires on global tick `tick`: under
    /// drift, its local clock `c_i · t` crosses an integer boundary
    /// during the tick; under skew, an independent per-tick coin.
    fn allows(&mut self, node: usize, tick: u64) -> bool {
        match self.spec {
            ClockSpec::Sync => true,
            ClockSpec::Drift { .. } => {
                let c = self.rates[node];
                let t = tick as f64;
                (c * (t + 1.0)).floor() > (c * t).floor()
            }
            ClockSpec::Skew { miss } => !self.rng.gen_bool(miss),
        }
    }
}

/// A non-constant noise schedule plus the configured base matrix it
/// restores on phases with no scheduled ε. Shared across backends.
#[derive(Debug, Clone)]
pub(crate) struct ScheduledNoise {
    schedule: NoiseSchedule,
    base: NoiseMatrix,
}

impl ScheduledNoise {
    /// Validates and materializes a non-constant schedule for a system
    /// with `k` opinions; `Ok(None)` for the constant schedule.
    ///
    /// # Errors
    ///
    /// [`SimError::InvalidTemporal`] if a scheduled ε falls outside the
    /// uniform noise family's k-dependent domain `(0, 1 − 1/k]` —
    /// checked here, once, so phase-boundary swaps can never fail.
    pub(crate) fn build(
        schedule: NoiseSchedule,
        k: usize,
        base: &NoiseMatrix,
    ) -> Result<Option<Self>, SimError> {
        if schedule.is_const() {
            return Ok(None);
        }
        for eps in schedule.scheduled_epsilons() {
            NoiseMatrix::uniform(k, eps).map_err(|_| SimError::InvalidTemporal {
                reason: format!(
                    "scheduled epsilon {eps} is outside the uniform noise family's \
                     domain (0, 1 - 1/k] for k = {k}"
                ),
            })?;
        }
        Ok(Some(Self {
            schedule,
            base: base.clone(),
        }))
    }

    /// The noise matrix phase `phase` runs under: the scheduled uniform
    /// ε-matrix where ε(t) is defined, the configured base otherwise.
    pub(crate) fn matrix_for(&self, phase: u64, k: usize) -> NoiseMatrix {
        match self.schedule.epsilon_at(phase) {
            Some(eps) => NoiseMatrix::uniform(k, eps)
                .expect("scheduled epsilons are validated at construction"),
            None => self.base.clone(),
        }
    }
}

/// The materialized temporal state of an agent-level network. Built only
/// when at least one temporal axis (churn, schedule, clock) is enabled,
/// so temporal-off runs never touch any of its RNG streams and stay
/// bit-for-bit identical to the pre-temporal simulator.
#[derive(Debug, Clone)]
struct AgentTemporal {
    churn: Option<ChurnState>,
    clock: Option<AgentClock>,
    schedule: Option<ScheduledNoise>,
    /// How many phases have fully ended; phase boundary `b` (which
    /// precedes phase `b`) is applied when this equals `b` at
    /// `begin_phase`.
    phases_completed: u64,
}

/// The number of agents a fraction of the population rounds to.
pub(crate) fn membership_count(fraction: f64, num_nodes: usize) -> usize {
    ((fraction * num_nodes as f64).round() as usize).min(num_nodes)
}

/// Statistics of a single executed round.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct RoundReport {
    round: u64,
    messages_sent: u64,
}

impl RoundReport {
    /// Builds a report (shared with the counting backend).
    pub(crate) fn new(round: u64, messages_sent: u64) -> Self {
        Self {
            round,
            messages_sent,
        }
    }

    /// The global index of the round (counting from 0 over the lifetime of
    /// the network).
    pub fn round(&self) -> u64 {
        self.round
    }

    /// How many messages were pushed in this round.
    pub fn messages_sent(&self) -> u64 {
        self.messages_sent
    }
}

/// A complete synchronous network of anonymous agents communicating through
/// the noisy uniform push model.
///
/// The network is driven in **phases**: [`begin_phase`](Network::begin_phase)
/// clears the per-agent inboxes, one or more [`push_round`](Network::push_round)
/// calls let agents push opinions, and [`end_phase`](Network::end_phase)
/// finalizes delivery (a no-op for process O, the balls-into-bins throw for
/// process B, the Poisson draw for process P) and exposes the received
/// multisets.
///
/// See the crate-level documentation for a complete example.
#[derive(Debug, Clone)]
pub struct Network {
    config: SimConfig,
    noise: NoiseMatrix,
    /// The communication graph pushes travel along (built once from
    /// `config.topology()`; the complete graph stores no adjacency).
    topology: Topology,
    states: Vec<NodeState>,
    /// Per-opinion population tallies, kept in sync with `states` by every
    /// mutation path so that [`distribution`](Network::distribution) and
    /// consensus checks are O(k) instead of an O(n) scan.
    opinion_counts: Vec<usize>,
    undecided_count: usize,
    rng: StdRng,
    inboxes: Inboxes,
    /// Pre-noise counts of opinions pushed during the open phase; only used
    /// by the deferred (B and P) delivery semantics.
    pending: Vec<u64>,
    /// Materialized fault state; `None` when the config's [`FaultSpec`] is
    /// all-disabled, in which case no fault code path is ever entered and
    /// no fault RNG is ever seeded.
    faults: Option<AgentFaults>,
    /// Materialized temporal state (churn, clocks, noise schedule);
    /// `None` when every temporal axis is disabled, in which case no
    /// temporal code path is ever entered and no temporal RNG is ever
    /// seeded.
    temporal: Option<AgentTemporal>,
    phase_open: bool,
    rounds_executed: u64,
    messages_sent: u64,
}

impl Network {
    /// Creates a network of undecided agents.
    ///
    /// # Errors
    ///
    /// * [`SimError::NoiseDimensionMismatch`] if the noise matrix is not
    ///   defined over exactly `config.num_opinions()` opinions.
    /// * [`SimError::InvalidTopology`] if the configured topology cannot
    ///   be realized (see [`Topology::build`]).
    /// * [`SimError::UnsupportedTopology`] if a non-complete topology is
    ///   combined with deferred delivery (process B or P): the agent
    ///   backend's deferred path scatters phase messages into *uniform*
    ///   bins, which would silently ignore the graph. Sparse Poissonized
    ///   runs belong to
    ///   [`BlockCountingNetwork`](crate::BlockCountingNetwork).
    pub fn new(config: SimConfig, noise: NoiseMatrix) -> Result<Self, SimError> {
        if noise.num_opinions() != config.num_opinions() {
            return Err(SimError::NoiseDimensionMismatch {
                expected: config.num_opinions(),
                found: noise.num_opinions(),
            });
        }
        if !config.topology().is_complete() && config.delivery() != DeliverySemantics::Exact {
            return Err(SimError::UnsupportedTopology {
                topology: config.topology().label(),
                context: format!(
                    "the agent backend with deferred delivery (process {})",
                    config.delivery().label()
                ),
            });
        }
        let n = config.num_nodes();
        let k = config.num_opinions();
        // A dedicated RNG for graph construction: the delivery stream
        // (seeded below) must match the pre-topology simulator exactly on
        // the complete graph.
        let mut topology_rng = StdRng::seed_from_u64(config.seed() ^ TOPOLOGY_SEED_SALT);
        let topology = Topology::build(config.topology(), n, &mut topology_rng)?;
        let faults = (!config.fault().is_none())
            .then(|| AgentFaults::new(config.fault(), config.seed(), n, k));
        let schedule = ScheduledNoise::build(config.schedule(), k, &noise)?;
        let churn = ChurnState::build(config.churn(), config.seed());
        let clock = (!config.clock().is_sync())
            .then(|| AgentClock::new(config.clock(), config.seed(), n));
        let temporal =
            (churn.is_some() || clock.is_some() || schedule.is_some()).then_some(AgentTemporal {
                churn,
                clock,
                schedule,
                phases_completed: 0,
            });
        Ok(Self {
            topology,
            faults,
            temporal,
            rng: StdRng::seed_from_u64(config.seed()),
            states: vec![NodeState::Undecided; n],
            opinion_counts: vec![0; k],
            undecided_count: n,
            inboxes: Inboxes::new(n, k),
            pending: vec![0; k],
            phase_open: false,
            rounds_executed: 0,
            messages_sent: 0,
            config,
            noise,
        })
    }

    /// The simulation configuration.
    pub fn config(&self) -> &SimConfig {
        &self.config
    }

    /// The number of agents `n` — the **live** population: equal to
    /// `config().num_nodes()` except under population churn, where joins
    /// and departures at phase boundaries move it away from the initial
    /// size (deterministically; see
    /// [`ChurnSpec::population_after`](crate::ChurnSpec::population_after)).
    pub fn num_nodes(&self) -> usize {
        self.states.len()
    }

    /// The number of opinions `k`.
    pub fn num_opinions(&self) -> usize {
        self.config.num_opinions()
    }

    /// The noise matrix acting on every transmitted message.
    pub fn noise(&self) -> &NoiseMatrix {
        &self.noise
    }

    /// The communication graph pushes travel along.
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// The current state of every agent.
    pub fn states(&self) -> &[NodeState] {
        &self.states
    }

    /// The state of one agent.
    ///
    /// # Panics
    ///
    /// Panics if `node ≥ num_nodes()`.
    pub fn state(&self, node: usize) -> NodeState {
        self.states[node]
    }

    /// Sets (or clears, with `None`) the opinion of one agent.
    ///
    /// # Panics
    ///
    /// Panics if `node ≥ num_nodes()` or if the opinion index is out of
    /// range for the configured `k`.
    pub fn set_opinion(&mut self, node: usize, opinion: Option<Opinion>) {
        assert!(
            node < self.num_nodes(),
            "node {node} out of range for a {}-node network",
            self.num_nodes()
        );
        if let Some(o) = opinion {
            assert!(
                o.index() < self.num_opinions(),
                "{o} out of range for a system with {} opinions",
                self.num_opinions()
            );
        }
        match self.states[node] {
            NodeState::Opinionated(old) => self.opinion_counts[old.index()] -= 1,
            NodeState::Undecided => self.undecided_count -= 1,
        }
        match opinion {
            Some(o) => {
                self.opinion_counts[o.index()] += 1;
                self.states[node] = NodeState::Opinionated(o);
            }
            None => {
                self.undecided_count += 1;
                self.states[node] = NodeState::Undecided;
            }
        }
    }

    /// Resets every agent to the undecided state (keeping round and message
    /// counters).
    pub fn clear_opinions(&mut self) {
        self.states.iter_mut().for_each(|s| *s = NodeState::Undecided);
        self.opinion_counts.iter_mut().for_each(|c| *c = 0);
        self.undecided_count = self.num_nodes();
    }

    /// Seeds a rumor-spreading instance: agent `source` adopts `opinion`,
    /// every other agent becomes undecided.
    ///
    /// # Errors
    ///
    /// * [`SimError::NodeOutOfRange`] if `source ≥ num_nodes()`.
    /// * [`SimError::OpinionOutOfRange`] if the opinion index is out of
    ///   range.
    pub fn seed_rumor(&mut self, source: usize, opinion: Opinion) -> Result<(), SimError> {
        if source >= self.num_nodes() {
            return Err(SimError::NodeOutOfRange {
                node: source,
                num_nodes: self.num_nodes(),
            });
        }
        if opinion.index() >= self.num_opinions() {
            return Err(SimError::OpinionOutOfRange {
                opinion: opinion.index(),
                num_opinions: self.num_opinions(),
            });
        }
        self.clear_opinions();
        self.set_opinion(source, Some(opinion));
        Ok(())
    }

    /// Seeds a plurality-consensus instance: for each opinion `i`,
    /// `counts[i]` agents adopt opinion `i`; all remaining agents become
    /// undecided. The opinionated agents are chosen uniformly at random
    /// (without replacement) among all agents.
    ///
    /// # Errors
    ///
    /// * [`SimError::OpinionOutOfRange`] if `counts.len() ≠ num_opinions()`.
    /// * [`SimError::TooManyInitialOpinions`] if the counts sum to more than
    ///   `num_nodes()`.
    pub fn seed_counts(&mut self, counts: &[usize]) -> Result<(), SimError> {
        if counts.len() != self.num_opinions() {
            return Err(SimError::OpinionOutOfRange {
                opinion: counts.len(),
                num_opinions: self.num_opinions(),
            });
        }
        let total: usize = counts.iter().sum();
        if total > self.num_nodes() {
            return Err(SimError::TooManyInitialOpinions {
                requested: total,
                num_nodes: self.num_nodes(),
            });
        }
        self.clear_opinions();
        let mut ids: Vec<usize> = (0..self.num_nodes()).collect();
        ids.shuffle(&mut self.rng);
        let mut cursor = 0;
        for (opinion, &count) in counts.iter().enumerate() {
            for &node in &ids[cursor..cursor + count] {
                self.states[node] = NodeState::Opinionated(Opinion::new(opinion));
            }
            cursor += count;
        }
        self.opinion_counts.copy_from_slice(counts);
        self.undecided_count = self.num_nodes() - total;
        Ok(())
    }

    /// Per-opinion population tallies (maintained incrementally; O(1) to
    /// read, mirroring [`CountingNetwork::counts`](crate::CountingNetwork::counts)).
    pub fn opinion_counts(&self) -> &[usize] {
        &self.opinion_counts
    }

    /// The number of undecided agents.
    pub fn undecided(&self) -> usize {
        self.undecided_count
    }

    /// The current opinion distribution of the network.
    ///
    /// O(k): built from the incrementally maintained tallies, not from a
    /// scan of the agent states.
    pub fn distribution(&self) -> OpinionDistribution {
        OpinionDistribution::from_counts(self.opinion_counts.clone(), self.undecided_count)
            .expect("k >= 2 by construction")
    }

    /// Total number of rounds executed so far.
    pub fn rounds_executed(&self) -> u64 {
        self.rounds_executed
    }

    /// Total number of messages pushed so far.
    pub fn messages_sent(&self) -> u64 {
        self.messages_sent
    }

    /// The received multisets of the current (or most recently finished)
    /// phase.
    pub fn inboxes(&self) -> &Inboxes {
        &self.inboxes
    }

    /// Starts a new phase: applies the pending temporal phase boundary
    /// (population/edge churn, a scheduled noise swap — a no-op when
    /// every temporal axis is off), clears every agent's inbox, then
    /// (under an enabled `delay` fault) scatters the messages delayed out
    /// of the previous phase into the fresh inboxes.
    ///
    /// # Panics
    ///
    /// Panics if a phase is already open.
    pub fn begin_phase(&mut self) {
        assert!(!self.phase_open, "begin_phase called while a phase is open");
        self.apply_phase_boundary();
        self.inboxes.clear();
        self.pending.iter_mut().for_each(|c| *c = 0);
        if let Some(f) = self.faults.as_mut() {
            if f.delayed.iter().any(|&c| c > 0) {
                self.inboxes.scatter_uniform(&f.delayed, &mut f.rng);
                f.delayed.iter_mut().for_each(|c| *c = 0);
            }
        }
        self.phase_open = true;
    }

    /// Applies the temporal phase boundary preceding the phase about to
    /// open: swaps the scheduled noise matrix in (or restores the
    /// configured one), removes leavers, admits joiners, and — with
    /// probability `rewire` — resamples the randomized topology. A no-op
    /// when no temporal axis is enabled; boundary 0 (before the very
    /// first phase) never churns.
    fn apply_phase_boundary(&mut self) {
        let Some(temporal) = self.temporal.as_mut() else {
            return;
        };
        let boundary = temporal.phases_completed;
        let k = self.config.num_opinions();
        if let Some(s) = temporal.schedule.as_ref() {
            self.noise = s.matrix_for(boundary, k);
        }
        let AgentTemporal { churn, clock, .. } = temporal;
        let Some(c) = churn.as_mut() else {
            return;
        };
        if boundary == 0 {
            return;
        }
        if c.spec.has_population_churn() {
            // Magnitudes are deterministic (`population_delta`); only who
            // leaves and what joiners believe comes from the churn RNG.
            let delta = c.spec.population_delta(self.states.len(), boundary);
            for _ in 0..delta.leavers {
                let victim = c.rng.gen_range(0..self.states.len());
                match self.states.swap_remove(victim) {
                    NodeState::Opinionated(o) => self.opinion_counts[o.index()] -= 1,
                    NodeState::Undecided => self.undecided_count -= 1,
                }
                if let Some(cl) = clock.as_mut() {
                    if !cl.rates.is_empty() {
                        cl.rates.swap_remove(victim);
                    }
                }
            }
            for _ in 0..delta.joiners {
                let opinion = match c.spec.join_opinion {
                    Some(o) => o,
                    None => c.rng.gen_range(0..k),
                };
                self.opinion_counts[opinion] += 1;
                self.states.push(NodeState::Opinionated(Opinion::new(opinion)));
                if let Some(cl) = clock.as_mut() {
                    cl.admit_joiner();
                }
            }
            if self.inboxes.num_nodes() != self.states.len() {
                self.inboxes.resize(self.states.len());
                // Population churn is complete-topology-only (config
                // validation), and the complete graph's destination range
                // is its only state — keep it in step with the live n.
                self.topology.resize_complete(self.states.len());
            }
        }
        if c.spec.has_edge_churn() && c.rng.gen_bool(c.spec.rewire) {
            // Wholesale resample of the randomized sparse graph from the
            // churn RNG (config validation guarantees the family is
            // re-sampleable, so this cannot fail).
            self.topology = Topology::build(self.config.topology(), self.states.len(), &mut c.rng)
                .expect("topology parameters validated at construction");
        }
    }

    /// `true` if `node` never adopts an opinion under the configured
    /// faults: it is Byzantine, or it crashed in an already-ended phase.
    /// Always `false` on a fault-free network. Adoption steps
    /// (`resolve_*`) skip frozen agents. (Agents admitted by churn sit
    /// past the end of the membership vectors and are never faulty —
    /// churn composes only with the memoryless drop/dup families.)
    pub fn fault_frozen(&self, node: usize) -> bool {
        match &self.faults {
            Some(f) => {
                f.byzantine.get(node).copied().unwrap_or(false)
                    || (f.crash_active() && f.crashed.get(node).copied().unwrap_or(false))
            }
            None => false,
        }
    }

    /// Executes one synchronous round: every agent is offered the chance to
    /// push one opinion by the `decide` callback (which receives the agent's
    /// index and current state and returns `Some(opinion)` to push or `None`
    /// to stay silent).
    ///
    /// Under process O the messages are noised and delivered immediately —
    /// to a uniformly random node on the complete graph, to a uniformly
    /// random *neighbor* of the sender under any other topology (an agent
    /// with no neighbors, possible under `er(p)`, stays silent). Under
    /// processes B and P (complete graph only) they are accumulated and
    /// delivered at [`end_phase`](Network::end_phase).
    ///
    /// # Panics
    ///
    /// Panics if no phase is open, or if `decide` returns an opinion index
    /// out of range.
    pub fn push_round<F>(&mut self, mut decide: F) -> RoundReport
    where
        F: FnMut(usize, NodeState) -> Option<Opinion>,
    {
        assert!(self.phase_open, "push_round called outside a phase");
        let n = self.num_nodes();
        let k = self.num_opinions();
        let mut sent_this_round = 0u64;
        for node in 0..n {
            // Byzantine agents always push their fixed opinion and crashed
            // agents whose crash phase has ended push nothing; neither
            // consults `decide`.
            let decision = match &self.faults {
                Some(f) if f.byzantine.get(node).copied().unwrap_or(false) => Some(Opinion::new(
                    f.spec.byzantine.expect("byzantine pool implies a spec").opinion,
                )),
                Some(f) if f.crash_active() && f.crashed.get(node).copied().unwrap_or(false) => {
                    None
                }
                _ => decide(node, self.states[node]),
            };
            let Some(opinion) = decision else {
                continue;
            };
            assert!(
                opinion.index() < k,
                "decide returned {opinion} but the system has {k} opinions"
            );
            // Clock gate: an agent whose local clock misses this tick
            // stays silent (the receive path is unaffected).
            if let Some(t) = self.temporal.as_mut() {
                if let Some(cl) = t.clock.as_mut() {
                    if !cl.allows(node, self.rounds_executed) {
                        continue;
                    }
                }
            }
            if !self.topology.can_push(node) {
                continue;
            }
            sent_this_round += 1;
            match self.config.delivery() {
                DeliverySemantics::Exact => match self.faults.as_mut() {
                    None => {
                        let received_as = self.noise.sample(opinion.index(), &mut self.rng);
                        let destination = self.topology.push_destination(node, &mut self.rng);
                        self.inboxes.deliver(destination, received_as);
                    }
                    Some(f) => {
                        // Lost in transit (still counted as sent).
                        if f.spec.drop > 0.0 && f.rng.gen_bool(f.spec.drop) {
                            continue;
                        }
                        let received_as = self.noise.sample(opinion.index(), &mut self.rng);
                        let copies = 1 + u32::from(
                            f.spec.duplicate > 0.0 && f.rng.gen_bool(f.spec.duplicate),
                        );
                        for copy in 0..copies {
                            if f.spec.delay > 0.0 && f.rng.gen_bool(f.spec.delay) {
                                // Deferred to the next phase's inboxes.
                                f.delayed[received_as] += 1;
                            } else if copy == 0 {
                                let destination =
                                    self.topology.push_destination(node, &mut self.rng);
                                self.inboxes.deliver(destination, received_as);
                            } else {
                                // The duplicate lands on an independent
                                // agent drawn from the fault stream.
                                let destination = f.rng.gen_range(0..n);
                                self.inboxes.deliver(destination, received_as);
                            }
                        }
                    }
                },
                DeliverySemantics::BallsIntoBins | DeliverySemantics::Poissonized => {
                    self.pending[opinion.index()] += 1;
                }
            }
        }
        self.messages_sent += sent_this_round;
        self.rounds_executed += 1;
        RoundReport {
            round: self.rounds_executed - 1,
            messages_sent: sent_this_round,
        }
    }

    /// Finishes the open phase, performing any deferred delivery, and
    /// returns the per-agent received multisets.
    ///
    /// # Panics
    ///
    /// Panics if no phase is open.
    pub fn end_phase(&mut self) -> &Inboxes {
        assert!(self.phase_open, "end_phase called without an open phase");
        match self.config.delivery() {
            DeliverySemantics::Exact => {}
            DeliverySemantics::BallsIntoBins => self.deliver_balls_into_bins(),
            DeliverySemantics::Poissonized => self.deliver_poissonized(),
        }
        if let Some(f) = self.faults.as_mut() {
            f.phases_completed += 1;
        }
        if let Some(t) = self.temporal.as_mut() {
            t.phases_completed += 1;
        }
        self.phase_open = false;
        &self.inboxes
    }

    /// Process B (Definition 3): re-color every pending message through the
    /// noise matrix, then throw each into a uniformly random bin.
    ///
    /// Batched: the noise is applied with O(k²) multinomial draws
    /// ([`NoiseMatrix::recolor_counts`]) instead of one channel sample per
    /// message — messages within a phase are exchangeable, which is exactly
    /// why the paper's phase-level analysis (Claim 1) can work on counts.
    /// The bin throw is then a bare uniform scatter of the already-colored
    /// balls, distributionally identical to the per-message formulation
    /// because balls are exchangeable and destinations are independent of
    /// colors.
    fn deliver_balls_into_bins(&mut self) {
        let mut post_noise = self.noise.recolor_counts(&self.pending, &mut self.rng);
        if let Some(f) = self.faults.as_mut() {
            post_noise = f.apply_aggregate(&post_noise);
        }
        self.inboxes.scatter_uniform(&post_noise, &mut self.rng);
    }

    /// Process P (Definition 4): re-color every pending message through the
    /// noise to obtain the post-noise totals `h_i`, then hand every agent an
    /// independent `Poisson(h_i / n)` number of copies of each opinion.
    ///
    /// Batched in both steps: the noise is O(k²) multinomial draws, and the
    /// n·k independent `Poisson(h_i / n)` draws are replaced by k aggregate
    /// `Poisson(h_i)` draws followed by a uniform scatter — exact by Poisson
    /// superposition (the sum of n iid `Poisson(h/n)` variables is
    /// `Poisson(h)`, and conditioned on the sum the placement is uniform
    /// multinomial over the n agents).
    fn deliver_poissonized(&mut self) {
        let mut post_noise = self.noise.recolor_counts(&self.pending, &mut self.rng);
        if let Some(f) = self.faults.as_mut() {
            // Messages are thinned/duplicated/delayed before the delivery
            // counts are Poissonized (binomial thinning of a Poisson draw
            // commutes, so the order does not change the law).
            post_noise = f.apply_aggregate(&post_noise);
        }
        let totals: Vec<u64> = post_noise
            .iter()
            .map(|&h| poisson::sample(h as f64, &mut self.rng))
            .collect();
        self.inboxes.scatter_uniform(&totals, &mut self.rng);
    }

    /// A mutable reference to the network's random-number generator, for
    /// protocols that want a single source of randomness for both the
    /// network and their own decisions (e.g. to make whole runs reproducible
    /// from one seed).
    pub fn rng_mut(&mut self) -> &mut StdRng {
        &mut self.rng
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_net(delivery: DeliverySemantics, seed: u64) -> Network {
        let noise = NoiseMatrix::uniform(3, 0.2).unwrap();
        let config = SimConfig::builder(50, 3)
            .seed(seed)
            .delivery(delivery)
            .build()
            .unwrap();
        Network::new(config, noise).unwrap()
    }

    #[test]
    fn noise_dimension_must_match() {
        let noise = NoiseMatrix::uniform(4, 0.2).unwrap();
        let config = SimConfig::builder(50, 3).build().unwrap();
        assert_eq!(
            Network::new(config, noise).unwrap_err(),
            SimError::NoiseDimensionMismatch {
                expected: 3,
                found: 4
            }
        );
    }

    #[test]
    fn seeding_a_rumor_sets_exactly_one_opinionated_node() {
        let mut net = small_net(DeliverySemantics::Exact, 1);
        net.seed_rumor(7, Opinion::new(2)).unwrap();
        let dist = net.distribution();
        assert_eq!(dist.opinionated(), 1);
        assert_eq!(dist.count(Opinion::new(2)), 1);
        assert_eq!(dist.undecided(), 49);
        assert!(net.seed_rumor(100, Opinion::new(0)).is_err());
        assert!(net.seed_rumor(0, Opinion::new(9)).is_err());
    }

    #[test]
    fn seeding_counts_assigns_requested_numbers() {
        let mut net = small_net(DeliverySemantics::Exact, 2);
        net.seed_counts(&[10, 5, 0]).unwrap();
        let dist = net.distribution();
        assert_eq!(dist.counts(), &[10, 5, 0]);
        assert_eq!(dist.undecided(), 35);
        assert!(net.seed_counts(&[60, 0, 0]).is_err());
        assert!(net.seed_counts(&[1, 1]).is_err());
    }

    #[test]
    fn exact_delivery_conserves_messages() {
        let mut net = small_net(DeliverySemantics::Exact, 3);
        net.seed_counts(&[20, 10, 5]).unwrap();
        net.begin_phase();
        for _ in 0..4 {
            let report = net.push_round(|_, s| s.opinion());
            assert_eq!(report.messages_sent(), 35);
        }
        let inboxes = net.end_phase();
        assert_eq!(inboxes.total_messages(), 4 * 35);
        assert_eq!(net.messages_sent(), 4 * 35);
        assert_eq!(net.rounds_executed(), 4);
    }

    #[test]
    fn balls_into_bins_delivery_conserves_messages() {
        let mut net = small_net(DeliverySemantics::BallsIntoBins, 4);
        net.seed_counts(&[20, 10, 5]).unwrap();
        net.begin_phase();
        for _ in 0..4 {
            net.push_round(|_, s| s.opinion());
        }
        // Nothing delivered until the phase ends.
        assert_eq!(net.inboxes().total_messages(), 0);
        let inboxes = net.end_phase();
        assert_eq!(inboxes.total_messages(), 4 * 35);
    }

    #[test]
    fn poissonized_delivery_matches_expected_volume() {
        // With n nodes and h messages, the expected total delivered is h.
        let noise = NoiseMatrix::uniform(2, 0.2).unwrap();
        let config = SimConfig::builder(500, 2)
            .seed(5)
            .delivery(DeliverySemantics::Poissonized)
            .build()
            .unwrap();
        let mut net = Network::new(config, noise).unwrap();
        net.seed_counts(&[250, 250]).unwrap();
        let mut total = 0u64;
        let phases = 20;
        for _ in 0..phases {
            net.begin_phase();
            net.push_round(|_, s| s.opinion());
            total += net.end_phase().total_messages();
        }
        let expected = (500 * phases) as f64;
        let observed = total as f64;
        assert!(
            (observed - expected).abs() / expected < 0.05,
            "observed {observed}, expected {expected}"
        );
    }

    #[test]
    fn same_seed_gives_identical_runs() {
        let run = |seed| {
            let mut net = small_net(DeliverySemantics::Exact, seed);
            net.seed_counts(&[20, 10, 5]).unwrap();
            net.begin_phase();
            for _ in 0..5 {
                net.push_round(|_, s| s.opinion());
            }
            net.end_phase();
            (0..net.num_nodes())
                .map(|u| net.inboxes().received(u).to_vec())
                .collect::<Vec<_>>()
        };
        assert_eq!(run(77), run(77));
        assert_ne!(run(77), run(78));
    }

    #[test]
    fn undecided_nodes_can_stay_silent() {
        let mut net = small_net(DeliverySemantics::Exact, 6);
        net.seed_counts(&[3, 0, 0]).unwrap();
        net.begin_phase();
        let report = net.push_round(|_, s| s.opinion());
        assert_eq!(report.messages_sent(), 3);
        net.end_phase();
    }

    #[test]
    fn noiseless_channel_preserves_opinions_in_flight() {
        let noise = NoiseMatrix::identity(2).unwrap();
        let config = SimConfig::builder(20, 2).seed(9).build().unwrap();
        let mut net = Network::new(config, noise).unwrap();
        net.seed_counts(&[5, 0]).unwrap();
        net.begin_phase();
        for _ in 0..10 {
            net.push_round(|_, s| s.opinion());
        }
        let inboxes = net.end_phase();
        let totals = inboxes.totals_per_opinion();
        assert_eq!(totals[0], 50);
        assert_eq!(totals[1], 0);
    }

    #[test]
    #[should_panic(expected = "outside a phase")]
    fn push_round_requires_open_phase() {
        let mut net = small_net(DeliverySemantics::Exact, 10);
        net.push_round(|_, s| s.opinion());
    }

    #[test]
    #[should_panic(expected = "without an open phase")]
    fn end_phase_requires_open_phase() {
        let mut net = small_net(DeliverySemantics::Exact, 10);
        net.end_phase();
    }

    #[test]
    fn cached_tallies_stay_in_sync_with_states() {
        let mut net = small_net(DeliverySemantics::Exact, 12);
        let check = |net: &Network| {
            assert_eq!(
                net.distribution(),
                OpinionDistribution::from_states(net.states(), net.num_opinions()),
            );
        };
        check(&net);
        net.seed_counts(&[10, 5, 3]).unwrap();
        check(&net);
        net.set_opinion(0, Some(Opinion::new(2)));
        net.set_opinion(1, None);
        net.set_opinion(1, Some(Opinion::new(0)));
        check(&net);
        net.seed_rumor(7, Opinion::new(1)).unwrap();
        check(&net);
        assert_eq!(net.undecided(), 49);
        assert_eq!(net.opinion_counts(), &[0, 1, 0]);
        net.clear_opinions();
        check(&net);
        assert_eq!(net.undecided(), net.num_nodes());
    }

    #[test]
    fn clear_opinions_resets_states_only() {
        let mut net = small_net(DeliverySemantics::Exact, 11);
        net.seed_counts(&[10, 0, 0]).unwrap();
        net.begin_phase();
        net.push_round(|_, s| s.opinion());
        net.end_phase();
        let rounds = net.rounds_executed();
        net.clear_opinions();
        assert_eq!(net.distribution().opinionated(), 0);
        assert_eq!(net.rounds_executed(), rounds);
    }
}
