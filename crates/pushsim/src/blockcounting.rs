//! The degree-class block-counting backend: count-level process P on
//! sparse topologies in O(k²·C) per phase.
//!
//! [`CountingNetwork`](crate::CountingNetwork) collapses the population to
//! one opinion-count vector, which is exact *only* on the complete graph:
//! there every agent is exchangeable with every other. On a sparse graph
//! that global symmetry is gone — but on a **degree-homogeneous** family
//! (ring, torus, `regular(d)`; [`TopologySpec::is_vertex_transitive`])
//! agents within a *degree class* are still exchangeable at the population
//! level: a uniform-neighbor push from a class-`c` node lands in class
//! `c'` with probability `E[c][c'] / (n_c · d_c)`, a function of the
//! class-to-class directed edge counts alone (see [`DegreeClasses`]).
//!
//! [`BlockCountingNetwork`] exploits that: state is a `C×k` matrix of
//! (degree class, opinion) counts plus a per-class undecided count, a push
//! round draws one destination-class multinomial per non-empty block, and
//! [`end_phase`](BlockCountingNetwork::end_phase) applies the noise as one
//! multinomial per (class, opinion) row — **O(k²·C) random draws per
//! phase** regardless of `n`, so `topo`-style experiments reach `n = 10⁷`
//! at complete-graph-counting speed. For the families the backend is
//! certified for, `C = 1` and a phase costs exactly what
//! `CountingNetwork` pays.
//!
//! ## Semantics
//!
//! Like `CountingNetwork`, the backend always runs the **Poissonized**
//! process P at phase granularity (the paper's Claim 1 + Lemma 3 transfer
//! w.h.p. phase behaviour between processes), localized per class: during
//! a phase each class-`c` agent's inbox is an independent Poisson vector
//! with means `h_j^{(c)} / n_c`, where `h^{(c)}` is the class's post-noise
//! tally. All decision operators are the count-level rules of
//! [`counting`](crate::counting), applied once per class against that
//! class's own tally.
//!
//! ## Certified vs accepted topologies
//!
//! The backend's certified set is
//! [`TopologyCapability::VertexTransitive`](crate::TopologyCapability):
//! on degree-homogeneous families the within-class aggregation matches the
//! agent-level model's population law (checked empirically by
//! `pushsim/tests/blockcounting_equivalence.rs`). The constructor
//! additionally *accepts* `er(p)` as an explicit opt-in, bucketing the
//! exact realization the agent backend would build (same seed, same graph)
//! by exact degree. That treats same-degree nodes as exchangeable even
//! though their neighborhoods differ — an annealed / mean-field
//! approximation of the quenched graph, standard in the dynamics
//! literature but *not* certified, so automatic backend selection never
//! routes `er(p)` here.
//!
//! Faults are rejected wholesale ([`SimError::UnsupportedFault`]): the
//! aggregatable fault reformulation of the counting backend is
//! complete-graph-only (crash/Byzantine pools are carved from the global
//! population), and `SimConfig` independently rejects faults on sparse
//! topologies.
//!
//! Temporal axes follow the counting backend's
//! [`TemporalCapability::AGGREGATE`](crate::TemporalCapability::AGGREGATE)
//! contract: population churn and noise schedules are supported as
//! aggregate phase-boundary operations (churn is complete-topology-only by
//! `SimConfig` validation, hence single-class here), while edge churn
//! (`rewire`) and non-`sync` clocks are rejected at construction
//! ([`SimError::UnsupportedTemporal`]).

use crate::config::SimConfig;
use crate::counting::{
    median_plan, proportional_split, sample_majority_plan, sample_one_plan, undecided_state_plan,
    uniform_adoption_all_plan, PhaseTally,
};
use crate::distribution::OpinionDistribution;
use crate::error::SimError;
use crate::network::{ChurnState, RoundReport, ScheduledNoise, TOPOLOGY_SEED_SALT};
use crate::opinion::Opinion;
use crate::topology::{DegreeClasses, TopologySpec};
use noisy_channel::sampling::multinomial;
use noisy_channel::NoiseMatrix;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Aggregate result of one finished phase of a [`BlockCountingNetwork`]:
/// one per-class [`PhaseTally`] (the class's post-noise totals
/// `h_j^{(c)}`, over its population `n_c`).
///
/// Whole-network statistics are the Poisson **mixture** moments: with
/// class weights `w_c = n_c / n` and per-class means `Λ_c`, the mean inbox
/// is `Σ w_c Λ_c`, the variance `Σ w_c (Λ_c + Λ_c²) − mean²` (law of total
/// variance over the class mixture), and the fraction of agents with at
/// least one message `Σ w_c (1 − e^{−Λ_c})`.
#[derive(Debug, Clone, PartialEq)]
pub struct BlockPhaseTally {
    classes: Vec<PhaseTally>,
    num_nodes: usize,
}

impl BlockPhaseTally {
    fn empty(classes: &DegreeClasses, num_opinions: usize) -> Self {
        Self {
            classes: (0..classes.num_classes())
                .map(|c| PhaseTally::new(vec![0; num_opinions], classes.size(c) as usize))
                .collect(),
            num_nodes: classes.num_nodes(),
        }
    }

    /// The number of degree classes `C`.
    pub fn num_classes(&self) -> usize {
        self.classes.len()
    }

    /// The tally of class `class` (its `num_nodes` is the class population
    /// `n_c`).
    pub fn class_tally(&self, class: usize) -> &PhaseTally {
        &self.classes[class]
    }

    /// Per-opinion totals summed over all classes.
    pub fn received_totals(&self) -> Vec<u64> {
        let k = self.classes[0].post_noise().len();
        let mut totals = vec![0u64; k];
        for tally in &self.classes {
            for (t, &h) in totals.iter_mut().zip(tally.post_noise()) {
                *t += h;
            }
        }
        totals
    }

    /// `H = Σ_c Σ_j h_j^{(c)}`.
    pub fn total(&self) -> u64 {
        self.classes.iter().map(PhaseTally::total).sum()
    }

    /// The whole-network mean inbox `Σ w_c Λ_c = H / n`.
    pub fn mean_inbox(&self) -> f64 {
        self.total() as f64 / self.num_nodes as f64
    }

    /// The whole-network inbox variance of the Poisson mixture:
    /// `Σ w_c (Λ_c + Λ_c²) − mean²`.
    pub fn received_variance(&self) -> f64 {
        let n = self.num_nodes as f64;
        let mean = self.mean_inbox();
        let second_moment: f64 = self
            .classes
            .iter()
            .map(|t| {
                let lambda = t.mean_inbox();
                (t.num_nodes() as f64 / n) * (lambda + lambda * lambda)
            })
            .sum();
        (second_moment - mean * mean).max(0.0)
    }

    /// The fraction of agents with at least one message:
    /// `Σ w_c (1 − e^{−Λ_c})`.
    pub fn fraction_with_messages(&self) -> f64 {
        let n = self.num_nodes as f64;
        self.classes
            .iter()
            .map(|t| (t.num_nodes() as f64 / n) * t.activation_probability())
            .sum()
    }

    /// A Chernoff-style w.h.p. ceiling on the largest single inbox: the
    /// per-class ceiling `Λ_c + √(2 Λ_c ln n) + ln n` (with the global `n`
    /// for the union bound over all agents), maximized over classes.
    pub fn typical_max_inbox(&self) -> u64 {
        let ln_n = (self.num_nodes.max(2) as f64).ln();
        self.classes
            .iter()
            .map(|t| {
                let lambda = t.mean_inbox();
                (lambda + (2.0 * lambda * ln_n).sqrt() + ln_n).ceil() as u64
            })
            .max()
            .unwrap_or(0)
    }
}

/// The materialized temporal state of a block-counting network: the same
/// supported subset as the counting backend (population churn + noise
/// schedules; edge churn and clock skew are rejected at construction).
/// Population churn is pinned by `SimConfig` validation to the complete
/// topology, where `C = 1`, so churn always acts on the single class.
#[derive(Debug, Clone)]
struct BlockTemporal {
    churn: Option<ChurnState>,
    schedule: Option<ScheduledNoise>,
    /// How many phases have fully ended; boundary `b` (preceding phase
    /// `b`) is applied when this equals `b` at `begin_phase`.
    phases_completed: u64,
}

/// A synchronous network over a sparse topology, represented purely by
/// per-(degree class, opinion) population counts — the block-aggregated
/// counterpart of [`CountingNetwork`](crate::CountingNetwork), with the
/// same phase lifecycle and the same count-level decision operators
/// applied per class.
///
/// See the [module documentation](self) for semantics and the certified
/// vs accepted topology boundary.
#[derive(Debug, Clone)]
pub struct BlockCountingNetwork {
    config: SimConfig,
    noise: NoiseMatrix,
    classes: DegreeClasses,
    /// `C×k` row-major live opinion counts per class.
    counts: Vec<u64>,
    /// Per-class undecided counts.
    undecided: Vec<u64>,
    /// `C×C` row-major cached destination-class probabilities.
    dest_probs: Vec<f64>,
    rng: StdRng,
    /// `C×k` row-major pre-noise pending counts, bucketed by
    /// **destination** class.
    pending: Vec<u64>,
    /// Materialized temporal state; `None` when every temporal axis is
    /// disabled, in which case no temporal code path is ever entered.
    temporal: Option<BlockTemporal>,
    /// The live population: `config.num_nodes()` except under population
    /// churn, which moves it deterministically at phase boundaries.
    population: usize,
    tally: BlockPhaseTally,
    phase_open: bool,
    rounds_executed: u64,
    messages_sent: u64,
}

impl BlockCountingNetwork {
    /// Creates a network of undecided agents over the configured topology.
    ///
    /// Deterministic degree-homogeneous families never materialize the
    /// graph (their [`DegreeClasses`] are analytic), so construction is
    /// O(k·C) even at `n = 10⁷`; `er(p)` builds the same realization the
    /// agent backend would (same seed-salted topology RNG) and buckets it
    /// by exact degree.
    ///
    /// # Errors
    ///
    /// * [`SimError::NoiseDimensionMismatch`] if the noise matrix is not
    ///   defined over exactly `config.num_opinions()` opinions.
    /// * [`SimError::UnsupportedFault`] if the configuration enables *any*
    ///   fault family: the aggregatable fault pools of the counting
    ///   backend are global-population constructs that do not localize to
    ///   degree classes.
    /// * [`SimError::UnsupportedTemporal`] if the configuration enables a
    ///   temporal axis outside
    ///   [`TemporalCapability::AGGREGATE`](crate::TemporalCapability::AGGREGATE):
    ///   edge churn (`rewire`)
    ///   and non-`sync` clocks need per-agent identity. Population churn
    ///   and noise schedules are supported as aggregate operations.
    /// * [`SimError::InvalidTemporal`] if a scheduled ε falls outside the
    ///   uniform noise family's domain for the configured `k`.
    /// * [`SimError::InvalidTopology`] if the topology parameters are
    ///   infeasible (propagated from [`DegreeClasses::build`]).
    pub fn new(config: SimConfig, noise: NoiseMatrix) -> Result<Self, SimError> {
        if noise.num_opinions() != config.num_opinions() {
            return Err(SimError::NoiseDimensionMismatch {
                expected: config.num_opinions(),
                found: noise.num_opinions(),
            });
        }
        if !config.fault().is_none() {
            return Err(SimError::UnsupportedFault {
                fault: config.fault().label(),
                context: "the block-counting backend".to_string(),
            });
        }
        if let Some(feature) = <Self as crate::PushBackend>::TEMPORAL_CAPABILITY.first_unsupported(
            &config.churn(),
            &config.schedule(),
            &config.clock(),
        ) {
            return Err(SimError::UnsupportedTemporal {
                feature: feature.to_string(),
                context: "the block-counting backend".to_string(),
            });
        }
        let mut topology_rng = StdRng::seed_from_u64(config.seed() ^ TOPOLOGY_SEED_SALT);
        let classes = DegreeClasses::build(config.topology(), config.num_nodes(), &mut topology_rng)?;
        let c = classes.num_classes();
        let k = config.num_opinions();
        let dest_probs: Vec<f64> = (0..c)
            .flat_map(|from| classes.destination_probabilities(from))
            .collect();
        let undecided: Vec<u64> = (0..c).map(|cls| classes.size(cls)).collect();
        let tally = BlockPhaseTally::empty(&classes, k);
        let schedule = ScheduledNoise::build(config.schedule(), k, &noise)?;
        let churn = ChurnState::build(config.churn(), config.seed());
        let temporal = (churn.is_some() || schedule.is_some()).then_some(BlockTemporal {
            churn,
            schedule,
            phases_completed: 0,
        });
        Ok(Self {
            rng: StdRng::seed_from_u64(config.seed()),
            counts: vec![0; c * k],
            undecided,
            dest_probs,
            pending: vec![0; c * k],
            temporal,
            population: config.num_nodes(),
            tally,
            phase_open: false,
            rounds_executed: 0,
            messages_sent: 0,
            classes,
            config,
            noise,
        })
    }

    /// The simulation configuration.
    pub fn config(&self) -> &SimConfig {
        &self.config
    }

    /// The number of agents `n` — the **live** population: equal to
    /// `config().num_nodes()` except under population churn, where joins
    /// and departures at phase boundaries move it away from the initial
    /// size (deterministically; see
    /// [`ChurnSpec::population_after`](crate::ChurnSpec::population_after)).
    pub fn num_nodes(&self) -> usize {
        self.population
    }

    /// The number of opinions `k`.
    pub fn num_opinions(&self) -> usize {
        self.config.num_opinions()
    }

    /// The noise matrix acting on every transmitted message.
    pub fn noise(&self) -> &NoiseMatrix {
        &self.noise
    }

    /// The degree-class decomposition the backend aggregates over.
    pub fn degree_classes(&self) -> &DegreeClasses {
        &self.classes
    }

    /// The number of degree classes `C` (1 for every certified family).
    pub fn num_classes(&self) -> usize {
        self.classes.num_classes()
    }

    /// The per-opinion counts of class `class`.
    pub fn class_counts(&self, class: usize) -> &[u64] {
        let k = self.num_opinions();
        &self.counts[class * k..(class + 1) * k]
    }

    /// The undecided count of class `class`.
    pub fn class_undecided(&self, class: usize) -> u64 {
        self.undecided[class]
    }

    /// Per-opinion population counts summed over all classes.
    pub fn opinion_counts(&self) -> Vec<u64> {
        let k = self.num_opinions();
        let mut totals = vec![0u64; k];
        for row in self.counts.chunks_exact(k) {
            for (t, &c) in totals.iter_mut().zip(row) {
                *t += c;
            }
        }
        totals
    }

    /// The total number of undecided agents.
    pub fn undecided(&self) -> u64 {
        self.undecided.iter().sum()
    }

    /// The current opinion distribution of the whole population.
    pub fn distribution(&self) -> OpinionDistribution {
        let counts: Vec<usize> = self.opinion_counts().iter().map(|&c| c as usize).collect();
        OpinionDistribution::from_counts(counts, self.undecided() as usize)
            .expect("k >= 2 by construction")
    }

    /// Total number of rounds executed so far.
    pub fn rounds_executed(&self) -> u64 {
        self.rounds_executed
    }

    /// Total number of messages pushed so far.
    pub fn messages_sent(&self) -> u64 {
        self.messages_sent
    }

    /// The tally of the most recently finished phase.
    pub fn tally(&self) -> &BlockPhaseTally {
        &self.tally
    }

    /// A mutable reference to the backend's RNG (for callers that want a
    /// single reproducible randomness source).
    pub fn rng_mut(&mut self) -> &mut StdRng {
        &mut self.rng
    }

    /// Resets every agent to undecided (keeping round/message counters and
    /// the live per-class populations — under population churn a class may
    /// hold more or fewer agents than its initial size).
    pub fn clear_opinions(&mut self) {
        let k = self.num_opinions();
        let live: Vec<u64> = self
            .counts
            .chunks_exact(k)
            .zip(&self.undecided)
            .map(|(row, &u)| row.iter().sum::<u64>() + u)
            .collect();
        self.counts.iter_mut().for_each(|c| *c = 0);
        self.undecided = live;
    }

    /// Seeds a plurality-consensus instance: `counts[i]` agents adopt
    /// opinion `i`, the rest become undecided. Each opinion's count is
    /// spread over the degree classes by deterministic largest-remainder
    /// proportional allocation over the remaining class capacities — the
    /// count-level stand-in for the agent backend's random placement
    /// (placement within a class is irrelevant by exchangeability; only
    /// the per-class composition matters, and it is pinned to its
    /// expectation). With `C = 1` this is exactly
    /// [`CountingNetwork::seed_counts`](crate::CountingNetwork::seed_counts).
    ///
    /// # Errors
    ///
    /// * [`SimError::OpinionOutOfRange`] if `counts.len() ≠ num_opinions()`.
    /// * [`SimError::TooManyInitialOpinions`] if the counts sum to more
    ///   than `num_nodes()`.
    pub fn seed_counts(&mut self, counts: &[usize]) -> Result<(), SimError> {
        if counts.len() != self.num_opinions() {
            return Err(SimError::OpinionOutOfRange {
                opinion: counts.len(),
                num_opinions: self.num_opinions(),
            });
        }
        let total: usize = counts.iter().sum();
        if total > self.num_nodes() {
            return Err(SimError::TooManyInitialOpinions {
                requested: total,
                num_nodes: self.num_nodes(),
            });
        }
        let k = self.num_opinions();
        // Live per-class capacities (equal to the initial class sizes
        // except under population churn).
        let mut free: Vec<u64> = self
            .counts
            .chunks_exact(k)
            .zip(&self.undecided)
            .map(|(row, &u)| row.iter().sum::<u64>() + u)
            .collect();
        self.counts.iter_mut().for_each(|slot| *slot = 0);
        for (o, &count) in counts.iter().enumerate() {
            let shares = proportional_split(&free, count as u64);
            for (cls, &share) in shares.iter().enumerate() {
                self.counts[cls * k + o] += share;
                free[cls] -= share;
            }
        }
        self.undecided = free;
        Ok(())
    }

    /// Seeds a rumor-spreading instance: the agent at `source` adopts
    /// `opinion` (placing the rumor in `source`'s degree class), every
    /// other agent becomes undecided.
    ///
    /// # Errors
    ///
    /// [`SimError::NodeOutOfRange`] / [`SimError::OpinionOutOfRange`] if an
    /// index is out of range.
    pub fn seed_rumor_at(&mut self, source: usize, opinion: Opinion) -> Result<(), SimError> {
        if source >= self.num_nodes() {
            return Err(SimError::NodeOutOfRange {
                node: source,
                num_nodes: self.num_nodes(),
            });
        }
        if opinion.index() >= self.num_opinions() {
            return Err(SimError::OpinionOutOfRange {
                opinion: opinion.index(),
                num_opinions: self.num_opinions(),
            });
        }
        self.clear_opinions();
        let k = self.num_opinions();
        let cls = self.classes.class_of(source);
        self.counts[cls * k + opinion.index()] = 1;
        self.undecided[cls] -= 1;
        Ok(())
    }

    /// Starts a new phase.
    ///
    /// # Panics
    ///
    /// Panics if a phase is already open.
    pub fn begin_phase(&mut self) {
        assert!(!self.phase_open, "begin_phase called while a phase is open");
        self.apply_phase_boundary();
        self.pending.iter_mut().for_each(|c| *c = 0);
        self.phase_open = true;
    }

    /// Applies the temporal phase boundary preceding the phase about to
    /// open — the block-level mirror of the counting backend's boundary:
    /// the scheduled-noise swap plus aggregate population churn. Because
    /// `SimConfig` validation pins population churn to the complete
    /// topology, churn always acts on a single degree class (`C = 1`).
    fn apply_phase_boundary(&mut self) {
        let Some(temporal) = self.temporal.as_mut() else {
            return;
        };
        let boundary = temporal.phases_completed;
        if let Some(s) = temporal.schedule.as_ref() {
            self.noise = s.matrix_for(boundary, self.config.num_opinions());
        }
        let Some(c) = temporal.churn.as_mut() else {
            return;
        };
        if boundary == 0 {
            return;
        }
        debug_assert_eq!(
            self.classes.num_classes(),
            1,
            "population churn is complete-topology-only, hence single-class"
        );
        let delta = c.spec.population_delta(self.population, boundary);
        if delta.leavers > 0 {
            let mut groups: Vec<u64> = self.counts.clone();
            groups.push(self.undecided[0]);
            let shares = proportional_split(&groups, delta.leavers as u64);
            for (live, &share) in self.counts.iter_mut().zip(&shares) {
                *live -= share;
            }
            self.undecided[0] -= shares[shares.len() - 1];
        }
        if delta.joiners > 0 {
            match c.spec.join_opinion {
                Some(opinion) => self.counts[opinion] += delta.joiners as u64,
                None => {
                    let weights = vec![1.0; self.counts.len()];
                    let split = multinomial(delta.joiners as u64, &weights, &mut c.rng);
                    for (count, j) in self.counts.iter_mut().zip(split) {
                        *count += j;
                    }
                }
            }
        }
        self.population = self.population - delta.leavers + delta.joiners;
    }

    /// Executes one synchronous round in which `senders[cls·k + i]` agents
    /// of class `cls` push opinion `i`: each non-empty block is scattered
    /// over destination classes with one multinomial draw from the cached
    /// class-to-class edge probabilities (`C = 1` skips the draw — the
    /// whole block stays in the single class, exactly like the counting
    /// backend's uniform bin). Silent classes (degree 0, possible under
    /// `er(p)`) never push.
    ///
    /// # Panics
    ///
    /// Panics if no phase is open, if `senders.len() ≠ C·k`, or if more
    /// agents push than exist.
    pub fn push_round_blocks(&mut self, senders: &[u64]) -> RoundReport {
        assert!(self.phase_open, "push_round_blocks called outside a phase");
        let c = self.num_classes();
        let k = self.num_opinions();
        assert_eq!(
            senders.len(),
            c * k,
            "senders matrix must have one entry per (class, opinion)"
        );
        let mut sent: u64 = 0;
        for (cls, row) in senders.chunks_exact(k).enumerate() {
            if self.classes.degree(cls) == 0 {
                continue;
            }
            let block_total: u64 = row.iter().sum();
            if block_total == 0 {
                continue;
            }
            sent += block_total;
            if c == 1 {
                for (p, &s) in self.pending.iter_mut().zip(row) {
                    *p += s;
                }
            } else {
                let probs = &self.dest_probs[cls * c..(cls + 1) * c];
                for (o, &pushers) in row.iter().enumerate() {
                    if pushers == 0 {
                        continue;
                    }
                    let destinations = multinomial(pushers, probs, &mut self.rng);
                    for (dest, &landed) in destinations.iter().enumerate() {
                        self.pending[dest * k + o] += landed;
                    }
                }
            }
        }
        assert!(
            sent <= self.num_nodes() as u64,
            "{sent} senders exceed the {}-agent population",
            self.num_nodes()
        );
        self.messages_sent += sent;
        self.rounds_executed += 1;
        RoundReport::new(self.rounds_executed - 1, sent)
    }

    /// Convenience round: every opinionated agent pushes its current
    /// opinion (the rule of Stage 2 and of all baseline dynamics).
    pub fn push_round_all_opinionated(&mut self) -> RoundReport {
        let senders = self.counts.clone();
        self.push_round_blocks(&senders)
    }

    /// Finishes the open phase: applies the noise independently per class
    /// (one multinomial per (class, opinion) row — O(k²·C) draws) and
    /// returns the per-class tally.
    ///
    /// # Panics
    ///
    /// Panics if no phase is open.
    pub fn end_phase(&mut self) -> &BlockPhaseTally {
        assert!(self.phase_open, "end_phase called without an open phase");
        let k = self.num_opinions();
        // Live class populations (= the initial class sizes except under
        // population churn): counts only move at phase boundaries and via
        // decision operators, never mid-phase.
        let class_pops: Vec<usize> = self
            .counts
            .chunks_exact(k)
            .zip(&self.undecided)
            .map(|(row, &u)| (row.iter().sum::<u64>() + u) as usize)
            .collect();
        let class_tallies = self
            .pending
            .chunks_exact(k)
            .enumerate()
            .map(|(cls, row)| {
                let post_noise = self.noise.recolor_counts(row, &mut self.rng);
                PhaseTally::new(post_noise, class_pops[cls])
            })
            .collect();
        self.tally = BlockPhaseTally {
            classes: class_tallies,
            num_nodes: self.num_nodes(),
        };
        if let Some(t) = self.temporal.as_mut() {
            t.phases_completed += 1;
        }
        self.phase_open = false;
        &self.tally
    }

    /// Applies a per-class population update with the same balance
    /// assertions as
    /// [`CountingNetwork::apply_deltas`](crate::CountingNetwork::apply_deltas).
    fn apply_class_deltas(
        &mut self,
        class: usize,
        leavers: &[u64],
        joiners: &[u64],
        undecided_delta: i64,
    ) {
        let k = self.num_opinions();
        let left: u64 = leavers.iter().sum();
        let joined: u64 = joiners.iter().sum();
        assert_eq!(
            joined as i128 + undecided_delta as i128,
            left as i128,
            "class {class} population flows must balance: \
             {joined} joined + Δundecided {undecided_delta} ≠ {left} left"
        );
        let row = &mut self.counts[class * k..(class + 1) * k];
        for (c, &l) in row.iter_mut().zip(leavers) {
            assert!(*c >= l, "more agents leave an opinion than support it");
            *c -= l;
        }
        for (c, &j) in row.iter_mut().zip(joiners) {
            *c += j;
        }
        if undecided_delta >= 0 {
            self.undecided[class] += undecided_delta as u64;
        } else {
            let drop = (-undecided_delta) as u64;
            assert!(
                self.undecided[class] >= drop,
                "undecided pool of class {class} would go negative"
            );
            self.undecided[class] -= drop;
        }
    }

    /// Per-class uniform adoption (Stage 1 / voter model): the counting
    /// backend's rule, applied to each class against its own tally.
    pub(crate) fn resolve_uniform_adoption_per_class(
        &mut self,
        scope: crate::AdoptionScope,
        rng: &mut StdRng,
    ) {
        let k = self.num_opinions();
        for cls in 0..self.num_classes() {
            match scope {
                crate::AdoptionScope::UndecidedOnly => {
                    let (adoptions, _silent) =
                        sample_one_plan(self.tally.class_tally(cls), k, self.undecided[cls], rng);
                    let adopted: u64 = adoptions.iter().sum();
                    let leavers = vec![0u64; k];
                    self.apply_class_deltas(cls, &leavers, &adoptions, -(adopted as i64));
                }
                crate::AdoptionScope::AllAgents => {
                    let (leavers, joiners, undecided_delta) = uniform_adoption_all_plan(
                        self.class_counts(cls),
                        self.undecided[cls],
                        self.tally.class_tally(cls),
                        rng,
                    );
                    self.apply_class_deltas(cls, &leavers, &joiners, undecided_delta);
                }
            }
        }
    }

    /// Per-class sample majority (Stage 2 / h-majority).
    pub(crate) fn resolve_sample_majority_per_class(
        &mut self,
        sample_size: u64,
        rng: &mut StdRng,
    ) {
        for cls in 0..self.num_classes() {
            let (leavers, joiners, undecided_delta) = sample_majority_plan(
                self.class_counts(cls),
                self.undecided[cls],
                self.tally.class_tally(cls),
                sample_size,
                rng,
            );
            self.apply_class_deltas(cls, &leavers, &joiners, undecided_delta);
        }
    }

    /// Per-class undecided-state dynamics operator.
    pub(crate) fn resolve_undecided_state_per_class(&mut self, rng: &mut StdRng) {
        for cls in 0..self.num_classes() {
            let (leavers, joiners, undecided_delta) = undecided_state_plan(
                self.class_counts(cls),
                self.undecided[cls],
                self.tally.class_tally(cls),
                rng,
            );
            self.apply_class_deltas(cls, &leavers, &joiners, undecided_delta);
        }
    }

    /// Per-class median-rule operator.
    pub(crate) fn resolve_median_per_class(&mut self, rng: &mut StdRng) {
        for cls in 0..self.num_classes() {
            let (leavers, joiners, undecided_delta) = median_plan(
                self.class_counts(cls),
                self.undecided[cls],
                self.tally.class_tally(cls),
                rng,
            );
            self.apply_class_deltas(cls, &leavers, &joiners, undecided_delta);
        }
    }
}

/// Convenience: `true` if the spec belongs to the backend's certified set
/// (used by tests and diagnostics; the authoritative constant is
/// `<BlockCountingNetwork as PushBackend>::TOPOLOGY_CAPABILITY`).
pub fn is_certified_topology(spec: TopologySpec) -> bool {
    spec.is_vertex_transitive()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::DeliverySemantics;
    use crate::counting::CountingNetwork;
    use crate::fault::FaultSpec;

    fn block_net(spec: TopologySpec, n: usize, k: usize, seed: u64) -> BlockCountingNetwork {
        let noise = NoiseMatrix::uniform(k, 0.2).unwrap();
        let config = SimConfig::builder(n, k)
            .seed(seed)
            .topology(spec)
            .delivery(if spec.is_vertex_transitive() && !spec.is_complete() {
                DeliverySemantics::Poissonized
            } else {
                DeliverySemantics::Exact
            })
            .build()
            .unwrap();
        BlockCountingNetwork::new(config, noise).unwrap()
    }

    #[test]
    fn single_class_phase_matches_the_counting_backend_bit_for_bit() {
        // On any C = 1 family the block backend's delivery RNG stream is
        // identical to CountingNetwork's on the complete graph: same seed,
        // same pending totals, same recolor call.
        let n = 1_000;
        let seed = 42;
        let mut block = block_net(TopologySpec::Ring, n, 3, seed);
        let noise = NoiseMatrix::uniform(3, 0.2).unwrap();
        let config = SimConfig::builder(n, 3)
            .seed(seed)
            .delivery(DeliverySemantics::Poissonized)
            .build()
            .unwrap();
        let mut counting = CountingNetwork::new(config, noise).unwrap();
        block.seed_counts(&[500, 300, 100]).unwrap();
        counting.seed_counts(&[500, 300, 100]).unwrap();
        for _ in 0..3 {
            block.begin_phase();
            counting.begin_phase();
            for _ in 0..4 {
                let a = block.push_round_all_opinionated();
                let b = counting.push_round_all_opinionated();
                assert_eq!(a.messages_sent(), b.messages_sent());
            }
            let block_tally = block.end_phase().clone();
            let counting_tally = counting.end_phase().clone();
            assert_eq!(block_tally.num_classes(), 1);
            assert_eq!(
                block_tally.class_tally(0).post_noise(),
                counting_tally.post_noise(),
                "identical RNG stream ⇒ identical post-noise tallies"
            );
            // Decision operators from a cloned RNG produce identical
            // population updates.
            let mut rng_a = StdRng::seed_from_u64(7);
            let mut rng_b = rng_a.clone();
            block.resolve_sample_majority_per_class(5, &mut rng_a);
            counting.apply_sample_majority_with(5, &mut rng_b);
            assert_eq!(block.opinion_counts(), counting.counts());
            assert_eq!(block.undecided(), counting.undecided());
        }
    }

    #[test]
    fn phase_conserves_messages_across_classes() {
        let mut net = block_net(TopologySpec::ErdosRenyi { p: 0.01 }, 2_000, 3, 9);
        assert!(net.num_classes() > 1, "er(p) buckets by degree");
        net.seed_counts(&[800, 600, 400]).unwrap();
        // Silent (degree-0) nodes, if any, cannot push; everyone else does.
        let silent: u64 = (0..net.num_classes())
            .filter(|&c| net.degree_classes().degree(c) == 0)
            .map(|c| {
                net.class_counts(c).iter().sum::<u64>()
            })
            .sum();
        net.begin_phase();
        let report = net.push_round_all_opinionated();
        assert_eq!(report.messages_sent(), 1_800 - silent);
        let tally = net.end_phase().clone();
        assert_eq!(tally.total(), 1_800 - silent, "noise re-colors but conserves");
        let totals = tally.received_totals();
        assert_eq!(totals.iter().sum::<u64>(), 1_800 - silent);
        // Silent classes receive nothing.
        for cls in 0..net.num_classes() {
            if net.degree_classes().degree(cls) == 0 {
                assert_eq!(tally.class_tally(cls).total(), 0);
            }
        }
    }

    #[test]
    fn seeding_spreads_proportionally_and_round_trips() {
        let mut net = block_net(TopologySpec::ErdosRenyi { p: 0.05 }, 500, 2, 11);
        net.seed_counts(&[200, 100]).unwrap();
        assert_eq!(net.opinion_counts(), vec![200, 100]);
        assert_eq!(net.undecided(), 200);
        let dist = net.distribution();
        assert_eq!(dist.counts(), &[200, 100]);
        assert_eq!(dist.num_nodes(), 500);
        // Per-class populations stay intact.
        for cls in 0..net.num_classes() {
            let used: u64 = net.class_counts(cls).iter().sum::<u64>() + net.class_undecided(cls);
            assert_eq!(used, net.degree_classes().size(cls));
        }
        assert!(net.seed_counts(&[600, 0]).is_err());
        assert!(net.seed_counts(&[1, 1, 1]).is_err());
        net.clear_opinions();
        assert_eq!(net.undecided(), 500);
    }

    #[test]
    fn seed_rumor_lands_in_the_source_class() {
        let mut net = block_net(TopologySpec::ErdosRenyi { p: 0.05 }, 500, 3, 13);
        net.seed_rumor_at(123, Opinion::new(2)).unwrap();
        let cls = net.degree_classes().class_of(123);
        assert_eq!(net.class_counts(cls)[2], 1);
        assert_eq!(net.opinion_counts(), vec![0, 0, 1]);
        assert!(net.seed_rumor_at(500, Opinion::new(0)).is_err());
        assert!(net.seed_rumor_at(0, Opinion::new(3)).is_err());
    }

    #[test]
    fn faults_are_rejected_wholesale() {
        let noise = NoiseMatrix::uniform(2, 0.2).unwrap();
        let config = SimConfig::builder(100, 2)
            .seed(1)
            .fault(FaultSpec {
                drop: 0.1,
                ..FaultSpec::none()
            })
            .build()
            .unwrap();
        assert!(matches!(
            BlockCountingNetwork::new(config, noise),
            Err(SimError::UnsupportedFault { .. })
        ));
    }

    #[test]
    fn mixture_moments_reduce_to_poisson_for_a_single_class() {
        let mut net = block_net(TopologySpec::RandomRegular { degree: 8 }, 1_000, 3, 17);
        net.seed_counts(&[400, 300, 200]).unwrap();
        net.begin_phase();
        net.push_round_all_opinionated();
        let tally = net.end_phase();
        let lambda = tally.mean_inbox();
        assert!((lambda - 0.9).abs() < 1e-12);
        assert!((tally.received_variance() - lambda).abs() < 1e-12);
        assert!((tally.fraction_with_messages() - (1.0 - (-lambda).exp())).abs() < 1e-12);
        assert!(tally.typical_max_inbox() > 0);
    }
}
