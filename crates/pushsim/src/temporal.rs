//! Temporal dynamics for the push model: population/edge churn, noise
//! schedules, and clock-skew asynchrony.
//!
//! The paper's world is static — a fixed population `n`, a fixed
//! communication graph, a constant channel parameter ε, and lockstep
//! synchronous rounds. This module makes each of those assumptions a
//! perturbable *axis*, described declaratively like
//! [`FaultSpec`](crate::FaultSpec) and applied inside the phase
//! lifecycle:
//!
//! * [`ChurnSpec`] — **population churn** (`join(r)`, `leave(r)`,
//!   `burst(f@p)`: agents arrive and depart at phase boundaries) and
//!   **edge churn** (`rewire(p)`: the randomized sparse graph is
//!   resampled at phase boundaries).
//! * [`NoiseSchedule`] — a time-varying channel `ε(t)` (`const`,
//!   `step(e@s)`, `burst(e@s:w)`, `ramp(e0:e1@p)`), swapping the uniform
//!   noise matrix per phase.
//! * [`ClockSpec`] — per-agent clock drift or skew (`sync`,
//!   `drift(ppm)`, `skew(p)`) producing asynchronous-round
//!   interleavings: an activation schedule decides which agents push
//!   each tick.
//!
//! Each axis has a canonical textual form that round-trips through
//! `Display`/[`FromStr`] and is the spelling scenario spec files use
//! (`churn = join(0.02)+leave(0.05)`, `schedule = burst(0.05@3:2)`,
//! `clock = drift(200000)`).
//!
//! ## Determinism and the feature-off guarantee
//!
//! All churn and clock randomness is drawn from **dedicated seed-derived
//! RNGs** (`CHURN_SEED_SALT`, `CLOCK_SEED_SALT`); noise schedules are
//! deterministic functions of the phase index. The disabled values —
//! `churn = none`, `schedule = const`, `clock = sync` — are guaranteed
//! not to perturb any RNG stream of the simulation: a temporal-off run is
//! bit-for-bit the pre-temporal simulator, which keeps every fixed-seed
//! fixture in the workspace valid.
//!
//! Churn *magnitudes* are deterministic (the number of joiners and
//! leavers at a boundary is a pure function of the pre-boundary
//! population, see [`ChurnSpec::population_delta`]); only the
//! *composition* (which agents leave, which opinions joiners adopt) is
//! random. This makes the population trajectory exactly predictable —
//! the count-conservation oracle of the analysis layer checks it per
//! phase via [`ChurnSpec::population_after`].
//!
//! ## Support boundaries
//!
//! Which temporal features a backend admits is a static capability
//! ([`TemporalCapability`] on
//! [`PushBackend`](crate::PushBackend::TEMPORAL_CAPABILITY)): the
//! agent-level backend supports everything; the count-based and
//! block-counting backends support population churn and noise schedules
//! as O(k)/O(k²·C) aggregate operations and reject edge churn and clock
//! skew (there are no per-agent clocks or materialized edges to skew or
//! rewire). Cross-feature boundaries are enforced when the
//! configuration is built ([`SimConfig::builder`](crate::SimConfig)):
//! population churn is complete-graph-only and does not compose with
//! crash/Byzantine/delay faults (identity bookkeeping across arrivals
//! and departures would be ambiguous), edge churn requires a
//! re-sampleable randomized topology (`regular(d)` or `er(p)`) under
//! exact delivery.

use crate::error::SimError;
use std::fmt;
use std::str::FromStr;

/// Salt folded into the simulation seed to derive the churn RNG stream
/// (`seed ^ CHURN_SEED_SALT`), keeping it independent of the push,
/// topology and fault streams.
pub(crate) const CHURN_SEED_SALT: u64 = 0xC4E0_5EED_CA0B_71ED;

/// Salt folded into the simulation seed to derive the clock RNG stream
/// (`seed ^ CLOCK_SEED_SALT`).
pub(crate) const CLOCK_SEED_SALT: u64 = 0xC10C_05EE_DD21_F7AD;

/// A departure burst: a fraction of the population leaves at once at a
/// scheduled phase boundary.
#[derive(Debug, Clone, Copy)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct BurstChurn {
    /// The fraction of the population that departs, in `(0, 1)`.
    pub fraction: f64,
    /// The 0-based phase index *after* which the burst fires: the
    /// departure happens at the boundary between phases `after_phase`
    /// and `after_phase + 1`.
    pub after_phase: u64,
}

/// The deterministic churn magnitudes applied at one phase boundary.
///
/// Returned by [`ChurnSpec::population_delta`]; both backends and the
/// analysis layer's count-conservation oracle use the same numbers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PopulationDelta {
    /// Number of agents that depart at this boundary.
    pub leavers: usize,
    /// Number of agents that arrive at this boundary.
    pub joiners: usize,
}

/// A declarative description of population and edge churn.
///
/// The default value disables every churn family and is guaranteed not
/// to perturb any RNG stream of the simulation (`churn = none` is
/// bit-for-bit the churn-free simulator). The textual form (`Display` /
/// [`FromStr`]) round-trips exactly; families are joined with `+` in the
/// fixed order `join`, `leave`, `burst`, `rewire`.
///
/// Churn applies at **phase boundaries**: after a phase's decision
/// operator has resolved and before the next phase's first round. At
/// boundary `b` (1-based; boundary `b` precedes phase `b`) with
/// pre-boundary population `p`:
///
/// * `leave(r)` removes `⌊r·p⌋` uniformly chosen agents;
/// * `burst(f@s)` additionally removes `round(f·p)` agents at the single
///   boundary `s + 1` (i.e. right after phase `s`);
/// * `join(r)` adds `⌊r·p⌋` fresh agents. By default each joiner adopts
///   a uniformly random opinion; `join(r:j)` seeds every joiner
///   **adversarially** with the fixed opinion `j`.
/// * `rewire(q)` is **edge churn**: with probability `q` per boundary
///   the randomized sparse topology (`regular(d)` or `er(p)`) is
///   resampled wholesale from the churn RNG — phase-boundary graph
///   churn, the `rewire(p)/phase` knob of dynamic-network models.
///
/// Magnitudes are deterministic (see [`ChurnSpec::population_delta`]);
/// only which agents leave and what joiners believe is random, drawn
/// from the dedicated churn RNG.
#[derive(Debug, Clone, Copy, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct ChurnSpec {
    /// Per-boundary join rate in `[0, 1)`: `⌊join·p⌋` agents arrive at
    /// every boundary.
    pub join: f64,
    /// How joiners are seeded: `None` — uniformly random opinion;
    /// `Some(j)` — every joiner adopts the fixed (adversarial) opinion
    /// `j` (must be `< num_opinions`).
    pub join_opinion: Option<usize>,
    /// Per-boundary leave rate in `[0, 1)`: `⌊leave·p⌋` uniformly
    /// chosen agents depart at every boundary.
    pub leave: f64,
    /// A scheduled departure burst, if any.
    pub burst: Option<BurstChurn>,
    /// Per-boundary probability in `[0, 1]` that the randomized sparse
    /// topology is resampled (edge churn). Agent backend only.
    pub rewire: f64,
}

impl PartialEq for ChurnSpec {
    fn eq(&self, other: &Self) -> bool {
        // Bitwise comparison keeps Eq/Hash lawful (NaN never survives
        // `check`, which rejects non-finite rates).
        let burst = |a: Option<BurstChurn>, b: Option<BurstChurn>| match (a, b) {
            (None, None) => true,
            (Some(x), Some(y)) => {
                x.fraction.to_bits() == y.fraction.to_bits() && x.after_phase == y.after_phase
            }
            _ => false,
        };
        self.join.to_bits() == other.join.to_bits()
            && self.join_opinion == other.join_opinion
            && self.leave.to_bits() == other.leave.to_bits()
            && burst(self.burst, other.burst)
            && self.rewire.to_bits() == other.rewire.to_bits()
    }
}

impl Eq for ChurnSpec {}

impl std::hash::Hash for ChurnSpec {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.join.to_bits().hash(state);
        self.join_opinion.hash(state);
        self.leave.to_bits().hash(state);
        if let Some(b) = self.burst {
            b.fraction.to_bits().hash(state);
            b.after_phase.hash(state);
        } else {
            u64::MAX.hash(state);
        }
        self.rewire.to_bits().hash(state);
    }
}

impl ChurnSpec {
    /// The all-disabled spec (identical to `ChurnSpec::default()`),
    /// spelled `none`.
    pub fn none() -> Self {
        ChurnSpec::default()
    }

    /// `true` when every churn family is disabled. A disabled spec is
    /// guaranteed not to perturb any RNG stream of the simulation.
    pub fn is_none(&self) -> bool {
        self.join == 0.0 && self.leave == 0.0 && self.burst.is_none() && self.rewire == 0.0
    }

    /// `true` when agents join or leave (`join`, `leave` or `burst` is
    /// enabled). Population churn is complete-graph-only and supported
    /// by all three backends.
    pub fn has_population_churn(&self) -> bool {
        self.join != 0.0 || self.leave != 0.0 || self.burst.is_some()
    }

    /// `true` when the topology is resampled at phase boundaries
    /// (`rewire` is enabled). Edge churn needs a materialized graph and
    /// is agent-backend-only.
    pub fn has_edge_churn(&self) -> bool {
        self.rewire != 0.0
    }

    /// `true` when the spec only uses the aggregatable subset the
    /// count-based backends support (everything except edge churn).
    pub fn aggregatable(&self) -> bool {
        self.rewire == 0.0
    }

    /// The short human-readable label (identical to the `Display` form),
    /// recorded in result tables and error messages.
    pub fn label(&self) -> String {
        self.to_string()
    }

    /// Checks that this churn spec is well-formed for a system with
    /// `num_opinions` opinions.
    ///
    /// # Errors
    ///
    /// [`SimError::InvalidTemporal`] if a rate is outside its range (or
    /// non-finite), an adversarial join opinion is `>= num_opinions`, or
    /// the per-boundary leave rate and the burst fraction are large
    /// enough to empty the population in one boundary.
    pub fn check(&self, num_opinions: usize) -> Result<(), SimError> {
        let fail = |reason: String| Err(SimError::InvalidTemporal { reason });
        let rate = |name: &str, r: f64, max_exclusive: f64| {
            if r.is_finite() && (0.0..max_exclusive).contains(&r) {
                Ok(())
            } else {
                Err(SimError::InvalidTemporal {
                    reason: format!(
                        "{name} needs a rate in [0, {max_exclusive}), got {r}"
                    ),
                })
            }
        };
        rate("join(r)", self.join, 1.0)?;
        rate("leave(r)", self.leave, 1.0)?;
        if let Some(opinion) = self.join_opinion {
            if self.join == 0.0 {
                return fail("join(r:j) needs a join rate > 0".to_string());
            }
            if opinion >= num_opinions {
                return fail(format!(
                    "join opinion {opinion} is out of range for a system with \
                     {num_opinions} opinions"
                ));
            }
        }
        let mut departing = self.leave;
        if let Some(burst) = self.burst {
            if !(burst.fraction.is_finite() && burst.fraction > 0.0 && burst.fraction < 1.0) {
                return fail(format!(
                    "burst(f@p) needs a fraction in (0, 1), got {}",
                    burst.fraction
                ));
            }
            departing += burst.fraction;
        }
        if departing >= 1.0 {
            return fail(format!(
                "leave rate and burst fraction sum to {departing}, which would \
                 empty the population in one boundary"
            ));
        }
        if !(self.rewire.is_finite() && (0.0..=1.0).contains(&self.rewire)) {
            return fail(format!(
                "rewire(q) needs a probability in [0, 1], got {}",
                self.rewire
            ));
        }
        Ok(())
    }

    /// The deterministic churn magnitudes at phase boundary `boundary`
    /// (1-based: boundary `b` precedes phase `b`; boundary 0 never
    /// churns), given the pre-boundary `population`.
    ///
    /// Leavers are `⌊leave·p⌋` plus `round(f·p)` when the burst fires at
    /// this boundary, capped so at least two agents always remain;
    /// joiners are `⌊join·p⌋` of the *pre-boundary* population. Both
    /// backends and the analysis layer's count-conservation oracle
    /// compute populations from this one function.
    pub fn population_delta(&self, population: usize, boundary: u64) -> PopulationDelta {
        if boundary == 0 {
            return PopulationDelta {
                leavers: 0,
                joiners: 0,
            };
        }
        let p = population as f64;
        let mut leavers = (self.leave * p).floor() as usize;
        if let Some(burst) = self.burst {
            if boundary == burst.after_phase + 1 {
                leavers += (burst.fraction * p).round() as usize;
            }
        }
        leavers = leavers.min(population.saturating_sub(2));
        let joiners = (self.join * p).floor() as usize;
        PopulationDelta { leavers, joiners }
    }

    /// The exact population after `phases_completed` phases, starting
    /// from `initial` agents (one churn boundary precedes each phase
    /// after the first). Pure fold over [`ChurnSpec::population_delta`].
    pub fn population_after(&self, initial: usize, phases_completed: u64) -> usize {
        let mut population = initial;
        for boundary in 1..=phases_completed {
            let delta = self.population_delta(population, boundary);
            population = population - delta.leavers + delta.joiners;
        }
        population
    }
}

impl fmt::Display for ChurnSpec {
    /// The canonical spec-file spelling: `none`, or `+`-joined families
    /// in the fixed order `join(r)`/`join(r:j)`, `leave(r)`,
    /// `burst(f@p)`, `rewire(q)`.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_none() {
            return write!(f, "none");
        }
        let mut first = true;
        let mut sep = |f: &mut fmt::Formatter<'_>| -> fmt::Result {
            if first {
                first = false;
                Ok(())
            } else {
                write!(f, "+")
            }
        };
        if self.join != 0.0 {
            sep(f)?;
            match self.join_opinion {
                Some(opinion) => write!(f, "join({}:{})", self.join, opinion)?,
                None => write!(f, "join({})", self.join)?,
            }
        }
        if self.leave != 0.0 {
            sep(f)?;
            write!(f, "leave({})", self.leave)?;
        }
        if let Some(burst) = self.burst {
            sep(f)?;
            write!(f, "burst({}@{})", burst.fraction, burst.after_phase)?;
        }
        if self.rewire != 0.0 {
            sep(f)?;
            write!(f, "rewire({})", self.rewire)?;
        }
        Ok(())
    }
}

impl FromStr for ChurnSpec {
    type Err = String;

    /// Parses the canonical spelling (case-insensitive): `none`, or
    /// `+`-joined `join(r)` / `join(r:j)`, `leave(r)`, `burst(f@p)`,
    /// `rewire(q)` in any order; each family at most once.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let s = s.trim();
        let lower = s.to_ascii_lowercase();
        if lower == "none" {
            return Ok(ChurnSpec::default());
        }
        let mut spec = ChurnSpec::default();
        for part in lower.split('+') {
            let part = part.trim();
            let parameterized = |name: &str| -> Option<&str> {
                part.strip_prefix(name)?.strip_prefix('(')?.strip_suffix(')')
            };
            let duplicate_family = |name: &str| -> String {
                format!("churn family {name} given more than once in {s:?}")
            };
            if let Some(arg) = parameterized("join") {
                if spec.join != 0.0 {
                    return Err(duplicate_family("join"));
                }
                let (rate, opinion) = match arg.split_once(':') {
                    Some((rate, opinion)) => {
                        let opinion = opinion.trim().parse::<usize>().map_err(|_| {
                            format!("join(r:j) needs an integer opinion, got {opinion:?}")
                        })?;
                        (rate, Some(opinion))
                    }
                    None => (arg, None),
                };
                spec.join = rate
                    .trim()
                    .parse::<f64>()
                    .map_err(|_| format!("join(r) needs a number, got {rate:?}"))?;
                spec.join_opinion = opinion;
            } else if let Some(arg) = parameterized("leave") {
                if spec.leave != 0.0 {
                    return Err(duplicate_family("leave"));
                }
                spec.leave = arg
                    .trim()
                    .parse::<f64>()
                    .map_err(|_| format!("leave(r) needs a number, got {arg:?}"))?;
            } else if let Some(arg) = parameterized("burst") {
                if spec.burst.is_some() {
                    return Err(duplicate_family("burst"));
                }
                let (fraction, phase) = arg
                    .split_once('@')
                    .ok_or_else(|| format!("burst needs the form burst(f@p), got burst({arg})"))?;
                let fraction = fraction.trim().parse::<f64>().map_err(|_| {
                    format!("burst(f@p) needs a numeric fraction, got {fraction:?}")
                })?;
                let after_phase = phase
                    .trim()
                    .parse::<u64>()
                    .map_err(|_| format!("burst(f@p) needs an integer phase, got {phase:?}"))?;
                spec.burst = Some(BurstChurn {
                    fraction,
                    after_phase,
                });
            } else if let Some(arg) = parameterized("rewire") {
                if spec.rewire != 0.0 {
                    return Err(duplicate_family("rewire"));
                }
                spec.rewire = arg
                    .trim()
                    .parse::<f64>()
                    .map_err(|_| format!("rewire(q) needs a number, got {arg:?}"))?;
            } else {
                return Err(format!(
                    "unknown churn {part:?} in {s:?} (expected none, or +-joined \
                     join(r), join(r:j), leave(r), burst(f@p), rewire(q))"
                ));
            }
        }
        Ok(spec)
    }
}

/// A time-varying channel parameter `ε(t)`.
///
/// The default value, `const`, keeps the run's configured noise matrix
/// for every phase and is guaranteed not to perturb anything. Every
/// other variant **replaces** the channel with the uniform ε-noise
/// family [`NoiseMatrix::uniform(k, ε(t))`](noisy_channel::NoiseMatrix::uniform)
/// at the start of each phase `t` where `ε(t)` is scheduled, and
/// restores the configured matrix where it is not:
///
/// * `step(e@s)` — ε = `e` from phase `s` on (the configured matrix
///   before).
/// * `burst(e@s:w)` — ε = `e` during the `w` phases starting at phase
///   `s` (the configured matrix outside the window). A noise *burst*:
///   the channel degrades (or clears) for a bounded window, then
///   recovers.
/// * `ramp(e0:e1@p)` — ε interpolates linearly from `e0` (phase 0) to
///   `e1` (phase `p`), constant `e1` afterwards. A ramp overrides every
///   phase, so the configured noise family is never used.
///
/// The schedule is a deterministic function of the phase index — it
/// consumes no randomness. Scheduled ε values must lie in the uniform
/// family's domain `(0, 1 − 1/k]`; the upper bound is checked when the
/// backend is built (where `k` is known).
#[derive(Debug, Clone, Copy, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum NoiseSchedule {
    /// The configured noise matrix is used for every phase (the paper's
    /// constant-channel model).
    #[default]
    Const,
    /// ε switches to `epsilon` from phase `from_phase` on.
    Step {
        /// The scheduled channel parameter.
        epsilon: f64,
        /// The 0-based phase index from which `epsilon` applies.
        from_phase: u64,
    },
    /// ε = `epsilon` during phases `start_phase .. start_phase + width`.
    Burst {
        /// The channel parameter inside the burst window.
        epsilon: f64,
        /// The 0-based first phase of the window.
        start_phase: u64,
        /// The window length in phases (≥ 1).
        width: u64,
    },
    /// ε interpolates linearly from `start` at phase 0 to `end` at phase
    /// `over_phases`, and stays at `end` afterwards.
    Ramp {
        /// ε at phase 0.
        start: f64,
        /// ε from phase `over_phases` on.
        end: f64,
        /// The number of phases the interpolation spans (≥ 1).
        over_phases: u64,
    },
}

impl PartialEq for NoiseSchedule {
    fn eq(&self, other: &Self) -> bool {
        match (self, other) {
            (NoiseSchedule::Const, NoiseSchedule::Const) => true,
            (
                NoiseSchedule::Step {
                    epsilon: a,
                    from_phase: s,
                },
                NoiseSchedule::Step {
                    epsilon: b,
                    from_phase: t,
                },
            ) => a.to_bits() == b.to_bits() && s == t,
            (
                NoiseSchedule::Burst {
                    epsilon: a,
                    start_phase: s,
                    width: w,
                },
                NoiseSchedule::Burst {
                    epsilon: b,
                    start_phase: t,
                    width: v,
                },
            ) => a.to_bits() == b.to_bits() && s == t && w == v,
            (
                NoiseSchedule::Ramp {
                    start: a0,
                    end: a1,
                    over_phases: p,
                },
                NoiseSchedule::Ramp {
                    start: b0,
                    end: b1,
                    over_phases: q,
                },
            ) => a0.to_bits() == b0.to_bits() && a1.to_bits() == b1.to_bits() && p == q,
            _ => false,
        }
    }
}

impl Eq for NoiseSchedule {}

impl std::hash::Hash for NoiseSchedule {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        std::mem::discriminant(self).hash(state);
        match *self {
            NoiseSchedule::Const => {}
            NoiseSchedule::Step {
                epsilon,
                from_phase,
            } => {
                epsilon.to_bits().hash(state);
                from_phase.hash(state);
            }
            NoiseSchedule::Burst {
                epsilon,
                start_phase,
                width,
            } => {
                epsilon.to_bits().hash(state);
                start_phase.hash(state);
                width.hash(state);
            }
            NoiseSchedule::Ramp {
                start,
                end,
                over_phases,
            } => {
                start.to_bits().hash(state);
                end.to_bits().hash(state);
                over_phases.hash(state);
            }
        }
    }
}

impl NoiseSchedule {
    /// The constant schedule (identical to `NoiseSchedule::default()`),
    /// spelled `const`.
    pub fn constant() -> Self {
        NoiseSchedule::Const
    }

    /// `true` for the constant schedule, which never swaps the noise
    /// matrix and is guaranteed not to perturb anything.
    pub fn is_const(&self) -> bool {
        matches!(self, NoiseSchedule::Const)
    }

    /// The short human-readable label (identical to the `Display` form),
    /// recorded in result tables and error messages.
    pub fn label(&self) -> String {
        self.to_string()
    }

    /// Every ε value the schedule can produce (the interpolation of a
    /// ramp stays inside the closed interval of its endpoints, so the
    /// endpoints suffice for domain checks).
    pub(crate) fn scheduled_epsilons(&self) -> Vec<f64> {
        match *self {
            NoiseSchedule::Const => Vec::new(),
            NoiseSchedule::Step { epsilon, .. } | NoiseSchedule::Burst { epsilon, .. } => {
                vec![epsilon]
            }
            NoiseSchedule::Ramp { start, end, .. } => vec![start, end],
        }
    }

    /// Checks that this schedule is well-formed.
    ///
    /// # Errors
    ///
    /// [`SimError::InvalidTemporal`] if a scheduled ε is non-finite or
    /// outside `(0, 1)`, or a window/ramp length is zero. The uniform
    /// family's tighter upper bound `ε ≤ 1 − 1/k` is checked when the
    /// backend is built (where `k` is known).
    pub fn check(&self) -> Result<(), SimError> {
        let fail = |reason: String| Err(SimError::InvalidTemporal { reason });
        for epsilon in self.scheduled_epsilons() {
            if !(epsilon.is_finite() && epsilon > 0.0 && epsilon < 1.0) {
                return fail(format!(
                    "scheduled epsilon must lie in (0, 1), got {epsilon}"
                ));
            }
        }
        match *self {
            NoiseSchedule::Burst { width: 0, .. } => {
                fail("burst(e@s:w) needs a window of at least one phase".to_string())
            }
            NoiseSchedule::Ramp { over_phases: 0, .. } => {
                fail("ramp(e0:e1@p) needs at least one phase to ramp over".to_string())
            }
            _ => Ok(()),
        }
    }

    /// The scheduled ε for (0-based) phase `phase`, or `None` where the
    /// run's configured noise matrix applies.
    pub fn epsilon_at(&self, phase: u64) -> Option<f64> {
        match *self {
            NoiseSchedule::Const => None,
            NoiseSchedule::Step {
                epsilon,
                from_phase,
            } => (phase >= from_phase).then_some(epsilon),
            NoiseSchedule::Burst {
                epsilon,
                start_phase,
                width,
            } => (phase >= start_phase && phase - start_phase < width).then_some(epsilon),
            NoiseSchedule::Ramp {
                start,
                end,
                over_phases,
            } => {
                if phase >= over_phases {
                    Some(end)
                } else {
                    Some(start + (end - start) * phase as f64 / over_phases as f64)
                }
            }
        }
    }
}

impl fmt::Display for NoiseSchedule {
    /// The canonical spec-file spelling: `const`, `step(e@s)`,
    /// `burst(e@s:w)` or `ramp(e0:e1@p)`.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            NoiseSchedule::Const => write!(f, "const"),
            NoiseSchedule::Step {
                epsilon,
                from_phase,
            } => write!(f, "step({epsilon}@{from_phase})"),
            NoiseSchedule::Burst {
                epsilon,
                start_phase,
                width,
            } => write!(f, "burst({epsilon}@{start_phase}:{width})"),
            NoiseSchedule::Ramp {
                start,
                end,
                over_phases,
            } => write!(f, "ramp({start}:{end}@{over_phases})"),
        }
    }
}

impl FromStr for NoiseSchedule {
    type Err = String;

    /// Parses the canonical spelling (case-insensitive): `const`,
    /// `step(e@s)`, `burst(e@s:w)` or `ramp(e0:e1@p)`.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let s = s.trim();
        let lower = s.to_ascii_lowercase();
        if lower == "const" {
            return Ok(NoiseSchedule::Const);
        }
        let parameterized = |name: &str| -> Option<&str> {
            lower
                .strip_prefix(name)?
                .strip_prefix('(')?
                .strip_suffix(')')
        };
        let number = |what: &str, v: &str| -> Result<f64, String> {
            v.trim()
                .parse::<f64>()
                .map_err(|_| format!("{what} needs a number, got {v:?}"))
        };
        let integer = |what: &str, v: &str| -> Result<u64, String> {
            v.trim()
                .parse::<u64>()
                .map_err(|_| format!("{what} needs an integer phase count, got {v:?}"))
        };
        if let Some(arg) = parameterized("step") {
            let (epsilon, phase) = arg
                .split_once('@')
                .ok_or_else(|| format!("step needs the form step(e@s), got step({arg})"))?;
            Ok(NoiseSchedule::Step {
                epsilon: number("step(e@s)", epsilon)?,
                from_phase: integer("step(e@s)", phase)?,
            })
        } else if let Some(arg) = parameterized("burst") {
            let (epsilon, window) = arg
                .split_once('@')
                .ok_or_else(|| format!("burst needs the form burst(e@s:w), got burst({arg})"))?;
            let (start, width) = window
                .split_once(':')
                .ok_or_else(|| format!("burst needs the form burst(e@s:w), got burst({arg})"))?;
            Ok(NoiseSchedule::Burst {
                epsilon: number("burst(e@s:w)", epsilon)?,
                start_phase: integer("burst(e@s:w)", start)?,
                width: integer("burst(e@s:w)", width)?,
            })
        } else if let Some(arg) = parameterized("ramp") {
            let (endpoints, over) = arg
                .split_once('@')
                .ok_or_else(|| format!("ramp needs the form ramp(e0:e1@p), got ramp({arg})"))?;
            let (start, end) = endpoints
                .split_once(':')
                .ok_or_else(|| format!("ramp needs the form ramp(e0:e1@p), got ramp({arg})"))?;
            Ok(NoiseSchedule::Ramp {
                start: number("ramp(e0:e1@p)", start)?,
                end: number("ramp(e0:e1@p)", end)?,
                over_phases: integer("ramp(e0:e1@p)", over)?,
            })
        } else {
            Err(format!(
                "unknown noise schedule {s:?} (expected const, step(e@s), \
                 burst(e@s:w) or ramp(e0:e1@p))"
            ))
        }
    }
}

/// An activation schedule for asynchronous-round interleavings.
///
/// The default value, `sync`, is the paper's lockstep model: every
/// opinionated agent pushes every round. The other variants give each
/// agent its own clock, deciding **which agents push each tick** (the
/// receive path is unaffected — mailboxes stay open):
///
/// * `drift(ppm)` — each agent draws a fixed clock *rate*
///   `c_i = 1 + u_i` with `u_i` uniform in `± ppm × 10⁻⁶` at
///   construction. An agent pushes on global tick `t` iff its local
///   clock crosses an integer boundary, `⌊c_i (t+1)⌋ > ⌊c_i t⌋`: slow
///   clocks periodically skip a tick (pushes are capped at one per
///   tick, so fast clocks saturate at the lockstep rate).
/// * `skew(p)` — each agent's round boundary jitters independently
///   every tick: with probability `p` the agent misses the tick and
///   does not push.
///
/// Clock randomness comes from the dedicated clock RNG
/// (`CLOCK_SEED_SALT`); `sync` draws nothing and perturbs nothing.
/// Only the agent backend supports non-`sync` clocks — the count-based
/// backends have no per-agent identity to attach a clock to
/// ([`TemporalCapability::clock`]).
#[derive(Debug, Clone, Copy, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum ClockSpec {
    /// Lockstep synchronous rounds (the paper's model).
    #[default]
    Sync,
    /// Per-agent clock-rate drift, in parts per million.
    Drift {
        /// The drift magnitude in ppm: rates are uniform in
        /// `1 ± ppm × 10⁻⁶`. Must lie in `(0, 500 000]` (a rate may not
        /// reach 0 or 2).
        ppm: f64,
    },
    /// Per-tick activation jitter.
    Skew {
        /// The per-tick miss probability, in `(0, 1)`.
        miss: f64,
    },
}

impl PartialEq for ClockSpec {
    fn eq(&self, other: &Self) -> bool {
        match (self, other) {
            (ClockSpec::Sync, ClockSpec::Sync) => true,
            (ClockSpec::Drift { ppm: a }, ClockSpec::Drift { ppm: b }) => {
                a.to_bits() == b.to_bits()
            }
            (ClockSpec::Skew { miss: a }, ClockSpec::Skew { miss: b }) => {
                a.to_bits() == b.to_bits()
            }
            _ => false,
        }
    }
}

impl Eq for ClockSpec {}

impl std::hash::Hash for ClockSpec {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        std::mem::discriminant(self).hash(state);
        match *self {
            ClockSpec::Sync => {}
            ClockSpec::Drift { ppm } => ppm.to_bits().hash(state),
            ClockSpec::Skew { miss } => miss.to_bits().hash(state),
        }
    }
}

impl ClockSpec {
    /// The lockstep clock (identical to `ClockSpec::default()`),
    /// spelled `sync`.
    pub fn sync() -> Self {
        ClockSpec::Sync
    }

    /// `true` for lockstep synchronous rounds, which draw no clock
    /// randomness and perturb nothing.
    pub fn is_sync(&self) -> bool {
        matches!(self, ClockSpec::Sync)
    }

    /// The short human-readable label (identical to the `Display` form),
    /// recorded in result tables and error messages.
    pub fn label(&self) -> String {
        self.to_string()
    }

    /// Checks that this clock spec is well-formed.
    ///
    /// # Errors
    ///
    /// [`SimError::InvalidTemporal`] if the drift is outside
    /// `(0, 500 000]` ppm or the skew miss probability is outside
    /// `(0, 1)` (or either is non-finite).
    pub fn check(&self) -> Result<(), SimError> {
        let fail = |reason: String| Err(SimError::InvalidTemporal { reason });
        match *self {
            ClockSpec::Sync => Ok(()),
            ClockSpec::Drift { ppm } => {
                if ppm.is_finite() && ppm > 0.0 && ppm <= 500_000.0 {
                    Ok(())
                } else {
                    fail(format!(
                        "drift(ppm) needs a drift in (0, 500000] ppm, got {ppm}"
                    ))
                }
            }
            ClockSpec::Skew { miss } => {
                if miss.is_finite() && miss > 0.0 && miss < 1.0 {
                    Ok(())
                } else {
                    fail(format!(
                        "skew(p) needs a miss probability in (0, 1), got {miss}"
                    ))
                }
            }
        }
    }
}

impl fmt::Display for ClockSpec {
    /// The canonical spec-file spelling: `sync`, `drift(ppm)` or
    /// `skew(p)`.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            ClockSpec::Sync => write!(f, "sync"),
            ClockSpec::Drift { ppm } => write!(f, "drift({ppm})"),
            ClockSpec::Skew { miss } => write!(f, "skew({miss})"),
        }
    }
}

impl FromStr for ClockSpec {
    type Err = String;

    /// Parses the canonical spelling (case-insensitive): `sync`,
    /// `drift(ppm)` or `skew(p)`.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let s = s.trim();
        let lower = s.to_ascii_lowercase();
        if lower == "sync" {
            return Ok(ClockSpec::Sync);
        }
        let parameterized = |name: &str| -> Option<&str> {
            lower
                .strip_prefix(name)?
                .strip_prefix('(')?
                .strip_suffix(')')
        };
        if let Some(arg) = parameterized("drift") {
            Ok(ClockSpec::Drift {
                ppm: arg
                    .trim()
                    .parse::<f64>()
                    .map_err(|_| format!("drift(ppm) needs a number, got {arg:?}"))?,
            })
        } else if let Some(arg) = parameterized("skew") {
            Ok(ClockSpec::Skew {
                miss: arg
                    .trim()
                    .parse::<f64>()
                    .map_err(|_| format!("skew(p) needs a number, got {arg:?}"))?,
            })
        } else {
            Err(format!(
                "unknown clock {s:?} (expected sync, drift(ppm) or skew(p))"
            ))
        }
    }
}

/// Which temporal features a backend supports, as a static capability
/// (like [`TopologyCapability`](crate::TopologyCapability)): automatic
/// backend selection consults it, and each backend's constructor
/// enforces it ([`SimError::UnsupportedTemporal`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TemporalCapability {
    /// Agents may join and leave at phase boundaries (`join`, `leave`,
    /// `burst`). The count-based backends realize this as O(k) count
    /// transfers.
    pub population_churn: bool,
    /// The sparse topology may be resampled at phase boundaries
    /// (`rewire`). Needs a materialized graph — agent backend only.
    pub edge_churn: bool,
    /// The noise matrix may be swapped per phase ([`NoiseSchedule`]).
    pub noise_schedule: bool,
    /// Agents may have skewed clocks ([`ClockSpec`]). Needs per-agent
    /// identity — agent backend only.
    pub clock: bool,
}

impl TemporalCapability {
    /// Everything is supported (the agent-level backend).
    pub const FULL: TemporalCapability = TemporalCapability {
        population_churn: true,
        edge_churn: true,
        noise_schedule: true,
        clock: true,
    };

    /// The aggregatable subset (the count-based backends): population
    /// churn and noise schedules, no edge churn, no clock skew.
    pub const AGGREGATE: TemporalCapability = TemporalCapability {
        population_churn: true,
        edge_churn: false,
        noise_schedule: true,
        clock: false,
    };

    /// The first enabled temporal feature of `(churn, schedule, clock)`
    /// this capability does **not** support, as a short feature label —
    /// or `None` when the combination is admitted.
    pub fn first_unsupported(
        &self,
        churn: &ChurnSpec,
        schedule: &NoiseSchedule,
        clock: &ClockSpec,
    ) -> Option<&'static str> {
        if churn.has_population_churn() && !self.population_churn {
            return Some("population churn");
        }
        if churn.has_edge_churn() && !self.edge_churn {
            return Some("edge churn (rewire)");
        }
        if !schedule.is_const() && !self.noise_schedule {
            return Some("noise schedules");
        }
        if !clock.is_sync() && !self.clock {
            return Some("clock skew");
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::hash_map::DefaultHasher;
    use std::hash::{Hash, Hasher};

    fn full_churn() -> ChurnSpec {
        ChurnSpec {
            join: 0.05,
            join_opinion: Some(1),
            leave: 0.1,
            burst: Some(BurstChurn {
                fraction: 0.3,
                after_phase: 2,
            }),
            rewire: 0.25,
        }
    }

    #[test]
    fn default_churn_is_none_and_prints_none() {
        let spec = ChurnSpec::default();
        assert!(spec.is_none());
        assert!(!spec.has_population_churn());
        assert!(!spec.has_edge_churn());
        assert!(spec.aggregatable());
        assert_eq!(spec.to_string(), "none");
        assert_eq!("none".parse::<ChurnSpec>().unwrap(), spec);
        assert_eq!(ChurnSpec::none(), spec);
    }

    #[test]
    fn churn_display_round_trips_through_from_str() {
        let cases = [
            ChurnSpec {
                join: 0.02,
                ..ChurnSpec::default()
            },
            ChurnSpec {
                join: 0.02,
                join_opinion: Some(2),
                ..ChurnSpec::default()
            },
            ChurnSpec {
                leave: 0.05,
                ..ChurnSpec::default()
            },
            ChurnSpec {
                burst: Some(BurstChurn {
                    fraction: 0.4,
                    after_phase: 0,
                }),
                ..ChurnSpec::default()
            },
            ChurnSpec {
                rewire: 1.0,
                ..ChurnSpec::default()
            },
            full_churn(),
        ];
        for spec in cases {
            let text = spec.to_string();
            assert_eq!(text.parse::<ChurnSpec>().unwrap(), spec, "{text}");
        }
        assert_eq!(
            full_churn().to_string(),
            "join(0.05:1)+leave(0.1)+burst(0.3@2)+rewire(0.25)"
        );
    }

    #[test]
    fn churn_parsing_is_case_and_order_insensitive() {
        let spec: ChurnSpec = "LEAVE(0.05) + Join(0.02:0)".parse().unwrap();
        assert_eq!(spec.leave, 0.05);
        assert_eq!(spec.join, 0.02);
        assert_eq!(spec.join_opinion, Some(0));
    }

    #[test]
    fn churn_parse_errors_are_informative() {
        assert!("teleport(0.1)".parse::<ChurnSpec>().is_err());
        assert!("join(0.1)+join(0.2)"
            .parse::<ChurnSpec>()
            .unwrap_err()
            .contains("more than once"));
        assert!("burst(0.1)".parse::<ChurnSpec>().unwrap_err().contains("burst(f@p)"));
        assert!("leave(lots)".parse::<ChurnSpec>().is_err());
    }

    #[test]
    fn churn_check_rejects_out_of_range_parameters() {
        let bad = |spec: ChurnSpec| {
            assert!(matches!(spec.check(3), Err(SimError::InvalidTemporal { .. })), "{spec}");
        };
        bad(ChurnSpec {
            join: 1.5,
            ..ChurnSpec::default()
        });
        bad(ChurnSpec {
            leave: f64::NAN,
            ..ChurnSpec::default()
        });
        bad(ChurnSpec {
            join: 0.1,
            join_opinion: Some(3),
            ..ChurnSpec::default()
        });
        bad(ChurnSpec {
            join_opinion: Some(0),
            ..ChurnSpec::default()
        });
        bad(ChurnSpec {
            burst: Some(BurstChurn {
                fraction: 1.0,
                after_phase: 0,
            }),
            ..ChurnSpec::default()
        });
        // leave + burst together may not empty the population.
        bad(ChurnSpec {
            leave: 0.6,
            burst: Some(BurstChurn {
                fraction: 0.5,
                after_phase: 1,
            }),
            ..ChurnSpec::default()
        });
        bad(ChurnSpec {
            rewire: -0.1,
            ..ChurnSpec::default()
        });
        assert!(full_churn().check(3).is_ok());
    }

    #[test]
    fn population_deltas_are_deterministic_and_fold_exactly() {
        let spec = ChurnSpec {
            join: 0.02,
            leave: 0.05,
            burst: Some(BurstChurn {
                fraction: 0.3,
                after_phase: 1,
            }),
            ..ChurnSpec::default()
        };
        // Boundary 0 never churns.
        assert_eq!(
            spec.population_delta(1000, 0),
            PopulationDelta {
                leavers: 0,
                joiners: 0
            }
        );
        // Boundary 1: rates only.
        assert_eq!(
            spec.population_delta(1000, 1),
            PopulationDelta {
                leavers: 50,
                joiners: 20
            }
        );
        // Boundary 2 = after phase 1: the burst fires on top of the rates.
        assert_eq!(
            spec.population_delta(1000, 2),
            PopulationDelta {
                leavers: 50 + 300,
                joiners: 20
            }
        );
        // The fold matches manual application.
        let after_one = 1000 - 50 + 20;
        assert_eq!(spec.population_after(1000, 1), after_one);
        let delta = spec.population_delta(after_one, 2);
        assert_eq!(
            spec.population_after(1000, 2),
            after_one - delta.leavers + delta.joiners
        );
        // Departures never empty the population.
        let drain = ChurnSpec {
            leave: 0.9,
            ..ChurnSpec::default()
        };
        assert!(drain.population_after(100, 50) >= 2);
    }

    #[test]
    fn churn_eq_and_hash_are_consistent() {
        let hash = |spec: &ChurnSpec| {
            let mut h = DefaultHasher::new();
            spec.hash(&mut h);
            h.finish()
        };
        assert_eq!(full_churn(), full_churn());
        assert_eq!(hash(&full_churn()), hash(&full_churn()));
        let mut other = full_churn();
        other.burst = None;
        assert_ne!(full_churn(), other);
    }

    #[test]
    fn default_schedule_is_const_and_prints_const() {
        let schedule = NoiseSchedule::default();
        assert!(schedule.is_const());
        assert_eq!(schedule.to_string(), "const");
        assert_eq!("const".parse::<NoiseSchedule>().unwrap(), schedule);
        assert_eq!(NoiseSchedule::constant(), schedule);
        for phase in 0..10 {
            assert_eq!(schedule.epsilon_at(phase), None);
        }
    }

    #[test]
    fn schedule_display_round_trips_through_from_str() {
        let cases = [
            NoiseSchedule::Step {
                epsilon: 0.4,
                from_phase: 3,
            },
            NoiseSchedule::Burst {
                epsilon: 0.05,
                start_phase: 2,
                width: 3,
            },
            NoiseSchedule::Ramp {
                start: 0.1,
                end: 0.4,
                over_phases: 8,
            },
        ];
        for schedule in cases {
            let text = schedule.to_string();
            assert_eq!(text.parse::<NoiseSchedule>().unwrap(), schedule, "{text}");
        }
        assert_eq!(
            NoiseSchedule::Burst {
                epsilon: 0.05,
                start_phase: 2,
                width: 3
            }
            .to_string(),
            "burst(0.05@2:3)"
        );
        assert!("sawtooth(0.1)".parse::<NoiseSchedule>().is_err());
        assert!("burst(0.1@2)".parse::<NoiseSchedule>().unwrap_err().contains("burst(e@s:w)"));
    }

    #[test]
    fn schedule_epsilon_at_matches_the_shapes() {
        let step = NoiseSchedule::Step {
            epsilon: 0.4,
            from_phase: 3,
        };
        assert_eq!(step.epsilon_at(2), None);
        assert_eq!(step.epsilon_at(3), Some(0.4));
        assert_eq!(step.epsilon_at(100), Some(0.4));

        let burst = NoiseSchedule::Burst {
            epsilon: 0.05,
            start_phase: 2,
            width: 3,
        };
        assert_eq!(burst.epsilon_at(1), None);
        assert_eq!(burst.epsilon_at(2), Some(0.05));
        assert_eq!(burst.epsilon_at(4), Some(0.05));
        assert_eq!(burst.epsilon_at(5), None);

        let ramp = NoiseSchedule::Ramp {
            start: 0.1,
            end: 0.5,
            over_phases: 4,
        };
        assert_eq!(ramp.epsilon_at(0), Some(0.1));
        let mid = ramp.epsilon_at(2).expect("mid-ramp phase is scheduled");
        assert!((mid - 0.3).abs() < 1e-12, "linear midpoint, got {mid}");
        assert_eq!(ramp.epsilon_at(4), Some(0.5));
        assert_eq!(ramp.epsilon_at(100), Some(0.5));
    }

    #[test]
    fn schedule_check_rejects_degenerate_shapes() {
        assert!(NoiseSchedule::Step {
            epsilon: 1.5,
            from_phase: 0
        }
        .check()
        .is_err());
        assert!(NoiseSchedule::Burst {
            epsilon: 0.2,
            start_phase: 0,
            width: 0
        }
        .check()
        .is_err());
        assert!(NoiseSchedule::Ramp {
            start: 0.1,
            end: 0.4,
            over_phases: 0
        }
        .check()
        .is_err());
        assert!(NoiseSchedule::Ramp {
            start: 0.1,
            end: 0.4,
            over_phases: 5
        }
        .check()
        .is_ok());
    }

    #[test]
    fn default_clock_is_sync_and_prints_sync() {
        let clock = ClockSpec::default();
        assert!(clock.is_sync());
        assert_eq!(clock.to_string(), "sync");
        assert_eq!("sync".parse::<ClockSpec>().unwrap(), clock);
        assert_eq!(ClockSpec::sync(), clock);
    }

    #[test]
    fn clock_display_round_trips_through_from_str() {
        let cases = [
            ClockSpec::Drift { ppm: 200_000.0 },
            ClockSpec::Skew { miss: 0.1 },
        ];
        for clock in cases {
            let text = clock.to_string();
            assert_eq!(text.parse::<ClockSpec>().unwrap(), clock, "{text}");
        }
        assert!("warp(2)".parse::<ClockSpec>().is_err());
    }

    #[test]
    fn clock_check_rejects_out_of_range_parameters() {
        assert!(ClockSpec::Drift { ppm: 0.0 }.check().is_err());
        assert!(ClockSpec::Drift { ppm: 600_000.0 }.check().is_err());
        assert!(ClockSpec::Drift { ppm: f64::NAN }.check().is_err());
        assert!(ClockSpec::Skew { miss: 0.0 }.check().is_err());
        assert!(ClockSpec::Skew { miss: 1.0 }.check().is_err());
        assert!(ClockSpec::Drift { ppm: 100.0 }.check().is_ok());
        assert!(ClockSpec::Skew { miss: 0.5 }.check().is_ok());
    }

    #[test]
    fn capabilities_gate_the_expected_features() {
        let full = TemporalCapability::FULL;
        let aggregate = TemporalCapability::AGGREGATE;
        let sync = ClockSpec::Sync;
        let constant = NoiseSchedule::Const;
        let population = ChurnSpec {
            leave: 0.1,
            ..ChurnSpec::default()
        };
        let edge = ChurnSpec {
            rewire: 0.5,
            ..ChurnSpec::default()
        };
        assert_eq!(full.first_unsupported(&population, &constant, &sync), None);
        assert_eq!(full.first_unsupported(&edge, &constant, &sync), None);
        assert_eq!(
            aggregate.first_unsupported(&population, &constant, &sync),
            None
        );
        assert_eq!(
            aggregate.first_unsupported(&edge, &constant, &sync),
            Some("edge churn (rewire)")
        );
        assert_eq!(
            aggregate.first_unsupported(
                &ChurnSpec::none(),
                &constant,
                &ClockSpec::Skew { miss: 0.1 }
            ),
            Some("clock skew")
        );
        assert_eq!(
            aggregate.first_unsupported(
                &ChurnSpec::none(),
                &NoiseSchedule::Step {
                    epsilon: 0.3,
                    from_phase: 1
                },
                &sync
            ),
            None
        );
    }
}
