//! Poisson sampling used by the process-P (Poissonized) delivery semantics.
//!
//! The paper's process P (Definition 4) hands every agent an independent
//! `Poisson(h_i / n)` number of copies of each opinion `i`. The batched
//! delivery engine additionally draws the *aggregate* per-opinion totals
//! `Poisson(h_i)` (by Poisson superposition), whose means scale with the
//! phase's message volume — so the sampler must be O(1) in the mean, not
//! O(mean):
//!
//! * for small means, Knuth's product-of-uniforms method (exact, ~μ+1
//!   uniforms per draw);
//! * for large means, Hörmann's **PTRS** transformed-rejection algorithm
//!   (1993) — exact (it is a rejection method, not an approximation) and
//!   O(1) expected uniforms per draw regardless of the mean.

use noisy_channel::sampling::ln_gamma;
use rand::Rng;

/// Mean at or below which Knuth's method is used; above it, PTRS (which
/// requires a mean ≥ 10) takes over.
const KNUTH_THRESHOLD: f64 = 10.0;

/// Samples a `Poisson(mean)` random variable.
///
/// # Panics
///
/// Panics if `mean` is negative, NaN or infinite.
///
/// # Example
///
/// ```
/// use rand::{rngs::StdRng, SeedableRng};
///
/// let mut rng = StdRng::seed_from_u64(1);
/// let x = pushsim::poisson::sample(3.5, &mut rng);
/// assert!(x < 100); // astronomically unlikely to fail
/// ```
pub fn sample<R: Rng + ?Sized>(mean: f64, rng: &mut R) -> u64 {
    assert!(
        mean.is_finite() && mean >= 0.0,
        "Poisson mean must be finite and non-negative, got {mean}"
    );
    if mean == 0.0 {
        return 0;
    }
    if mean <= KNUTH_THRESHOLD {
        knuth(mean, rng)
    } else {
        ptrs(mean, rng)
    }
}

/// Knuth's product-of-uniforms Poisson sampler (exact for small means).
fn knuth<R: Rng + ?Sized>(mean: f64, rng: &mut R) -> u64 {
    let threshold = (-mean).exp();
    let mut count = 0u64;
    let mut product: f64 = 1.0;
    loop {
        product *= rng.gen::<f64>();
        if product <= threshold {
            return count;
        }
        count += 1;
    }
}

/// Hörmann's PTRS: transformed rejection with squeeze. Exact; requires
/// `mean ≥ 10`. Expected number of uniform draws is below 2.5 for all
/// admissible means.
fn ptrs<R: Rng + ?Sized>(mean: f64, rng: &mut R) -> u64 {
    debug_assert!(mean >= 10.0);
    let log_mean = mean.ln();
    let b = 0.931 + 2.53 * mean.sqrt();
    let a = -0.059 + 0.02483 * b;
    let inv_alpha = 1.1239 + 1.1328 / (b - 3.4);
    let v_r = 0.9277 - 3.6224 / (b - 2.0);
    loop {
        let u: f64 = rng.gen::<f64>() - 0.5;
        let mut v: f64 = rng.gen();
        let us = 0.5 - u.abs();
        let kf = ((2.0 * a / us + b) * u + mean + 0.43).floor();
        // Squeeze: the bulk of the mass accepts without any logarithm.
        if us >= 0.07 && v <= v_r {
            return kf as u64;
        }
        if kf < 0.0 || (us < 0.013 && v > us) {
            continue;
        }
        v = (v * inv_alpha / (a / (us * us) + b)).ln();
        if v <= kf * log_mean - mean - ln_gamma(kf + 1.0) {
            return kf as u64;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn empirical_mean_and_var(mean: f64, trials: usize, seed: u64) -> (f64, f64) {
        let mut rng = StdRng::seed_from_u64(seed);
        let samples: Vec<f64> = (0..trials).map(|_| sample(mean, &mut rng) as f64).collect();
        let m = samples.iter().sum::<f64>() / trials as f64;
        let v = samples.iter().map(|x| (x - m).powi(2)).sum::<f64>() / trials as f64;
        (m, v)
    }

    #[test]
    fn zero_mean_always_returns_zero() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(sample(0.0, &mut rng), 0);
        }
    }

    #[test]
    fn small_mean_matches_poisson_moments() {
        let (m, v) = empirical_mean_and_var(2.5, 200_000, 11);
        assert!((m - 2.5).abs() < 0.05, "mean {m}");
        assert!((v - 2.5).abs() < 0.1, "variance {v}");
    }

    #[test]
    fn large_mean_matches_poisson_moments() {
        let (m, v) = empirical_mean_and_var(250.0, 20_000, 12);
        assert!((m - 250.0).abs() < 1.5, "mean {m}");
        assert!((v - 250.0).abs() < 12.0, "variance {v}");
    }

    #[test]
    fn huge_mean_matches_poisson_moments() {
        // Means at the scale of whole-phase message volumes (the aggregate
        // draw of the batched process-P delivery).
        let mu = 2.5e6;
        let (m, v) = empirical_mean_and_var(mu, 5_000, 13);
        assert!((m - mu).abs() / mu < 1e-3, "mean {m}");
        assert!((v - mu).abs() / mu < 0.1, "variance {v}");
    }

    #[test]
    fn ptrs_matches_exact_pmf_in_the_bulk() {
        // Chi-square against the exact pmf at a mean just above the PTRS
        // threshold, where both branches of the acceptance test are hot.
        let mu = 12.0_f64;
        let mut rng = StdRng::seed_from_u64(14);
        let trials = 200_000;
        let hi = 40usize;
        let mut counts = vec![0u64; hi + 1];
        for _ in 0..trials {
            let x = sample(mu, &mut rng) as usize;
            counts[x.min(hi)] += 1;
        }
        let mut chi2 = 0.0;
        let mut dof = 0i64;
        let mut pooled_obs = 0.0;
        let mut pooled_exp = 0.0;
        for (k, &observed) in counts.iter().enumerate() {
            let ln_pmf = k as f64 * mu.ln() - mu - noisy_channel::sampling::ln_gamma(k as f64 + 1.0);
            let mut e = ln_pmf.exp() * trials as f64;
            if k == hi {
                // Tail bucket: everything at or above hi.
                let below: f64 = (0..hi)
                    .map(|j| {
                        (j as f64 * mu.ln() - mu
                            - noisy_channel::sampling::ln_gamma(j as f64 + 1.0))
                        .exp()
                    })
                    .sum();
                e = (1.0 - below) * trials as f64;
            }
            pooled_obs += observed as f64;
            pooled_exp += e;
            if pooled_exp >= 5.0 {
                chi2 += (pooled_obs - pooled_exp).powi(2) / pooled_exp;
                dof += 1;
                pooled_obs = 0.0;
                pooled_exp = 0.0;
            }
        }
        dof -= 1;
        let budget = dof as f64 + 4.0 * (2.0 * dof as f64).sqrt() + 10.0;
        assert!(chi2 < budget, "chi2 {chi2:.1} over budget {budget:.1} (dof {dof})");
    }

    #[test]
    fn tiny_mean_is_mostly_zero() {
        let mut rng = StdRng::seed_from_u64(5);
        let trials = 100_000;
        let zeros = (0..trials)
            .filter(|_| sample(0.01, &mut rng) == 0)
            .count();
        let frac = zeros as f64 / trials as f64;
        // P(X = 0) = e^{-0.01} ≈ 0.99005.
        assert!((frac - 0.99).abs() < 0.005, "zero fraction {frac}");
    }

    #[test]
    #[should_panic(expected = "Poisson mean")]
    fn negative_mean_panics() {
        let mut rng = StdRng::seed_from_u64(1);
        let _ = sample(-1.0, &mut rng);
    }
}
