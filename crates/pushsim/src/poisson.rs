//! Poisson sampling used by the process-P (Poissonized) delivery semantics.
//!
//! The paper's process P (Definition 4) hands every agent an independent
//! `Poisson(h_i / n)` number of copies of each opinion `i`. The `rand` crate
//! alone does not ship a Poisson distribution, so this module implements one
//! from scratch:
//!
//! * for small means, Knuth's product-of-uniforms method (exact);
//! * for large means, the split `Poisson(λ) = Poisson(λ/2) + Poisson(λ/2)`
//!   applied recursively until the mean is small enough for Knuth's method.
//!   The recursion depth is logarithmic in λ and the result remains exact,
//!   which matters because the tails of the received-message counts drive
//!   the concentration behaviour the experiments measure.

use rand::Rng;

/// Mean below which Knuth's method is used directly.
const KNUTH_THRESHOLD: f64 = 30.0;

/// Samples a `Poisson(mean)` random variable.
///
/// # Panics
///
/// Panics if `mean` is negative, NaN or infinite.
///
/// # Example
///
/// ```
/// use rand::{rngs::StdRng, SeedableRng};
///
/// let mut rng = StdRng::seed_from_u64(1);
/// let x = pushsim::poisson::sample(3.5, &mut rng);
/// assert!(x < 100); // astronomically unlikely to fail
/// ```
pub fn sample<R: Rng + ?Sized>(mean: f64, rng: &mut R) -> u64 {
    assert!(
        mean.is_finite() && mean >= 0.0,
        "Poisson mean must be finite and non-negative, got {mean}"
    );
    if mean == 0.0 {
        return 0;
    }
    if mean <= KNUTH_THRESHOLD {
        return knuth(mean, rng);
    }
    // Additivity: Poisson(a + b) = Poisson(a) + Poisson(b) for independent
    // summands. Split the mean into chunks small enough for Knuth's method.
    let chunks = (mean / KNUTH_THRESHOLD).ceil() as u64;
    let per_chunk = mean / chunks as f64;
    (0..chunks).map(|_| knuth(per_chunk, rng)).sum()
}

/// Knuth's product-of-uniforms Poisson sampler (exact for small means).
fn knuth<R: Rng + ?Sized>(mean: f64, rng: &mut R) -> u64 {
    let threshold = (-mean).exp();
    let mut count = 0u64;
    let mut product: f64 = 1.0;
    loop {
        product *= rng.gen::<f64>();
        if product <= threshold {
            return count;
        }
        count += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn empirical_mean_and_var(mean: f64, trials: usize, seed: u64) -> (f64, f64) {
        let mut rng = StdRng::seed_from_u64(seed);
        let samples: Vec<f64> = (0..trials).map(|_| sample(mean, &mut rng) as f64).collect();
        let m = samples.iter().sum::<f64>() / trials as f64;
        let v = samples.iter().map(|x| (x - m).powi(2)).sum::<f64>() / trials as f64;
        (m, v)
    }

    #[test]
    fn zero_mean_always_returns_zero() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(sample(0.0, &mut rng), 0);
        }
    }

    #[test]
    fn small_mean_matches_poisson_moments() {
        let (m, v) = empirical_mean_and_var(2.5, 200_000, 11);
        assert!((m - 2.5).abs() < 0.05, "mean {m}");
        assert!((v - 2.5).abs() < 0.1, "variance {v}");
    }

    #[test]
    fn large_mean_matches_poisson_moments() {
        let (m, v) = empirical_mean_and_var(250.0, 20_000, 12);
        assert!((m - 250.0).abs() < 1.5, "mean {m}");
        assert!((v - 250.0).abs() < 12.0, "variance {v}");
    }

    #[test]
    fn tiny_mean_is_mostly_zero() {
        let mut rng = StdRng::seed_from_u64(5);
        let trials = 100_000;
        let zeros = (0..trials)
            .filter(|_| sample(0.01, &mut rng) == 0)
            .count();
        let frac = zeros as f64 / trials as f64;
        // P(X = 0) = e^{-0.01} ≈ 0.99005.
        assert!((frac - 0.99).abs() < 0.005, "zero fraction {frac}");
    }

    #[test]
    #[should_panic(expected = "Poisson mean")]
    fn negative_mean_panics() {
        let mut rng = StdRng::seed_from_u64(1);
        let _ = sample(-1.0, &mut rng);
    }
}
