//! Opinion distributions and bias computations.

use crate::opinion::{NodeState, Opinion};
use std::fmt;

/// A snapshot of how many agents support each opinion, plus how many are
/// undecided.
///
/// Following Section 2.2 of the paper, the per-opinion *fractions* are taken
/// relative to the total number of agents `n`, the fraction of opinionated
/// agents is `a`, and the bias of the distribution towards an opinion `m` is
/// `min_{i ≠ m} (c_m − c_i)` where `c_i` is the fraction of agents (among
/// the opinionated ones) supporting `i`.
///
/// ```
/// use pushsim::{Opinion, OpinionDistribution};
///
/// let d = OpinionDistribution::from_counts(vec![60, 30, 10], 0).unwrap();
/// assert_eq!(d.plurality(), Some(Opinion::new(0)));
/// assert!((d.bias_towards(Opinion::new(0)).unwrap() - 0.3).abs() < 1e-12);
/// assert!(!d.is_consensus());
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct OpinionDistribution {
    counts: Vec<usize>,
    undecided: usize,
}

impl OpinionDistribution {
    /// Builds a distribution from per-opinion counts and the number of
    /// undecided agents.
    ///
    /// Returns `None` if fewer than two opinions are given.
    pub fn from_counts(counts: Vec<usize>, undecided: usize) -> Option<Self> {
        if counts.len() < 2 {
            return None;
        }
        Some(Self { counts, undecided })
    }

    /// Builds a distribution by tallying a slice of node states over a
    /// system with `num_opinions` opinions.
    ///
    /// # Panics
    ///
    /// Panics if a state carries an opinion index `≥ num_opinions`.
    pub fn from_states(states: &[NodeState], num_opinions: usize) -> Self {
        let mut counts = vec![0usize; num_opinions];
        let mut undecided = 0usize;
        for s in states {
            match s {
                NodeState::Undecided => undecided += 1,
                NodeState::Opinionated(o) => {
                    assert!(
                        o.index() < num_opinions,
                        "state carries opinion {} but the system has {} opinions",
                        o.index(),
                        num_opinions
                    );
                    counts[o.index()] += 1;
                }
            }
        }
        Self { counts, undecided }
    }

    /// The number of opinions `k` of the system.
    pub fn num_opinions(&self) -> usize {
        self.counts.len()
    }

    /// The total number of agents (opinionated + undecided).
    pub fn num_nodes(&self) -> usize {
        self.undecided + self.counts.iter().sum::<usize>()
    }

    /// The number of agents supporting `opinion`.
    ///
    /// # Panics
    ///
    /// Panics if the opinion index is out of range.
    pub fn count(&self, opinion: Opinion) -> usize {
        self.counts[opinion.index()]
    }

    /// The per-opinion counts.
    pub fn counts(&self) -> &[usize] {
        &self.counts
    }

    /// The number of undecided agents.
    pub fn undecided(&self) -> usize {
        self.undecided
    }

    /// The number of opinionated agents.
    pub fn opinionated(&self) -> usize {
        self.counts.iter().sum()
    }

    /// The fraction `a` of agents that are opinionated.
    pub fn opinionated_fraction(&self) -> f64 {
        let n = self.num_nodes();
        if n == 0 {
            0.0
        } else {
            self.opinionated() as f64 / n as f64
        }
    }

    /// The fractions of *opinionated* agents supporting each opinion
    /// (the paper's `c_i` normalized by the number of opinionated agents;
    /// all zeros if nobody is opinionated).
    pub fn fractions(&self) -> Vec<f64> {
        let a = self.opinionated();
        if a == 0 {
            return vec![0.0; self.counts.len()];
        }
        self.counts.iter().map(|&c| c as f64 / a as f64).collect()
    }

    /// The fractions of *all* agents supporting each opinion (the paper's
    /// `c_i` when normalizing by `n`; these sum to `a`, the opinionated
    /// fraction).
    pub fn global_fractions(&self) -> Vec<f64> {
        let n = self.num_nodes();
        if n == 0 {
            return vec![0.0; self.counts.len()];
        }
        self.counts.iter().map(|&c| c as f64 / n as f64).collect()
    }

    /// The plurality opinion — the opinion supported by strictly more agents
    /// than any other — or `None` if there is a tie for the top or nobody is
    /// opinionated.
    pub fn plurality(&self) -> Option<Opinion> {
        let max = *self.counts.iter().max()?;
        if max == 0 {
            return None;
        }
        let mut top = self.counts.iter().enumerate().filter(|(_, &c)| c == max);
        let (idx, _) = top.next()?;
        if top.next().is_some() {
            None
        } else {
            Some(Opinion::new(idx))
        }
    }

    /// The bias of the distribution towards opinion `m`:
    /// `min_{i ≠ m} (c_m − c_i)` with fractions taken over opinionated
    /// agents (Definition 1 of the paper). Returns `None` if no agent is
    /// opinionated.
    pub fn bias_towards(&self, m: Opinion) -> Option<f64> {
        let a = self.opinionated();
        if a == 0 || m.index() >= self.counts.len() {
            return None;
        }
        let cm = self.counts[m.index()] as f64 / a as f64;
        let worst_other = self
            .counts
            .iter()
            .enumerate()
            .filter(|(i, _)| *i != m.index())
            .map(|(_, &c)| c as f64 / a as f64)
            .fold(f64::NEG_INFINITY, f64::max);
        Some(cm - worst_other)
    }

    /// `true` if every agent is opinionated and they all support the same
    /// opinion.
    pub fn is_consensus(&self) -> bool {
        self.undecided == 0 && self.counts.iter().filter(|&&c| c > 0).count() == 1
    }

    /// `true` if every agent is opinionated and they all support `opinion`.
    pub fn is_consensus_on(&self, opinion: Opinion) -> bool {
        self.is_consensus() && self.counts[opinion.index()] > 0
    }
}

impl fmt::Display for OpinionDistribution {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, c) in self.counts.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{c}")?;
        }
        write!(f, "] (+{} undecided)", self.undecided)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_counts_requires_two_opinions() {
        assert!(OpinionDistribution::from_counts(vec![5], 0).is_none());
        assert!(OpinionDistribution::from_counts(vec![5, 5], 0).is_some());
    }

    #[test]
    fn from_states_tallies_correctly() {
        let states = vec![
            NodeState::Undecided,
            NodeState::Opinionated(Opinion::new(0)),
            NodeState::Opinionated(Opinion::new(1)),
            NodeState::Opinionated(Opinion::new(1)),
        ];
        let d = OpinionDistribution::from_states(&states, 3);
        assert_eq!(d.counts(), &[1, 2, 0]);
        assert_eq!(d.undecided(), 1);
        assert_eq!(d.num_nodes(), 4);
        assert_eq!(d.opinionated(), 3);
        assert!((d.opinionated_fraction() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn fractions_normalize_over_opinionated_agents() {
        let d = OpinionDistribution::from_counts(vec![30, 10], 60).unwrap();
        let f = d.fractions();
        assert!((f[0] - 0.75).abs() < 1e-12);
        assert!((f[1] - 0.25).abs() < 1e-12);
        let g = d.global_fractions();
        assert!((g[0] - 0.3).abs() < 1e-12);
        assert!((g[1] - 0.1).abs() < 1e-12);
    }

    #[test]
    fn plurality_and_ties() {
        let d = OpinionDistribution::from_counts(vec![5, 9, 2], 0).unwrap();
        assert_eq!(d.plurality(), Some(Opinion::new(1)));
        let tie = OpinionDistribution::from_counts(vec![5, 5, 2], 0).unwrap();
        assert_eq!(tie.plurality(), None);
        let empty = OpinionDistribution::from_counts(vec![0, 0], 10).unwrap();
        assert_eq!(empty.plurality(), None);
    }

    #[test]
    fn bias_matches_definition_1() {
        let d = OpinionDistribution::from_counts(vec![50, 30, 20], 0).unwrap();
        assert!((d.bias_towards(Opinion::new(0)).unwrap() - 0.2).abs() < 1e-12);
        assert!((d.bias_towards(Opinion::new(1)).unwrap() + 0.2).abs() < 1e-12);
        let empty = OpinionDistribution::from_counts(vec![0, 0], 3).unwrap();
        assert_eq!(empty.bias_towards(Opinion::new(0)), None);
    }

    #[test]
    fn consensus_detection() {
        let c = OpinionDistribution::from_counts(vec![0, 10, 0], 0).unwrap();
        assert!(c.is_consensus());
        assert!(c.is_consensus_on(Opinion::new(1)));
        assert!(!c.is_consensus_on(Opinion::new(0)));

        let with_undecided = OpinionDistribution::from_counts(vec![0, 10, 0], 1).unwrap();
        assert!(!with_undecided.is_consensus());

        let split = OpinionDistribution::from_counts(vec![1, 9, 0], 0).unwrap();
        assert!(!split.is_consensus());
    }

    #[test]
    fn display_shows_counts_and_undecided() {
        let d = OpinionDistribution::from_counts(vec![1, 2], 3).unwrap();
        assert_eq!(d.to_string(), "[1, 2] (+3 undecided)");
    }
}
