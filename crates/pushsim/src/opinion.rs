//! Opinions and per-node states.

use std::fmt;

/// One of the `k` opinions of the system, identified by an index in
/// `{0, …, k−1}`.
///
/// The paper numbers opinions `1, …, k`; this crate uses zero-based indices
/// so they can directly index count vectors and noise-matrix rows.
///
/// ```
/// use pushsim::Opinion;
/// let o = Opinion::new(2);
/// assert_eq!(o.index(), 2);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Opinion(u32);

impl Opinion {
    /// Creates an opinion from its zero-based index.
    ///
    /// # Panics
    ///
    /// Panics if `index` exceeds `u32::MAX` (far beyond any simulable `k`).
    pub fn new(index: usize) -> Self {
        Self(u32::try_from(index).expect("opinion index fits in u32"))
    }

    /// The zero-based index of the opinion.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for Opinion {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "opinion#{}", self.0)
    }
}

impl From<Opinion> for usize {
    fn from(o: Opinion) -> usize {
        o.index()
    }
}

/// The state of a single agent: either undecided (holds no opinion, may not
/// push) or opinionated.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum NodeState {
    /// The agent holds no opinion yet and does not push messages.
    #[default]
    Undecided,
    /// The agent supports the given opinion.
    Opinionated(Opinion),
}

impl NodeState {
    /// The opinion the agent supports, if any.
    pub fn opinion(self) -> Option<Opinion> {
        match self {
            NodeState::Undecided => None,
            NodeState::Opinionated(o) => Some(o),
        }
    }

    /// `true` if the agent supports some opinion.
    pub fn is_opinionated(self) -> bool {
        matches!(self, NodeState::Opinionated(_))
    }

    /// `true` if the agent holds no opinion.
    pub fn is_undecided(self) -> bool {
        matches!(self, NodeState::Undecided)
    }
}

impl fmt::Display for NodeState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NodeState::Undecided => write!(f, "undecided"),
            NodeState::Opinionated(o) => write!(f, "{o}"),
        }
    }
}

impl From<Opinion> for NodeState {
    fn from(o: Opinion) -> Self {
        NodeState::Opinionated(o)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn opinion_round_trips_through_index() {
        for i in [0usize, 1, 7, 1000] {
            assert_eq!(Opinion::new(i).index(), i);
            assert_eq!(usize::from(Opinion::new(i)), i);
        }
    }

    #[test]
    fn opinions_are_ordered_by_index() {
        assert!(Opinion::new(0) < Opinion::new(1));
        assert_eq!(Opinion::new(3), Opinion::new(3));
    }

    #[test]
    fn node_state_predicates() {
        let u = NodeState::Undecided;
        assert!(u.is_undecided());
        assert!(!u.is_opinionated());
        assert_eq!(u.opinion(), None);

        let o = NodeState::from(Opinion::new(2));
        assert!(o.is_opinionated());
        assert_eq!(o.opinion(), Some(Opinion::new(2)));
    }

    #[test]
    fn default_state_is_undecided() {
        assert_eq!(NodeState::default(), NodeState::Undecided);
    }

    #[test]
    fn display_forms() {
        assert_eq!(Opinion::new(4).to_string(), "opinion#4");
        assert_eq!(NodeState::Undecided.to_string(), "undecided");
        assert_eq!(
            NodeState::Opinionated(Opinion::new(1)).to_string(),
            "opinion#1"
        );
    }
}
