//! Error type for the simulator.

use std::error::Error;
use std::fmt;

/// Errors produced when configuring or driving a [`Network`](crate::Network).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// The network must contain at least two agents.
    TooFewNodes {
        /// The number of agents requested.
        found: usize,
    },
    /// The system must have at least two opinions.
    TooFewOpinions {
        /// The number of opinions requested.
        found: usize,
    },
    /// A node index is out of range.
    NodeOutOfRange {
        /// The offending node index.
        node: usize,
        /// The number of nodes in the network.
        num_nodes: usize,
    },
    /// An opinion index is out of range for the configured `k`.
    OpinionOutOfRange {
        /// The offending opinion index.
        opinion: usize,
        /// The number of opinions of the system.
        num_opinions: usize,
    },
    /// The noise matrix dimension does not match the configured number of
    /// opinions.
    NoiseDimensionMismatch {
        /// Number of opinions the simulation was configured with.
        expected: usize,
        /// Dimension of the supplied noise matrix.
        found: usize,
    },
    /// More initial opinions were requested than there are nodes.
    TooManyInitialOpinions {
        /// Number of opinionated nodes requested.
        requested: usize,
        /// Number of nodes available.
        num_nodes: usize,
    },
    /// A topology could not be built for the requested parameters (e.g. a
    /// torus over a non-square node count, an infeasible regular degree).
    InvalidTopology {
        /// What made the parameters infeasible.
        reason: String,
    },
    /// The requested topology is not supported in this configuration:
    /// process B and the count-based backend are complete-graph-only, the
    /// agent backend's deferred delivery and the block-counting backend's
    /// process P have their own boundaries (see
    /// [`TopologyCapability`](crate::TopologyCapability)).
    UnsupportedTopology {
        /// The offending topology's label.
        topology: String,
        /// Which topology-restricted feature was combined with it.
        context: String,
    },
    /// A fault spec's parameters are infeasible (a probability outside
    /// `[0, 1]`, a Byzantine opinion `>= k`, faulty fractions summing past
    /// the whole population).
    InvalidFault {
        /// What made the parameters infeasible.
        reason: String,
    },
    /// The requested fault spec is not supported in this configuration:
    /// fault injection is complete-graph-only, delayed delivery is
    /// agent-backend-only, and the block-counting backend rejects all
    /// faults.
    UnsupportedFault {
        /// The offending fault spec's label.
        fault: String,
        /// Which feature it was combined with.
        context: String,
    },
    /// A temporal spec's parameters are infeasible (a rate outside its
    /// range, a scheduled ε outside the uniform family's domain, a
    /// zero-length burst window, an adversarial join opinion `>= k`).
    InvalidTemporal {
        /// What made the parameters infeasible.
        reason: String,
    },
    /// The requested temporal feature is not supported in this
    /// configuration: population churn is complete-graph-only and does
    /// not compose with crash/Byzantine/delay faults, edge churn
    /// (`rewire`) needs a re-sampleable randomized topology on the agent
    /// backend, and clock skew needs the agent backend (see
    /// [`TemporalCapability`](crate::TemporalCapability)).
    UnsupportedTemporal {
        /// The offending temporal feature's label.
        feature: String,
        /// Which configuration it was combined with.
        context: String,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::TooFewNodes { found } => {
                write!(f, "network needs at least 2 nodes, got {found}")
            }
            SimError::TooFewOpinions { found } => {
                write!(f, "system needs at least 2 opinions, got {found}")
            }
            SimError::NodeOutOfRange { node, num_nodes } => {
                write!(f, "node {node} is out of range for a {num_nodes}-node network")
            }
            SimError::OpinionOutOfRange {
                opinion,
                num_opinions,
            } => write!(
                f,
                "opinion {opinion} is out of range for a system with {num_opinions} opinions"
            ),
            SimError::NoiseDimensionMismatch { expected, found } => write!(
                f,
                "noise matrix is over {found} opinions but the simulation uses {expected}"
            ),
            SimError::TooManyInitialOpinions {
                requested,
                num_nodes,
            } => write!(
                f,
                "requested {requested} initially opinionated nodes but the network has {num_nodes}"
            ),
            SimError::InvalidTopology { reason } => {
                write!(f, "invalid topology: {reason}")
            }
            SimError::UnsupportedTopology { topology, context } => write!(
                f,
                "topology {topology} is not supported by {context} \
                 (non-complete topologies run on the agent backend with exact delivery, \
                 or — if vertex-transitive — on the block-counting backend with process P)"
            ),
            SimError::InvalidFault { reason } => {
                write!(f, "invalid fault spec: {reason}")
            }
            SimError::UnsupportedFault { fault, context } => write!(
                f,
                "fault spec {fault} is not supported by {context} \
                 (faults are complete-graph-only; delayed delivery needs the agent backend; \
                 the block-counting backend rejects all faults)"
            ),
            SimError::InvalidTemporal { reason } => {
                write!(f, "invalid temporal spec: {reason}")
            }
            SimError::UnsupportedTemporal { feature, context } => write!(
                f,
                "{feature} is not supported by {context} \
                 (population churn is complete-graph-only and excludes crash/byz/delay faults; \
                 edge churn and clock skew need the agent backend)"
            ),
        }
    }
}

impl Error for SimError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_are_informative() {
        assert!(SimError::TooFewNodes { found: 1 }.to_string().contains("2 nodes"));
        assert!(SimError::TooManyInitialOpinions {
            requested: 5,
            num_nodes: 3
        }
        .to_string()
        .contains('5'));
        assert!(SimError::NoiseDimensionMismatch {
            expected: 3,
            found: 2
        }
        .to_string()
        .contains('3'));
    }

    #[test]
    fn is_std_error() {
        fn assert_error<E: Error + Send + Sync + 'static>() {}
        assert_error::<SimError>();
    }
}
