//! Diagnostics: stable rule identities and the finding record.

use std::fmt;

/// Stable identity of every check the engine can emit. Rule IDs are
/// part of the tool's interface: they appear in output, in waiver
/// pragmas, and in CI logs, so they never change meaning.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Rule {
    /// R1: wall clocks and entropy sources in deterministic code.
    DeterminismSource,
    /// R2: RNG construction not derived from the run seed.
    RngDiscipline,
    /// R3: `HashMap`/`HashSet` where iteration order could leak out.
    MapOrder,
    /// R4: panic paths in the service's request handling.
    PanicPath,
    /// R5: `unsafe` without an adjacent `// SAFETY:` comment.
    SafetyComment,
    /// R6: crate root missing `#![forbid(unsafe_code)]`.
    ForbidCoverage,
    /// W1: a waiver pragma that does not parse or lacks a reason.
    MalformedWaiver,
    /// W2: a waiver pragma that matched no finding.
    UnusedWaiver,
}

/// All rules, in report order.
pub const ALL_RULES: [Rule; 8] = [
    Rule::DeterminismSource,
    Rule::RngDiscipline,
    Rule::MapOrder,
    Rule::PanicPath,
    Rule::SafetyComment,
    Rule::ForbidCoverage,
    Rule::MalformedWaiver,
    Rule::UnusedWaiver,
];

impl Rule {
    /// Short code (`R1`…`R6`, `W1`/`W2` for waiver hygiene).
    pub fn code(self) -> &'static str {
        match self {
            Rule::DeterminismSource => "R1",
            Rule::RngDiscipline => "R2",
            Rule::MapOrder => "R3",
            Rule::PanicPath => "R4",
            Rule::SafetyComment => "R5",
            Rule::ForbidCoverage => "R6",
            Rule::MalformedWaiver => "W1",
            Rule::UnusedWaiver => "W2",
        }
    }

    /// The kebab-case name used in waiver pragmas and output.
    pub fn name(self) -> &'static str {
        match self {
            Rule::DeterminismSource => "determinism-source",
            Rule::RngDiscipline => "rng-discipline",
            Rule::MapOrder => "map-order",
            Rule::PanicPath => "panic-path",
            Rule::SafetyComment => "safety-comment",
            Rule::ForbidCoverage => "forbid-coverage",
            Rule::MalformedWaiver => "malformed-waiver",
            Rule::UnusedWaiver => "unused-waiver",
        }
    }

    /// One-line description for `--list-rules`.
    pub fn summary(self) -> &'static str {
        match self {
            Rule::DeterminismSource => {
                "Instant::now/SystemTime::now/thread_rng/from_entropy are forbidden in \
                 simulation crates (everywhere) and in harness production code (waivable)"
            }
            Rule::RngDiscipline => {
                "RNG construction in production code must reference the run seed \
                 (derive_seed, a `seed` binding, or a *_SEED_SALT constant)"
            }
            Rule::MapOrder => {
                "HashMap/HashSet in production code risk nondeterministic iteration \
                 order; use BTreeMap/BTreeSet or waive with proof order never escapes"
            }
            Rule::PanicPath => {
                "unwrap/expect/panic!/unreachable!/assert!/indexing are forbidden in \
                 noisy-serve production code; untrusted input must become an error response"
            }
            Rule::SafetyComment => {
                "every `unsafe` needs a `// SAFETY:` comment on the same or one of the \
                 three preceding lines"
            }
            Rule::ForbidCoverage => {
                "every crate root must carry #![forbid(unsafe_code)] unless allowlisted \
                 (allowlisted crates use #![deny(unsafe_code)] + per-module allow)"
            }
            Rule::MalformedWaiver => {
                "an `// xlint: allow(...)` pragma must name known rules and carry a \
                 written reason"
            }
            Rule::UnusedWaiver => "a waiver that suppresses nothing must be removed",
        }
    }

    /// Parses a rule reference as written in a pragma (name or code,
    /// case-insensitive).
    pub fn parse(s: &str) -> Option<Rule> {
        let s = s.trim();
        ALL_RULES
            .into_iter()
            .find(|r| r.name().eq_ignore_ascii_case(s) || r.code().eq_ignore_ascii_case(s))
    }

    /// Whether a pragma may waive this rule. Waiver hygiene itself and
    /// crate-root coverage (whose allowlist is checked in, not
    /// in-source) cannot be waived.
    pub fn waivable(self) -> bool {
        !matches!(self, Rule::MalformedWaiver | Rule::UnusedWaiver | Rule::ForbidCoverage)
    }
}

/// One finding, pointing at a file position.
#[derive(Debug, Clone)]
pub struct Diagnostic {
    /// Workspace-relative path with `/` separators.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// 1-based byte column.
    pub col: u32,
    /// Which rule fired.
    pub rule: Rule,
    /// Human explanation of this occurrence.
    pub message: String,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}:{}: {}[{}]: {}",
            self.file,
            self.line,
            self.col,
            self.rule.code(),
            self.rule.name(),
            self.message
        )
    }
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out
}

impl Diagnostic {
    /// One JSON object, a stable machine interface for CI tooling.
    pub fn to_json(&self) -> String {
        format!(
            "{{\"file\":\"{}\",\"line\":{},\"col\":{},\"code\":\"{}\",\"rule\":\"{}\",\"message\":\"{}\"}}",
            json_escape(&self.file),
            self.line,
            self.col,
            self.rule.code(),
            self.rule.name(),
            json_escape(&self.message)
        )
    }
}
