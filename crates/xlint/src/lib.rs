//! # xlint
//!
//! A dependency-free, project-specific static analyzer that
//! mechanically enforces the invariants every scientific claim in
//! this repository rests on: all randomness flows from the run seed,
//! no wall-clock or iteration-order nondeterminism reaches simulation
//! output, the serve crate never panics on untrusted bytes, and every
//! `unsafe` block is audited.
//!
//! The workspace builds offline, so there is no `syn` or rustc
//! integration here: a hand-rolled total [`lexer`] (raw strings,
//! nested block comments, char/byte literals) feeds a token-level
//! rule engine ([`rules`]) with structured diagnostics
//! ([`diag::Diagnostic`]: `file:line:col`, stable rule IDs, `--json`
//! output) and an inline-pragma waiver system so every exception is
//! visible and justified in-source:
//!
//! ```text
//! // xlint: allow(determinism-source) — wall-clock latency is the measurement here
//! ```
//!
//! The rules (see [`diag::Rule`] and `xlint --list-rules`):
//!
//! | Code | Name                | Invariant                                             |
//! |------|---------------------|-------------------------------------------------------|
//! | R1   | determinism-source  | no clocks/OS entropy in deterministic code             |
//! | R2   | rng-discipline      | RNG construction references the run seed               |
//! | R3   | map-order           | no hash-order containers in production code            |
//! | R4   | panic-path          | no unwrap/expect/panics/indexing in `noisy-serve`      |
//! | R5   | safety-comment      | every `unsafe` carries a `// SAFETY:` comment          |
//! | R6   | forbid-coverage     | crate roots carry `#![forbid(unsafe_code)]`            |
//! | W1/W2| waiver hygiene      | pragmas parse, carry reasons, and suppress something   |
//!
//! Run locally with `cargo run -p xlint -- --deny all`; CI gates on
//! exactly that invocation.

#![forbid(unsafe_code)]

pub mod context;
pub mod diag;
pub mod lexer;
pub mod rules;

use context::FileContext;
use diag::{Diagnostic, Rule};

/// Analyzes one file's source as if it lived at the
/// workspace-relative `path` (which decides crate and role policy).
/// Returns the surviving diagnostics, waivers already applied,
/// including waiver-hygiene findings.
pub fn analyze_source(path: &str, src: &str) -> Vec<Diagnostic> {
    let tokens = lexer::lex(src);
    let ctx = FileContext::build(path, src, &tokens);
    let mut out: Vec<Diagnostic> = rules::run_all(&ctx, src, &tokens)
        .into_iter()
        .filter(|d| !ctx.waived(d.rule, d.line))
        .collect();
    out.extend(ctx.malformed.iter().cloned());
    for w in &ctx.waivers {
        if !w.used.get() {
            out.push(Diagnostic {
                file: path.to_string(),
                line: w.line,
                col: w.col,
                rule: Rule::UnusedWaiver,
                message: format!(
                    "waiver for {} suppresses nothing on line {}; remove it so the \
                     audit trail stays honest",
                    w.rules
                        .iter()
                        .map(|r| r.name())
                        .collect::<Vec<_>>()
                        .join(", "),
                    w.covers_line
                ),
            });
        }
    }
    out.sort_by_key(|a| (a.line, a.col, a.rule));
    out
}
