//! The `xlint` command-line driver.
//!
//! ```text
//! cargo run -p xlint --                 # advisory: print findings, exit 0
//! cargo run -p xlint -- --deny all      # CI gate: findings exit 1
//! cargo run -p xlint -- --json          # one JSON object per finding
//! cargo run -p xlint -- --list-rules    # rule catalogue
//! cargo run -p xlint -- crates/serve    # restrict to given files/dirs
//! ```
//!
//! Exit codes: `0` clean (or advisory mode), `1` findings under
//! `--deny all`, `2` usage or I/O error.

#![forbid(unsafe_code)]

use std::path::{Path, PathBuf};
use std::process::ExitCode;

use xlint::diag::ALL_RULES;

/// Directories never linted: vendored shims and build output are not
/// ours to police, and the fixture corpus exists to violate rules.
const SKIP_DIRS: [&str; 5] = ["vendor", "target", "fixtures", ".git", ".claude"];

struct Options {
    json: bool,
    deny_all: bool,
    list_rules: bool,
    paths: Vec<PathBuf>,
}

fn parse_args(args: &[String]) -> Result<Options, String> {
    let mut opts =
        Options { json: false, deny_all: false, list_rules: false, paths: Vec::new() };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--json" => opts.json = true,
            "--deny" => match it.next().map(String::as_str) {
                Some("all") => opts.deny_all = true,
                other => {
                    return Err(format!(
                        "--deny takes `all`, got {:?}",
                        other.unwrap_or("<nothing>")
                    ))
                }
            },
            "--list-rules" => opts.list_rules = true,
            "--help" | "-h" => return Err(String::new()),
            other if other.starts_with('-') => {
                return Err(format!("unknown flag {other:?}"));
            }
            path => opts.paths.push(PathBuf::from(path)),
        }
    }
    Ok(opts)
}

fn usage() -> &'static str {
    "usage: xlint [--json] [--deny all] [--list-rules] [paths…]\n\
     \n\
     Lints the workspace's own Rust sources (crates/, src/, tests/;\n\
     vendor/, target/, and fixture corpora are skipped). Without paths\n\
     the current directory is treated as the workspace root.\n\
     \n\
     exit codes: 0 clean or advisory; 1 findings with --deny all; 2 usage/IO error"
}

/// Collects `.rs` files under `root`, sorted for stable output.
fn collect_files(root: &Path, out: &mut Vec<PathBuf>) -> Result<(), String> {
    if root.is_file() {
        if root.extension().is_some_and(|e| e == "rs") {
            out.push(root.to_path_buf());
        }
        return Ok(());
    }
    let entries = std::fs::read_dir(root)
        .map_err(|e| format!("cannot read directory {}: {e}", root.display()))?;
    let mut children: Vec<PathBuf> = Vec::new();
    for entry in entries {
        let entry = entry.map_err(|e| format!("cannot read {}: {e}", root.display()))?;
        children.push(entry.path());
    }
    children.sort();
    for child in children {
        let name = child.file_name().and_then(|n| n.to_str()).unwrap_or("");
        if child.is_dir() {
            if SKIP_DIRS.contains(&name) {
                continue;
            }
            collect_files(&child, out)?;
        } else if name.ends_with(".rs") {
            out.push(child);
        }
    }
    Ok(())
}

/// The workspace-relative, `/`-separated form of `path` that the rule
/// policies key on.
fn rel_path(path: &Path, cwd: &Path) -> String {
    let rel = path.strip_prefix(cwd).unwrap_or(path);
    rel.components()
        .map(|c| c.as_os_str().to_string_lossy())
        .collect::<Vec<_>>()
        .join("/")
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = match parse_args(&args) {
        Ok(o) => o,
        Err(msg) => {
            if !msg.is_empty() {
                eprintln!("xlint: {msg}");
            }
            eprintln!("{}", usage());
            return ExitCode::from(2);
        }
    };

    if opts.list_rules {
        for rule in ALL_RULES {
            println!("{:<4} {:<20} {}", rule.code(), rule.name(), rule.summary());
        }
        return ExitCode::SUCCESS;
    }

    let cwd = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
    let roots: Vec<PathBuf> = if opts.paths.is_empty() {
        // Lint the workspace's own source trees, not the whole tree:
        // this keeps accidental clutter (scratch dirs, checkouts)
        // from breaking the gate.
        ["crates", "src", "tests"]
            .iter()
            .map(|d| cwd.join(d))
            .filter(|p| p.exists())
            .collect()
    } else {
        opts.paths.clone()
    };
    if roots.is_empty() {
        eprintln!("xlint: nothing to lint (no crates/, src/, or tests/ under {})", cwd.display());
        return ExitCode::from(2);
    }

    let mut files = Vec::new();
    for root in &roots {
        if let Err(msg) = collect_files(root, &mut files) {
            eprintln!("xlint: {msg}");
            return ExitCode::from(2);
        }
    }

    let mut findings = Vec::new();
    let mut scanned = 0usize;
    for file in &files {
        let src = match std::fs::read_to_string(file) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("xlint: cannot read {}: {e}", file.display());
                return ExitCode::from(2);
            }
        };
        scanned += 1;
        findings.extend(xlint::analyze_source(&rel_path(file, &cwd), &src));
    }
    findings.sort_by(|a, b| {
        (a.file.as_str(), a.line, a.col, a.rule).cmp(&(b.file.as_str(), b.line, b.col, b.rule))
    });

    for d in &findings {
        if opts.json {
            println!("{}", d.to_json());
        } else {
            println!("{d}");
        }
    }
    eprintln!(
        "xlint: {} finding{} across {} file{} scanned",
        findings.len(),
        if findings.len() == 1 { "" } else { "s" },
        scanned,
        if scanned == 1 { "" } else { "s" },
    );

    if opts.deny_all && !findings.is_empty() {
        ExitCode::from(1)
    } else {
        ExitCode::SUCCESS
    }
}
