//! The six project-invariant rules, all token-level.
//!
//! Each rule walks the comment-free token stream of one file with its
//! [`FileContext`] and emits [`Diagnostic`]s. Waivers are applied by
//! the engine afterwards, so rules stay pure detectors.

use crate::context::{CrateKind, FileContext, FileRole, UNSAFE_ALLOWLIST};
use crate::diag::{Diagnostic, Rule};
use crate::lexer::{Token, TokenKind};

/// A token stream view with comments removed but source access kept.
pub struct Code<'s> {
    src: &'s str,
    toks: Vec<Token>,
}

impl<'s> Code<'s> {
    /// Filters comments out of `tokens`.
    pub fn new(src: &'s str, tokens: &[Token]) -> Code<'s> {
        Code {
            src,
            toks: tokens
                .iter()
                .copied()
                .filter(|t| !matches!(t.kind, TokenKind::LineComment | TokenKind::BlockComment))
                .collect(),
        }
    }

    fn text(&self, i: usize) -> &'s str {
        self.toks.get(i).map(|t| t.text(self.src)).unwrap_or("")
    }

    fn kind(&self, i: usize) -> Option<TokenKind> {
        self.toks.get(i).map(|t| t.kind)
    }

    fn at(&self, i: usize) -> Option<&Token> {
        self.toks.get(i)
    }
}

fn diag(ctx: &FileContext, tok: &Token, rule: Rule, message: String) -> Diagnostic {
    Diagnostic { file: ctx.path.clone(), line: tok.line, col: tok.col, rule, message }
}

/// Runs every rule over one file.
pub fn run_all(ctx: &FileContext, src: &str, tokens: &[Token]) -> Vec<Diagnostic> {
    let code = Code::new(src, tokens);
    let mut out = Vec::new();
    determinism_source(ctx, &code, &mut out);
    rng_discipline(ctx, &code, &mut out);
    map_order(ctx, &code, &mut out);
    panic_path(ctx, &code, &mut out);
    safety_comment(ctx, src, tokens, &mut out);
    forbid_coverage(ctx, &code, &mut out);
    out
}

/// R1: wall clocks and OS entropy.
///
/// * Sim crates (pushsim, core, dynamics, noise, analysis, lp, the
///   facade and root tests): forbidden everywhere, tests included —
///   the fixed-seed digest suites must never see a clock.
/// * Harness crates (bench, serve, xlint): forbidden in production
///   code (timing/timeout sites carry waivers so each is visible and
///   justified); test code may use deadlines freely.
fn determinism_source(ctx: &FileContext, code: &Code<'_>, out: &mut Vec<Diagnostic>) {
    for i in 0..code.toks.len() {
        if code.kind(i) != Some(TokenKind::Ident) {
            continue;
        }
        let what = match code.text(i) {
            "thread_rng" => "OS-seeded RNG `thread_rng`",
            "from_entropy" => "OS-seeded RNG constructor `from_entropy`",
            "Instant" | "SystemTime" if code.text(i + 1) == ":" && code.text(i + 3) == "now" => {
                "wall-clock read"
            }
            _ => continue,
        };
        let tok = match code.at(i) {
            Some(t) => t,
            None => continue,
        };
        let in_scope = match ctx.kind {
            CrateKind::Sim => true,
            CrateKind::Harness => ctx.role == FileRole::Prod && !ctx.is_test_line(tok.line),
        };
        if !in_scope {
            continue;
        }
        let name = code.text(i);
        out.push(diag(
            ctx,
            tok,
            Rule::DeterminismSource,
            format!(
                "{what} `{name}` in {} code: simulation output must be a pure function of \
                 the run seed{}",
                ctx.crate_name,
                if ctx.kind == CrateKind::Harness {
                    "; harness timing sites need a written waiver"
                } else {
                    ""
                }
            ),
        ));
    }
}

/// RNG constructor names whose seed argument R2 inspects.
const RNG_CONSTRUCTORS: [&str; 3] = ["seed_from_u64", "from_seed", "from_rng"];

/// R2: RNG construction discipline.
///
/// In production code, every RNG constructor call must visibly flow
/// from the run seed: its argument tokens must reference
/// `derive_seed`, an identifier containing `seed`, or a `*_SEED_SALT`
/// constant. Test code is exempt — fixed literal seeds are exactly
/// what reproducible tests should use.
fn rng_discipline(ctx: &FileContext, code: &Code<'_>, out: &mut Vec<Diagnostic>) {
    for i in 0..code.toks.len() {
        if code.kind(i) != Some(TokenKind::Ident)
            || !RNG_CONSTRUCTORS.contains(&code.text(i))
            || code.text(i + 1) != "("
        {
            continue;
        }
        let tok = match code.at(i) {
            Some(t) => t,
            None => continue,
        };
        if ctx.role == FileRole::Test || ctx.is_test_line(tok.line) {
            continue;
        }
        // Scan the balanced argument list for a seed-ish reference.
        let mut depth = 0i32;
        let mut j = i + 1;
        let mut seeded = false;
        while let Some(k) = code.kind(j) {
            match (k, code.text(j)) {
                (TokenKind::Punct, "(") => depth += 1,
                (TokenKind::Punct, ")") => {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                (TokenKind::Ident, name) => {
                    let lower = name.to_ascii_lowercase();
                    if lower.contains("seed") || lower.contains("salt") {
                        seeded = true;
                    }
                }
                _ => {}
            }
            j += 1;
        }
        if !seeded {
            out.push(diag(
                ctx,
                tok,
                Rule::RngDiscipline,
                format!(
                    "RNG constructed by `{}` without a visible seed lineage: derive the \
                     seed via `derive_seed`/a seed-salted expression, or waive with the \
                     reason this stream is reproducible",
                    code.text(i)
                ),
            ));
        }
    }
}

/// R3: hash-order containers in production code.
///
/// `HashMap`/`HashSet` iterate in randomized order; anything that
/// formats output or feeds a digest must use `BTreeMap`/`BTreeSet` or
/// sort first. Import lines are skipped (the use site is what
/// matters); waivers are for collections that are provably
/// membership/lookup-only.
fn map_order(ctx: &FileContext, code: &Code<'_>, out: &mut Vec<Diagnostic>) {
    for i in 0..code.toks.len() {
        if code.kind(i) != Some(TokenKind::Ident)
            || !matches!(code.text(i), "HashMap" | "HashSet")
        {
            continue;
        }
        let tok = match code.at(i) {
            Some(t) => t,
            None => continue,
        };
        if ctx.role == FileRole::Test || ctx.is_test_line(tok.line) {
            continue;
        }
        // Skip `use …` declarations: flagging both the import and the
        // use sites would demand duplicate waivers.
        let first_on_line = code
            .toks
            .iter()
            .find(|t| t.line == tok.line)
            .map(|t| t.text(code.src))
            .unwrap_or("");
        if first_on_line == "use" || first_on_line == "pub" && line_starts_use(code, tok.line) {
            continue;
        }
        out.push(diag(
            ctx,
            tok,
            Rule::MapOrder,
            format!(
                "`{}` has nondeterministic iteration order; use the BTree equivalent, \
                 sort before anything ordered escapes, or waive with proof it is only \
                 used for membership/lookup",
                code.text(i)
            ),
        ));
    }
}

fn line_starts_use(code: &Code<'_>, line: u32) -> bool {
    let mut on_line = code.toks.iter().filter(|t| t.line == line);
    matches!(
        (on_line.next().map(|t| t.text(code.src)), on_line.next().map(|t| t.text(code.src))),
        (Some("pub"), Some("use")) | (Some("use"), _)
    )
}

/// Macros whose expansion is a panic (or compiles to one on failure).
const PANIC_MACROS: [&str; 6] =
    ["panic", "unreachable", "todo", "unimplemented", "assert", "assert_eq"];

/// R4: panic paths in the service.
///
/// Applies to production code of `crates/serve` only: a worker or
/// connection thread that panics on untrusted bytes is a remote DoS,
/// so `unwrap`/`expect`, panicking macros, and bounds-checked
/// indexing are all forbidden there. Test modules are exempt.
fn panic_path(ctx: &FileContext, code: &Code<'_>, out: &mut Vec<Diagnostic>) {
    if ctx.crate_name != "serve" || ctx.role != FileRole::Prod {
        return;
    }
    for i in 0..code.toks.len() {
        let tok = match code.at(i) {
            Some(t) => t,
            None => continue,
        };
        if ctx.is_test_line(tok.line) {
            continue;
        }
        match tok.kind {
            TokenKind::Ident => {
                let name = code.text(i);
                if matches!(name, "unwrap" | "expect")
                    && code.text(i + 1) == "("
                    && i > 0
                    && code.text(i - 1) == "."
                {
                    out.push(diag(
                        ctx,
                        tok,
                        Rule::PanicPath,
                        format!(
                            "`.{name}()` in request-handling code can panic a worker on \
                             untrusted input; return a typed error (400/500 response) instead"
                        ),
                    ));
                }
                if (PANIC_MACROS.contains(&name) || name == "assert_ne")
                    && code.text(i + 1) == "!"
                {
                    out.push(diag(
                        ctx,
                        tok,
                        Rule::PanicPath,
                        format!(
                            "`{name}!` in request-handling code aborts a worker thread; \
                             degrade to an error response instead"
                        ),
                    ));
                }
            }
            TokenKind::Punct if code.text(i) == "[" => {
                // Index/slice expression: `[` directly after an
                // identifier, `)`, or `]`. Array literals, types, and
                // attributes follow `=`, `(`, `,`, `&`, `#`, `!`, …
                // and are not flagged.
                if i == 0 {
                    continue;
                }
                let prev_is_expr = match code.kind(i - 1) {
                    Some(TokenKind::Ident) => !is_keyword_non_expr(code.text(i - 1)),
                    Some(TokenKind::Punct) => matches!(code.text(i - 1), ")" | "]"),
                    _ => false,
                };
                if prev_is_expr {
                    out.push(diag(
                        ctx,
                        tok,
                        Rule::PanicPath,
                        "indexing/slicing in request-handling code panics when out of \
                         bounds; use `.get(…)` and handle the miss"
                            .to_string(),
                    ));
                }
            }
            _ => {}
        }
    }
}

/// Keywords after which a `[` cannot be an index expression.
fn is_keyword_non_expr(text: &str) -> bool {
    matches!(
        text,
        "mut" | "ref" | "in" | "as" | "dyn" | "impl" | "where" | "return" | "break" | "const"
    )
}

/// R5: every `unsafe` keyword needs a `// SAFETY:` comment on the
/// same line or in the contiguous comment block directly above it
/// (a multi-line justification is encouraged, not penalized).
/// Applies everywhere, tests included — an unjustified `unsafe` is
/// never fine.
fn safety_comment(ctx: &FileContext, src: &str, tokens: &[Token], out: &mut Vec<Diagnostic>) {
    use std::collections::BTreeSet;
    let mut safety_lines: BTreeSet<u32> = BTreeSet::new();
    let mut comment_lines: BTreeSet<u32> = BTreeSet::new();
    let mut code_lines: BTreeSet<u32> = BTreeSet::new();
    for t in tokens {
        if matches!(t.kind, TokenKind::LineComment | TokenKind::BlockComment) {
            let text = t.text(src);
            for (off, line_text) in text.lines().enumerate() {
                let line = t.line + off as u32;
                comment_lines.insert(line);
                if line_text.contains("SAFETY:") {
                    safety_lines.insert(line);
                }
            }
        } else {
            code_lines.insert(t.line);
        }
    }
    for tok in tokens {
        if tok.kind != TokenKind::Ident || tok.text(src) != "unsafe" {
            continue;
        }
        let mut near = safety_lines.contains(&tok.line);
        // Walk upward through comment-only lines (blank lines break
        // the block: the justification must touch the unsafe code).
        let mut line = tok.line;
        while !near && line > 1 {
            line -= 1;
            if code_lines.contains(&line) || !comment_lines.contains(&line) {
                break;
            }
            near = safety_lines.contains(&line);
        }
        if !near {
            out.push(diag(
                ctx,
                tok,
                Rule::SafetyComment,
                "`unsafe` without an adjacent `// SAFETY:` comment; state the invariant \
                 that makes this sound"
                    .to_string(),
            ));
        }
    }
}

/// R6: crate roots must forbid `unsafe_code`.
///
/// Allowlisted crates (see [`UNSAFE_ALLOWLIST`]) must instead carry
/// `#![deny(unsafe_code)]` so exceptions are scoped per-module with
/// `#[allow(unsafe_code)]` and each block still answers to R5.
fn forbid_coverage(ctx: &FileContext, code: &Code<'_>, out: &mut Vec<Diagnostic>) {
    let is_crate_root = ctx.path == "src/lib.rs"
        || (ctx.path.starts_with("crates/") && ctx.path.ends_with("/src/lib.rs"));
    if !is_crate_root {
        return;
    }
    let allowlisted = UNSAFE_ALLOWLIST.contains(&ctx.crate_name.as_str());
    let wanted = if allowlisted { "deny" } else { "forbid" };
    let mut found = false;
    for i in 0..code.toks.len() {
        if code.text(i) == "#"
            && code.text(i + 1) == "!"
            && code.text(i + 2) == "["
            && code.text(i + 3) == wanted
            && code.text(i + 4) == "("
            && code.text(i + 5) == "unsafe_code"
        {
            found = true;
            break;
        }
    }
    if !found {
        let pos = Token { kind: TokenKind::Punct, start: 0, end: 0, line: 1, col: 1 };
        out.push(diag(
            ctx,
            &pos,
            Rule::ForbidCoverage,
            if allowlisted {
                format!(
                    "crate `{}` is on the unsafe allowlist and must carry \
                     `#![deny(unsafe_code)]` at the crate root (scoping exceptions with \
                     per-module `#[allow(unsafe_code)]`)",
                    ctx.crate_name
                )
            } else {
                format!(
                    "crate `{}` must carry `#![forbid(unsafe_code)]` at the crate root \
                     (or join the checked-in allowlist in xlint with a reason)",
                    ctx.crate_name
                )
            },
        ));
    }
}
