//! A hand-rolled, total lexer for the subset of Rust tokenization the
//! rule engine needs.
//!
//! The workspace builds offline with no `syn`/`proc-macro2`/`rustc`
//! access, so `xlint` tokenizes source itself. The lexer is *total*:
//! it never panics and never rejects input — malformed or truncated
//! constructs (an unterminated string, an unclosed block comment)
//! simply extend to end-of-input. What it must get right, because the
//! rules key off identifiers and comments, is what counts as *code*
//! versus *text*:
//!
//! * line comments (`//`, `///`, `//!`) and **nested** block comments
//!   (`/* /* */ */`), kept as tokens so waiver pragmas can be read
//!   from them;
//! * string-ish literals in all their Rust forms — `"…"` with
//!   escapes, raw strings `r"…"`/`r##"…"##` (no escapes, hash-counted
//!   terminator), byte strings `b"…"`, raw byte strings `br#"…"#`,
//!   and C strings `c"…"` — so that an identifier-looking word inside
//!   a literal is never mistaken for code;
//! * char literals `'x'`, `'\n'`, `'\u{1F600}'` versus lifetimes
//!   `'a`, `'static`;
//! * identifiers (keywords included; the rules match them by text),
//!   raw identifiers `r#match`, numbers, and single-character
//!   punctuation.
//!
//! Every token carries its byte span and 1-based line/column, and the
//! spans of consecutive tokens never overlap and only ever move
//! forward — properties the proptest suite pins down.

/// What a token is; the engine mostly switches on this.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword (`HashMap`, `unsafe`, `r#match`).
    Ident,
    /// Lifetime such as `'a` or `'static` (no closing quote).
    Lifetime,
    /// Any string-ish literal: `"…"`, `r#"…"#`, `b"…"`, `br"…"`, `c"…"`.
    Str,
    /// Char or byte-char literal: `'x'`, `b'\n'`.
    Char,
    /// Numeric literal (value never needed, only its span).
    Num,
    /// One character of punctuation (`.`, `[`, `!`, `#`, …).
    Punct,
    /// `// …` to end of line (doc comments included).
    LineComment,
    /// `/* … */`, nesting handled; unterminated runs to end of input.
    BlockComment,
}

/// One lexed token. The text is `&src[start..end]`.
#[derive(Debug, Clone, Copy)]
pub struct Token {
    /// Token class.
    pub kind: TokenKind,
    /// Byte offset of the first byte, inclusive.
    pub start: usize,
    /// Byte offset past the last byte, exclusive.
    pub end: usize,
    /// 1-based line of the first byte.
    pub line: u32,
    /// 1-based byte column of the first byte within its line.
    pub col: u32,
}

impl Token {
    /// The token's text within its source.
    pub fn text<'s>(&self, src: &'s str) -> &'s str {
        src.get(self.start..self.end).unwrap_or("")
    }
}

struct Cursor<'s> {
    src: &'s str,
    /// Byte offset of the next unconsumed char.
    pos: usize,
    line: u32,
    /// Byte offset where the current line started.
    line_start: usize,
}

impl<'s> Cursor<'s> {
    fn peek(&self) -> Option<char> {
        self.src.get(self.pos..).and_then(|s| s.chars().next())
    }

    fn peek2(&self) -> Option<char> {
        let mut it = self.src.get(self.pos..)?.chars();
        it.next();
        it.next()
    }

    fn peek3(&self) -> Option<char> {
        let mut it = self.src.get(self.pos..)?.chars();
        it.next();
        it.next();
        it.next()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek()?;
        self.pos += c.len_utf8();
        if c == '\n' {
            self.line += 1;
            self.line_start = self.pos;
        }
        Some(c)
    }

    fn col(&self) -> u32 {
        (self.pos - self.line_start) as u32 + 1
    }
}

fn is_ident_start(c: char) -> bool {
    c == '_' || c.is_alphabetic()
}

fn is_ident_continue(c: char) -> bool {
    c == '_' || c.is_alphanumeric()
}

/// Tokenizes `src` completely. Total: never panics, never fails;
/// unterminated constructs extend to the end of the input.
pub fn lex(src: &str) -> Vec<Token> {
    let mut cur = Cursor { src, pos: 0, line: 1, line_start: 0 };
    let mut out = Vec::new();
    while let Some(c) = cur.peek() {
        let start = cur.pos;
        let line = cur.line;
        let col = cur.col();
        let kind = match c {
            c if c.is_whitespace() => {
                cur.bump();
                continue;
            }
            '/' if cur.peek2() == Some('/') => {
                lex_line_comment(&mut cur);
                TokenKind::LineComment
            }
            '/' if cur.peek2() == Some('*') => {
                lex_block_comment(&mut cur);
                TokenKind::BlockComment
            }
            '"' => {
                lex_string(&mut cur);
                TokenKind::Str
            }
            'r' if matches!(cur.peek2(), Some('"' | '#')) && raw_string_ahead(&cur, 1) => {
                cur.bump(); // r
                lex_raw_string(&mut cur);
                TokenKind::Str
            }
            'b' | 'c' if cur.peek2() == Some('"') => {
                cur.bump(); // b / c
                lex_string(&mut cur);
                TokenKind::Str
            }
            'b' if cur.peek2() == Some('r') && raw_string_ahead(&cur, 2) => {
                cur.bump(); // b
                cur.bump(); // r
                lex_raw_string(&mut cur);
                TokenKind::Str
            }
            'b' if cur.peek2() == Some('\'') => {
                cur.bump(); // b
                cur.bump(); // '
                lex_char_rest(&mut cur);
                TokenKind::Char
            }
            'r' if cur.peek2() == Some('#')
                && cur.peek3().map(is_ident_start).unwrap_or(false) =>
            {
                // Raw identifier r#ident.
                cur.bump(); // r
                cur.bump(); // #
                lex_ident(&mut cur);
                TokenKind::Ident
            }
            '\'' => lex_quote(&mut cur),
            c if is_ident_start(c) => {
                lex_ident(&mut cur);
                TokenKind::Ident
            }
            c if c.is_ascii_digit() => {
                lex_number(&mut cur);
                TokenKind::Num
            }
            _ => {
                cur.bump();
                TokenKind::Punct
            }
        };
        out.push(Token { kind, start, end: cur.pos, line, col });
    }
    out
}

fn lex_line_comment(cur: &mut Cursor<'_>) {
    while let Some(c) = cur.peek() {
        if c == '\n' {
            break;
        }
        cur.bump();
    }
}

fn lex_block_comment(cur: &mut Cursor<'_>) {
    cur.bump(); // /
    cur.bump(); // *
    let mut depth = 1u32;
    while depth > 0 {
        match (cur.peek(), cur.peek2()) {
            (Some('/'), Some('*')) => {
                cur.bump();
                cur.bump();
                depth += 1;
            }
            (Some('*'), Some('/')) => {
                cur.bump();
                cur.bump();
                depth -= 1;
            }
            (Some(_), _) => {
                cur.bump();
            }
            (None, _) => break, // unterminated: runs to EOF
        }
    }
}

/// Cooked string body starting at the opening `"`.
fn lex_string(cur: &mut Cursor<'_>) {
    cur.bump(); // "
    while let Some(c) = cur.bump() {
        match c {
            '\\' => {
                cur.bump(); // the escaped char, whatever it is
            }
            '"' => return,
            _ => {}
        }
    }
}

/// Whether, `offset` chars ahead of the cursor (past a leading `r` or
/// `br`), zero or more `#` are followed by a `"` — i.e. a raw string
/// opener rather than `r#ident` or plain `r` as an identifier.
fn raw_string_ahead(cur: &Cursor<'_>, offset: usize) -> bool {
    let Some(rest) = cur.src.get(cur.pos..) else { return false };
    let mut chars = rest.chars().skip(offset);
    loop {
        match chars.next() {
            Some('#') => continue,
            Some('"') => return true,
            _ => return false,
        }
    }
}

/// Raw string with the cursor on the first `#` or the `"`.
fn lex_raw_string(cur: &mut Cursor<'_>) {
    let mut hashes = 0usize;
    while cur.peek() == Some('#') {
        cur.bump();
        hashes += 1;
    }
    if cur.peek() != Some('"') {
        return; // not actually a raw string; consume nothing more
    }
    cur.bump(); // "
    // Scan for `"` followed by `hashes` `#`s.
    'outer: while let Some(c) = cur.bump() {
        if c == '"' {
            let Some(rest) = cur.src.get(cur.pos..) else { break };
            let mut it = rest.chars();
            for _ in 0..hashes {
                if it.next() != Some('#') {
                    continue 'outer;
                }
            }
            for _ in 0..hashes {
                cur.bump();
            }
            return;
        }
    }
}

/// After a `'`: decide char literal vs lifetime.
fn lex_quote(cur: &mut Cursor<'_>) -> TokenKind {
    cur.bump(); // '
    match cur.peek() {
        // Escape: definitely a char literal.
        Some('\\') => {
            lex_char_rest(cur);
            TokenKind::Char
        }
        // `'x'` (any single char, multibyte included) is a char
        // literal; `'x` followed by anything else starts a lifetime.
        Some(c) if cur.peek2() == Some('\'') && c != '\'' => {
            lex_char_rest(cur);
            TokenKind::Char
        }
        Some(c) if is_ident_start(c) => {
            lex_ident(cur);
            TokenKind::Lifetime
        }
        // `''` or a stray quote before punctuation: treat the quote
        // alone as punctuation-ish; emit as Char to stay total.
        _ => TokenKind::Char,
    }
}

/// Body of a char literal after the opening quote (and possibly a
/// leading escape backslash still unconsumed).
fn lex_char_rest(cur: &mut Cursor<'_>) {
    while let Some(c) = cur.bump() {
        match c {
            '\\' => {
                cur.bump();
            }
            '\'' => return,
            '\n' => return, // unterminated on this line; stop leaking
            _ => {}
        }
    }
}

fn lex_ident(cur: &mut Cursor<'_>) {
    while let Some(c) = cur.peek() {
        if is_ident_continue(c) {
            cur.bump();
        } else {
            break;
        }
    }
}

fn lex_number(cur: &mut Cursor<'_>) {
    cur.bump(); // first digit
    while let Some(c) = cur.peek() {
        if is_ident_continue(c) {
            // Digits, hex digits, type suffixes (0xFF, 10_000, 3usize).
            cur.bump();
        } else if c == '.' {
            // Consume a decimal point only when a digit follows, so
            // `0..n` stays `0` `.` `.` `n` and `1.5` stays one token.
            match cur.peek2() {
                Some(d) if d.is_ascii_digit() => {
                    cur.bump();
                }
                _ => break,
            }
        } else {
            break;
        }
    }
}
