//! Per-file analysis context: which crate a file belongs to, what
//! role it plays (production vs test/bench), where its `#[cfg(test)]`
//! regions are, and which waiver pragmas it carries.

use crate::diag::{Diagnostic, Rule};
use crate::lexer::{Token, TokenKind};

/// Determinism policy class of a crate, derived from its directory.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CrateKind {
    /// Simulation stack: every scientific claim flows through here, so
    /// clocks/entropy are forbidden even in tests.
    Sim,
    /// Harness code (bench driver, serve, xlint itself): may measure
    /// wall time in production code with a written waiver.
    Harness,
}

/// Crates whose code is part of the deterministic simulation stack.
/// `root` covers the facade `src/` and the top-level `tests/`.
const SIM_CRATES: [&str; 7] = ["analysis", "core", "dynamics", "lp", "noise", "pushsim", "root"];

/// Crates allowed to contain `unsafe` (R6): they must carry
/// `#![deny(unsafe_code)]` at the crate root and scope each exception
/// with `#[allow(unsafe_code)]` on a module, every block still owing a
/// `// SAFETY:` comment (R5). Keep this list justified:
///
/// * `serve` — declares the C `signal(2)` entry point directly in
///   `signal.rs` because the offline workspace has no libc crate.
pub const UNSAFE_ALLOWLIST: [&str; 1] = ["serve"];

/// What kind of code a file holds, from its path alone.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FileRole {
    /// Library/binary source under `src/`.
    Prod,
    /// Integration tests, benches, examples.
    Test,
}

/// Everything the rules need to know about one file.
pub struct FileContext {
    /// Workspace-relative path, `/`-separated.
    pub path: String,
    /// Crate directory name (`pushsim`, `serve`, …; `root` for the
    /// facade `src/` and top-level `tests/`).
    pub crate_name: String,
    /// Policy class of the crate.
    pub kind: CrateKind,
    /// Production or test/bench code, from the path.
    pub role: FileRole,
    /// Line ranges (inclusive) covered by `#[cfg(test)]` items.
    pub test_spans: Vec<(u32, u32)>,
    /// Parsed waiver pragmas.
    pub waivers: Vec<Waiver>,
    /// Waiver pragmas that failed to parse (reported as W1).
    pub malformed: Vec<Diagnostic>,
}

/// One `// xlint: allow(rule, …) — reason` pragma.
#[derive(Debug)]
pub struct Waiver {
    /// Rules the pragma waives.
    pub rules: Vec<Rule>,
    /// The source line the waiver applies to: its own line for a
    /// trailing pragma, the next code line for an own-line pragma.
    pub covers_line: u32,
    /// Where the pragma itself sits (for W2 reporting).
    pub line: u32,
    pub col: u32,
    /// Set once a finding was suppressed by this waiver.
    pub used: std::cell::Cell<bool>,
}

impl FileContext {
    /// Builds the context for `path` (workspace-relative) from its
    /// token stream.
    pub fn build(path: &str, src: &str, tokens: &[Token]) -> FileContext {
        let (crate_name, role) = classify_path(path);
        let kind = if SIM_CRATES.contains(&crate_name.as_str()) {
            CrateKind::Sim
        } else {
            CrateKind::Harness
        };
        let test_spans = find_cfg_test_spans(tokens, src);
        let mut waivers = Vec::new();
        let mut malformed = Vec::new();
        collect_waivers(path, src, tokens, &mut waivers, &mut malformed);
        FileContext { path: path.to_string(), crate_name, kind, role, test_spans, waivers, malformed }
    }

    /// Whether `line` is test code: a test-role file, or inside a
    /// `#[cfg(test)]` item of a production file.
    pub fn is_test_line(&self, line: u32) -> bool {
        self.role == FileRole::Test
            || self.test_spans.iter().any(|&(lo, hi)| (lo..=hi).contains(&line))
    }

    /// Whether a finding of `rule` at `line` is waived; marks the
    /// waiver used.
    pub fn waived(&self, rule: Rule, line: u32) -> bool {
        if !rule.waivable() {
            return false;
        }
        for w in &self.waivers {
            if w.covers_line == line && w.rules.contains(&rule) {
                w.used.set(true);
                return true;
            }
        }
        false
    }
}

/// Splits a workspace-relative path into (crate name, role).
fn classify_path(path: &str) -> (String, FileRole) {
    let parts: Vec<&str> = path.split('/').collect();
    let (crate_name, rest): (&str, &[&str]) = match parts.as_slice() {
        ["crates", name, rest @ ..] => (name, rest),
        rest => ("root", rest),
    };
    let role = match rest.first().copied() {
        Some("tests" | "benches" | "examples") => FileRole::Test,
        _ => FileRole::Prod,
    };
    (crate_name.to_string(), role)
}

/// Finds line spans of items annotated `#[cfg(test)]` (the
/// conventional `mod tests { … }`, but any braced or `;`-terminated
/// item works). Token-level: after the attribute, skip further
/// attributes, then the span runs to the matching close brace of the
/// first `{` — or to the first `;` seen before any `{`.
fn find_cfg_test_spans(tokens: &[Token], src: &str) -> Vec<(u32, u32)> {
    let code: Vec<&Token> = tokens
        .iter()
        .filter(|t| !matches!(t.kind, TokenKind::LineComment | TokenKind::BlockComment))
        .collect();
    let mut spans = Vec::new();
    let mut i = 0;
    while i < code.len() {
        if is_cfg_test_attr(&code, i, src) {
            let attr_line = code[i].line;
            // Skip to past this attribute's closing `]`.
            let mut j = i + 2; // at `cfg`
            let mut bracket = 1i32; // the `[` already seen
            while j < code.len() && bracket > 0 {
                match token_char(&code, j, src) {
                    Some('[') => bracket += 1,
                    Some(']') => bracket -= 1,
                    _ => {}
                }
                j += 1;
            }
            // Skip any further attributes `#[…]`.
            while j < code.len() && token_char(&code, j, src) == Some('#') {
                let mut k = j + 1;
                let mut depth = 0i32;
                let mut entered = false;
                while k < code.len() {
                    match token_char(&code, k, src) {
                        Some('[') => {
                            depth += 1;
                            entered = true;
                        }
                        Some(']') => depth -= 1,
                        _ => {}
                    }
                    k += 1;
                    if entered && depth == 0 {
                        break;
                    }
                }
                j = k;
            }
            // Find the item's extent: first `{` … matching `}`, or a
            // `;` before any brace.
            let mut end_line = attr_line;
            let mut depth = 0i32;
            let mut entered = false;
            while j < code.len() {
                match token_char(&code, j, src) {
                    Some('{') => {
                        depth += 1;
                        entered = true;
                    }
                    Some('}') => depth -= 1,
                    Some(';') if !entered => {
                        end_line = code[j].line;
                        break;
                    }
                    _ => {}
                }
                end_line = code[j].line;
                if entered && depth == 0 {
                    break;
                }
                j += 1;
            }
            spans.push((attr_line, end_line));
            i = j + 1;
        } else {
            i += 1;
        }
    }
    spans
}

fn token_char(code: &[&Token], i: usize, src: &str) -> Option<char> {
    code.get(i).and_then(|t| t.text(src).chars().next())
}

/// Matches `#[cfg(test)]` and `#[cfg(all(test, …))]` starting at
/// `code[i] == '#'`.
fn is_cfg_test_attr(code: &[&Token], i: usize, src: &str) -> bool {
    let text = |k: usize| code.get(k).map(|t| t.text(src)).unwrap_or("");
    if text(i) != "#" || text(i + 1) != "[" || text(i + 2) != "cfg" || text(i + 3) != "(" {
        return false;
    }
    // Within the cfg(...) argument, a bare `test` predicate counts
    // (covers `test` and `all(test, unix)`), but anything under a
    // `not(…)` is skipped so `#[cfg(not(test))]` stays non-test.
    let mut depth = 1i32;
    let mut k = i + 4;
    while k < code.len() && depth > 0 {
        match text(k) {
            "not" if text(k + 1) == "(" => {
                let mut nd = 1i32;
                k += 2;
                while k < code.len() && nd > 0 {
                    match text(k) {
                        "(" => nd += 1,
                        ")" => nd -= 1,
                        _ => {}
                    }
                    k += 1;
                }
                continue;
            }
            "(" => depth += 1,
            ")" => depth -= 1,
            "test" => return true,
            _ => {}
        }
        k += 1;
    }
    false
}

/// Extracts waiver pragmas from comment tokens.
///
/// Grammar: the comment body must *begin* with the directive (so prose
/// that merely mentions the syntax is not parsed), in the shape
/// `allow(rule[, rule…]) — reason` after the `xlint:` marker. The
/// reason — after an optional `—`/`-`/`:` separator — is mandatory
/// and must say something (≥ 10 characters): the whole point of the
/// pragma system is that every exception is justified where it lives.
fn collect_waivers(
    path: &str,
    src: &str,
    tokens: &[Token],
    waivers: &mut Vec<Waiver>,
    malformed: &mut Vec<Diagnostic>,
) {
    for (idx, tok) in tokens.iter().enumerate() {
        if !matches!(tok.kind, TokenKind::LineComment | TokenKind::BlockComment) {
            continue;
        }
        let text = tok.text(src);
        // Strip the comment opener (`//`, `//!`, `/*`, …) and leading
        // whitespace; the directive must come first.
        let body = text.trim_start_matches(['/', '*', '!']).trim_start();
        let Some(directive) = body.strip_prefix("xlint:") else { continue };
        let mut bad = |msg: String| {
            malformed.push(Diagnostic {
                file: path.to_string(),
                line: tok.line,
                col: tok.col,
                rule: Rule::MalformedWaiver,
                message: msg,
            });
        };
        let directive = directive.trim_start();
        let Some(rest) = directive.strip_prefix("allow") else {
            bad(format!(
                "unknown xlint directive {:?}; only `allow(rule, …) — reason` is supported",
                directive.chars().take(24).collect::<String>()
            ));
            continue;
        };
        let rest = rest.trim_start();
        let Some(rest) = rest.strip_prefix('(') else {
            bad("malformed waiver: expected `allow(rule, …)`".to_string());
            continue;
        };
        let Some(close) = rest.find(')') else {
            bad("malformed waiver: unclosed rule list".to_string());
            continue;
        };
        let (list, after) = (&rest[..close], &rest[close + 1..]);
        let mut rules = Vec::new();
        let mut ok = true;
        for name in list.split(',') {
            match Rule::parse(name) {
                Some(r) if r.waivable() => rules.push(r),
                Some(r) => {
                    bad(format!("rule `{}` cannot be waived", r.name()));
                    ok = false;
                }
                None => {
                    bad(format!("unknown rule `{}` in waiver", name.trim()));
                    ok = false;
                }
            }
        }
        if !ok || rules.is_empty() {
            continue;
        }
        // Mandatory reason, after optional separator punctuation. For
        // block comments only look at the first line of the pragma.
        let after = after.lines().next().unwrap_or("");
        let reason = after
            .trim()
            .trim_start_matches(['—', '–', '-', ':', ' '])
            .trim_end_matches("*/")
            .trim();
        if reason.chars().count() < 10 {
            bad(
                "waiver without a written reason; append `— <why this exception is sound>`"
                    .to_string(),
            );
            continue;
        }
        // Trailing pragma (code precedes it on the same line) covers
        // its own line; an own-line pragma covers the next code line.
        let trailing = tokens[..idx].iter().any(|t| {
            t.line == tok.line && !matches!(t.kind, TokenKind::LineComment | TokenKind::BlockComment)
        });
        let covers_line = if trailing {
            tok.line
        } else {
            tokens[idx + 1..]
                .iter()
                .find(|t| !matches!(t.kind, TokenKind::LineComment | TokenKind::BlockComment))
                .map(|t| t.line)
                .unwrap_or(tok.line)
        };
        waivers.push(Waiver {
            rules,
            covers_line,
            line: tok.line,
            col: tok.col,
            used: std::cell::Cell::new(false),
        });
    }
}
