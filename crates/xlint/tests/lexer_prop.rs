//! Property tests for the hand-rolled lexer.
//!
//! The lexer is the foundation the rule engine trusts, so the
//! properties here are its totality contract: any input lexes without
//! panicking; token spans are in-bounds, non-overlapping, and strictly
//! advancing; every byte between tokens is whitespace (nothing is
//! silently dropped); and on structured "fragment soup" — raw strings
//! with varying hash counts, nested block comments, char literals next
//! to lifetimes — known fragment kinds come back as the right tokens.

use proptest::prelude::*;
use xlint::lexer::{lex, TokenKind};

/// Checks the span invariants on one input; returns a message on the
/// first violation.
fn check_invariants(src: &str) -> Result<(), String> {
    let tokens = lex(src);
    let mut prev_end = 0usize;
    for (i, t) in tokens.iter().enumerate() {
        if t.start >= t.end {
            return Err(format!("token {i} has empty span {}..{}", t.start, t.end));
        }
        if t.end > src.len() {
            return Err(format!("token {i} overruns input: {}..{}", t.start, t.end));
        }
        if !src.is_char_boundary(t.start) || !src.is_char_boundary(t.end) {
            return Err(format!("token {i} splits a char: {}..{}", t.start, t.end));
        }
        if t.start < prev_end {
            return Err(format!("token {i} overlaps its predecessor at {}", t.start));
        }
        let gap = &src[prev_end..t.start];
        if !gap.chars().all(char::is_whitespace) {
            return Err(format!("non-whitespace bytes {gap:?} dropped before token {i}"));
        }
        prev_end = t.end;
    }
    let tail = &src[prev_end..];
    if !tail.chars().all(char::is_whitespace) {
        return Err(format!("non-whitespace tail {tail:?} after last token"));
    }
    Ok(())
}

/// Arbitrary character soup, biased towards the lexer's special
/// characters (quotes, hashes, backslashes, comment openers) plus
/// multibyte text the byte-offset bookkeeping must survive.
fn char_soup() -> impl Strategy<Value = String> {
    prop::collection::vec(
        prop::sample::select("\"'\\#/r*b c\n\tXy0_€λ\u{1F600}.[](){}!".chars().collect::<Vec<_>>()),
        0..60,
    )
    .prop_map(|cs| cs.into_iter().collect())
}

/// One source fragment with the token kind its first token must have.
fn fragment() -> impl Strategy<Value = (String, TokenKind)> {
    let word = prop::collection::vec(
        prop::sample::select("abcXYZ_".chars().collect::<Vec<_>>()),
        1..6,
    )
    .prop_map(|cs| cs.into_iter().collect::<String>());
    prop_oneof![
        word.clone().prop_map(|w| (w, TokenKind::Ident)),
        word.clone().prop_map(|w| (format!("r#{w}"), TokenKind::Ident)),
        // Cooked strings, escapes included.
        word.clone().prop_map(|w| (format!("\"{w}\\\"{w}\\\\\""), TokenKind::Str)),
        // Raw strings with 0–3 hashes; body contains a lone quote when
        // at least one hash guards the terminator.
        (word.clone(), 0usize..4).prop_map(|(w, h)| {
            let hashes = "#".repeat(h);
            let body = if h > 0 { format!("{w} \" {w}") } else { w };
            (format!("r{hashes}\"{body}\"{hashes}"), TokenKind::Str)
        }),
        word.clone().prop_map(|w| (format!("b\"{w}\""), TokenKind::Str)),
        // Nested block comment.
        word.clone().prop_map(|w| (format!("/* {w} /* {w} */ {w} */"), TokenKind::BlockComment)),
        Just(("'x'".to_string(), TokenKind::Char)),
        Just(("'\\n'".to_string(), TokenKind::Char)),
        Just(("b'q'".to_string(), TokenKind::Char)),
        word.clone().prop_map(|w| (format!("'_{w}"), TokenKind::Lifetime)),
        (1u64..1_000_000).prop_map(|n| (format!("{n}"), TokenKind::Num)),
        (1u64..255).prop_map(|n| (format!("{n:#x}"), TokenKind::Num)),
        prop::sample::select(".,;()[]{}<>!#&|+-*=".chars().collect::<Vec<_>>())
            .prop_map(|c| (c.to_string(), TokenKind::Punct)),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// Totality on arbitrary text, the kind a corrupted file or a
    /// half-saved editor buffer produces.
    #[test]
    fn arbitrary_input_lexes_clean(src in char_soup()) {
        check_invariants(&src)?;
    }

    /// Totality on inputs rich in the multi-character constructs the
    /// lexer special-cases: quote runs, hash fences, comment openers.
    #[test]
    fn adversarial_soup_lexes_clean(
        parts in prop::collection::vec(
            prop::sample::select(vec![
                "\"", "'", "\\", "r#", "r\"", "br##\"", "b'", "/*", "*/", "//",
                "#\"", "\"#", "'a", "r#match", "0.", "..", "ident", "\n", " ",
            ]),
            0..40,
        )
    ) {
        let src: String = parts.concat();
        check_invariants(&src)?;
    }

    /// Well-formed fragments joined by whitespace tokenize back to
    /// their own kinds: the lexer never misclassifies one construct's
    /// opener as another's when they follow each other.
    #[test]
    fn fragment_soup_round_trips(
        frags in prop::collection::vec(fragment(), 1..12)
    ) {
        let src: String = frags.iter().map(|(s, _)| s.as_str()).collect::<Vec<_>>().join(" ");
        check_invariants(&src)?;
        let tokens = lex(&src);
        // Walk the fragments through the token stream: each fragment's
        // first token starts exactly where the fragment was placed and
        // has the expected kind.
        let mut offset = 0usize;
        let mut ti = 0usize;
        for (text, kind) in &frags {
            while tokens.get(ti).is_some_and(|t| t.start < offset) {
                ti += 1;
            }
            let tok = tokens.get(ti).ok_or_else(|| format!("no token at offset {offset}"))?;
            prop_assert_eq!(tok.start, offset, "fragment {:?} not tokenized at its offset", text);
            prop_assert_eq!(tok.kind, *kind, "fragment {:?} misclassified as {:?}", text, tok.kind);
            offset += text.len() + 1; // the joining space
        }
    }

    /// Line/column bookkeeping: every token's (line, col) agrees with
    /// an independent count over the prefix before it.
    #[test]
    fn positions_agree_with_prefix_count(
        parts in prop::collection::vec(
            prop::sample::select(vec!["ident", "\"s\"", "\n", " ", "/*b*/", "'x'", "42", "λ"]),
            0..30,
        )
    ) {
        let src: String = parts.concat();
        for t in lex(&src) {
            let prefix = &src[..t.start];
            let line = prefix.bytes().filter(|&b| b == b'\n').count() as u32 + 1;
            let col = (t.start - prefix.rfind('\n').map_or(0, |p| p + 1)) as u32 + 1;
            prop_assert_eq!((t.line, t.col), (line, col));
        }
    }
}
