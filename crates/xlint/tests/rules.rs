//! Fixture-driven rule validation.
//!
//! Every file under `tests/fixtures/bad/` produces exactly its
//! expected `(rule, line)` findings when analyzed at a representative
//! workspace path; every file under `tests/fixtures/good/` is clean.
//! The fixture directory is excluded from the real lint walk (the
//! driver skips `fixtures/`), so the corpus can violate rules freely.

use xlint::analyze_source;

/// Runs a fixture as if it lived at `path` and returns `(code, line)`
/// pairs, sorted.
fn findings(path: &str, src: &str) -> Vec<(String, u32)> {
    let mut out: Vec<(String, u32)> = analyze_source(path, src)
        .into_iter()
        .map(|d| (d.rule.code().to_string(), d.line))
        .collect();
    out.sort();
    out
}

fn expect(path: &str, src: &str, want: &[(&str, u32)]) {
    let got = findings(path, src);
    let want: Vec<(String, u32)> =
        want.iter().map(|(c, l)| (c.to_string(), *l)).collect();
    assert_eq!(got, want, "findings mismatch for {path}");
}

#[test]
fn bad_sim_determinism() {
    // Sim crates: clocks and OS entropy are flagged even in tests.
    expect(
        "crates/pushsim/src/sim_determinism.rs",
        include_str!("fixtures/bad/sim_determinism.rs"),
        &[("R1", 6), ("R1", 11), ("R1", 19)],
    );
}

#[test]
fn bad_harness_rng() {
    // Harness crates: prod-only R1; R2 ignores test code entirely.
    expect(
        "crates/bench/src/harness_rng.rs",
        include_str!("fixtures/bad/harness_rng.rs"),
        &[("R1", 10), ("R2", 6)],
    );
}

#[test]
fn bad_map_order() {
    // Both mentions on the declaration line flag; the `use` line is
    // skipped so one waiver per use-site suffices.
    expect(
        "crates/core/src/map_order.rs",
        include_str!("fixtures/bad/map_order.rs"),
        &[("R3", 6), ("R3", 6)],
    );
}

#[test]
fn bad_serve_panics() {
    expect(
        "crates/serve/src/serve_panics.rs",
        include_str!("fixtures/bad/serve_panics.rs"),
        &[("R4", 4), ("R4", 5), ("R4", 6), ("R4", 8)],
    );
}

#[test]
fn serve_panics_only_apply_to_serve() {
    // The identical source in a sim crate draws no R4: panicking on a
    // violated invariant is correct outside the network boundary.
    let src = include_str!("fixtures/bad/serve_panics.rs");
    assert_eq!(findings("crates/pushsim/src/serve_panics.rs", src), vec![]);
}

#[test]
fn bad_unsafe_unaudited() {
    expect(
        "crates/serve/src/unsafe_unaudited.rs",
        include_str!("fixtures/bad/unsafe_unaudited.rs"),
        &[("R5", 4)],
    );
}

#[test]
fn bad_missing_forbid() {
    expect(
        "crates/lp/src/lib.rs",
        include_str!("fixtures/bad/missing_forbid.rs"),
        &[("R6", 1)],
    );
    // Same content off the crate root is not R6's business.
    assert_eq!(
        findings("crates/lp/src/util.rs", include_str!("fixtures/bad/missing_forbid.rs")),
        vec![]
    );
}

#[test]
fn bad_allowlisted_wrong_level() {
    // serve is on the unsafe allowlist: `forbid` at its root would not
    // even compile with the signal module, so R6 demands `deny`.
    expect(
        "crates/serve/src/lib.rs",
        include_str!("fixtures/bad/allowlisted_wrong_level.rs"),
        &[("R6", 1)],
    );
}

#[test]
fn bad_waiver_hygiene() {
    expect(
        "crates/bench/src/waiver_hygiene.rs",
        include_str!("fixtures/bad/waiver_hygiene.rs"),
        &[("W1", 3), ("W1", 6), ("W1", 9), ("W2", 12)],
    );
}

#[test]
fn good_fixtures_are_clean() {
    for (path, src) in [
        ("crates/pushsim/src/sim_seeded.rs", include_str!("fixtures/good/sim_seeded.rs")),
        ("crates/serve/src/serve_graceful.rs", include_str!("fixtures/good/serve_graceful.rs")),
        ("crates/serve/src/unsafe_audited.rs", include_str!("fixtures/good/unsafe_audited.rs")),
        ("crates/lp/src/lib.rs", include_str!("fixtures/good/lib_forbid.rs")),
    ] {
        assert_eq!(findings(path, src), vec![], "expected clean fixture at {path}");
    }
}

#[test]
fn trailing_waiver_covers_its_own_line() {
    let src = "pub fn f() -> std::time::Instant {\n    \
               std::time::Instant::now() // xlint: allow(determinism-source) — timeout math is wall-clock\n\
               }\n";
    assert_eq!(findings("crates/bench/src/t.rs", src), vec![]);
}

#[test]
fn waiver_for_wrong_rule_does_not_suppress() {
    let src = "pub fn f() -> std::time::Instant {\n    \
               // xlint: allow(map-order) — wrong rule, must not suppress R1\n    \
               std::time::Instant::now()\n\
               }\n";
    // The R1 finding survives and the waiver reports unused.
    assert_eq!(
        findings("crates/bench/src/t.rs", src),
        vec![("R1".to_string(), 3), ("W2".to_string(), 2)]
    );
}

#[test]
fn cfg_not_test_is_production_code() {
    let src = "#[cfg(not(test))]\n\
               pub fn f() -> std::time::Instant {\n    \
               std::time::Instant::now()\n\
               }\n";
    assert_eq!(findings("crates/bench/src/t.rs", src), vec![("R1".to_string(), 3)]);
}

#[test]
fn multi_rule_waiver_suppresses_both() {
    let src = "use std::collections::HashMap;\n\
               pub fn f(seed: u64) -> usize {\n    \
               // xlint: allow(map-order, determinism-source) — scratch lookup table keyed per call; clock feeds only a log line\n    \
               let m: HashMap<u64, std::time::Instant> = HashMap::new();\n    \
               m.len()\n\
               }\n";
    assert_eq!(findings("crates/bench/src/t.rs", src), vec![]);
}

#[test]
fn strings_and_comments_are_not_code() {
    // Rule triggers inside literals and comments must not fire: the
    // lexer's whole job is keeping text out of the token stream.
    let src = "pub fn f() -> &'static str {\n    \
               // mentions Instant::now() and thread_rng and buf[0].unwrap()\n    \
               \"Instant::now() HashMap unsafe panic!(buf[0]).unwrap()\"\n\
               }\n";
    assert_eq!(findings("crates/pushsim/src/t.rs", src), vec![]);
    assert_eq!(findings("crates/serve/src/t.rs", src), vec![]);
}
