//! Bad: an unsafe-allowlisted crate using `forbid` — it must use
//! `#![deny(unsafe_code)]` with per-module `#[allow(unsafe_code)]`.

#![forbid(unsafe_code)]

pub mod nothing {}
