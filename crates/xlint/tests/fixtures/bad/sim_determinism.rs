//! Bad: wall clocks and OS entropy inside a simulation crate.

use std::time::Instant;

pub fn timed_run() -> f64 {
    let start = Instant::now();
    start.elapsed().as_secs_f64()
}

pub fn os_entropy() -> u64 {
    let mut rng = rand::thread_rng();
    rng.gen()
}

#[cfg(test)]
mod tests {
    #[test]
    fn clocks_flagged_even_in_tests() {
        let _ = std::time::SystemTime::now();
    }
}
