//! Bad: unseeded RNG lineage and a clock in harness production code.

use rand::{rngs::StdRng, SeedableRng};

pub fn fixed_stream() -> StdRng {
    StdRng::seed_from_u64(12345)
}

pub fn wall_clock_budget() -> std::time::Instant {
    std::time::Instant::now()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn literal_seeds_in_tests_are_fine() {
        let _ = StdRng::seed_from_u64(7);
    }

    #[test]
    fn deadlines_in_harness_tests_are_fine() {
        let _ = std::time::Instant::now();
    }
}
