//! Bad: `unsafe` with no SAFETY justification.

pub fn peek(p: *const u8) -> u8 {
    unsafe { *p }
}
