//! Bad: panic paths in request-handling code.

pub fn parse_first(buf: &[u8]) -> u8 {
    let first = buf[0];
    let text = std::str::from_utf8(buf).unwrap();
    let n: u8 = text.trim().parse().expect("a number");
    if n > 100 {
        panic!("too big");
    }
    first.wrapping_add(n)
}

#[cfg(test)]
mod tests {
    #[test]
    fn asserts_in_tests_are_fine() {
        assert_eq!(super::parse_first(b"9"), 66);
    }
}
