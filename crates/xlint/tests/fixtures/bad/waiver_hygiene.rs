//! Bad: every way a waiver pragma can be wrong.

// xlint: allow(no-such-rule) — the rule name does not exist
pub fn a() {}

// xlint: allow(determinism-source)
pub fn b() {}

// xlint: allow(forbid-coverage) — this rule is not waivable at all
pub fn c() {}

// xlint: allow(map-order) — suppresses nothing on the next line
pub fn d() {}
