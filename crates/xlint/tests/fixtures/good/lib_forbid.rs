//! Good: crate root carries the forbid.

#![forbid(unsafe_code)]

pub fn answer() -> u32 {
    42
}
