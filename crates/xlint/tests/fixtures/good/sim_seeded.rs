//! Good: all randomness flows from the run seed; ordered containers.

use rand::{rngs::StdRng, SeedableRng};
use std::collections::BTreeMap;

pub fn rng_for(run_seed: u64, rep: u64) -> StdRng {
    StdRng::seed_from_u64(run_seed ^ rep.wrapping_mul(0x9e37_79b9))
}

pub fn tally(xs: &[u32]) -> BTreeMap<u32, usize> {
    let mut counts = BTreeMap::new();
    for &x in xs {
        *counts.entry(x).or_insert(0) += 1;
    }
    counts
}
