//! Good: the audit comment sits directly on the unsafe block.

pub fn read_one(p: *const u8) -> u8 {
    // SAFETY: callers pass a pointer derived from a live &u8, so the
    // read is in-bounds and aligned for u8 (alignment 1).
    unsafe { *p }
}
