//! Good: request handling that degrades instead of panicking, and a
//! justified, waived timing site.

pub fn parse_first(buf: &[u8]) -> Result<u8, String> {
    buf.first().copied().ok_or_else(|| "empty body".to_string())
}

pub fn deadline() -> std::time::Instant {
    // xlint: allow(determinism-source) — request deadlines are wall-clock by definition
    std::time::Instant::now()
}
