//! A bounded multi-producer multi-consumer job queue.
//!
//! Producers never block: [`BoundedQueue::try_push`] fails fast when
//! the queue is at capacity so the HTTP layer can answer `503` with
//! `Retry-After` instead of accumulating unbounded work. Consumers
//! block in [`BoundedQueue::pop`] until an item arrives or the queue
//! is closed and drained — closing is how graceful shutdown lets
//! workers finish everything already accepted before exiting.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex, MutexGuard, PoisonError};

struct QueueState<T> {
    items: VecDeque<T>,
    closed: bool,
}

/// A fixed-capacity FIFO shared between the acceptor and the workers.
pub struct BoundedQueue<T> {
    state: Mutex<QueueState<T>>,
    available: Condvar,
    capacity: usize,
}

/// Why [`BoundedQueue::try_push`] rejected an item; the item is
/// handed back so the caller can report on it.
#[derive(Debug)]
pub enum PushError<T> {
    /// The queue holds `capacity` items already.
    Full(T),
    /// The queue was closed for shutdown.
    Closed(T),
}

impl<T> BoundedQueue<T> {
    /// Creates a queue holding at most `capacity` items (min 1).
    pub fn new(capacity: usize) -> Self {
        BoundedQueue {
            state: Mutex::new(QueueState { items: VecDeque::new(), closed: false }),
            available: Condvar::new(),
            capacity: capacity.max(1),
        }
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Items currently waiting (not including jobs already claimed by
    /// a worker).
    pub fn len(&self) -> usize {
        self.lock_state().items.len()
    }

    /// Locks the queue state, recovering from a poisoned mutex: the
    /// state is a plain FIFO whose invariants hold after any partial
    /// mutation, so a panicking peer must not take the whole service
    /// down with it.
    fn lock_state(&self) -> MutexGuard<'_, QueueState<T>> {
        self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Whether the queue is currently empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Enqueues without blocking; fails when full or closed.
    pub fn try_push(&self, item: T) -> Result<(), PushError<T>> {
        let mut state = self.lock_state();
        if state.closed {
            return Err(PushError::Closed(item));
        }
        if state.items.len() >= self.capacity {
            return Err(PushError::Full(item));
        }
        state.items.push_back(item);
        drop(state);
        self.available.notify_one();
        Ok(())
    }

    /// Blocks until an item is available; returns `None` once the
    /// queue has been closed **and** fully drained.
    pub fn pop(&self) -> Option<T> {
        let mut state = self.lock_state();
        loop {
            if let Some(item) = state.items.pop_front() {
                return Some(item);
            }
            if state.closed {
                return None;
            }
            state = self.available.wait(state).unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// Stops accepting new items and wakes all blocked consumers;
    /// items already queued are still handed out by [`pop`](Self::pop).
    pub fn close(&self) {
        self.lock_state().closed = true;
        self.available.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn rejects_when_full_and_recovers_after_pop() {
        let q = BoundedQueue::new(2);
        q.try_push(1).unwrap();
        q.try_push(2).unwrap();
        assert!(matches!(q.try_push(3), Err(PushError::Full(3))));
        assert_eq!(q.pop(), Some(1));
        q.try_push(3).unwrap();
        assert_eq!(q.len(), 2);
    }

    #[test]
    fn close_drains_then_returns_none() {
        let q = BoundedQueue::new(4);
        q.try_push("a").unwrap();
        q.close();
        assert!(matches!(q.try_push("b"), Err(PushError::Closed("b"))));
        assert_eq!(q.pop(), Some("a"));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn close_wakes_blocked_consumers() {
        let q = Arc::new(BoundedQueue::<u32>::new(1));
        let q2 = Arc::clone(&q);
        let h = std::thread::spawn(move || q2.pop());
        std::thread::sleep(std::time::Duration::from_millis(20));
        q.close();
        assert_eq!(h.join().unwrap(), None);
    }

    #[test]
    fn items_flow_producer_to_consumer() {
        let q = Arc::new(BoundedQueue::new(8));
        let q2 = Arc::clone(&q);
        let consumer = std::thread::spawn(move || {
            let mut got = Vec::new();
            while let Some(v) = q2.pop() {
                got.push(v);
            }
            got
        });
        for i in 0..20 {
            loop {
                match q.try_push(i) {
                    Ok(()) => break,
                    Err(PushError::Full(_)) => std::thread::yield_now(),
                    Err(PushError::Closed(_)) => unreachable!(),
                }
            }
        }
        q.close();
        let got = consumer.join().unwrap();
        assert_eq!(got, (0..20).collect::<Vec<_>>());
    }
}
