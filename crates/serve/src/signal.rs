//! Minimal SIGINT/SIGTERM latching without a libc crate.
//!
//! The workspace builds offline with no external dependencies, so
//! instead of `signal-hook`/`libc` this module declares the C
//! `signal(2)` entry point directly (std already links libc on unix)
//! and installs an async-signal-safe handler that only stores into an
//! atomic. The serve loop polls [`triggered`] and begins graceful
//! shutdown when it flips.

use std::sync::atomic::{AtomicBool, Ordering};

static TRIGGERED: AtomicBool = AtomicBool::new(false);

const SIGINT: i32 = 2;
const SIGTERM: i32 = 15;

#[cfg(unix)]
extern "C" fn on_signal(_signum: i32) {
    TRIGGERED.store(true, Ordering::SeqCst);
}

/// Installs handlers for SIGINT and SIGTERM that latch [`triggered`].
/// On non-unix targets this is a no-op (ctrl-c terminates the
/// process; graceful shutdown remains reachable via the HTTP
/// endpoint).
#[cfg(unix)]
pub fn install() {
    extern "C" {
        fn signal(signum: i32, handler: extern "C" fn(i32)) -> isize;
    }
    // SAFETY: `signal` is declared with the signature POSIX specifies
    // and std already links libc on unix targets. The handler we
    // install is async-signal-safe: `on_signal` only performs a
    // relaxed-compatible atomic store into a `static AtomicBool`, and
    // never allocates, locks, or calls back into Rust runtime state.
    unsafe {
        signal(SIGINT, on_signal);
        signal(SIGTERM, on_signal);
    }
}

/// See the unix variant; this no-op keeps callers portable.
#[cfg(not(unix))]
pub fn install() {
    let _ = (SIGINT, SIGTERM);
}

/// Whether a termination signal has been received since [`install`].
pub fn triggered() -> bool {
    TRIGGERED.load(Ordering::SeqCst)
}

/// Testing hook: latches the flag as if a signal had arrived.
pub fn trigger_for_test() {
    TRIGGERED.store(true, Ordering::SeqCst);
}
