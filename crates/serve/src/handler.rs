//! The domain-logic seam between the server and scenario execution.
//!
//! `noisy-serve` is deliberately ignorant of `ScenarioSpec` and
//! `Runner`; everything it needs from the domain is expressed by
//! [`JobHandler`]. The production implementation lives in
//! `noisy_bench::service` and wires submissions through the existing
//! `Runner`; tests use small mocks.

use std::io::Write;

/// The result of planning a submission body.
pub struct Plan<J> {
    /// The executable job.
    pub job: J,
    /// Stable content digest of the whole submission — the key under
    /// which the finished response body is cached. Two submissions
    /// with equal digests must produce identical output bytes.
    pub digest: u64,
    /// When the job decomposes into independently cacheable sweep
    /// cells, the per-cell content digests in output order. `None`
    /// means the job only runs monolithically via
    /// [`JobHandler::run`]. Cell keys must not collide with whole-job
    /// digests (handlers salt them).
    pub cells: Option<Vec<u64>>,
}

/// Executes submitted jobs on behalf of the server.
///
/// Implementations must be shareable across worker threads. All
/// methods are called without any server lock held, so they may take
/// arbitrarily long.
pub trait JobHandler: Send + Sync + 'static {
    /// The planned, validated job type.
    type Job: Send + Sync + 'static;

    /// Parses and validates a request body into a job plus its cache
    /// keys. Errors become `400` responses with the message as body.
    fn plan(&self, body: &str) -> Result<Plan<Self::Job>, String>;

    /// Runs the whole job, streaming output to `sink`. Used when the
    /// plan has no cells, and expected to produce bytes identical to
    /// the concatenated rendered cells when it does.
    fn run(&self, job: &Self::Job, sink: &mut dyn Write) -> Result<(), String>;

    /// Computes the data rows of cell `index` (0-based, in plan
    /// order). Only called when the plan listed cells. The returned
    /// rows must be position-independent: the same cell digest must
    /// yield the same rows no matter which submission computed them.
    fn run_cell(&self, job: &Self::Job, index: usize) -> Result<Vec<Vec<String>>, String>;

    /// Renders cell `index`'s rows (freshly computed or from cache)
    /// into the job's output byte stream.
    fn render_cell(&self, job: &Self::Job, index: usize, rows: &[Vec<String>]) -> String;
}
