//! A concurrent load-test harness for the scenario service.
//!
//! Drives N client threads against a running server, each submitting
//! the same spec and reading the streamed result back, verifying
//! every response byte-for-byte against the expected output. `503`
//! backpressure responses are retried after a short delay (they are
//! the server working as designed, not failures); anything else that
//! prevents a verified response counts as dropped or corrupted.
//!
//! The `xp load` subcommand wraps this: it self-hosts a server on an
//! ephemeral port, computes the expected bytes locally, runs the
//! harness, and emits a throughput/latency report suitable for
//! appending to BENCH_pushsim.json.

use crate::http;

use std::net::SocketAddr;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError};
use std::thread;
use std::time::{Duration, Instant};

/// Parameters for one load-test run.
#[derive(Debug, Clone)]
pub struct LoadConfig {
    /// Address of the server under test.
    pub addr: SocketAddr,
    /// Concurrent client threads.
    pub clients: usize,
    /// Sequential submissions per client.
    pub requests_per_client: usize,
    /// Submission body (canonical spec text).
    pub body: String,
    /// Expected streamed bytes; when `Some`, every response is
    /// compared and mismatches count as corrupted.
    pub expected: Option<Vec<u8>>,
    /// Max retries per request on `503` before counting it dropped.
    pub max_retries: usize,
}

impl LoadConfig {
    /// A config with harness defaults (64 clients × 2 requests).
    pub fn new(addr: SocketAddr, body: String) -> Self {
        LoadConfig {
            addr,
            clients: 64,
            requests_per_client: 2,
            body,
            expected: None,
            max_retries: 200,
        }
    }
}

/// Aggregated outcome of a load-test run.
#[derive(Debug, Clone)]
pub struct LoadReport {
    /// Clients × requests per client.
    pub total_requests: usize,
    /// Requests that completed with verified (or unchecked) bytes.
    pub ok: usize,
    /// Responses whose bytes differed from the expected output.
    pub corrupted: usize,
    /// Requests lost to I/O errors, unexpected statuses, or retry
    /// exhaustion.
    pub dropped: usize,
    /// Total `503` backpressure responses absorbed by retries.
    pub backpressure_retries: u64,
    /// Wall-clock duration of the whole run.
    pub elapsed: Duration,
    /// Sorted per-request latencies (submission to verified stream).
    pub latencies: Vec<Duration>,
    // Requests per client, kept so the report can show the client
    // count without the original config.
    rpc: usize,
}

impl LoadReport {
    fn quantile(&self, q: f64) -> Duration {
        if self.latencies.is_empty() {
            return Duration::ZERO;
        }
        let idx = ((self.latencies.len() - 1) as f64 * q).round() as usize;
        self.latencies.get(idx).or_else(|| self.latencies.last()).copied().unwrap_or(Duration::ZERO)
    }

    /// Mean request latency.
    pub fn mean_latency(&self) -> Duration {
        if self.latencies.is_empty() {
            return Duration::ZERO;
        }
        self.latencies.iter().sum::<Duration>() / self.latencies.len() as u32
    }

    /// Completed requests per second of wall-clock time.
    pub fn throughput_rps(&self) -> f64 {
        let secs = self.elapsed.as_secs_f64();
        if secs <= 0.0 {
            return 0.0;
        }
        self.ok as f64 / secs
    }

    /// Whether every request completed with verified bytes.
    pub fn clean(&self) -> bool {
        self.ok == self.total_requests && self.corrupted == 0 && self.dropped == 0
    }

    /// A single-line JSON report.
    pub fn to_json(&self, name: &str) -> String {
        format!(
            "{{\"name\":\"{}\",\"clients\":{},\"requests\":{},\"ok\":{},\"corrupted\":{},\"dropped\":{},\
\"backpressure_retries\":{},\"elapsed_ms\":{:.1},\"throughput_rps\":{:.1},\
\"latency_ms\":{{\"mean\":{:.2},\"p50\":{:.2},\"p95\":{:.2},\"p99\":{:.2},\"max\":{:.2}}}}}",
            http::json_escape(name),
            self.total_requests / self.rpc.max(1),
            self.total_requests,
            self.ok,
            self.corrupted,
            self.dropped,
            self.backpressure_retries,
            self.elapsed.as_secs_f64() * 1e3,
            self.throughput_rps(),
            self.mean_latency().as_secs_f64() * 1e3,
            self.quantile(0.50).as_secs_f64() * 1e3,
            self.quantile(0.95).as_secs_f64() * 1e3,
            self.quantile(0.99).as_secs_f64() * 1e3,
            self.latencies.last().copied().unwrap_or(Duration::ZERO).as_secs_f64() * 1e3,
        )
    }

    /// A BENCH_pushsim.json-shaped entry: mean latency as
    /// `ns_per_iter`, completed requests as `iters`.
    pub fn to_bench_entry(&self, name: &str) -> String {
        format!(
            "{{\"name\": \"{}\", \"ns_per_iter\": {:.1}, \"iters\": {}}}",
            http::json_escape(name),
            self.mean_latency().as_secs_f64() * 1e9,
            self.ok
        )
    }
}

fn extract_id(body: &str) -> Option<u64> {
    let idx = body.find("\"id\":")?;
    let digits: String = body
        .get(idx + 5..)?
        .chars()
        .take_while(|c| c.is_ascii_digit())
        .collect();
    digits.parse().ok()
}

enum Outcome {
    Ok(Duration),
    Corrupted,
    Dropped,
}

fn one_request(cfg: &LoadConfig, retries: &AtomicU64) -> Outcome {
    // xlint: allow(determinism-source) — load testing measures real request latency; wall clock is the instrument, not simulation state
    let start = Instant::now();
    let mut attempts = 0usize;
    let id = loop {
        match http::request(cfg.addr, "POST", "/v1/runs", cfg.body.as_bytes()) {
            Ok(resp) if resp.status == 202 => match extract_id(&resp.text()) {
                Some(id) => break id,
                None => return Outcome::Dropped,
            },
            Ok(resp) if resp.status == 503 => {
                retries.fetch_add(1, Ordering::Relaxed);
                attempts += 1;
                if attempts > cfg.max_retries {
                    return Outcome::Dropped;
                }
                // Honour Retry-After in spirit; bounded short sleeps
                // keep the harness responsive on small queues.
                thread::sleep(Duration::from_millis(25 * (1 + (attempts as u64 % 4))));
            }
            _ => return Outcome::Dropped,
        }
    };
    let path = format!("/v1/runs/{id}/stream");
    match http::request(cfg.addr, "GET", &path, b"") {
        Ok(resp) if resp.status == 200 => {
            if let Some(expected) = &cfg.expected {
                if &resp.body != expected {
                    return Outcome::Corrupted;
                }
            }
            Outcome::Ok(start.elapsed())
        }
        _ => Outcome::Dropped,
    }
}

/// Runs the load test to completion and aggregates the outcome.
pub fn run(cfg: &LoadConfig) -> LoadReport {
    let cfg = Arc::new(cfg.clone());
    let retries = Arc::new(AtomicU64::new(0));
    let outcomes: Arc<Mutex<Vec<Outcome>>> = Arc::new(Mutex::new(Vec::new()));
    // xlint: allow(determinism-source) — throughput denominator is elapsed wall-clock time by definition
    let started = Instant::now();
    let mut handles = Vec::with_capacity(cfg.clients);
    for _ in 0..cfg.clients {
        let cfg = Arc::clone(&cfg);
        let retries = Arc::clone(&retries);
        let outcomes = Arc::clone(&outcomes);
        handles.push(thread::spawn(move || {
            for _ in 0..cfg.requests_per_client {
                let outcome = one_request(&cfg, &retries);
                outcomes.lock().unwrap_or_else(PoisonError::into_inner).push(outcome);
            }
        }));
    }
    for h in handles {
        let _ = h.join();
    }
    let elapsed = started.elapsed();
    let outcomes = match Arc::try_unwrap(outcomes) {
        Ok(m) => m.into_inner().unwrap_or_else(PoisonError::into_inner),
        // All worker threads were joined above, so this arm is dead in
        // practice; drain through the lock rather than assert on it.
        Err(arc) => arc.lock().unwrap_or_else(PoisonError::into_inner).drain(..).collect(),
    };
    let mut latencies = Vec::new();
    let (mut ok, mut corrupted, mut dropped) = (0, 0, 0);
    for o in outcomes {
        match o {
            Outcome::Ok(lat) => {
                ok += 1;
                latencies.push(lat);
            }
            Outcome::Corrupted => corrupted += 1,
            Outcome::Dropped => dropped += 1,
        }
    }
    latencies.sort();
    LoadReport {
        total_requests: cfg.clients * cfg.requests_per_client,
        ok,
        corrupted,
        dropped,
        backpressure_retries: retries.load(Ordering::Relaxed),
        elapsed,
        latencies,
        rpc: cfg.requests_per_client,
    }
}
