//! A dependency-free streaming scenario service.
//!
//! This crate implements the `xp serve` subsystem: a small HTTP/1.1
//! server hand-rolled on [`std::net::TcpListener`] that accepts job
//! submissions, runs them on a fixed worker pool behind a bounded
//! queue, and streams results back to clients as they are produced.
//! The workspace builds offline with vendored shims only, so there is
//! deliberately no external HTTP framework here.
//!
//! The crate knows nothing about scenario specs. Domain logic is
//! injected through the [`handler::JobHandler`] trait: the handler
//! parses a request body into a job, reports a stable content digest
//! for caching, and executes the job against an [`std::io::Write`]
//! sink. `noisy-bench` provides the production handler that wires in
//! its `Runner`; the tests here use small mock handlers.
//!
//! Architecture, one thread group per concern:
//!
//! * an **acceptor** thread polls a non-blocking listener and spawns
//!   one connection thread per client (keep-alive and pipelining are
//!   supported by the incremental parser in [`http`]);
//! * **worker** threads drain the bounded [`queue::BoundedQueue`];
//!   when the queue is full, submissions are rejected with `503` and
//!   a `Retry-After` header instead of growing memory;
//! * finished results land in a content-addressed byte-budget LRU
//!   ([`lru::LruCache`]), so resubmitting a spec — or running a sweep
//!   that shares cells with a cached one — returns without recompute.
//!
//! Graceful shutdown (SIGTERM/ctrl-c via [`signal`], or
//! `POST /v1/shutdown` when enabled) stops accepting work, drains the
//! queue, and joins every worker.

// `unsafe` is denied crate-wide and re-allowed only on the one module
// that must declare the C `signal(2)` entry point (the offline
// workspace carries no libc crate). xlint rule R6 checks this shape;
// R5 requires the SAFETY comment on the block itself.
#![deny(unsafe_code)]

pub mod http;
pub mod handler;
pub mod loadtest;
pub mod lru;
pub mod queue;
pub mod server;
#[allow(unsafe_code)]
pub mod signal;

pub use handler::{JobHandler, Plan};
pub use server::{Server, ServerConfig, ServerHandle};
