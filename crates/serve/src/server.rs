//! The scenario service: acceptor, worker pool, job table, routes.
//!
//! See the crate docs for the thread architecture. The HTTP surface:
//!
//! | Method/path              | Behaviour                                              |
//! |--------------------------|--------------------------------------------------------|
//! | `POST /v1/runs`          | Body = submission text. `202` + job id; `400` on a     |
//! |                          | plan error; `503` + `Retry-After` when the queue is    |
//! |                          | full or the server is shutting down.                   |
//! | `GET /v1/runs/{id}`      | Status JSON (`queued`/`running`/`done`/`failed`).      |
//! | `GET /v1/runs/{id}/stream` | Chunked JSONL of the job's output, following live    |
//! |                          | progress; truncated (no terminating chunk) on failure. |
//! | `GET /v1/healthz`        | Liveness probe.                                        |
//! | `GET /v1/stats`          | Queue depth, in-flight, cache hit/miss/eviction        |
//! |                          | counters.                                              |
//! | `POST /v1/shutdown`      | Graceful shutdown; `404` unless enabled in config.     |
//!
//! Identical concurrent submissions are **coalesced** onto one job,
//! and finished output is cached under the submission's content
//! digest, so a resubmission is answered `done` without recompute.

use crate::handler::JobHandler;
use crate::http::{self, ChunkedWriter, Limits, Parsed, Request};
use crate::lru::LruCache;
use crate::queue::BoundedQueue;

use std::collections::{BTreeMap, VecDeque};
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::thread;
use std::time::{Duration, Instant};

/// Server construction parameters; `Default` gives sensible
/// test-friendly values (ephemeral port, small pool).
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address, e.g. `127.0.0.1:0` for an ephemeral port.
    pub addr: String,
    /// Worker threads draining the job queue (min 1).
    pub workers: usize,
    /// Bounded queue capacity; beyond it submissions get `503`.
    pub queue_depth: usize,
    /// Byte budget of the content-addressed result cache.
    pub cache_bytes: usize,
    /// Whether `POST /v1/shutdown` is honoured (test/CI mode; in
    /// production shutdown comes from SIGTERM/ctrl-c).
    pub enable_shutdown_endpoint: bool,
    /// HTTP parser limits.
    pub limits: Limits,
    /// How many finished jobs stay queryable before the oldest are
    /// forgotten (bounds job-table memory).
    pub retain_jobs: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 2,
            queue_depth: 64,
            cache_bytes: 64 * 1024 * 1024,
            enable_shutdown_endpoint: false,
            limits: Limits::default(),
            retain_jobs: 1024,
        }
    }
}

#[derive(Default)]
struct Stats {
    submitted: AtomicU64,
    completed: AtomicU64,
    failed: AtomicU64,
    coalesced: AtomicU64,
    rejected: AtomicU64,
    cache_hits: AtomicU64,
    cache_misses: AtomicU64,
    cell_hits: AtomicU64,
    cell_misses: AtomicU64,
    evictions: AtomicU64,
    in_flight: AtomicU64,
}

impl Stats {
    fn bump(counter: &AtomicU64) {
        counter.fetch_add(1, Ordering::Relaxed);
    }
}

/// A cached artifact: either a finished response body (whole-run
/// digest) or the data rows of one sweep cell (cell digest).
enum Cached {
    Body(Arc<Vec<u8>>),
    Rows(Arc<Vec<Vec<String>>>),
}

fn rows_cost(rows: &[Vec<String>]) -> usize {
    rows.iter()
        .map(|r| 16 + r.iter().map(|c| c.len() + 8).sum::<usize>())
        .sum()
}

enum JobState {
    Queued,
    Running(Vec<u8>),
    Done { out: Arc<Vec<u8>>, from_cache: bool },
    Failed { error: String },
}

struct Job<J> {
    id: u64,
    digest: u64,
    cells: Option<Vec<u64>>,
    payload: J,
    state: Mutex<JobState>,
    cond: Condvar,
}

impl<J> Job<J> {
    /// Locks the job state, recovering from poison: job state moves
    /// monotonically towards a terminal value and every transition
    /// writes a whole variant, so the state is valid after any panic
    /// elsewhere and refusing to serve it would only spread the
    /// failure.
    fn lock(&self) -> MutexGuard<'_, JobState> {
        self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }

    fn set_running(&self) {
        let mut st = self.lock();
        *st = JobState::Running(Vec::new());
        self.cond.notify_all();
    }

    fn append(&self, bytes: &[u8]) {
        let mut st = self.lock();
        if let JobState::Running(out) = &mut *st {
            out.extend_from_slice(bytes);
        }
        self.cond.notify_all();
    }

    fn finish(&self) -> Arc<Vec<u8>> {
        let mut st = self.lock();
        let out = match std::mem::replace(&mut *st, JobState::Queued) {
            JobState::Running(out) => Arc::new(out),
            other => {
                // Finishing a job that never ran (should not happen);
                // preserve whatever terminal state existed.
                *st = other;
                Arc::new(Vec::new())
            }
        };
        *st = JobState::Done { out: Arc::clone(&out), from_cache: false };
        self.cond.notify_all();
        out
    }

    fn fail(&self, error: String) {
        let mut st = self.lock();
        *st = JobState::Failed { error };
        self.cond.notify_all();
    }

    /// Blocks until there is output past `offset`, the job reaches a
    /// terminal state, or `deadline` passes. Returns
    /// `(new bytes, terminal, error)`.
    fn await_output(
        &self,
        offset: usize,
        deadline: Instant,
    ) -> (Vec<u8>, bool, Option<String>) {
        let mut st = self.lock();
        loop {
            match &*st {
                JobState::Queued => {}
                JobState::Running(out) => {
                    if out.len() > offset {
                        return (out.get(offset..).unwrap_or_default().to_vec(), false, None);
                    }
                }
                JobState::Done { out, .. } => {
                    let chunk = out.get(offset..).unwrap_or_default().to_vec();
                    return (chunk, true, None);
                }
                JobState::Failed { error } => return (Vec::new(), true, Some(error.clone())),
            }
            // xlint: allow(determinism-source) — streaming deadlines are wall-clock by nature; no simulation state is derived from this read
            let now = Instant::now();
            if now >= deadline {
                return (Vec::new(), false, None);
            }
            let (guard, _timed_out) = self
                .cond
                .wait_timeout(st, deadline - now)
                .unwrap_or_else(PoisonError::into_inner);
            st = guard;
        }
    }

    fn status_json(&self) -> String {
        let st = self.lock();
        match &*st {
            JobState::Queued => format!(
                "{{\"id\":{},\"status\":\"queued\",\"stream\":\"/v1/runs/{}/stream\"}}",
                self.id, self.id
            ),
            JobState::Running(out) => format!(
                "{{\"id\":{},\"status\":\"running\",\"bytes\":{},\"stream\":\"/v1/runs/{}/stream\"}}",
                self.id,
                out.len(),
                self.id
            ),
            JobState::Done { out, from_cache } => format!(
                "{{\"id\":{},\"status\":\"done\",\"cached\":{},\"bytes\":{},\"stream\":\"/v1/runs/{}/stream\"}}",
                self.id,
                from_cache,
                out.len(),
                self.id
            ),
            JobState::Failed { error } => format!(
                "{{\"id\":{},\"status\":\"failed\",\"error\":\"{}\"}}",
                self.id,
                http::json_escape(error)
            ),
        }
    }
}

// Both job indexes are BTreeMaps: bounded by `retain_jobs`, keyed by
// plain u64s, and deterministically ordered so nothing observable
// (stats, retention sweeps, future debug dumps) depends on hash
// seeding.
struct JobTable<J> {
    by_id: BTreeMap<u64, Arc<Job<J>>>,
    /// digest -> id of a queued/running job, for coalescing identical
    /// concurrent submissions onto one execution.
    active_by_digest: BTreeMap<u64, u64>,
    /// Finished job ids, oldest first, for bounded retention.
    finished: VecDeque<u64>,
}

struct ConnTracker {
    n: Mutex<usize>,
    cv: Condvar,
}

struct ConnGuard(Arc<ConnTracker>);

impl ConnTracker {
    // Poison recovery below: the tracked value is a plain counter,
    // valid after any panic elsewhere.
    fn enter(self: &Arc<Self>) -> ConnGuard {
        *self.n.lock().unwrap_or_else(PoisonError::into_inner) += 1;
        ConnGuard(Arc::clone(self))
    }
}

impl Drop for ConnGuard {
    fn drop(&mut self) {
        let mut n = self.0.n.lock().unwrap_or_else(PoisonError::into_inner);
        *n = n.saturating_sub(1);
        self.0.cv.notify_all();
    }
}

struct Inner<H: JobHandler> {
    handler: H,
    config: ServerConfig,
    queue: BoundedQueue<Arc<Job<H::Job>>>,
    jobs: Mutex<JobTable<H::Job>>,
    cache: Mutex<LruCache<Cached>>,
    stats: Stats,
    shutdown: AtomicBool,
    next_id: AtomicU64,
    conns: Arc<ConnTracker>,
}

// Lock ordering: `jobs` before `cache`; never hold either across a
// handler call or a queue `pop`.
impl<H: JobHandler> Inner<H> {
    fn begin_shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
        self.queue.close();
    }

    fn shutting_down(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst)
    }

    /// Locks the job table, recovering from poison (the table's
    /// operations never leave it half-updated across a panic point).
    fn lock_jobs(&self) -> MutexGuard<'_, JobTable<H::Job>> {
        self.jobs.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Locks the cache, recovering from poison (same reasoning).
    fn lock_cache(&self) -> MutexGuard<'_, LruCache<Cached>> {
        self.cache.lock().unwrap_or_else(PoisonError::into_inner)
    }

    fn retire(&self, job: &Arc<Job<H::Job>>) {
        let mut jobs = self.lock_jobs();
        if jobs.active_by_digest.get(&job.digest) == Some(&job.id) {
            jobs.active_by_digest.remove(&job.digest);
        }
        jobs.finished.push_back(job.id);
        while jobs.finished.len() > self.config.retain_jobs.max(1) {
            if let Some(old) = jobs.finished.pop_front() {
                jobs.by_id.remove(&old);
            }
        }
    }

    fn stats_json(&self) -> String {
        let s = &self.stats;
        let (bytes, entries, budget) = {
            let cache = self.lock_cache();
            (cache.bytes(), cache.entries(), cache.budget())
        };
        format!(
            "{{\"queue_depth\":{},\"queue_capacity\":{},\"in_flight\":{},\"workers\":{},\"shutting_down\":{},\
\"jobs\":{{\"submitted\":{},\"completed\":{},\"failed\":{},\"coalesced\":{},\"rejected\":{}}},\
\"cache\":{{\"hits\":{},\"misses\":{},\"cell_hits\":{},\"cell_misses\":{},\"evictions\":{},\"bytes\":{},\"entries\":{},\"budget\":{}}}}}",
            self.queue.len(),
            self.queue.capacity(),
            s.in_flight.load(Ordering::Relaxed),
            self.config.workers.max(1),
            self.shutting_down(),
            s.submitted.load(Ordering::Relaxed),
            s.completed.load(Ordering::Relaxed),
            s.failed.load(Ordering::Relaxed),
            s.coalesced.load(Ordering::Relaxed),
            s.rejected.load(Ordering::Relaxed),
            s.cache_hits.load(Ordering::Relaxed),
            s.cache_misses.load(Ordering::Relaxed),
            s.cell_hits.load(Ordering::Relaxed),
            s.cell_misses.load(Ordering::Relaxed),
            s.evictions.load(Ordering::Relaxed),
            bytes,
            entries,
            budget,
        )
    }
}

/// Entry point for starting a service instance.
pub struct Server;

impl Server {
    /// Binds the listener, spawns the acceptor and worker threads,
    /// and returns a handle for shutdown coordination.
    pub fn start<H: JobHandler>(
        config: ServerConfig,
        handler: H,
    ) -> io::Result<ServerHandle<H>> {
        let listener = TcpListener::bind(&config.addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let workers = config.workers.max(1);
        let inner = Arc::new(Inner {
            queue: BoundedQueue::new(config.queue_depth),
            jobs: Mutex::new(JobTable {
                by_id: BTreeMap::new(),
                active_by_digest: BTreeMap::new(),
                finished: VecDeque::new(),
            }),
            cache: Mutex::new(LruCache::new(config.cache_bytes)),
            stats: Stats::default(),
            shutdown: AtomicBool::new(false),
            next_id: AtomicU64::new(1),
            conns: Arc::new(ConnTracker { n: Mutex::new(0), cv: Condvar::new() }),
            handler,
            config,
        });

        let mut threads = Vec::with_capacity(workers + 1);
        for w in 0..workers {
            let inner = Arc::clone(&inner);
            threads.push(
                thread::Builder::new()
                    .name(format!("serve-worker-{w}"))
                    .spawn(move || worker_loop(inner))?,
            );
        }
        {
            let inner = Arc::clone(&inner);
            threads.push(
                thread::Builder::new()
                    .name("serve-acceptor".to_string())
                    .spawn(move || acceptor_loop(listener, inner))?,
            );
        }
        Ok(ServerHandle { addr, inner, threads })
    }
}

/// Owns the service threads; dropping it does **not** stop the
/// server — call [`shutdown_and_wait`](ServerHandle::shutdown_and_wait).
pub struct ServerHandle<H: JobHandler> {
    addr: SocketAddr,
    inner: Arc<Inner<H>>,
    threads: Vec<thread::JoinHandle<()>>,
}

impl<H: JobHandler> ServerHandle<H> {
    /// The bound address (with the real port when `:0` was requested).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Whether graceful shutdown has been triggered (by this handle
    /// or by `POST /v1/shutdown`).
    pub fn shutdown_begun(&self) -> bool {
        self.inner.shutting_down()
    }

    /// Triggers graceful shutdown: stop accepting, drain the queue.
    pub fn begin_shutdown(&self) {
        self.inner.begin_shutdown();
    }

    /// Triggers shutdown and blocks until workers have drained every
    /// accepted job and all service threads have exited (open
    /// connections get a short grace period to finish streaming).
    pub fn shutdown_and_wait(mut self) {
        self.inner.begin_shutdown();
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
        // xlint: allow(determinism-source) — shutdown grace period is a real-time bound on operator-facing drain, not simulation state
        let deadline = Instant::now() + Duration::from_secs(5);
        let mut n = self.inner.conns.n.lock().unwrap_or_else(PoisonError::into_inner);
        while *n > 0 {
            // xlint: allow(determinism-source) — ditto: measuring the remaining drain budget in wall-clock time
            let now = Instant::now();
            if now >= deadline {
                break;
            }
            let (guard, _) = self
                .inner
                .conns
                .cv
                .wait_timeout(n, deadline - now)
                .unwrap_or_else(PoisonError::into_inner);
            n = guard;
        }
    }
}

fn worker_loop<H: JobHandler>(inner: Arc<Inner<H>>) {
    while let Some(job) = inner.queue.pop() {
        Stats::bump(&inner.stats.in_flight);
        run_job(&inner, &job);
        inner.stats.in_flight.fetch_sub(1, Ordering::Relaxed);
    }
}

struct JobWriter<'a, J> {
    job: &'a Job<J>,
}

impl<J> Write for JobWriter<'_, J> {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        self.job.append(buf);
        Ok(buf.len())
    }

    fn flush(&mut self) -> io::Result<()> {
        Ok(())
    }
}

fn run_job<H: JobHandler>(inner: &Arc<Inner<H>>, job: &Arc<Job<H::Job>>) {
    job.set_running();
    let result = match job.cells.clone() {
        Some(cells) => run_cells(inner, job, &cells),
        None => {
            let mut sink = JobWriter { job };
            inner.handler.run(&job.payload, &mut sink)
        }
    };
    match result {
        Ok(()) => {
            let out = job.finish();
            let cost = out.len();
            let evicted = inner
                .lock_cache()
                .insert(job.digest, Cached::Body(Arc::clone(&out)), cost);
            inner.stats.evictions.fetch_add(evicted as u64, Ordering::Relaxed);
            Stats::bump(&inner.stats.completed);
        }
        Err(error) => {
            job.fail(error);
            Stats::bump(&inner.stats.failed);
        }
    }
    inner.retire(job);
}

fn run_cells<H: JobHandler>(
    inner: &Arc<Inner<H>>,
    job: &Arc<Job<H::Job>>,
    cells: &[u64],
) -> Result<(), String> {
    for (index, &key) in cells.iter().enumerate() {
        let cached = {
            let mut cache = inner.lock_cache();
            match cache.get(key) {
                Some(Cached::Rows(rows)) => Some(Arc::clone(rows)),
                // A Body under a cell key would be a digest collision
                // (cell keys are salted); treat it as a miss.
                _ => None,
            }
        };
        let rows = match cached {
            Some(rows) => {
                Stats::bump(&inner.stats.cell_hits);
                rows
            }
            None => {
                Stats::bump(&inner.stats.cell_misses);
                let rows = Arc::new(inner.handler.run_cell(&job.payload, index)?);
                let cost = rows_cost(&rows);
                let evicted = inner
                    .lock_cache()
                    .insert(key, Cached::Rows(Arc::clone(&rows)), cost);
                inner.stats.evictions.fetch_add(evicted as u64, Ordering::Relaxed);
                rows
            }
        };
        let text = inner.handler.render_cell(&job.payload, index, &rows);
        job.append(text.as_bytes());
    }
    Ok(())
}

fn acceptor_loop<H: JobHandler>(listener: TcpListener, inner: Arc<Inner<H>>) {
    loop {
        if inner.shutting_down() {
            return;
        }
        match listener.accept() {
            Ok((stream, _peer)) => {
                let inner = Arc::clone(&inner);
                let guard = inner.conns.enter();
                let spawned = thread::Builder::new()
                    .name("serve-conn".to_string())
                    .spawn(move || {
                        let _guard = guard;
                        handle_connection(inner, stream);
                    });
                if spawned.is_err() {
                    // Thread exhaustion: drop the connection; the
                    // guard (moved into the failed closure) is gone
                    // with it.
                }
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                thread::sleep(Duration::from_millis(10));
            }
            Err(_) => thread::sleep(Duration::from_millis(10)),
        }
    }
}

fn handle_connection<H: JobHandler>(inner: Arc<Inner<H>>, mut stream: TcpStream) {
    let _ = stream.set_read_timeout(Some(Duration::from_millis(250)));
    let _ = stream.set_nodelay(true);
    let mut buf: Vec<u8> = Vec::new();
    let mut idle_polls = 0u32;
    loop {
        match http::parse_request(&buf, &inner.config.limits) {
            Ok(Parsed::Complete { request, consumed }) => {
                buf.drain(..consumed);
                idle_polls = 0;
                match route(&inner, &request, &mut stream) {
                    Ok(true) => continue,
                    _ => return,
                }
            }
            Ok(Parsed::Incomplete) => {
                let mut chunk = [0u8; 8192];
                match stream.read(&mut chunk) {
                    Ok(0) => return,
                    Ok(n) => {
                        buf.extend_from_slice(chunk.get(..n).unwrap_or_default());
                        idle_polls = 0;
                    }
                    Err(e)
                        if e.kind() == io::ErrorKind::WouldBlock
                            || e.kind() == io::ErrorKind::TimedOut =>
                    {
                        if inner.shutting_down() && buf.is_empty() {
                            return;
                        }
                        idle_polls += 1;
                        // ~30 s of silence (120 * 250 ms): drop the
                        // connection, slow-loris or idle keep-alive.
                        if idle_polls > 120 {
                            return;
                        }
                    }
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                    Err(_) => return,
                }
            }
            Err(err) => {
                let (code, reason) = err.status();
                let body =
                    format!("{{\"error\":\"{}\"}}", http::json_escape(err.detail()));
                let _ = http::write_response(
                    &mut stream,
                    code,
                    reason,
                    &[("Content-Type", "application/json")],
                    body.as_bytes(),
                    false,
                );
                return;
            }
        }
    }
}

const JSON: (&str, &str) = ("Content-Type", "application/json");

fn respond(
    stream: &mut TcpStream,
    status: u16,
    reason: &str,
    extra: &[(&str, &str)],
    body: &str,
    keep_alive: bool,
) -> io::Result<bool> {
    http::write_response(stream, status, reason, extra, body.as_bytes(), keep_alive)?;
    Ok(keep_alive)
}

/// Handles one request; returns whether the connection stays open.
fn route<H: JobHandler>(
    inner: &Arc<Inner<H>>,
    req: &Request,
    stream: &mut TcpStream,
) -> io::Result<bool> {
    let keep = req.keep_alive && !inner.shutting_down();
    match (req.method.as_str(), req.route()) {
        ("GET", "/v1/healthz") => respond(stream, 200, "OK", &[JSON], "{\"ok\":true}", keep),
        ("GET", "/v1/stats") => {
            respond(stream, 200, "OK", &[JSON], &inner.stats_json(), keep)
        }
        ("POST", "/v1/shutdown") => {
            if inner.config.enable_shutdown_endpoint {
                inner.begin_shutdown();
                respond(stream, 200, "OK", &[JSON], "{\"shutting_down\":true}", false)
            } else {
                respond(
                    stream,
                    404,
                    "Not Found",
                    &[JSON],
                    "{\"error\":\"shutdown endpoint disabled\"}",
                    keep,
                )
            }
        }
        ("POST", "/v1/runs") => submit(inner, req, stream, keep),
        ("GET", path) if path.starts_with("/v1/runs/") => {
            let rest = path.get("/v1/runs/".len()..).unwrap_or_default();
            let (id_str, want_stream) = match rest.strip_suffix("/stream") {
                Some(id) => (id, true),
                None => (rest, false),
            };
            let job = id_str
                .parse::<u64>()
                .ok()
                .and_then(|id| inner.lock_jobs().by_id.get(&id).cloned());
            let Some(job) = job else {
                return respond(
                    stream,
                    404,
                    "Not Found",
                    &[JSON],
                    "{\"error\":\"no such job\"}",
                    keep,
                );
            };
            if want_stream {
                stream_job(&job, stream)
            } else {
                respond(stream, 200, "OK", &[JSON], &job.status_json(), keep)
            }
        }
        _ => respond(
            stream,
            404,
            "Not Found",
            &[JSON],
            "{\"error\":\"no such route\"}",
            keep,
        ),
    }
}

fn accepted_json(id: u64, status: &str, cached: bool) -> String {
    format!(
        "{{\"id\":{id},\"status\":\"{status}\",\"cached\":{cached},\"stream\":\"/v1/runs/{id}/stream\"}}"
    )
}

fn submit<H: JobHandler>(
    inner: &Arc<Inner<H>>,
    req: &Request,
    stream: &mut TcpStream,
    keep: bool,
) -> io::Result<bool> {
    if inner.shutting_down() {
        return respond(
            stream,
            503,
            "Service Unavailable",
            &[JSON, ("Retry-After", "1")],
            "{\"error\":\"server is shutting down\"}",
            false,
        );
    }
    let body = match std::str::from_utf8(&req.body) {
        Ok(s) => s,
        Err(_) => {
            return respond(
                stream,
                400,
                "Bad Request",
                &[JSON],
                "{\"error\":\"submission body must be UTF-8 spec text\"}",
                keep,
            )
        }
    };
    let plan = match inner.handler.plan(body) {
        Ok(plan) => plan,
        Err(msg) => {
            let body = format!("{{\"error\":\"{}\"}}", http::json_escape(&msg));
            return respond(stream, 400, "Bad Request", &[JSON], &body, keep);
        }
    };
    Stats::bump(&inner.stats.submitted);

    let mut jobs = inner.lock_jobs();
    // Coalesce onto an identical queued/running job.
    if let Some(&id) = jobs.active_by_digest.get(&plan.digest) {
        Stats::bump(&inner.stats.coalesced);
        let body = accepted_json(id, "accepted", false);
        drop(jobs);
        return respond(stream, 202, "Accepted", &[JSON], &body, keep);
    }
    // Content-addressed cache: answer a finished body without
    // recompute.
    let hit = {
        let mut cache = inner.lock_cache();
        match cache.get(plan.digest) {
            Some(Cached::Body(out)) => Some(Arc::clone(out)),
            _ => None,
        }
    };
    if let Some(out) = hit {
        Stats::bump(&inner.stats.cache_hits);
        let id = inner.next_id.fetch_add(1, Ordering::Relaxed);
        let job = Arc::new(Job {
            id,
            digest: plan.digest,
            cells: None,
            payload: plan.job,
            state: Mutex::new(JobState::Done { out, from_cache: true }),
            cond: Condvar::new(),
        });
        jobs.by_id.insert(id, Arc::clone(&job));
        jobs.finished.push_back(id);
        while jobs.finished.len() > inner.config.retain_jobs.max(1) {
            if let Some(old) = jobs.finished.pop_front() {
                jobs.by_id.remove(&old);
            }
        }
        drop(jobs);
        let body = accepted_json(id, "done", true);
        return respond(stream, 202, "Accepted", &[JSON], &body, keep);
    }
    Stats::bump(&inner.stats.cache_misses);

    let id = inner.next_id.fetch_add(1, Ordering::Relaxed);
    let job = Arc::new(Job {
        id,
        digest: plan.digest,
        cells: plan.cells,
        payload: plan.job,
        state: Mutex::new(JobState::Queued),
        cond: Condvar::new(),
    });
    match inner.queue.try_push(Arc::clone(&job)) {
        Ok(()) => {
            jobs.by_id.insert(id, Arc::clone(&job));
            jobs.active_by_digest.insert(job.digest, id);
            drop(jobs);
            let body = accepted_json(id, "queued", false);
            respond(stream, 202, "Accepted", &[JSON], &body, keep)
        }
        Err(_) => {
            drop(jobs);
            Stats::bump(&inner.stats.rejected);
            respond(
                stream,
                503,
                "Service Unavailable",
                &[JSON, ("Retry-After", "1")],
                "{\"error\":\"job queue is full\"}",
                false,
            )
        }
    }
}

/// Streams a job's output as chunked JSONL, following live progress.
/// A job that fails after streaming began yields a truncated chunked
/// body (no terminating chunk), which clients detect as an error.
fn stream_job<J>(job: &Arc<Job<J>>, stream: &mut TcpStream) -> io::Result<bool> {
    // A failure before any bytes were streamed gets a clean 500.
    {
        let st = job.lock();
        if let JobState::Failed { error } = &*st {
            let body = format!("{{\"error\":\"{}\"}}", http::json_escape(error));
            drop(st);
            http::write_response(
                stream,
                500,
                "Internal Server Error",
                &[JSON],
                body.as_bytes(),
                false,
            )?;
            return Ok(false);
        }
    }
    let mut writer = ChunkedWriter::start(
        stream,
        200,
        "OK",
        &[("Content-Type", "application/x-ndjson")],
    )?;
    let mut offset = 0usize;
    loop {
        // xlint: allow(determinism-source) — per-poll streaming deadline; wall-clock pacing of the chunked response, not simulation state
        let deadline = Instant::now() + Duration::from_millis(250);
        let (chunk, terminal, error) = job.await_output(offset, deadline);
        if !chunk.is_empty() {
            offset += chunk.len();
            writer.write_chunk(&chunk)?;
        }
        if let Some(_error) = error {
            // Mid-stream failure: close without the final chunk.
            return Ok(false);
        }
        if terminal {
            writer.finish()?;
            return Ok(false);
        }
    }
}
