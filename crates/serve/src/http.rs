//! Minimal HTTP/1.1 message handling on raw byte buffers.
//!
//! The parser is *incremental*: [`parse_request`] is called on
//! whatever bytes have been read so far and either returns a complete
//! request plus the number of bytes it consumed (leaving pipelined
//! follow-up requests in the buffer), reports that more bytes are
//! needed, or rejects the input. Limits on the header block and body
//! size are enforced even on incomplete input so a slow-loris client
//! cannot grow memory without ever finishing a request.
//!
//! Only the subset of HTTP/1.1 the service needs is implemented:
//! `Content-Length` bodies (no chunked *requests*), `Connection`
//! keep-alive semantics, and chunked *responses* via
//! [`ChunkedWriter`]. A tiny client side ([`read_response`],
//! [`request`]) lives here too so the load-test harness and the
//! integration tests speak the same dialect as the server.

use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpStream};

/// Default cap on the request line + header block, in bytes.
pub const DEFAULT_MAX_HEAD: usize = 16 * 1024;
/// Default cap on a request body, in bytes.
pub const DEFAULT_MAX_BODY: usize = 1024 * 1024;

/// Size limits enforced by [`parse_request`].
#[derive(Debug, Clone, Copy)]
pub struct Limits {
    /// Maximum size of the request line + headers (including the
    /// terminating blank line).
    pub max_head: usize,
    /// Maximum `Content-Length` accepted for a request body.
    pub max_body: usize,
}

impl Default for Limits {
    fn default() -> Self {
        Limits { max_head: DEFAULT_MAX_HEAD, max_body: DEFAULT_MAX_BODY }
    }
}

/// A fully parsed HTTP request.
#[derive(Debug, Clone)]
pub struct Request {
    /// Request method, e.g. `GET` or `POST` (uppercased by clients,
    /// matched case-sensitively per RFC 9110).
    pub method: String,
    /// Request target, e.g. `/v1/runs/3/stream` (query string kept).
    pub path: String,
    /// Header name/value pairs in arrival order; names are matched
    /// case-insensitively via [`Request::header`].
    pub headers: Vec<(String, String)>,
    /// Request body (empty unless `Content-Length` was given).
    pub body: Vec<u8>,
    /// Whether the connection should stay open after the response,
    /// per the HTTP version and any `Connection` header.
    pub keep_alive: bool,
}

impl Request {
    /// Looks up a header value by case-insensitive name.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(k, _)| k.eq_ignore_ascii_case(name))
            .map(|(_, v)| v.as_str())
    }

    /// The request path without any query string.
    pub fn route(&self) -> &str {
        self.path.split('?').next().unwrap_or(&self.path)
    }
}

/// Why a request was rejected by the parser.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HttpError {
    /// Malformed request line, header, or length field (`400`).
    BadRequest(String),
    /// Head or body exceeds the configured [`Limits`] (`431`/`413`).
    TooLarge(String),
    /// A valid-but-unimplemented feature, e.g. chunked request
    /// bodies (`501`).
    Unsupported(String),
}

impl HttpError {
    /// Status code and reason phrase for the error response.
    pub fn status(&self) -> (u16, &'static str) {
        match self {
            HttpError::BadRequest(_) => (400, "Bad Request"),
            HttpError::TooLarge(_) => (413, "Payload Too Large"),
            HttpError::Unsupported(_) => (501, "Not Implemented"),
        }
    }

    /// Human-readable detail line.
    pub fn detail(&self) -> &str {
        match self {
            HttpError::BadRequest(s) | HttpError::TooLarge(s) | HttpError::Unsupported(s) => s,
        }
    }
}

impl std::fmt::Display for HttpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let (code, reason) = self.status();
        write!(f, "{code} {reason}: {}", self.detail())
    }
}

impl std::error::Error for HttpError {}

/// Outcome of feeding a byte buffer to [`parse_request`].
#[derive(Debug)]
pub enum Parsed {
    /// The buffer does not yet hold a complete request; read more.
    Incomplete,
    /// One complete request, and how many leading bytes it occupied
    /// (the caller drains `consumed` bytes and may parse again for
    /// pipelined requests).
    Complete {
        /// The parsed request.
        request: Request,
        /// Bytes of `buf` the request occupied.
        consumed: usize,
    },
}

fn find_subslice(haystack: &[u8], needle: &[u8]) -> Option<usize> {
    haystack.windows(needle.len()).position(|w| w == needle)
}

/// Attempts to parse one HTTP/1.x request from the front of `buf`.
///
/// Returns [`Parsed::Incomplete`] when more bytes are required, or an
/// [`HttpError`] when the input can never become a valid request
/// under `limits` (the connection should send the error response and
/// close).
pub fn parse_request(buf: &[u8], limits: &Limits) -> Result<Parsed, HttpError> {
    let head_end = match find_subslice(buf, b"\r\n\r\n") {
        Some(i) => i,
        None => {
            if buf.len() > limits.max_head {
                return Err(HttpError::TooLarge(format!(
                    "request head exceeds {} bytes",
                    limits.max_head
                )));
            }
            return Ok(Parsed::Incomplete);
        }
    };
    if head_end + 4 > limits.max_head {
        return Err(HttpError::TooLarge(format!(
            "request head exceeds {} bytes",
            limits.max_head
        )));
    }
    let head = std::str::from_utf8(buf.get(..head_end).unwrap_or_default())
        .map_err(|_| HttpError::BadRequest("request head is not valid UTF-8".into()))?;
    let mut lines = head.split("\r\n");
    let request_line = lines
        .next()
        .ok_or_else(|| HttpError::BadRequest("empty request head".into()))?;
    let mut parts = request_line.split(' ');
    let method = parts
        .next()
        .filter(|m| !m.is_empty() && m.bytes().all(|b| b.is_ascii_alphabetic()))
        .ok_or_else(|| HttpError::BadRequest("malformed request line (method)".into()))?;
    let path = parts
        .next()
        .filter(|p| p.starts_with('/'))
        .ok_or_else(|| HttpError::BadRequest("malformed request line (target)".into()))?;
    let version = parts
        .next()
        .ok_or_else(|| HttpError::BadRequest("malformed request line (version)".into()))?;
    if parts.next().is_some() {
        return Err(HttpError::BadRequest("malformed request line (extra fields)".into()));
    }
    let http11 = match version {
        "HTTP/1.1" => true,
        "HTTP/1.0" => false,
        _ => {
            return Err(HttpError::BadRequest(format!(
                "unsupported protocol version {version:?}"
            )))
        }
    };

    let mut headers = Vec::new();
    for line in lines {
        let (name, value) = line
            .split_once(':')
            .ok_or_else(|| HttpError::BadRequest(format!("malformed header line {line:?}")))?;
        if name.is_empty() || name.contains(' ') || name.contains('\t') {
            return Err(HttpError::BadRequest(format!("malformed header name {name:?}")));
        }
        headers.push((name.to_string(), value.trim().to_string()));
    }

    let lookup = |want: &str| {
        headers
            .iter()
            .find(|(k, _)| k.eq_ignore_ascii_case(want))
            .map(|(_, v)| v.as_str())
    };

    if lookup("transfer-encoding").is_some() {
        return Err(HttpError::Unsupported(
            "chunked request bodies are not supported; send Content-Length".into(),
        ));
    }
    let body_len = match lookup("content-length") {
        Some(v) => v
            .parse::<usize>()
            .map_err(|_| HttpError::BadRequest(format!("invalid Content-Length {v:?}")))?,
        None => 0,
    };
    if body_len > limits.max_body {
        return Err(HttpError::TooLarge(format!(
            "request body of {body_len} bytes exceeds {} byte limit",
            limits.max_body
        )));
    }
    let total = head_end + 4 + body_len;
    if buf.len() < total {
        return Ok(Parsed::Incomplete);
    }

    let keep_alive = match lookup("connection") {
        Some(v) if v.eq_ignore_ascii_case("close") => false,
        Some(v) if v.eq_ignore_ascii_case("keep-alive") => true,
        _ => http11,
    };

    Ok(Parsed::Complete {
        request: Request {
            method: method.to_string(),
            path: path.to_string(),
            headers,
            body: buf.get(head_end + 4..total).unwrap_or_default().to_vec(),
            keep_alive,
        },
        consumed: total,
    })
}

/// Writes a complete response with a `Content-Length` body.
///
/// `extra_headers` are emitted verbatim after the standard ones; use
/// them for `Retry-After`, `Content-Type`, and the like.
pub fn write_response(
    w: &mut dyn Write,
    status: u16,
    reason: &str,
    extra_headers: &[(&str, &str)],
    body: &[u8],
    keep_alive: bool,
) -> io::Result<()> {
    let mut head = format!("HTTP/1.1 {status} {reason}\r\n");
    head.push_str(&format!("Content-Length: {}\r\n", body.len()));
    head.push_str(if keep_alive {
        "Connection: keep-alive\r\n"
    } else {
        "Connection: close\r\n"
    });
    for (k, v) in extra_headers {
        head.push_str(&format!("{k}: {v}\r\n"));
    }
    head.push_str("\r\n");
    w.write_all(head.as_bytes())?;
    w.write_all(body)?;
    w.flush()
}

/// Incrementally writes a chunked-transfer-encoded response body.
///
/// The status line and headers (including
/// `Transfer-Encoding: chunked`) are sent by [`ChunkedWriter::start`];
/// each [`write_chunk`](ChunkedWriter::write_chunk) forwards one chunk
/// and [`finish`](ChunkedWriter::finish) terminates the stream. If the
/// writer is dropped without `finish`, the client sees a truncated
/// chunked body — which is how mid-stream failures are signalled.
pub struct ChunkedWriter<'a> {
    inner: &'a mut dyn Write,
}

impl<'a> ChunkedWriter<'a> {
    /// Sends the response head and returns the chunk writer.
    pub fn start(
        w: &'a mut dyn Write,
        status: u16,
        reason: &str,
        extra_headers: &[(&str, &str)],
    ) -> io::Result<Self> {
        let mut head = format!("HTTP/1.1 {status} {reason}\r\n");
        head.push_str("Transfer-Encoding: chunked\r\nConnection: close\r\n");
        for (k, v) in extra_headers {
            head.push_str(&format!("{k}: {v}\r\n"));
        }
        head.push_str("\r\n");
        w.write_all(head.as_bytes())?;
        w.flush()?;
        Ok(ChunkedWriter { inner: w })
    }

    /// Sends one chunk (empty input is skipped: a zero-length chunk
    /// would terminate the stream).
    pub fn write_chunk(&mut self, data: &[u8]) -> io::Result<()> {
        if data.is_empty() {
            return Ok(());
        }
        write!(self.inner, "{:x}\r\n", data.len())?;
        self.inner.write_all(data)?;
        self.inner.write_all(b"\r\n")?;
        self.inner.flush()
    }

    /// Sends the terminating zero-length chunk.
    pub fn finish(self) -> io::Result<()> {
        self.inner.write_all(b"0\r\n\r\n")?;
        self.inner.flush()
    }
}

/// A response as seen by the built-in client helpers.
#[derive(Debug, Clone)]
pub struct Response {
    /// Status code, e.g. `202`.
    pub status: u16,
    /// Header name/value pairs in arrival order.
    pub headers: Vec<(String, String)>,
    /// Decoded body (chunked transfer encoding is removed).
    pub body: Vec<u8>,
}

impl Response {
    /// Looks up a header value by case-insensitive name.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(k, _)| k.eq_ignore_ascii_case(name))
            .map(|(_, v)| v.as_str())
    }

    /// The body as UTF-8 (lossy).
    pub fn text(&self) -> String {
        String::from_utf8_lossy(&self.body).into_owned()
    }
}

fn read_until(r: &mut dyn Read, buf: &mut Vec<u8>, needle: &[u8]) -> io::Result<usize> {
    loop {
        if let Some(i) = find_subslice(buf, needle) {
            return Ok(i);
        }
        let mut chunk = [0u8; 4096];
        let n = r.read(&mut chunk)?;
        if n == 0 {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "connection closed before message completed",
            ));
        }
        buf.extend_from_slice(chunk.get(..n).unwrap_or_default());
    }
}

fn read_exact_into(r: &mut dyn Read, buf: &mut Vec<u8>, total: usize) -> io::Result<()> {
    while buf.len() < total {
        let mut chunk = [0u8; 4096];
        let n = r.read(&mut chunk)?;
        if n == 0 {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "connection closed mid-body",
            ));
        }
        buf.extend_from_slice(chunk.get(..n).unwrap_or_default());
    }
    Ok(())
}

/// Reads one HTTP response from `r`, decoding `Content-Length` or
/// chunked bodies (a body with neither is read to EOF).
pub fn read_response(r: &mut dyn Read) -> io::Result<Response> {
    let mut buf = Vec::new();
    let head_end = read_until(r, &mut buf, b"\r\n\r\n")?;
    let head = String::from_utf8_lossy(buf.get(..head_end).unwrap_or_default()).into_owned();
    let mut lines = head.split("\r\n");
    let status_line = lines.next().unwrap_or_default();
    let status = status_line
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse::<u16>().ok())
        .ok_or_else(|| {
            io::Error::new(
                io::ErrorKind::InvalidData,
                format!("malformed status line {status_line:?}"),
            )
        })?;
    let mut headers = Vec::new();
    for line in lines {
        if let Some((k, v)) = line.split_once(':') {
            headers.push((k.to_string(), v.trim().to_string()));
        }
    }
    let lookup = |want: &str| {
        headers
            .iter()
            .find(|(k, _): &&(String, String)| k.eq_ignore_ascii_case(want))
            .map(|(_, v)| v.as_str())
    };

    let mut rest = buf.split_off(head_end + 4);
    let body = if lookup("transfer-encoding").is_some_and(|v| v.eq_ignore_ascii_case("chunked")) {
        let mut body = Vec::new();
        loop {
            let line_end = read_until(r, &mut rest, b"\r\n")?;
            let size_line =
                String::from_utf8_lossy(rest.get(..line_end).unwrap_or_default()).into_owned();
            rest.drain(..line_end + 2);
            let size = usize::from_str_radix(size_line.trim(), 16).map_err(|_| {
                io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("malformed chunk size {size_line:?}"),
                )
            })?;
            // `size` comes off the wire: a size like ffff_ffff_ffff_ffff
            // must fail as malformed, not overflow the `+ 2` for CRLF.
            let with_crlf = size.checked_add(2).ok_or_else(|| {
                io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("chunk size {size_line:?} out of range"),
                )
            })?;
            read_exact_into(r, &mut rest, with_crlf)?;
            body.extend_from_slice(rest.get(..size).unwrap_or_default());
            rest.drain(..with_crlf);
            if size == 0 {
                break;
            }
        }
        body
    } else if let Some(len) = lookup("content-length") {
        let len = len.parse::<usize>().map_err(|_| {
            io::Error::new(io::ErrorKind::InvalidData, "malformed Content-Length")
        })?;
        read_exact_into(r, &mut rest, len)?;
        rest.truncate(len);
        rest
    } else {
        r.read_to_end(&mut rest)?;
        rest
    };
    Ok(Response { status, headers, body })
}

/// One-shot client request: connects, sends `method path` with the
/// given body and `Connection: close`, and reads the full response.
pub fn request(addr: SocketAddr, method: &str, path: &str, body: &[u8]) -> io::Result<Response> {
    let mut stream = TcpStream::connect(addr)?;
    let head = format!(
        "{method} {path} HTTP/1.1\r\nHost: {addr}\r\nConnection: close\r\nContent-Length: {}\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(body)?;
    stream.flush()?;
    read_response(&mut stream)
}

/// Escapes a string for inclusion in a JSON string literal.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse_ok(bytes: &[u8]) -> (Request, usize) {
        match parse_request(bytes, &Limits::default()).expect("parse") {
            Parsed::Complete { request, consumed } => (request, consumed),
            Parsed::Incomplete => panic!("unexpected Incomplete"),
        }
    }

    #[test]
    fn parses_get_without_body() {
        let (req, consumed) = parse_ok(b"GET /v1/healthz HTTP/1.1\r\nHost: x\r\n\r\n");
        assert_eq!(req.method, "GET");
        assert_eq!(req.path, "/v1/healthz");
        assert!(req.body.is_empty());
        assert!(req.keep_alive);
        assert_eq!(consumed, b"GET /v1/healthz HTTP/1.1\r\nHost: x\r\n\r\n".len());
    }

    #[test]
    fn parses_post_with_content_length() {
        let (req, _) = parse_ok(b"POST /v1/runs HTTP/1.1\r\nContent-Length: 5\r\n\r\nhello");
        assert_eq!(req.method, "POST");
        assert_eq!(req.body, b"hello");
    }

    #[test]
    fn incomplete_until_body_arrives() {
        let full = b"POST /v1/runs HTTP/1.1\r\nContent-Length: 5\r\n\r\nhello";
        for cut in 0..full.len() {
            match parse_request(&full[..cut], &Limits::default()).expect("prefix must not error") {
                Parsed::Incomplete => {}
                Parsed::Complete { .. } => panic!("complete at cut {cut}"),
            }
        }
        let (req, _) = parse_ok(full);
        assert_eq!(req.body, b"hello");
    }

    #[test]
    fn pipelined_requests_report_consumed() {
        let mut buf = Vec::new();
        buf.extend_from_slice(b"GET /a HTTP/1.1\r\n\r\n");
        buf.extend_from_slice(b"GET /b HTTP/1.1\r\n\r\n");
        let (first, consumed) = parse_ok(&buf);
        assert_eq!(first.path, "/a");
        buf.drain(..consumed);
        let (second, _) = parse_ok(&buf);
        assert_eq!(second.path, "/b");
    }

    #[test]
    fn connection_close_disables_keep_alive() {
        let (req, _) = parse_ok(b"GET / HTTP/1.1\r\nConnection: close\r\n\r\n");
        assert!(!req.keep_alive);
        let (req10, _) = parse_ok(b"GET / HTTP/1.0\r\n\r\n");
        assert!(!req10.keep_alive);
        let (req10ka, _) = parse_ok(b"GET / HTTP/1.0\r\nConnection: keep-alive\r\n\r\n");
        assert!(req10ka.keep_alive);
    }

    #[test]
    fn oversized_head_rejected_even_when_incomplete() {
        let limits = Limits { max_head: 64, max_body: 1024 };
        let mut buf = b"GET / HTTP/1.1\r\n".to_vec();
        buf.extend_from_slice(&[b'a'; 128]);
        assert!(matches!(parse_request(&buf, &limits), Err(HttpError::TooLarge(_))));
    }

    #[test]
    fn oversized_body_rejected_from_declared_length() {
        let limits = Limits { max_head: 1024, max_body: 8 };
        let buf = b"POST / HTTP/1.1\r\nContent-Length: 9\r\n\r\n";
        assert!(matches!(parse_request(buf, &limits), Err(HttpError::TooLarge(_))));
    }

    #[test]
    fn malformed_inputs_rejected() {
        let l = Limits::default();
        assert!(matches!(
            parse_request(b"NONSENSE\r\n\r\n", &l),
            Err(HttpError::BadRequest(_))
        ));
        assert!(matches!(
            parse_request(b"GET noslash HTTP/1.1\r\n\r\n", &l),
            Err(HttpError::BadRequest(_))
        ));
        assert!(matches!(
            parse_request(b"GET / HTTP/2.0\r\n\r\n", &l),
            Err(HttpError::BadRequest(_))
        ));
        assert!(matches!(
            parse_request(b"GET / HTTP/1.1\r\nBad Header: x\r\n\r\n", &l),
            Err(HttpError::BadRequest(_))
        ));
        assert!(matches!(
            parse_request(b"POST / HTTP/1.1\r\nContent-Length: nope\r\n\r\n", &l),
            Err(HttpError::BadRequest(_))
        ));
        assert!(matches!(
            parse_request(b"POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n", &l),
            Err(HttpError::Unsupported(_))
        ));
    }

    #[test]
    fn chunked_writer_round_trips_through_read_response() {
        let mut wire = Vec::new();
        {
            let mut cw = ChunkedWriter::start(&mut wire, 200, "OK", &[("X-Test", "1")]).unwrap();
            cw.write_chunk(b"hello ").unwrap();
            cw.write_chunk(b"").unwrap();
            cw.write_chunk(b"world\n").unwrap();
            cw.finish().unwrap();
        }
        let resp = read_response(&mut wire.as_slice()).unwrap();
        assert_eq!(resp.status, 200);
        assert_eq!(resp.header("X-Test"), Some("1"));
        assert_eq!(resp.body, b"hello world\n");
    }

    #[test]
    fn content_length_response_round_trips() {
        let mut wire = Vec::new();
        write_response(&mut wire, 503, "Service Unavailable", &[("Retry-After", "1")], b"busy", false)
            .unwrap();
        let resp = read_response(&mut wire.as_slice()).unwrap();
        assert_eq!(resp.status, 503);
        assert_eq!(resp.header("Retry-After"), Some("1"));
        assert_eq!(resp.body, b"busy");
    }

    #[test]
    fn json_escape_handles_specials() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(json_escape("\u{1}"), "\\u0001");
    }
}
