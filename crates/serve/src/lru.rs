//! A byte-budgeted LRU cache with `u64` keys.
//!
//! The service's result cache is content-addressed: keys are stable
//! digests of canonical spec text (see
//! `ScenarioSpec::canonical_digest` in `noisy-bench`), values are
//! finished response bodies or per-cell row sets. Entries carry an
//! explicit byte cost and the cache evicts least-recently-used
//! entries until the total cost fits the budget, so a long-running
//! server holds memory bounded by `--cache-bytes` no matter how many
//! distinct specs it has seen.

use std::collections::BTreeMap;

struct Entry<V> {
    value: V,
    cost: usize,
    tick: u64,
}

/// Least-recently-used cache bounded by total byte cost.
///
/// Both indexes are `BTreeMap`s: entry count is bounded by the byte
/// budget, the keys are plain `u64`s, and deterministic order means
/// nothing about the cache (stats, debug output, eviction ties) can
/// ever depend on hash seeding.
pub struct LruCache<V> {
    map: BTreeMap<u64, Entry<V>>,
    // tick -> key, ordered oldest-first; ticks are unique.
    order: BTreeMap<u64, u64>,
    tick: u64,
    bytes: usize,
    budget: usize,
}

impl<V> LruCache<V> {
    /// Creates a cache evicting down to `budget` total bytes. A
    /// budget of 0 disables caching entirely.
    pub fn new(budget: usize) -> Self {
        LruCache {
            map: BTreeMap::new(),
            order: BTreeMap::new(),
            tick: 0,
            bytes: 0,
            budget,
        }
    }

    /// Number of live entries.
    pub fn entries(&self) -> usize {
        self.map.len()
    }

    /// Total byte cost of live entries.
    pub fn bytes(&self) -> usize {
        self.bytes
    }

    /// The configured byte budget.
    pub fn budget(&self) -> usize {
        self.budget
    }

    /// Looks up `key`, marking the entry most-recently-used.
    pub fn get(&mut self, key: u64) -> Option<&V> {
        let next_tick = self.tick + 1;
        let entry = self.map.get_mut(&key)?;
        self.order.remove(&entry.tick);
        entry.tick = next_tick;
        self.order.insert(next_tick, key);
        self.tick = next_tick;
        Some(&entry.value)
    }

    /// Inserts (or replaces) `key`, then evicts LRU entries until the
    /// budget holds. Returns how many entries were evicted. Values
    /// costlier than the whole budget are not stored.
    pub fn insert(&mut self, key: u64, value: V, cost: usize) -> usize {
        if cost > self.budget {
            // Too big to ever fit; also drop any stale entry under
            // this key rather than serving an outdated value.
            return usize::from(self.remove(key));
        }
        self.remove(key);
        self.tick += 1;
        self.map.insert(key, Entry { value, cost, tick: self.tick });
        self.order.insert(self.tick, key);
        self.bytes += cost;
        let mut evicted = 0;
        // The entry just inserted is the newest; the loop always
        // terminates before evicting it because removing all others
        // brings bytes == cost <= budget. `pop_first` keeps the loop
        // panic-free even if the order/map indexes ever disagreed.
        while self.bytes > self.budget {
            let Some((_, oldest_key)) = self.order.pop_first() else { break };
            if let Some(entry) = self.map.remove(&oldest_key) {
                self.bytes -= entry.cost;
            }
            evicted += 1;
        }
        evicted
    }

    fn remove(&mut self, key: u64) -> bool {
        if let Some(entry) = self.map.remove(&key) {
            self.order.remove(&entry.tick);
            self.bytes -= entry.cost;
            true
        } else {
            false
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn evicts_least_recently_used_first() {
        let mut c = LruCache::new(30);
        c.insert(1, "a", 10);
        c.insert(2, "b", 10);
        c.insert(3, "c", 10);
        // Touch 1 so 2 becomes the LRU entry.
        assert_eq!(c.get(1), Some(&"a"));
        let evicted = c.insert(4, "d", 10);
        assert_eq!(evicted, 1);
        assert!(c.get(2).is_none());
        assert_eq!(c.get(1), Some(&"a"));
        assert_eq!(c.get(3), Some(&"c"));
        assert_eq!(c.get(4), Some(&"d"));
        assert_eq!(c.bytes(), 30);
    }

    #[test]
    fn oversized_value_is_not_stored() {
        let mut c = LruCache::new(8);
        c.insert(1, "small", 4);
        c.insert(2, "huge", 100);
        assert!(c.get(2).is_none());
        assert_eq!(c.get(1), Some(&"small"));
        assert_eq!(c.bytes(), 4);
    }

    #[test]
    fn replacing_a_key_updates_cost() {
        let mut c = LruCache::new(20);
        c.insert(1, "a", 10);
        c.insert(1, "b", 5);
        assert_eq!(c.bytes(), 5);
        assert_eq!(c.entries(), 1);
        assert_eq!(c.get(1), Some(&"b"));
    }

    #[test]
    fn zero_budget_disables_caching() {
        let mut c = LruCache::new(0);
        c.insert(1, "a", 1);
        assert!(c.get(1).is_none());
        assert_eq!(c.bytes(), 0);
    }

    #[test]
    fn multi_eviction_until_budget_holds() {
        let mut c = LruCache::new(10);
        c.insert(1, "a", 3);
        c.insert(2, "b", 3);
        c.insert(3, "c", 3);
        let evicted = c.insert(4, "d", 9);
        assert_eq!(evicted, 3);
        assert_eq!(c.entries(), 1);
        assert_eq!(c.bytes(), 9);
    }
}
