//! End-to-end server tests over real sockets with a mock [`JobHandler`].
//!
//! The mock produces deterministic output from the submission body and
//! can be gated shut so tests can hold workers busy and observe queueing,
//! backpressure (`503` + `Retry-After`), coalescing, and shutdown
//! behaviour deterministically instead of racing real workloads.

use noisy_serve::handler::{JobHandler, Plan};
use noisy_serve::http::{self, Response};
use noisy_serve::{Server, ServerConfig, ServerHandle};
use std::io::Write;
use std::net::SocketAddr;
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Opens (gate value `true`) or blocks (`false`) every `run` call.
#[derive(Clone)]
struct Gate(Arc<(Mutex<bool>, Condvar)>);

impl Gate {
    fn new(open: bool) -> Self {
        Gate(Arc::new((Mutex::new(open), Condvar::new())))
    }

    fn open(&self) {
        let (lock, cv) = &*self.0;
        *lock.lock().unwrap() = true;
        cv.notify_all();
    }

    fn wait(&self) {
        let (lock, cv) = &*self.0;
        let mut open = lock.lock().unwrap();
        while !*open {
            open = cv.wait(open).unwrap();
        }
    }
}

/// Deterministic mock workload: three lines derived from the body;
/// bodies starting with `fail` error instead.
#[derive(Clone)]
struct MockHandler {
    gate: Gate,
}

fn expected_output(body: &str) -> Vec<u8> {
    (0..3)
        .map(|i| format!("line {i} of {body}\n"))
        .collect::<String>()
        .into_bytes()
}

impl JobHandler for MockHandler {
    type Job = String;

    fn plan(&self, body: &str) -> Result<Plan<String>, String> {
        if body.starts_with("bad") {
            return Err(format!("malformed job {body:?}"));
        }
        let mut digest = 0xcbf2_9ce4_8422_2325u64;
        for b in body.bytes() {
            digest = (digest ^ u64::from(b)).wrapping_mul(0x100_0000_01b3);
        }
        Ok(Plan { job: body.to_string(), digest, cells: None })
    }

    fn run(&self, job: &String, sink: &mut dyn Write) -> Result<(), String> {
        self.gate.wait();
        if job.starts_with("fail") {
            return Err(format!("job {job:?} exploded"));
        }
        sink.write_all(&expected_output(job)).map_err(|e| e.to_string())
    }

    fn run_cell(&self, _job: &String, _index: usize) -> Result<Vec<Vec<String>>, String> {
        unreachable!("mock plans have no cells")
    }

    fn render_cell(&self, _job: &String, _index: usize, _rows: &[Vec<String>]) -> String {
        unreachable!("mock plans have no cells")
    }
}

fn start(config: ServerConfig, gate: Gate) -> ServerHandle<MockHandler> {
    Server::start(config, MockHandler { gate }).expect("server starts")
}

fn test_config() -> ServerConfig {
    ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        workers: 2,
        ..ServerConfig::default()
    }
}

fn post(addr: SocketAddr, path: &str, body: &str) -> Response {
    http::request(addr, "POST", path, body.as_bytes()).expect("request completes")
}

fn get(addr: SocketAddr, path: &str) -> Response {
    http::request(addr, "GET", path, b"").expect("request completes")
}

/// Extracts `"key":value` for a numeric field from single-line JSON.
fn json_u64(json: &str, key: &str) -> u64 {
    let pat = format!("\"{key}\":");
    let at = json.find(&pat).unwrap_or_else(|| panic!("no {key} in {json}"));
    json[at + pat.len()..]
        .chars()
        .take_while(char::is_ascii_digit)
        .collect::<String>()
        .parse()
        .unwrap_or_else(|_| panic!("non-numeric {key} in {json}"))
}

fn wait_for_done(addr: SocketAddr, id: u64) -> Response {
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let status = get(addr, &format!("/v1/runs/{id}"));
        assert_eq!(status.status, 200, "status endpoint failed: {}", status.text());
        let text = status.text();
        if text.contains("\"done\"") || text.contains("\"failed\"") {
            return status;
        }
        assert!(Instant::now() < deadline, "job {id} never finished: {text}");
        std::thread::sleep(Duration::from_millis(20));
    }
}

#[test]
fn healthz_stats_and_unknown_routes() {
    let handle = start(test_config(), Gate::new(true));
    let addr = handle.addr();
    assert_eq!(get(addr, "/v1/healthz").text(), "{\"ok\":true}");
    let stats = get(addr, "/v1/stats");
    assert_eq!(stats.status, 200);
    assert_eq!(json_u64(&stats.text(), "queue_depth"), 0);
    assert_eq!(json_u64(&stats.text(), "workers"), 2);
    assert_eq!(get(addr, "/v1/nope").status, 404);
    assert_eq!(get(addr, "/v1/runs/999").status, 404);
    // The shutdown endpoint is disabled unless explicitly enabled.
    assert_eq!(post(addr, "/v1/shutdown", "").status, 404);
    handle.shutdown_and_wait();
}

#[test]
fn submit_poll_and_stream_round_trip() {
    let handle = start(test_config(), Gate::new(true));
    let addr = handle.addr();
    let accepted = post(addr, "/v1/runs", "alpha");
    assert_eq!(accepted.status, 202, "{}", accepted.text());
    let id = json_u64(&accepted.text(), "id");
    let done = wait_for_done(addr, id);
    assert!(done.text().contains("\"done\""), "{}", done.text());
    let stream = get(addr, &format!("/v1/runs/{id}/stream"));
    assert_eq!(stream.status, 200);
    assert_eq!(stream.body, expected_output("alpha"));
    // Streaming is repeatable once the job is done.
    let again = get(addr, &format!("/v1/runs/{id}/stream"));
    assert_eq!(again.body, expected_output("alpha"));
    handle.shutdown_and_wait();
}

#[test]
fn repeated_submissions_hit_the_cache() {
    let handle = start(test_config(), Gate::new(true));
    let addr = handle.addr();
    let first = post(addr, "/v1/runs", "cached-job");
    let id = json_u64(&first.text(), "id");
    wait_for_done(addr, id);
    let before = get(addr, "/v1/stats").text();
    assert_eq!(json_u64(&before, "hits"), 0, "{before}");

    let second = post(addr, "/v1/runs", "cached-job");
    assert_eq!(second.status, 202);
    assert!(second.text().contains("\"cached\":true"), "{}", second.text());
    let second_id = json_u64(&second.text(), "id");
    assert_ne!(second_id, id, "a cache hit still mints a fresh job id");
    let stream = get(addr, &format!("/v1/runs/{second_id}/stream"));
    assert_eq!(stream.body, expected_output("cached-job"));

    let after = get(addr, "/v1/stats").text();
    assert_eq!(json_u64(&after, "hits"), 1, "{after}");
    assert_eq!(json_u64(&after, "completed"), 1, "no recompute: {after}");
    handle.shutdown_and_wait();
}

#[test]
fn identical_inflight_submissions_coalesce() {
    let gate = Gate::new(false);
    let handle = start(test_config(), gate.clone());
    let addr = handle.addr();
    let first = post(addr, "/v1/runs", "slow-job");
    let second = post(addr, "/v1/runs", "slow-job");
    let first_id = json_u64(&first.text(), "id");
    let second_id = json_u64(&second.text(), "id");
    assert_eq!(first_id, second_id, "concurrent identical submissions share a job");
    assert!(second.text().contains("\"accepted\""), "{}", second.text());
    gate.open();
    wait_for_done(addr, first_id);
    let stats = get(addr, "/v1/stats").text();
    assert_eq!(json_u64(&stats, "coalesced"), 1, "{stats}");
    assert_eq!(json_u64(&stats, "completed"), 1, "{stats}");
    handle.shutdown_and_wait();
}

#[test]
fn queue_saturation_returns_503_with_retry_after() {
    let gate = Gate::new(false);
    let config = ServerConfig {
        workers: 1,
        queue_depth: 1,
        ..test_config()
    };
    let handle = start(config, gate.clone());
    let addr = handle.addr();

    // Job 1 occupies the single worker (gated shut); job 2 fills the
    // queue. Distinct bodies, so coalescing cannot absorb them.
    let running = post(addr, "/v1/runs", "job-running");
    assert_eq!(running.status, 202);
    // Wait until the worker has actually claimed job 1 off the queue.
    let deadline = Instant::now() + Duration::from_secs(5);
    while json_u64(&get(addr, "/v1/stats").text(), "in_flight") == 0 {
        assert!(Instant::now() < deadline, "worker never claimed the job");
        std::thread::sleep(Duration::from_millis(10));
    }
    let queued = post(addr, "/v1/runs", "job-queued");
    assert_eq!(queued.status, 202);

    let rejected = post(addr, "/v1/runs", "job-rejected");
    assert_eq!(rejected.status, 503, "{}", rejected.text());
    assert_eq!(rejected.header("retry-after"), Some("1"));
    let stats = get(addr, "/v1/stats").text();
    assert_eq!(json_u64(&stats, "rejected"), 1, "{stats}");

    // Draining the gate lets the accepted jobs finish; the rejected one
    // was never enqueued.
    gate.open();
    wait_for_done(addr, json_u64(&queued.text(), "id"));
    let stats = get(addr, "/v1/stats").text();
    assert_eq!(json_u64(&stats, "completed"), 2, "{stats}");
    handle.shutdown_and_wait();
}

#[test]
fn failed_jobs_report_errors_on_status_and_stream() {
    let handle = start(test_config(), Gate::new(true));
    let addr = handle.addr();
    let accepted = post(addr, "/v1/runs", "fail-me");
    let id = json_u64(&accepted.text(), "id");
    let status = wait_for_done(addr, id);
    assert!(status.text().contains("\"failed\""), "{}", status.text());
    assert!(status.text().contains("exploded"), "{}", status.text());
    let stream = get(addr, &format!("/v1/runs/{id}/stream"));
    assert_eq!(stream.status, 500, "{}", stream.text());
    handle.shutdown_and_wait();
}

#[test]
fn plan_errors_are_bad_requests() {
    let handle = start(test_config(), Gate::new(true));
    let addr = handle.addr();
    let response = post(addr, "/v1/runs", "bad spec");
    assert_eq!(response.status, 400, "{}", response.text());
    assert!(response.text().contains("malformed job"), "{}", response.text());
    // Non-UTF-8 bodies are rejected before planning.
    let response = http::request(addr, "POST", "/v1/runs", &[0xff, 0xfe, 0x00])
        .expect("request completes");
    assert_eq!(response.status, 400, "{}", response.text());
    handle.shutdown_and_wait();
}

#[test]
fn shutdown_endpoint_drains_and_rejects_new_work() {
    let config = ServerConfig {
        enable_shutdown_endpoint: true,
        ..test_config()
    };
    let gate = Gate::new(false);
    let handle = start(config, gate.clone());
    let addr = handle.addr();
    let accepted = post(addr, "/v1/runs", "pre-shutdown");
    let id = json_u64(&accepted.text(), "id");

    // Connections that exist before shutdown keep being served while the
    // server drains. Each parks a partial request so the server cannot
    // mistake it for an idle keep-alive connection and close it.
    let submit_body = b"post-shutdown";
    let submit_head = format!(
        "POST /v1/runs HTTP/1.1\r\nContent-Length: {}\r\n\r\n",
        submit_body.len()
    );
    let mut submit_conn = std::net::TcpStream::connect(addr).expect("connect");
    submit_conn.write_all(submit_head.as_bytes()).expect("send head");
    let mut stream_conn = std::net::TcpStream::connect(addr).expect("connect");
    stream_conn
        .write_all(format!("GET /v1/runs/{id}/stream HTTP/1.1\r\n").as_bytes())
        .expect("send request line");

    let response = post(addr, "/v1/shutdown", "");
    assert_eq!(response.status, 200);
    assert!(handle.shutdown_begun());
    // New connections are no longer accepted once the server drains, so
    // fresh submissions fail at connect or get refused in-band.
    assert!(
        std::net::TcpStream::connect(addr).is_err()
            || http::request(addr, "POST", "/v1/runs", b"late")
                .map(|r| r.status == 503)
                .unwrap_or(true),
        "new work must not be accepted during drain"
    );

    // The pre-shutdown submission connection completes its request and
    // is refused with backpressure semantics, not a dropped socket.
    submit_conn.write_all(submit_body).expect("send body");
    let refused = http::read_response(&mut submit_conn).expect("refusal arrives");
    assert_eq!(refused.status, 503, "{}", refused.text());
    assert_eq!(refused.header("retry-after"), Some("1"));

    // The queued job still runs to completion and its stream flushes
    // fully before the server exits.
    stream_conn.write_all(b"\r\n").expect("finish request");
    gate.open();
    let streamed = http::read_response(&mut stream_conn).expect("stream arrives");
    assert_eq!(streamed.status, 200);
    assert_eq!(streamed.body, expected_output("pre-shutdown"));
    handle.shutdown_and_wait();
}

/// Pins the determinism remediation: two servers driven through the
/// same operation sequence — submissions with distinct digests, a
/// cache budget small enough to force evictions, a replayed
/// submission for a hit — must report byte-identical `/v1/stats`
/// documents. With hash-ordered cache/job tables the eviction victim
/// (and so `bytes`/`entries`/`evictions`) could vary run to run; the
/// BTreeMap-backed tables make the whole document a pure function of
/// the operation history.
#[test]
fn stats_json_identical_across_identical_runs() {
    let run_once = || {
        let mut config = test_config();
        config.workers = 1; // serialize execution so counters can't race
        config.cache_bytes = 96; // tiny budget: every body is ~48 bytes, so later inserts evict
        let handle = start(config, Gate::new(true));
        let addr = handle.addr();
        let mut ids = Vec::new();
        for i in 0..6 {
            let resp = post(addr, "/v1/runs", &format!("job number {i}"));
            assert_eq!(resp.status, 202, "{}", resp.text());
            ids.push(json_u64(&resp.text(), "id"));
        }
        for id in ids {
            wait_for_done(addr, id);
        }
        // Replay the first body: digest-identical, exercises the cache
        // lookup path (hit or miss is decided by the eviction order,
        // which must itself be deterministic).
        let resp = post(addr, "/v1/runs", "job number 0");
        assert_eq!(resp.status, 202, "{}", resp.text());
        let id = json_u64(&resp.text(), "id");
        wait_for_done(addr, id);
        let stats = get(addr, "/v1/stats").text();
        handle.shutdown_and_wait();
        stats
    };
    let first = run_once();
    let second = run_once();
    assert_eq!(first, second, "stats document depends on something other than the op history");
}
