//! Property tests for the incremental HTTP/1.1 request parser.
//!
//! The parser feeds directly on socket bytes, so the properties here are
//! its safety contract: valid requests round-trip exactly, every strict
//! prefix of a valid request is `Incomplete` (never a spurious error or
//! a truncated `Complete`), pipelined requests split at the right byte,
//! and arbitrary garbage — including single-byte corruptions of valid
//! requests — never panics or overruns the configured limits.

use noisy_serve::http::{parse_request, HttpError, Limits, Parsed};
use proptest::prelude::*;

fn method_strategy() -> impl Strategy<Value = String> {
    prop::sample::select(vec![
        "GET".to_string(),
        "POST".to_string(),
        "PUT".to_string(),
        "DELETE".to_string(),
        "PATCH".to_string(),
    ])
}

/// URL-ish path segments; kept to bytes that are unambiguous in a
/// request line (no spaces, no control characters).
fn path_strategy() -> impl Strategy<Value = String> {
    let segment = prop::collection::vec(
        prop::sample::select("abcdefgz019-_.~%".chars().collect::<Vec<_>>()),
        1..8,
    )
    .prop_map(|chars| chars.into_iter().collect::<String>());
    (prop::collection::vec(segment, 0..4), prop::bool::ANY).prop_map(|(segments, query)| {
        let mut path = String::from("/");
        path.push_str(&segments.join("/"));
        if query {
            path.push_str("?x=1&y=2");
        }
        path
    })
}

/// Innocuous header names: none of the names the parser gives semantics
/// to (`content-length`, `connection`, `transfer-encoding`), so the
/// generated requests stay valid regardless of how they combine.
fn header_strategy() -> impl Strategy<Value = (String, String)> {
    let name = prop::sample::select(vec![
        "X-Trace".to_string(),
        "Accept".to_string(),
        "User-Agent".to_string(),
        "X-Request-Id".to_string(),
        "Host".to_string(),
    ]);
    let value = prop::collection::vec(
        prop::sample::select("abc XYZ0:;/=,.".chars().collect::<Vec<_>>()),
        0..20,
    )
    .prop_map(|chars| chars.into_iter().collect::<String>().trim().to_string());
    (name, value)
}

#[derive(Debug, Clone)]
struct GeneratedRequest {
    method: String,
    path: String,
    headers: Vec<(String, String)>,
    body: Vec<u8>,
    close: bool,
}

impl GeneratedRequest {
    /// The exact bytes a client would put on the wire.
    fn to_bytes(&self) -> Vec<u8> {
        let mut out = format!("{} {} HTTP/1.1\r\n", self.method, self.path).into_bytes();
        for (name, value) in &self.headers {
            out.extend_from_slice(format!("{name}: {value}\r\n").as_bytes());
        }
        if !self.body.is_empty() {
            out.extend_from_slice(format!("Content-Length: {}\r\n", self.body.len()).as_bytes());
        }
        if self.close {
            out.extend_from_slice(b"Connection: close\r\n");
        }
        out.extend_from_slice(b"\r\n");
        out.extend_from_slice(&self.body);
        out
    }
}

fn request_strategy() -> impl Strategy<Value = GeneratedRequest> {
    (
        method_strategy(),
        path_strategy(),
        prop::collection::vec(header_strategy(), 0..4),
        prop::collection::vec(0u8..255, 0..200),
        prop::bool::ANY,
    )
        .prop_map(|(method, path, headers, body, close)| GeneratedRequest {
            method,
            path,
            headers,
            body,
            close,
        })
}

fn parse_complete(bytes: &[u8]) -> (noisy_serve::http::Request, usize) {
    match parse_request(bytes, &Limits::default()) {
        Ok(Parsed::Complete { request, consumed }) => (request, consumed),
        other => panic!("expected a complete parse, got {other:?}"),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Serialize -> parse is the identity on method, path, headers and
    /// body, and consumes exactly the bytes written.
    #[test]
    fn valid_requests_round_trip(req in request_strategy()) {
        let bytes = req.to_bytes();
        let (parsed, consumed) = parse_complete(&bytes);
        prop_assert_eq!(consumed, bytes.len());
        prop_assert_eq!(&parsed.method, &req.method);
        prop_assert_eq!(&parsed.path, &req.path);
        prop_assert_eq!(&parsed.body, &req.body);
        prop_assert_eq!(parsed.keep_alive, !req.close);
        for (name, value) in &req.headers {
            // Duplicate generated names keep their first value, like
            // `Request::header` resolves them.
            let first = req
                .headers
                .iter()
                .find(|(n, _)| n.eq_ignore_ascii_case(name))
                .map(|(_, v)| v.as_str());
            prop_assert_eq!(parsed.header(name), first, "header {}={}", name, value);
        }
    }

    /// Every strict prefix of a valid request is `Incomplete`: the
    /// incremental reader must never see an error or a short `Complete`
    /// while a slow client is still sending.
    #[test]
    fn every_strict_prefix_is_incomplete(req in request_strategy()) {
        let bytes = req.to_bytes();
        for cut in 0..bytes.len() {
            match parse_request(&bytes[..cut], &Limits::default()) {
                Ok(Parsed::Incomplete) => {}
                other => prop_assert!(false, "prefix of {cut} bytes parsed as {other:?}"),
            }
        }
    }

    /// Two pipelined requests split at exactly the first request's
    /// byte length, and the remainder parses as the second request.
    #[test]
    fn pipelined_requests_split_at_request_boundaries(
        first in request_strategy(),
        second in request_strategy(),
    ) {
        let mut wire = first.to_bytes();
        let boundary = wire.len();
        wire.extend_from_slice(&second.to_bytes());
        let (parsed, consumed) = parse_complete(&wire);
        prop_assert_eq!(consumed, boundary);
        prop_assert_eq!(&parsed.path, &first.path);
        let (rest, rest_consumed) = parse_complete(&wire[consumed..]);
        prop_assert_eq!(rest_consumed, wire.len() - boundary);
        prop_assert_eq!(&rest.path, &second.path);
        prop_assert_eq!(&rest.body, &second.body);
    }

    /// Arbitrary bytes never panic the parser, and whatever it returns
    /// respects the head limit: no `Complete` whose head outruns
    /// `max_head`.
    #[test]
    fn garbage_never_panics(bytes in prop::collection::vec(0u8..255, 0..300)) {
        let limits = Limits { max_head: 64, max_body: 64 };
        match parse_request(&bytes, &limits) {
            Ok(Parsed::Complete { consumed, request }) => {
                prop_assert!(consumed <= bytes.len());
                prop_assert!(request.body.len() <= limits.max_body);
            }
            Ok(Parsed::Incomplete) => {}
            Err(_) => {}
        }
    }

    /// Single-byte corruptions of valid requests never panic; they
    /// parse, wait for more bytes, or fail cleanly.
    #[test]
    fn corrupted_requests_never_panic(
        req in request_strategy(),
        pos in 0usize..4096,
        replacement in 0u8..255,
    ) {
        let mut bytes = req.to_bytes();
        let pos = pos % bytes.len();
        bytes[pos] = replacement;
        let _ = parse_request(&bytes, &Limits::default());
    }
}

#[test]
fn oversized_heads_are_rejected_even_while_incomplete() {
    // 100 bytes of request line with no terminator against a 64-byte
    // head limit: the parser must fail now, not buffer forever.
    let mut bytes = b"GET /".to_vec();
    bytes.extend(std::iter::repeat_n(b'a', 95));
    let limits = Limits { max_head: 64, max_body: 1024 };
    match parse_request(&bytes, &limits) {
        Err(HttpError::TooLarge(_)) => {}
        other => panic!("expected TooLarge, got {other:?}"),
    }
}

#[test]
fn oversized_bodies_are_rejected_from_the_declared_length() {
    let bytes = b"POST /v1/runs HTTP/1.1\r\nContent-Length: 2048\r\n\r\n";
    let limits = Limits { max_head: 16 * 1024, max_body: 1024 };
    match parse_request(bytes, &limits) {
        Err(HttpError::TooLarge(_)) => {}
        other => panic!("expected TooLarge, got {other:?}"),
    }
}

#[test]
fn transfer_encoding_requests_are_unsupported() {
    let bytes = b"POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n";
    match parse_request(bytes, &Limits::default()) {
        Err(HttpError::Unsupported(_)) => {}
        other => panic!("expected Unsupported, got {other:?}"),
    }
}
