//! Property-based tests for the simplex solver.
//!
//! The strategies construct LP families whose optima are known analytically,
//! so the solver can be checked exactly rather than against itself.

use noisy_lp::{LinearProgram, Relation};
use proptest::prelude::*;

fn small_positive() -> impl Strategy<Value = f64> {
    (1u32..1000).prop_map(|v| v as f64 / 100.0)
}

fn signed_coeff() -> impl Strategy<Value = f64> {
    (-1000i32..1000).prop_map(|v| v as f64 / 100.0)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Box-constrained LPs (`x_i ≤ u_i`) have the closed-form optimum
    /// `Σ_{c_i > 0} c_i u_i` at `x_i = u_i` for positive costs and `x_i = 0`
    /// otherwise.
    #[test]
    fn box_constrained_optimum_matches_closed_form(
        spec in prop::collection::vec((signed_coeff(), small_positive()), 1..8)
    ) {
        let costs: Vec<f64> = spec.iter().map(|(c, _)| *c).collect();
        let uppers: Vec<f64> = spec.iter().map(|(_, u)| *u).collect();
        let mut lp = LinearProgram::maximize(costs.clone());
        for (i, &u) in uppers.iter().enumerate() {
            let mut row = vec![0.0; costs.len()];
            row[i] = 1.0;
            lp.add_constraint(row, Relation::Le, u).unwrap();
        }
        let sol = lp.solve().unwrap();
        let expected: f64 = costs
            .iter()
            .zip(&uppers)
            .map(|(&c, &u)| if c > 0.0 { c * u } else { 0.0 })
            .sum();
        prop_assert!((sol.objective_value() - expected).abs() < 1e-6,
            "objective {} but closed form {}", sol.objective_value(), expected);
        prop_assert!(lp.is_feasible(sol.variables(), 1e-6));
    }

    /// For LPs whose constraints all contain the origin (`a · x ≤ b` with
    /// `b ≥ 0`, plus a global box to keep them bounded), the returned point
    /// must be feasible and at least as good as the origin.
    #[test]
    fn random_le_program_returns_feasible_at_least_origin(
        n in 1usize..5,
        rows in prop::collection::vec(prop::collection::vec(signed_coeff(), 5), 0..6),
        rhs in prop::collection::vec(small_positive(), 6),
        costs in prop::collection::vec(signed_coeff(), 5),
    ) {
        let costs: Vec<f64> = costs.into_iter().take(n).collect();
        let mut lp = LinearProgram::maximize(costs.clone());
        // Bounding box so the program is never unbounded.
        for i in 0..n {
            let mut row = vec![0.0; n];
            row[i] = 1.0;
            lp.add_constraint(row, Relation::Le, 50.0).unwrap();
        }
        for (row, b) in rows.iter().zip(&rhs) {
            let row: Vec<f64> = row.iter().copied().take(n).collect();
            lp.add_constraint(row, Relation::Le, *b).unwrap();
        }
        let sol = lp.solve().unwrap();
        prop_assert!(lp.is_feasible(sol.variables(), 1e-6));
        prop_assert!(sol.objective_value() >= -1e-6,
            "origin is feasible with value 0 but solver returned {}", sol.objective_value());
    }

    /// Simplex-constrained LPs (`Σ x_i = 1`) optimize at the best vertex of
    /// the probability simplex: the maximum cost coefficient.
    #[test]
    fn probability_simplex_optimum_is_max_cost(
        costs in prop::collection::vec(signed_coeff(), 2..8)
    ) {
        let mut lp = LinearProgram::maximize(costs.clone());
        lp.add_constraint(vec![1.0; costs.len()], Relation::Eq, 1.0).unwrap();
        let sol = lp.solve().unwrap();
        let best = costs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        prop_assert!((sol.objective_value() - best).abs() < 1e-6);
        let total: f64 = sol.variables().iter().sum();
        prop_assert!((total - 1.0).abs() < 1e-6);
    }

    /// Minimization over `a · x ≥ b` with all-positive `a` and cost vectors
    /// has the closed-form optimum `b · min_i(c_i / a_i)` (put all weight on
    /// the cheapest coordinate per unit of constraint).
    #[test]
    fn single_covering_constraint_matches_closed_form(
        pairs in prop::collection::vec((small_positive(), small_positive()), 1..6),
        b in small_positive(),
    ) {
        let costs: Vec<f64> = pairs.iter().map(|(c, _)| *c).collect();
        let coeffs: Vec<f64> = pairs.iter().map(|(_, a)| *a).collect();
        let mut lp = LinearProgram::minimize(costs.clone());
        lp.add_constraint(coeffs.clone(), Relation::Ge, b).unwrap();
        let sol = lp.solve().unwrap();
        let expected = b * pairs
            .iter()
            .map(|(c, a)| c / a)
            .fold(f64::INFINITY, f64::min);
        prop_assert!((sol.objective_value() - expected).abs() < 1e-6,
            "objective {} but closed form {}", sol.objective_value(), expected);
        prop_assert!(lp.is_feasible(sol.variables(), 1e-6));
    }
}
