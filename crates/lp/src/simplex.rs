//! Two-phase dense tableau simplex with Bland's anti-cycling rule.
//!
//! The implementation favours clarity and robustness over speed: the LPs
//! solved in this workspace have at most a few dozen variables and
//! constraints, so reduced costs are recomputed from scratch on every pivot
//! and no factorization is maintained.

use crate::error::LpError;
use crate::problem::{Constraint, Relation};
use crate::TOLERANCE;

/// One row of the internal standard-form tableau.
struct Row {
    /// Coefficients over all columns (structural, slack/surplus, artificial).
    coeffs: Vec<f64>,
    /// Right-hand side (kept non-negative).
    rhs: f64,
}

/// Internal standard-form problem: maximize `cost · y` with `A y = b`,
/// `y ≥ 0`, where `y` stacks structural, slack/surplus and artificial
/// variables.
struct Tableau {
    rows: Vec<Row>,
    /// Index of the basic variable of each row.
    basis: Vec<usize>,
    /// Total number of columns (excluding the rhs).
    num_cols: usize,
    /// Number of structural (original) variables.
    num_structural: usize,
    /// Column indices of the artificial variables.
    artificial: Vec<usize>,
}

/// Solves `maximize objective · x` subject to `constraints` and `x ≥ 0`.
///
/// Returns the optimal structural variable assignment.
pub(crate) fn solve_standard_form(
    objective: &[f64],
    constraints: &[Constraint],
) -> Result<Vec<f64>, LpError> {
    let mut tableau = Tableau::build(objective.len(), constraints);

    // Phase 1: drive the artificial variables to zero.
    if !tableau.artificial.is_empty() {
        let mut phase1_cost = vec![0.0; tableau.num_cols];
        for &a in &tableau.artificial {
            phase1_cost[a] = -1.0;
        }
        let value = tableau.optimize(&phase1_cost, &[])?;
        if value < -1e-7 {
            return Err(LpError::Infeasible);
        }
        tableau.pivot_out_artificials();
    }

    // Phase 2: optimize the real objective, never letting artificial
    // variables re-enter the basis.
    let mut phase2_cost = vec![0.0; tableau.num_cols];
    phase2_cost[..objective.len()].copy_from_slice(objective);
    let blocked = tableau.artificial.clone();
    tableau.optimize(&phase2_cost, &blocked)?;

    Ok(tableau.structural_solution())
}

impl Tableau {
    /// Builds the standard-form tableau: adds a slack for every `≤` row, a
    /// surplus and an artificial for every `≥` row, and an artificial for
    /// every `=` row. Rows are normalized so that every right-hand side is
    /// non-negative.
    fn build(num_structural: usize, constraints: &[Constraint]) -> Self {
        let m = constraints.len();
        // First pass: count extra columns.
        let mut num_slack = 0;
        let mut num_artificial = 0;
        for c in constraints {
            // Sign-normalize first: a negative rhs flips the relation.
            let relation = effective_relation(c);
            match relation {
                Relation::Le => num_slack += 1,
                Relation::Ge => {
                    num_slack += 1;
                    num_artificial += 1;
                }
                Relation::Eq => num_artificial += 1,
            }
        }
        let num_cols = num_structural + num_slack + num_artificial;
        let mut rows = Vec::with_capacity(m);
        let mut basis = vec![0usize; m];
        let mut artificial = Vec::with_capacity(num_artificial);

        let mut next_slack = num_structural;
        let mut next_artificial = num_structural + num_slack;

        for (i, c) in constraints.iter().enumerate() {
            let flip = c.rhs() < 0.0;
            let sign = if flip { -1.0 } else { 1.0 };
            let mut coeffs = vec![0.0; num_cols];
            for (j, &a) in c.coeffs().iter().enumerate() {
                coeffs[j] = sign * a;
            }
            let rhs = sign * c.rhs();
            let relation = effective_relation(c);
            match relation {
                Relation::Le => {
                    coeffs[next_slack] = 1.0;
                    basis[i] = next_slack;
                    next_slack += 1;
                }
                Relation::Ge => {
                    coeffs[next_slack] = -1.0;
                    next_slack += 1;
                    coeffs[next_artificial] = 1.0;
                    basis[i] = next_artificial;
                    artificial.push(next_artificial);
                    next_artificial += 1;
                }
                Relation::Eq => {
                    coeffs[next_artificial] = 1.0;
                    basis[i] = next_artificial;
                    artificial.push(next_artificial);
                    next_artificial += 1;
                }
            }
            rows.push(Row { coeffs, rhs });
        }

        Self {
            rows,
            basis,
            num_cols,
            num_structural,
            artificial,
        }
    }

    /// Runs the primal simplex on the current basis for the given cost
    /// vector, with Bland's rule. `blocked` columns are never allowed to
    /// enter the basis. Returns the optimal objective value.
    fn optimize(&mut self, cost: &[f64], blocked: &[usize]) -> Result<f64, LpError> {
        // Generous iteration limit: with Bland's rule the simplex cannot
        // cycle, so this only trips on severe numerical breakdown.
        let limit = 50_000usize.max(100 * (self.num_cols + self.rows.len()));
        for _ in 0..limit {
            let reduced = self.reduced_costs(cost);
            // Bland's rule: the entering column is the lowest-indexed column
            // with a strictly positive reduced cost.
            let entering = (0..self.num_cols)
                .filter(|j| !blocked.contains(j) && !self.basis.contains(j))
                .find(|&j| reduced[j] > TOLERANCE);
            let Some(entering) = entering else {
                return Ok(self.objective_value(cost));
            };
            let leaving_row = self.ratio_test(entering).ok_or(LpError::Unbounded)?;
            self.pivot(leaving_row, entering);
        }
        Err(LpError::IterationLimit)
    }

    /// Reduced cost of every column for the given cost vector:
    /// `c_j − c_B · B⁻¹ A_j` (recomputed from the current tableau).
    fn reduced_costs(&self, cost: &[f64]) -> Vec<f64> {
        let mut reduced = cost.to_vec();
        for (row, &b) in self.rows.iter().zip(&self.basis) {
            let cb = cost[b];
            if cb != 0.0 {
                for (r, &coeff) in reduced.iter_mut().zip(&row.coeffs) {
                    *r -= cb * coeff;
                }
            }
        }
        reduced
    }

    /// Current objective value `c_B · x_B`.
    fn objective_value(&self, cost: &[f64]) -> f64 {
        self.rows
            .iter()
            .zip(&self.basis)
            .map(|(row, &b)| cost[b] * row.rhs)
            .sum()
    }

    /// Minimum-ratio test for the entering column; ties are broken towards
    /// the row whose basic variable has the smallest index (Bland).
    fn ratio_test(&self, entering: usize) -> Option<usize> {
        let mut best: Option<(usize, f64)> = None;
        for (i, row) in self.rows.iter().enumerate() {
            let a = row.coeffs[entering];
            if a > TOLERANCE {
                let ratio = row.rhs / a;
                match best {
                    None => best = Some((i, ratio)),
                    Some((bi, br)) => {
                        if ratio < br - TOLERANCE
                            || ((ratio - br).abs() <= TOLERANCE
                                && self.basis[i] < self.basis[bi])
                        {
                            best = Some((i, ratio));
                        }
                    }
                }
            }
        }
        best.map(|(i, _)| i)
    }

    /// Gauss–Jordan pivot on (`row`, `col`).
    fn pivot(&mut self, row: usize, col: usize) {
        let pivot_value = self.rows[row].coeffs[col];
        debug_assert!(pivot_value.abs() > TOLERANCE, "pivot on a ~zero element");
        let inv = 1.0 / pivot_value;
        for v in &mut self.rows[row].coeffs {
            *v *= inv;
        }
        self.rows[row].rhs *= inv;
        // Re-snap the pivot element to exactly 1 to limit drift.
        self.rows[row].coeffs[col] = 1.0;

        for i in 0..self.rows.len() {
            if i == row {
                continue;
            }
            let factor = self.rows[i].coeffs[col];
            if factor == 0.0 {
                continue;
            }
            for j in 0..self.num_cols {
                let delta = factor * self.rows[row].coeffs[j];
                self.rows[i].coeffs[j] -= delta;
            }
            self.rows[i].rhs -= factor * self.rows[row].rhs;
            self.rows[i].coeffs[col] = 0.0;
        }
        self.basis[row] = col;
    }

    /// After phase 1, artificial variables that remain basic (necessarily at
    /// value zero) are pivoted out on any non-artificial column when
    /// possible; redundant rows keep their zero-valued artificial, which is
    /// then blocked from re-entering during phase 2.
    fn pivot_out_artificials(&mut self) {
        for i in 0..self.rows.len() {
            if !self.artificial.contains(&self.basis[i]) {
                continue;
            }
            let replacement = (0..self.num_structural + self.num_slack_count())
                .find(|&j| self.rows[i].coeffs[j].abs() > 1e-7);
            if let Some(col) = replacement {
                self.pivot(i, col);
            }
        }
    }

    fn num_slack_count(&self) -> usize {
        self.num_cols - self.num_structural - self.artificial.len()
    }

    /// Reads the structural part of the current basic solution.
    fn structural_solution(&self) -> Vec<f64> {
        let mut x = vec![0.0; self.num_structural];
        for (row, &b) in self.rows.iter().zip(&self.basis) {
            if b < self.num_structural {
                x[b] = row.rhs.max(0.0);
            }
        }
        x
    }
}

/// The relation a constraint effectively has once its row is sign-normalized
/// to a non-negative right-hand side.
fn effective_relation(c: &Constraint) -> Relation {
    if c.rhs() < 0.0 {
        match c.relation() {
            Relation::Le => Relation::Ge,
            Relation::Ge => Relation::Le,
            Relation::Eq => Relation::Eq,
        }
    } else {
        c.relation()
    }
}

#[cfg(test)]
mod tests {
    use crate::{LinearProgram, LpError, Relation};

    fn assert_close(a: f64, b: f64) {
        assert!((a - b).abs() < 1e-7, "expected {b}, got {a}");
    }

    #[test]
    fn textbook_maximization() {
        // max 3x + 5y s.t. x <= 4, 2y <= 12, 3x + 2y <= 18 -> 36 at (2, 6).
        let mut lp = LinearProgram::maximize(vec![3.0, 5.0]);
        lp.add_constraint(vec![1.0, 0.0], Relation::Le, 4.0).unwrap();
        lp.add_constraint(vec![0.0, 2.0], Relation::Le, 12.0).unwrap();
        lp.add_constraint(vec![3.0, 2.0], Relation::Le, 18.0).unwrap();
        let sol = lp.solve().unwrap();
        assert_close(sol.objective_value(), 36.0);
        assert_close(sol.variables()[0], 2.0);
        assert_close(sol.variables()[1], 6.0);
    }

    #[test]
    fn minimization_with_ge_constraints() {
        // min 0.12x + 0.15y s.t. 60x + 60y >= 300, 12x + 6y >= 36, 10x + 30y >= 90.
        // Optimum 0.66 at (3, 2).
        let mut lp = LinearProgram::minimize(vec![0.12, 0.15]);
        lp.add_constraint(vec![60.0, 60.0], Relation::Ge, 300.0).unwrap();
        lp.add_constraint(vec![12.0, 6.0], Relation::Ge, 36.0).unwrap();
        lp.add_constraint(vec![10.0, 30.0], Relation::Ge, 90.0).unwrap();
        let sol = lp.solve().unwrap();
        assert_close(sol.objective_value(), 0.66);
        assert_close(sol.variables()[0], 3.0);
        assert_close(sol.variables()[1], 2.0);
    }

    #[test]
    fn equality_constraint_simplex_distribution() {
        // max x1 - x2 over the probability simplex of dimension 3 is 1.
        let mut lp = LinearProgram::maximize(vec![1.0, -1.0, 0.0]);
        lp.add_constraint(vec![1.0, 1.0, 1.0], Relation::Eq, 1.0).unwrap();
        let sol = lp.solve().unwrap();
        assert_close(sol.objective_value(), 1.0);
        assert_close(sol.variables()[0], 1.0);
    }

    #[test]
    fn infeasible_problem_is_detected() {
        let mut lp = LinearProgram::maximize(vec![1.0]);
        lp.add_constraint(vec![1.0], Relation::Le, 1.0).unwrap();
        lp.add_constraint(vec![1.0], Relation::Ge, 2.0).unwrap();
        assert_eq!(lp.solve().unwrap_err(), LpError::Infeasible);
    }

    #[test]
    fn unbounded_problem_is_detected() {
        let mut lp = LinearProgram::maximize(vec![1.0, 0.0]);
        lp.add_constraint(vec![0.0, 1.0], Relation::Le, 5.0).unwrap();
        assert_eq!(lp.solve().unwrap_err(), LpError::Unbounded);
    }

    #[test]
    fn unconstrained_minimization_of_nonnegative_vars_is_zero() {
        // min x + y with only x, y >= 0 has optimum 0 at the origin.
        let lp = LinearProgram::minimize(vec![1.0, 1.0]);
        let sol = lp.solve().unwrap();
        assert_close(sol.objective_value(), 0.0);
    }

    #[test]
    fn negative_rhs_rows_are_normalized() {
        // x - y <= -1 is the same as y - x >= 1; with x + y <= 3, max x + y = 3.
        let mut lp = LinearProgram::maximize(vec![1.0, 1.0]);
        lp.add_constraint(vec![1.0, -1.0], Relation::Le, -1.0).unwrap();
        lp.add_constraint(vec![1.0, 1.0], Relation::Le, 3.0).unwrap();
        let sol = lp.solve().unwrap();
        assert_close(sol.objective_value(), 3.0);
        assert!(lp.is_feasible(sol.variables(), 1e-7));
    }

    #[test]
    fn degenerate_problem_terminates() {
        // Classic degenerate vertex: several constraints meet at the optimum.
        let mut lp = LinearProgram::maximize(vec![1.0, 1.0]);
        lp.add_constraint(vec![1.0, 0.0], Relation::Le, 1.0).unwrap();
        lp.add_constraint(vec![0.0, 1.0], Relation::Le, 1.0).unwrap();
        lp.add_constraint(vec![1.0, 1.0], Relation::Le, 2.0).unwrap();
        lp.add_constraint(vec![1.0, 1.0], Relation::Le, 2.0).unwrap();
        let sol = lp.solve().unwrap();
        assert_close(sol.objective_value(), 2.0);
    }

    #[test]
    fn majority_preservation_shaped_lp() {
        // The exact LP shape used by the (eps, delta)-m.p. test, for the
        // binary noise matrix with eps = 0.2 and delta = 0.1:
        // minimize (c·P)_1 − (c·P)_2 over δ-biased distributions c.
        // P = [[0.7, 0.3], [0.3, 0.7]]. (c·P)_1 − (c·P)_2 = 0.4 (c_1 − c_2),
        // minimized at c_1 − c_2 = δ = 0.1, so the optimum is 0.04.
        let p = [[0.7, 0.3], [0.3, 0.7]];
        // minimize sum_j c_j (p[j][0] - p[j][1])
        let objective: Vec<f64> = (0..2).map(|j| p[j][0] - p[j][1]).collect();
        let mut lp = LinearProgram::minimize(objective);
        lp.add_constraint(vec![1.0, 1.0], Relation::Eq, 1.0).unwrap();
        lp.add_constraint(vec![1.0, -1.0], Relation::Ge, 0.1).unwrap();
        let sol = lp.solve().unwrap();
        assert_close(sol.objective_value(), 0.04);
    }
}
