//! # noisy-lp
//!
//! A small, dependency-free, dense-tableau **simplex** linear-programming
//! solver.
//!
//! The solver exists to support the \\((\epsilon, \delta)\\)-majority-preserving
//! membership test of Fraigniaud & Natale (PODC 2016, Section 4): deciding
//! whether a noise matrix `P` preserves a δ-biased plurality requires, for
//! every pair of opinions `(m, i)`, solving
//!
//! ```text
//! minimize    (c · P)_m − (c · P)_i
//! subject to  Σ_j c_j = 1
//!             c_m − c_j ≥ δ   for all j ≠ m
//!             c_j ≥ 0
//! ```
//!
//! These are tiny LPs (k variables, k constraints, k ≤ a few dozen), so a
//! dense two-phase simplex with Bland's anti-cycling rule is more than
//! adequate, and implementing it in-repo keeps the dependency budget at zero.
//!
//! The API is deliberately general (maximize or minimize, `≤`/`=`/`≥`
//! constraints, non-negative variables) so the solver is reusable by the
//! benchmark harness for other small optimization questions (e.g. worst-case
//! opinion distributions).
//!
//! # Example
//!
//! Maximize `3x + 2y` subject to `x + y ≤ 4`, `x + 3y ≤ 6`, `x, y ≥ 0`:
//!
//! ```
//! use noisy_lp::{LinearProgram, Relation};
//!
//! # fn main() -> Result<(), noisy_lp::LpError> {
//! let mut lp = LinearProgram::maximize(vec![3.0, 2.0]);
//! lp.add_constraint(vec![1.0, 1.0], Relation::Le, 4.0)?;
//! lp.add_constraint(vec![1.0, 3.0], Relation::Le, 6.0)?;
//! let solution = lp.solve()?;
//! assert!((solution.objective_value() - 12.0).abs() < 1e-9);
//! assert!((solution.variables()[0] - 4.0).abs() < 1e-9);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;
mod problem;
mod simplex;
mod solution;

pub use error::LpError;
pub use problem::{Constraint, LinearProgram, Relation};
pub use solution::Solution;

/// Numerical tolerance used throughout the solver for feasibility and
/// optimality checks.
///
/// The LPs arising from the majority-preservation test have coefficients of
/// magnitude at most 1, so an absolute tolerance is appropriate.
pub const TOLERANCE: f64 = 1e-9;
