//! Optimal solution returned by the simplex solver.

use std::fmt;

/// An optimal solution of a [`LinearProgram`](crate::LinearProgram).
///
/// A `Solution` is only ever produced for problems that are feasible and
/// bounded; infeasibility and unboundedness are reported through
/// [`LpError`](crate::LpError).
#[derive(Debug, Clone, PartialEq)]
pub struct Solution {
    variables: Vec<f64>,
    objective_value: f64,
}

impl Solution {
    pub(crate) fn new(variables: Vec<f64>, objective_value: f64) -> Self {
        Self {
            variables,
            objective_value,
        }
    }

    /// The optimal assignment of the decision variables, in the order they
    /// were declared in the objective.
    ///
    /// ```
    /// use noisy_lp::{LinearProgram, Relation};
    /// # fn main() -> Result<(), noisy_lp::LpError> {
    /// let mut lp = LinearProgram::maximize(vec![1.0]);
    /// lp.add_constraint(vec![1.0], Relation::Le, 2.5)?;
    /// assert_eq!(lp.solve()?.variables(), &[2.5]);
    /// # Ok(())
    /// # }
    /// ```
    pub fn variables(&self) -> &[f64] {
        &self.variables
    }

    /// The optimal value of the objective function (in the original
    /// orientation: a maximization problem reports the maximum, a
    /// minimization problem reports the minimum).
    pub fn objective_value(&self) -> f64 {
        self.objective_value
    }

    /// Consumes the solution and returns the variable assignment.
    pub fn into_variables(self) -> Vec<f64> {
        self.variables
    }
}

impl fmt::Display for Solution {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "objective = {:.6}, x = [", self.objective_value)?;
        for (i, v) in self.variables.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{v:.6}")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accessors_round_trip() {
        let s = Solution::new(vec![1.0, 2.0], 3.5);
        assert_eq!(s.variables(), &[1.0, 2.0]);
        assert_eq!(s.objective_value(), 3.5);
        assert_eq!(s.clone().into_variables(), vec![1.0, 2.0]);
    }

    #[test]
    fn display_contains_objective_and_variables() {
        let s = Solution::new(vec![0.25], 4.0);
        let text = s.to_string();
        assert!(text.contains("objective"));
        assert!(text.contains("0.25"));
    }
}
