//! Error type for the LP solver.

use std::error::Error;
use std::fmt;

/// Errors returned by [`LinearProgram`](crate::LinearProgram) construction and
/// solving.
#[derive(Debug, Clone, PartialEq)]
pub enum LpError {
    /// A constraint row has a different number of coefficients than the
    /// objective has variables.
    DimensionMismatch {
        /// Number of variables declared by the objective.
        expected: usize,
        /// Number of coefficients supplied in the offending row.
        found: usize,
    },
    /// The problem has no variables.
    EmptyProblem,
    /// A coefficient or right-hand side is NaN or infinite.
    NonFiniteCoefficient,
    /// The feasible region is empty.
    Infeasible,
    /// The objective is unbounded over the feasible region.
    Unbounded,
    /// The simplex iteration limit was exceeded (should not happen with
    /// Bland's rule on well-posed inputs; indicates severe numerical
    /// trouble).
    IterationLimit,
}

impl fmt::Display for LpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LpError::DimensionMismatch { expected, found } => write!(
                f,
                "constraint has {found} coefficients but the problem has {expected} variables"
            ),
            LpError::EmptyProblem => write!(f, "linear program has no variables"),
            LpError::NonFiniteCoefficient => {
                write!(f, "coefficient or right-hand side is not finite")
            }
            LpError::Infeasible => write!(f, "linear program is infeasible"),
            LpError::Unbounded => write!(f, "linear program is unbounded"),
            LpError::IterationLimit => write!(f, "simplex iteration limit exceeded"),
        }
    }
}

impl Error for LpError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_nonempty_and_lowercase() {
        let variants = [
            LpError::DimensionMismatch {
                expected: 3,
                found: 2,
            },
            LpError::EmptyProblem,
            LpError::NonFiniteCoefficient,
            LpError::Infeasible,
            LpError::Unbounded,
            LpError::IterationLimit,
        ];
        for v in variants {
            let msg = v.to_string();
            assert!(!msg.is_empty());
            assert!(msg.chars().next().unwrap().is_lowercase());
            assert!(!msg.ends_with('.'));
        }
    }

    #[test]
    fn error_trait_is_implemented() {
        fn assert_error<E: Error + Send + Sync + 'static>() {}
        assert_error::<LpError>();
    }
}
