//! Problem description: objective, constraints and the public `solve` entry
//! point.

use crate::error::LpError;
use crate::simplex;
use crate::solution::Solution;

/// The relation of a linear constraint to its right-hand side.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Relation {
    /// `a · x ≤ b`
    Le,
    /// `a · x = b`
    Eq,
    /// `a · x ≥ b`
    Ge,
}

/// A single linear constraint `coeffs · x (≤ | = | ≥) rhs`.
#[derive(Debug, Clone, PartialEq)]
pub struct Constraint {
    coeffs: Vec<f64>,
    relation: Relation,
    rhs: f64,
}

impl Constraint {
    /// The coefficient row of the constraint.
    pub fn coeffs(&self) -> &[f64] {
        &self.coeffs
    }

    /// The relation (`≤`, `=`, `≥`) of the constraint.
    pub fn relation(&self) -> Relation {
        self.relation
    }

    /// The right-hand side of the constraint.
    pub fn rhs(&self) -> f64 {
        self.rhs
    }

    /// Evaluates whether `x` satisfies the constraint up to `tol`.
    pub fn is_satisfied_by(&self, x: &[f64], tol: f64) -> bool {
        let lhs: f64 = self.coeffs.iter().zip(x).map(|(a, v)| a * v).sum();
        match self.relation {
            Relation::Le => lhs <= self.rhs + tol,
            Relation::Eq => (lhs - self.rhs).abs() <= tol,
            Relation::Ge => lhs >= self.rhs - tol,
        }
    }
}

/// Orientation of the objective.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Sense {
    Maximize,
    Minimize,
}

/// A linear program over non-negative variables.
///
/// The problem is
///
/// ```text
/// max (or min)   objective · x
/// subject to     constraints
///                x ≥ 0
/// ```
///
/// Construct with [`LinearProgram::maximize`] or [`LinearProgram::minimize`],
/// add rows with [`add_constraint`](LinearProgram::add_constraint), and call
/// [`solve`](LinearProgram::solve).
///
/// # Example
///
/// Minimize `x + y` subject to `x + 2y ≥ 3`, `3x + y ≥ 4`:
///
/// ```
/// use noisy_lp::{LinearProgram, Relation};
/// # fn main() -> Result<(), noisy_lp::LpError> {
/// let mut lp = LinearProgram::minimize(vec![1.0, 1.0]);
/// lp.add_constraint(vec![1.0, 2.0], Relation::Ge, 3.0)?;
/// lp.add_constraint(vec![3.0, 1.0], Relation::Ge, 4.0)?;
/// let sol = lp.solve()?;
/// assert!((sol.objective_value() - 2.0).abs() < 1e-9); // x = 1, y = 1
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct LinearProgram {
    objective: Vec<f64>,
    constraints: Vec<Constraint>,
    sense: Sense,
}

impl LinearProgram {
    /// Creates a maximization problem with the given objective coefficients.
    ///
    /// The number of variables of the program is `objective.len()`.
    pub fn maximize(objective: Vec<f64>) -> Self {
        Self {
            objective,
            constraints: Vec::new(),
            sense: Sense::Maximize,
        }
    }

    /// Creates a minimization problem with the given objective coefficients.
    pub fn minimize(objective: Vec<f64>) -> Self {
        Self {
            objective,
            constraints: Vec::new(),
            sense: Sense::Minimize,
        }
    }

    /// The number of decision variables.
    pub fn num_vars(&self) -> usize {
        self.objective.len()
    }

    /// The number of constraints added so far.
    pub fn num_constraints(&self) -> usize {
        self.constraints.len()
    }

    /// The objective coefficient vector.
    pub fn objective(&self) -> &[f64] {
        &self.objective
    }

    /// The constraints added so far.
    pub fn constraints(&self) -> &[Constraint] {
        &self.constraints
    }

    /// Returns `true` if the problem maximizes its objective.
    pub fn is_maximization(&self) -> bool {
        self.sense == Sense::Maximize
    }

    /// Adds the constraint `coeffs · x (relation) rhs`.
    ///
    /// # Errors
    ///
    /// Returns [`LpError::DimensionMismatch`] if `coeffs.len()` differs from
    /// the number of variables, and [`LpError::NonFiniteCoefficient`] if any
    /// coefficient or `rhs` is NaN or infinite.
    pub fn add_constraint(
        &mut self,
        coeffs: Vec<f64>,
        relation: Relation,
        rhs: f64,
    ) -> Result<&mut Self, LpError> {
        if coeffs.len() != self.objective.len() {
            return Err(LpError::DimensionMismatch {
                expected: self.objective.len(),
                found: coeffs.len(),
            });
        }
        if !rhs.is_finite() || coeffs.iter().any(|c| !c.is_finite()) {
            return Err(LpError::NonFiniteCoefficient);
        }
        self.constraints.push(Constraint {
            coeffs,
            relation,
            rhs,
        });
        Ok(self)
    }

    /// Checks whether `x` is feasible for every constraint (and non-negative)
    /// up to tolerance `tol`.
    pub fn is_feasible(&self, x: &[f64], tol: f64) -> bool {
        x.len() == self.num_vars()
            && x.iter().all(|&v| v >= -tol)
            && self.constraints.iter().all(|c| c.is_satisfied_by(x, tol))
    }

    /// Evaluates the objective at `x`.
    ///
    /// # Panics
    ///
    /// Panics if `x.len()` differs from the number of variables.
    pub fn objective_at(&self, x: &[f64]) -> f64 {
        assert_eq!(
            x.len(),
            self.num_vars(),
            "objective_at: point has wrong dimension"
        );
        self.objective.iter().zip(x).map(|(c, v)| c * v).sum()
    }

    /// Solves the linear program with the two-phase simplex method.
    ///
    /// # Errors
    ///
    /// * [`LpError::EmptyProblem`] if there are no variables.
    /// * [`LpError::NonFiniteCoefficient`] if the objective contains NaN or
    ///   infinite entries.
    /// * [`LpError::Infeasible`] if the feasible region is empty.
    /// * [`LpError::Unbounded`] if the objective is unbounded.
    /// * [`LpError::IterationLimit`] on pathological numerical behaviour.
    pub fn solve(&self) -> Result<Solution, LpError> {
        if self.objective.is_empty() {
            return Err(LpError::EmptyProblem);
        }
        if self.objective.iter().any(|c| !c.is_finite()) {
            return Err(LpError::NonFiniteCoefficient);
        }
        // The simplex core always maximizes; flip the sign of the objective
        // for minimization problems and flip the optimum back afterwards.
        let objective: Vec<f64> = match self.sense {
            Sense::Maximize => self.objective.clone(),
            Sense::Minimize => self.objective.iter().map(|c| -c).collect(),
        };
        let x = simplex::solve_standard_form(&objective, &self.constraints)?;
        let value = self.objective_at(&x);
        Ok(Solution::new(x, value))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dimension_mismatch_is_rejected() {
        let mut lp = LinearProgram::maximize(vec![1.0, 2.0]);
        let err = lp
            .add_constraint(vec![1.0], Relation::Le, 1.0)
            .unwrap_err();
        assert_eq!(
            err,
            LpError::DimensionMismatch {
                expected: 2,
                found: 1
            }
        );
    }

    #[test]
    fn non_finite_coefficients_are_rejected() {
        let mut lp = LinearProgram::maximize(vec![1.0]);
        assert_eq!(
            lp.add_constraint(vec![f64::NAN], Relation::Le, 1.0)
                .unwrap_err(),
            LpError::NonFiniteCoefficient
        );
        assert_eq!(
            lp.add_constraint(vec![1.0], Relation::Le, f64::INFINITY)
                .unwrap_err(),
            LpError::NonFiniteCoefficient
        );
    }

    #[test]
    fn empty_problem_is_rejected() {
        let lp = LinearProgram::maximize(vec![]);
        assert_eq!(lp.solve().unwrap_err(), LpError::EmptyProblem);
    }

    #[test]
    fn constraint_accessors() {
        let mut lp = LinearProgram::minimize(vec![1.0, 1.0]);
        lp.add_constraint(vec![2.0, 1.0], Relation::Ge, 5.0).unwrap();
        let c = &lp.constraints()[0];
        assert_eq!(c.coeffs(), &[2.0, 1.0]);
        assert_eq!(c.relation(), Relation::Ge);
        assert_eq!(c.rhs(), 5.0);
        assert!(c.is_satisfied_by(&[3.0, 0.0], 1e-12));
        assert!(!c.is_satisfied_by(&[1.0, 0.0], 1e-12));
    }

    #[test]
    fn feasibility_check_includes_nonnegativity() {
        let mut lp = LinearProgram::maximize(vec![1.0, 1.0]);
        lp.add_constraint(vec![1.0, 1.0], Relation::Le, 3.0).unwrap();
        assert!(lp.is_feasible(&[1.0, 1.0], 1e-12));
        assert!(!lp.is_feasible(&[-1.0, 1.0], 1e-12));
        assert!(!lp.is_feasible(&[4.0, 0.0], 1e-12));
        assert!(!lp.is_feasible(&[1.0], 1e-12));
    }

    #[test]
    fn objective_sense_is_reported() {
        assert!(LinearProgram::maximize(vec![1.0]).is_maximization());
        assert!(!LinearProgram::minimize(vec![1.0]).is_maximization());
    }
}
