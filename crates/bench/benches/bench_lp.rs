//! Criterion micro-benchmarks for the simplex solver on LP shapes used by
//! the majority-preservation test and on dense random covering problems.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use noisy_lp::{LinearProgram, Relation};
use std::hint::black_box;
use std::time::Duration;

/// The exact LP shape of the m.p. test: minimize a linear function over the
/// δ-biased sub-simplex in dimension k.
fn mp_shaped_lp(k: usize, delta: f64) -> LinearProgram {
    let objective: Vec<f64> = (0..k).map(|j| (j as f64 * 0.37).sin() / 3.0).collect();
    let mut lp = LinearProgram::minimize(objective);
    lp.add_constraint(vec![1.0; k], Relation::Eq, 1.0).expect("valid");
    for j in 1..k {
        let mut row = vec![0.0; k];
        row[0] = 1.0;
        row[j] = -1.0;
        lp.add_constraint(row, Relation::Ge, delta).expect("valid");
    }
    lp
}

fn bench_mp_shape(c: &mut Criterion) {
    let mut group = c.benchmark_group("lp_mp_shape");
    for &k in &[4usize, 16, 64] {
        group.bench_with_input(BenchmarkId::from_parameter(k), &k, |b, &k| {
            let lp = mp_shaped_lp(k, 0.05);
            b.iter(|| black_box(lp.solve().expect("feasible").objective_value()));
        });
    }
    group.finish();
}

fn bench_covering(c: &mut Criterion) {
    c.bench_function("lp_covering_20x30", |b| {
        // min sum x  s.t.  A x >= 1 with a dense positive matrix.
        let vars = 30;
        let rows = 20;
        let mut lp = LinearProgram::minimize(vec![1.0; vars]);
        for r in 0..rows {
            let row: Vec<f64> = (0..vars)
                .map(|v| 0.05 + ((r * 31 + v * 17) % 97) as f64 / 97.0)
                .collect();
            lp.add_constraint(row, Relation::Ge, 1.0).expect("valid");
        }
        b.iter(|| black_box(lp.solve().expect("feasible").objective_value()));
    });
}

fn configured() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_millis(1500))
}

criterion_group! {
    name = benches;
    config = configured();
    targets = bench_mp_shape, bench_covering
}
criterion_main!(benches);
