//! Criterion micro-benchmarks for the push-model simulator: cost of one
//! round and one phase under each delivery semantics, and the headline
//! comparison of this repository's batched count-based delivery engine
//! against per-message sampling. These numbers are the cost model behind
//! the experiment binaries' runtime estimates; `BENCH_pushsim.json` at the
//! workspace root archives a baseline run.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gossip_analysis::observe::TrajectoryRecorder;
use noisy_channel::NoiseMatrix;
use plurality_core::observe::{NoObserver, Observer, PhaseSnapshot};
use pushsim::{
    CountingNetwork, DeliverySemantics, Network, Opinion, PhaseObservation, PushBackend,
    SimConfig, TopologySpec,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::hint::black_box;
use std::time::Duration;

fn bench_round_throughput(c: &mut Criterion) {
    let mut group = c.benchmark_group("pushsim_round");
    for &n in &[1_000usize, 10_000] {
        for semantics in [DeliverySemantics::Exact, DeliverySemantics::BallsIntoBins] {
            group.bench_with_input(
                BenchmarkId::new(format!("process_{}", semantics.label()), n),
                &n,
                |b, &n| {
                    let noise = NoiseMatrix::uniform(3, 0.2).expect("valid noise");
                    let config = SimConfig::builder(n, 3)
                        .seed(1)
                        .delivery(semantics)
                        .build()
                        .expect("valid config");
                    let mut net = Network::new(config, noise).expect("valid network");
                    net.seed_counts(&[n / 2, n / 4, n / 4]).expect("valid counts");
                    b.iter(|| {
                        net.begin_phase();
                        net.push_round(|_, s| s.opinion());
                        net.end_phase().total_messages()
                    });
                },
            );
        }
    }
    group.finish();
}

fn bench_poissonized_phase(c: &mut Criterion) {
    c.bench_function("pushsim_poissonized_phase_n10000", |b| {
        let noise = NoiseMatrix::uniform(3, 0.2).expect("valid noise");
        let config = SimConfig::builder(10_000, 3)
            .seed(2)
            .delivery(DeliverySemantics::Poissonized)
            .build()
            .expect("valid config");
        let mut net = Network::new(config, noise).expect("valid network");
        net.seed_counts(&[5_000, 2_500, 2_500]).expect("valid counts");
        b.iter(|| {
            net.begin_phase();
            for _ in 0..4 {
                net.push_round(|_, s| s.opinion());
            }
            net.end_phase().total_messages()
        });
    });
}

/// The pre-batching end-phase semantics, reproduced verbatim for the
/// speedup comparison: one channel draw + one destination draw per pending
/// message (process B), or per-message recoloring plus n·k Poisson draws
/// (process P).
mod legacy {
    use super::*;

    pub fn balls_into_bins(
        pending: &[u64],
        noise: &NoiseMatrix,
        n: usize,
        inbox: &mut [u32],
        rng: &mut StdRng,
    ) -> u64 {
        let k = pending.len();
        let mut delivered = 0;
        for (opinion, &m) in pending.iter().enumerate() {
            for _ in 0..m {
                let received_as = noise.sample(opinion, rng);
                let destination = rng.gen_range(0..n);
                inbox[destination * k + received_as] += 1;
                delivered += 1;
            }
        }
        delivered
    }

    pub fn poissonized(
        pending: &[u64],
        noise: &NoiseMatrix,
        n: usize,
        inbox: &mut [u32],
        rng: &mut StdRng,
    ) -> u64 {
        let k = pending.len();
        let mut post_noise = vec![0u64; k];
        for (opinion, &m) in pending.iter().enumerate() {
            for _ in 0..m {
                post_noise[noise.sample(opinion, rng)] += 1;
            }
        }
        let mut delivered = 0;
        for node in 0..n {
            for (opinion, &h) in post_noise.iter().enumerate() {
                if h == 0 {
                    continue;
                }
                let copies = pushsim::poisson::sample(h as f64 / n as f64, rng);
                inbox[node * k + opinion] += copies as u32;
                delivered += copies;
            }
        }
        delivered
    }
}

/// The acceptance benchmark of the batching refactor: end-phase delivery at
/// n = 10⁵ with full participation, per-message (legacy) vs batched
/// (`Network::end_phase`). The batched path applies the noise with O(k²)
/// multinomial draws and only pays a bare uniform scatter per message.
fn bench_end_phase_per_message_vs_batched(c: &mut Criterion) {
    let n = 100_000usize;
    let k = 3usize;
    let pending = [n as u64 / 2, n as u64 / 4, n as u64 / 4];
    let noise = NoiseMatrix::uniform(k, 0.2).expect("valid noise");

    let mut group = c.benchmark_group("pushsim_end_phase_n1e5");
    group.sample_size(10);

    group.bench_function("legacy_per_message_B", |b| {
        let mut rng = StdRng::seed_from_u64(3);
        let mut inbox = vec![0u32; n * k];
        b.iter(|| {
            inbox.iter_mut().for_each(|c| *c = 0);
            black_box(legacy::balls_into_bins(&pending, &noise, n, &mut inbox, &mut rng))
        });
    });
    group.bench_function("legacy_per_message_P", |b| {
        let mut rng = StdRng::seed_from_u64(4);
        let mut inbox = vec![0u32; n * k];
        b.iter(|| {
            inbox.iter_mut().for_each(|c| *c = 0);
            black_box(legacy::poissonized(&pending, &noise, n, &mut inbox, &mut rng))
        });
    });
    for semantics in [DeliverySemantics::BallsIntoBins, DeliverySemantics::Poissonized] {
        group.bench_function(format!("batched_{}", semantics.label()), |b| {
            let config = SimConfig::builder(n, k)
                .seed(5)
                .delivery(semantics)
                .build()
                .expect("valid config");
            let mut net = Network::new(config, noise.clone()).expect("valid network");
            net.seed_counts(&[n / 2, n / 4, n / 4]).expect("valid counts");
            b.iter(|| {
                net.begin_phase();
                net.push_round(|_, s| s.opinion());
                net.end_phase().total_messages()
            });
        });
    }
    group.finish();
}

/// Whole phases across population scales: the agent-level backend (batched
/// deliveries, but still O(n) state) vs the counting backend (O(k²) per
/// phase). At n = 10⁷ only the counting backend is practical.
fn bench_backend_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("pushsim_phase_scaling");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(2));
    for &n in &[1_000usize, 100_000, 10_000_000] {
        if n <= 100_000 {
            group.bench_with_input(BenchmarkId::new("agent_batched_B", n), &n, |b, &n| {
                let noise = NoiseMatrix::uniform(3, 0.2).expect("valid noise");
                let config = SimConfig::builder(n, 3)
                    .seed(6)
                    .delivery(DeliverySemantics::BallsIntoBins)
                    .build()
                    .expect("valid config");
                let mut net = Network::new(config, noise).expect("valid network");
                net.seed_counts(&[n / 2, n / 4, n / 4]).expect("valid counts");
                b.iter(|| {
                    net.begin_phase();
                    net.push_round(|_, s| s.opinion());
                    net.end_phase().total_messages()
                });
            });
        }
        group.bench_with_input(BenchmarkId::new("counting_P", n), &n, |b, &n| {
            let noise = NoiseMatrix::uniform(3, 0.2).expect("valid noise");
            let config = SimConfig::builder(n, 3)
                .seed(7)
                .delivery(DeliverySemantics::Poissonized)
                .build()
                .expect("valid config");
            let mut net = CountingNetwork::new(config, noise).expect("valid network");
            net.seed_counts(&[n / 2, n / 4, n / 4]).expect("valid counts");
            b.iter(|| {
                net.begin_phase();
                net.push_round_all_opinionated();
                net.end_phase().total()
            });
        });
    }
    group.finish();
}

/// One phase driven through the `PushBackend` trait — the exact shape the
/// generic protocol stages compile down to after monomorphization.
fn drive_phase_generic<B: PushBackend>(net: &mut B) -> u64 {
    net.begin_phase();
    net.push_opinionated_round();
    net.end_phase().total_received()
}

/// The refactor guard: the backend-generic phase loop vs the pre-refactor
/// shape (direct concrete method calls) on both backends. Monomorphization
/// means the two must be within noise of each other; a regression here
/// would indicate accidental dynamic dispatch or lost inlining on the hot
/// phase path.
fn bench_generic_vs_concrete_dispatch(c: &mut Criterion) {
    let n = 100_000usize;
    let k = 3usize;
    let noise = NoiseMatrix::uniform(k, 0.2).expect("valid noise");

    let mut group = c.benchmark_group("pushsim_generic_dispatch");
    group.sample_size(10);

    let agent_net = || {
        let config = SimConfig::builder(n, k)
            .seed(8)
            .delivery(DeliverySemantics::BallsIntoBins)
            .build()
            .expect("valid config");
        let mut net = Network::new(config, noise.clone()).expect("valid network");
        net.seed_counts(&[n / 2, n / 4, n / 4]).expect("valid counts");
        net
    };
    group.bench_function("concrete_agent_B", |b| {
        let mut net = agent_net();
        b.iter(|| {
            net.begin_phase();
            net.push_round(|_, s| s.opinion());
            net.end_phase().total_messages()
        });
    });
    group.bench_function("generic_agent_B", |b| {
        let mut net = agent_net();
        b.iter(|| black_box(drive_phase_generic(&mut net)));
    });

    let counting_net = || {
        let config = SimConfig::builder(n, k)
            .seed(9)
            .delivery(DeliverySemantics::Poissonized)
            .build()
            .expect("valid config");
        let mut net = CountingNetwork::new(config, noise.clone()).expect("valid network");
        net.seed_counts(&[n / 2, n / 4, n / 4]).expect("valid counts");
        net
    };
    group.bench_function("concrete_counting_P", |b| {
        let mut net = counting_net();
        b.iter(|| {
            net.begin_phase();
            net.push_round_all_opinionated();
            net.end_phase().total()
        });
    });
    group.bench_function("generic_counting_P", |b| {
        let mut net = counting_net();
        b.iter(|| black_box(drive_phase_generic(&mut net)));
    });
    group.finish();
}

/// One phase with the per-phase observation work the protocol stages add
/// when an observer is attached — an `on_phase_begin` dyn call, an O(k)
/// snapshot built from the population tallies, and an `on_phase_end` dyn
/// call — behind an `Option` so the *same* monomorphized function also
/// serves as the observer-free arm.
///
/// All three arms of [`bench_observer_dispatch`] must run this one
/// function. An earlier shape of the group drove the unobserved arm
/// through [`drive_phase_generic`] and the observed arms through a
/// separate helper: two separately monomorphized functions whose phase
/// loops the optimizer is free to lay out differently, so the arms were
/// measuring different machine code for the same logical phase (the
/// archived `counting_k64` baseline showed the *unobserved* arm at
/// 460 µs vs 232 µs with a no-op observer — a codegen artifact, not
/// observation cost). Sharing one function makes the subtraction
/// "observed − unobserved = observation layer" meaningful again.
fn drive_phase_maybe_observed<B: PushBackend>(
    net: &mut B,
    observer: Option<&mut dyn Observer>,
) -> u64 {
    net.begin_phase();
    net.push_opinionated_round();
    let received = net.end_phase().total_received();
    if let Some(observer) = observer {
        observer.on_phase_begin(None, 0);
        let distribution = net.distribution();
        let bias = distribution.bias_towards(Opinion::new(0));
        let snapshot = PhaseSnapshot::new(
            None,
            0,
            1,
            net.rounds_executed(),
            received,
            net.messages_sent(),
            distribution,
            bias,
        );
        observer.on_phase_end(&snapshot);
    }
    received
}

/// The observation-layer guard: the phase loop with no observer, with an
/// attached no-op observer (dyn-dispatched, snapshot built), and with a
/// recording observer — at n = 10⁵ on the agent backend and k = 64 on the
/// counting backend. The snapshot + dyn-call overhead must stay within
/// noise of the observer-free loop (it is O(k) per *phase* against O(n·k)
/// or O(k²) phase work). All three arms share one monomorphized phase
/// function ([`drive_phase_maybe_observed`]) and differ only in the
/// `Option<&mut dyn Observer>` they pass, so the comparison isolates the
/// observation layer rather than codegen differences.
fn bench_observer_dispatch(c: &mut Criterion) {
    let mut group = c.benchmark_group("pushsim_observer_dispatch");
    group.sample_size(10);

    // Agent backend at n = 1e5, k = 3.
    let agent_net = || {
        let noise = NoiseMatrix::uniform(3, 0.2).expect("valid noise");
        let n = 100_000;
        let config = SimConfig::builder(n, 3)
            .seed(10)
            .delivery(DeliverySemantics::BallsIntoBins)
            .build()
            .expect("valid config");
        let mut net = Network::new(config, noise).expect("valid network");
        net.seed_counts(&[n / 2, n / 4, n / 4]).expect("valid counts");
        net
    };
    group.bench_function("agent_n1e5_unobserved", |b| {
        let mut net = agent_net();
        b.iter(|| black_box(drive_phase_maybe_observed(&mut net, None)));
    });
    group.bench_function("agent_n1e5_noop_observer", |b| {
        let mut net = agent_net();
        b.iter(|| black_box(drive_phase_maybe_observed(&mut net, Some(&mut NoObserver))));
    });
    group.bench_function("agent_n1e5_trajectory_recorder", |b| {
        let mut net = agent_net();
        let mut recorder = TrajectoryRecorder::new();
        b.iter(|| {
            recorder.clear();
            black_box(drive_phase_maybe_observed(&mut net, Some(&mut recorder)))
        });
    });

    // Counting backend at k = 64 (the per-phase work is O(k²), so this is
    // the backend's worst case for relative observation overhead: the
    // snapshot is O(k) of the O(k²) phase).
    let counting_net = || {
        let k = 64;
        let n = 1_000_000;
        let noise = NoiseMatrix::uniform(k, 0.2).expect("valid noise");
        let config = SimConfig::builder(n, k)
            .seed(11)
            .delivery(DeliverySemantics::Poissonized)
            .build()
            .expect("valid config");
        let mut net = CountingNetwork::new(config, noise).expect("valid network");
        let counts = vec![n / k; k];
        net.seed_counts(&counts).expect("valid counts");
        net
    };
    group.bench_function("counting_k64_unobserved", |b| {
        let mut net = counting_net();
        b.iter(|| black_box(drive_phase_maybe_observed(&mut net, None)));
    });
    group.bench_function("counting_k64_noop_observer", |b| {
        let mut net = counting_net();
        b.iter(|| black_box(drive_phase_maybe_observed(&mut net, Some(&mut NoObserver))));
    });
    group.bench_function("counting_k64_trajectory_recorder", |b| {
        let mut net = counting_net();
        let mut recorder = TrajectoryRecorder::new();
        b.iter(|| {
            recorder.clear();
            black_box(drive_phase_maybe_observed(&mut net, Some(&mut recorder)))
        });
    });
    group.finish();
}

/// The topology cost guard: one exact-delivery push round at n = 10⁵ with
/// full participation, on the complete graph (destination is a bare
/// `gen_range(0..n)`, the pre-topology hot path) vs the ring and a random
/// 8-regular graph (destination is a CSR neighbor-list lookup). Sparse
/// topologies add one offset indirection per message; the group documents
/// that the whole topology subsystem costs nothing when it is not used
/// and only a small constant when it is.
fn bench_topology_round(c: &mut Criterion) {
    let n = 100_000usize;
    let k = 3usize;
    let mut group = c.benchmark_group("pushsim_topology_round_n1e5");
    group.sample_size(10);
    for topology in [
        TopologySpec::Complete,
        TopologySpec::Ring,
        TopologySpec::RandomRegular { degree: 8 },
    ] {
        group.bench_function(topology.to_string(), |b| {
            let noise = NoiseMatrix::uniform(k, 0.2).expect("valid noise");
            let config = SimConfig::builder(n, k)
                .seed(12)
                .topology(topology)
                .build()
                .expect("valid config");
            let mut net = Network::new(config, noise).expect("valid network");
            net.seed_counts(&[n / 2, n / 4, n / 4]).expect("valid counts");
            b.iter(|| {
                net.begin_phase();
                net.push_round(|_, s| s.opinion());
                net.end_phase().total_messages()
            });
        });
    }
    group.finish();
}

/// Sparse-topology phases at scale: one full phase (push round +
/// end-phase delivery) on the agent backend (exact process O over the
/// materialized graph, O(n) per round) vs the degree-class block-counting
/// backend (Poissonized process P over the `C × k` class matrix, O(k²·C)
/// per phase) at n = 10⁶ and 10⁷. This is the acceptance benchmark of the
/// block-counting backend: at n = 10⁷ a ring phase must cost ≤ 100 µs —
/// more than 1000× under the agent backend's phase at the same size. The
/// torus arm runs at 10⁶ only (10⁷ is not a perfect square), and the
/// agent arm at 10⁷ runs the ring only (a random 8-regular graph at that
/// size spends gigabytes on the CSR and minutes in construction for no
/// extra information — the per-message cost is already visible at 10⁶).
fn bench_topology_phase_scaling(c: &mut Criterion) {
    let k = 3usize;
    let mut group = c.benchmark_group("pushsim_topology_phase");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(3));

    let agent_arms: [(TopologySpec, usize); 3] = [
        (TopologySpec::Ring, 1_000_000),
        (TopologySpec::RandomRegular { degree: 8 }, 1_000_000),
        (TopologySpec::Ring, 10_000_000),
    ];
    for (topology, n) in agent_arms {
        group.bench_with_input(
            BenchmarkId::new(format!("agent_{topology}"), n),
            &n,
            |b, &n| {
                let noise = NoiseMatrix::uniform(k, 0.2).expect("valid noise");
                let config = SimConfig::builder(n, k)
                    .seed(15)
                    .topology(topology)
                    .build()
                    .expect("valid config");
                let mut net = Network::new(config, noise).expect("valid network");
                net.seed_counts(&[n / 2, n / 4, n / 4]).expect("valid counts");
                b.iter(|| {
                    net.begin_phase();
                    net.push_round(|_, s| s.opinion());
                    net.end_phase().total_messages()
                });
            },
        );
    }

    let block_arms: [(TopologySpec, usize); 5] = [
        (TopologySpec::Ring, 1_000_000),
        (TopologySpec::Torus2D, 1_000_000),
        (TopologySpec::RandomRegular { degree: 8 }, 1_000_000),
        (TopologySpec::Ring, 10_000_000),
        (TopologySpec::RandomRegular { degree: 8 }, 10_000_000),
    ];
    for (topology, n) in block_arms {
        group.bench_with_input(
            BenchmarkId::new(format!("block_{topology}"), n),
            &n,
            |b, &n| {
                let noise = NoiseMatrix::uniform(k, 0.2).expect("valid noise");
                let config = SimConfig::builder(n, k)
                    .seed(16)
                    .delivery(DeliverySemantics::Poissonized)
                    .topology(topology)
                    .build()
                    .expect("valid config");
                let mut net =
                    pushsim::BlockCountingNetwork::new(config, noise).expect("valid network");
                net.seed_counts(&[n / 2, n / 4, n / 4]).expect("valid counts");
                b.iter(|| {
                    net.begin_phase();
                    net.push_round_all_opinionated();
                    net.end_phase().total()
                });
            },
        );
    }
    group.finish();
}

/// The fault-subsystem cost guard: one phase at n = 10⁵ with full
/// participation, fault-free (no `fault` key at all vs an explicit
/// all-disabled [`FaultSpec`] — these two must be within noise of each
/// other, since a disabled spec never seeds the fault RNG and never
/// enters the fault branch) and under enabled per-message faults
/// (`drop(0.1)`, then the full drop+dup+delay ladder), on both backends
/// where the semantics allow. Enabled faults pay one Bernoulli draw per
/// affected message on the agent backend and O(k) binomial splits on the
/// counting backend; the disabled path is the hot path the campaigns
/// leave untouched.
fn bench_fault_overhead(c: &mut Criterion) {
    let n = 100_000usize;
    let k = 3usize;
    let mut group = c.benchmark_group("pushsim_fault_overhead_n1e5");
    group.sample_size(10);

    let agent_net = |fault: Option<&str>| {
        let noise = NoiseMatrix::uniform(k, 0.2).expect("valid noise");
        let mut builder = SimConfig::builder(n, k)
            .seed(13)
            .delivery(DeliverySemantics::BallsIntoBins);
        if let Some(fault) = fault {
            builder = builder.fault(fault.parse().expect("valid fault spec"));
        }
        let config = builder.build().expect("valid config");
        let mut net = Network::new(config, noise).expect("valid network");
        net.seed_counts(&[n / 2, n / 4, n / 4]).expect("valid counts");
        net
    };
    for (name, fault) in [
        ("agent_no_fault_key", None),
        ("agent_fault_none", Some("none")),
        ("agent_drop", Some("drop(0.1)")),
        ("agent_drop_dup_delay", Some("drop(0.1)+dup(0.1)+delay(0.1)")),
    ] {
        group.bench_function(name, |b| {
            let mut net = agent_net(fault);
            b.iter(|| black_box(drive_phase_generic(&mut net)));
        });
    }

    let counting_net = |fault: Option<&str>| {
        let noise = NoiseMatrix::uniform(k, 0.2).expect("valid noise");
        let mut builder = SimConfig::builder(n, k)
            .seed(14)
            .delivery(DeliverySemantics::Poissonized);
        if let Some(fault) = fault {
            builder = builder.fault(fault.parse().expect("valid fault spec"));
        }
        let config = builder.build().expect("valid config");
        let mut net = CountingNetwork::new(config, noise).expect("valid network");
        net.seed_counts(&[n / 2, n / 4, n / 4]).expect("valid counts");
        net
    };
    for (name, fault) in [
        ("counting_no_fault_key", None),
        ("counting_fault_none", Some("none")),
        ("counting_drop_dup", Some("drop(0.1)+dup(0.1)")),
    ] {
        group.bench_function(name, |b| {
            let mut net = counting_net(fault);
            b.iter(|| black_box(drive_phase_generic(&mut net)));
        });
    }
    group.finish();
}

/// The temporal-subsystem cost guard: one phase with no temporal keys at
/// all vs an explicit all-default temporal configuration (`churn = none`,
/// `schedule = const`, `clock = sync` — these two must be within noise of
/// each other, since default axes build no temporal state and never seed
/// the dedicated churn/schedule RNGs) and with each axis active, on the
/// agent backend at n = 10⁵ and the counting backend at k = 64. Active
/// population churn pays an O(k) count transfer per *phase* boundary, a
/// schedule an O(k²) matrix rebuild per boundary, edge churn a graph
/// resample, and a drifting clock a per-round participation draw — all
/// amortized against O(n·k) (agent) or O(k²) (counting) phase work.
fn bench_temporal_overhead(c: &mut Criterion) {
    let n = 100_000usize;
    let k = 3usize;
    let mut group = c.benchmark_group("pushsim_temporal_overhead");
    group.sample_size(10);

    let agent_net = |temporal: Option<(&str, &str, &str)>, topology: TopologySpec| {
        let noise = NoiseMatrix::uniform(k, 0.2).expect("valid noise");
        let delivery = if topology.is_complete() {
            DeliverySemantics::BallsIntoBins
        } else {
            DeliverySemantics::Exact
        };
        let mut builder = SimConfig::builder(n, k)
            .seed(17)
            .delivery(delivery)
            .topology(topology);
        if let Some((churn, schedule, clock)) = temporal {
            builder = builder
                .churn(churn.parse().expect("valid churn spec"))
                .schedule(schedule.parse().expect("valid schedule"))
                .clock(clock.parse().expect("valid clock spec"));
        }
        let config = builder.build().expect("valid config");
        let mut net = Network::new(config, noise).expect("valid network");
        net.seed_counts(&[n / 2, n / 4, n / 4]).expect("valid counts");
        net
    };
    let complete = TopologySpec::Complete;
    for (name, temporal, topology) in [
        ("agent_n1e5_no_temporal_keys", None, complete),
        ("agent_n1e5_temporal_none", Some(("none", "const", "sync")), complete),
        ("agent_n1e5_churn", Some(("join(0.02)+leave(0.02)", "const", "sync")), complete),
        ("agent_n1e5_schedule_burst", Some(("none", "burst(0.4@2:1)", "sync")), complete),
        ("agent_n1e5_clock_drift", Some(("none", "const", "drift(20000)")), complete),
        (
            "agent_n1e5_rewire",
            Some(("rewire(0.5)", "const", "sync")),
            TopologySpec::RandomRegular { degree: 8 },
        ),
    ] {
        group.bench_function(name, |b| {
            let mut net = agent_net(temporal, topology);
            b.iter(|| black_box(drive_phase_generic(&mut net)));
        });
    }

    // Counting backend at k = 64: the O(k) churn transfer and the O(k²)
    // scheduled matrix rebuild land on an O(k²) phase, the backend's worst
    // case for relative temporal overhead.
    let counting_net = |temporal: Option<(&str, &str)>| {
        let k = 64;
        let n = 1_000_000;
        let noise = NoiseMatrix::uniform(k, 0.2).expect("valid noise");
        let mut builder = SimConfig::builder(n, k)
            .seed(18)
            .delivery(DeliverySemantics::Poissonized);
        if let Some((churn, schedule)) = temporal {
            builder = builder
                .churn(churn.parse().expect("valid churn spec"))
                .schedule(schedule.parse().expect("valid schedule"));
        }
        let config = builder.build().expect("valid config");
        let mut net = CountingNetwork::new(config, noise).expect("valid network");
        let counts = vec![n / k; k];
        net.seed_counts(&counts).expect("valid counts");
        net
    };
    for (name, temporal) in [
        ("counting_k64_no_temporal_keys", None),
        ("counting_k64_temporal_none", Some(("none", "const"))),
        ("counting_k64_churn", Some(("join(0.05)+leave(0.05)", "const"))),
        ("counting_k64_schedule_burst", Some(("none", "burst(0.4@2:1)"))),
    ] {
        group.bench_function(name, |b| {
            let mut net = counting_net(temporal);
            b.iter(|| black_box(drive_phase_generic(&mut net)));
        });
    }
    group.finish();
}

fn configured() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_millis(1500))
}

criterion_group! {
    name = benches;
    config = configured();
    targets = bench_round_throughput, bench_poissonized_phase,
              bench_end_phase_per_message_vs_batched, bench_backend_scaling,
              bench_generic_vs_concrete_dispatch, bench_observer_dispatch,
              bench_topology_round, bench_topology_phase_scaling,
              bench_fault_overhead, bench_temporal_overhead
}
criterion_main!(benches);
