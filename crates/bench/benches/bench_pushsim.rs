//! Criterion micro-benchmarks for the push-model simulator: cost of one
//! round and one phase under each delivery semantics. These numbers are the
//! cost model behind the experiment binaries' runtime estimates.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use noisy_channel::NoiseMatrix;
use pushsim::{DeliverySemantics, Network, SimConfig};
use std::time::Duration;

fn bench_round_throughput(c: &mut Criterion) {
    let mut group = c.benchmark_group("pushsim_round");
    for &n in &[1_000usize, 10_000] {
        for semantics in [DeliverySemantics::Exact, DeliverySemantics::BallsIntoBins] {
            group.bench_with_input(
                BenchmarkId::new(format!("process_{}", semantics.label()), n),
                &n,
                |b, &n| {
                    let noise = NoiseMatrix::uniform(3, 0.2).expect("valid noise");
                    let config = SimConfig::builder(n, 3)
                        .seed(1)
                        .delivery(semantics)
                        .build()
                        .expect("valid config");
                    let mut net = Network::new(config, noise).expect("valid network");
                    net.seed_counts(&[n / 2, n / 4, n / 4]).expect("valid counts");
                    b.iter(|| {
                        net.begin_phase();
                        net.push_round(|_, s| s.opinion());
                        net.end_phase().total_messages()
                    });
                },
            );
        }
    }
    group.finish();
}

fn bench_poissonized_phase(c: &mut Criterion) {
    c.bench_function("pushsim_poissonized_phase_n10000", |b| {
        let noise = NoiseMatrix::uniform(3, 0.2).expect("valid noise");
        let config = SimConfig::builder(10_000, 3)
            .seed(2)
            .delivery(DeliverySemantics::Poissonized)
            .build()
            .expect("valid config");
        let mut net = Network::new(config, noise).expect("valid network");
        net.seed_counts(&[5_000, 2_500, 2_500]).expect("valid counts");
        b.iter(|| {
            net.begin_phase();
            for _ in 0..4 {
                net.push_round(|_, s| s.opinion());
            }
            net.end_phase().total_messages()
        });
    });
}

fn configured() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_millis(1500))
}

criterion_group! {
    name = benches;
    config = configured();
    targets = bench_round_throughput, bench_poissonized_phase
}
criterion_main!(benches);
