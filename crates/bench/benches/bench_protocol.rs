//! Criterion benchmarks for complete protocol executions at small scales:
//! the wall-clock cost of a full rumor-spreading run and of the two stages'
//! building blocks.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use noisy_channel::NoiseMatrix;
use plurality_core::{ProtocolParams, TwoStageProtocol};
use pushsim::Opinion;
use std::hint::black_box;
use std::time::Duration;

fn bench_rumor_spreading_end_to_end(c: &mut Criterion) {
    let mut group = c.benchmark_group("protocol_rumor_spreading");
    group.sample_size(10);
    for &n in &[500usize, 2_000] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            let eps = 0.3;
            let noise = NoiseMatrix::uniform(3, eps).expect("valid noise");
            let params = ProtocolParams::builder(n, 3)
                .epsilon(eps)
                .seed(1)
                .build()
                .expect("valid params");
            let protocol = TwoStageProtocol::new(params, noise).expect("compatible");
            b.iter(|| {
                let outcome = protocol
                    .run_rumor_spreading(Opinion::new(0))
                    .expect("run completes");
                black_box(outcome.rounds())
            });
        });
    }
    group.finish();
}

fn bench_plurality_consensus_end_to_end(c: &mut Criterion) {
    c.bench_function("protocol_plurality_n2000_k5", |b| {
        let eps = 0.3;
        let noise = NoiseMatrix::uniform(5, eps).expect("valid noise");
        let params = ProtocolParams::builder(2_000, 5)
            .epsilon(eps)
            .seed(2)
            .build()
            .expect("valid params");
        let protocol = TwoStageProtocol::new(params, noise).expect("compatible");
        let counts = [600, 400, 400, 300, 300];
        b.iter(|| {
            let outcome = protocol
                .run_plurality_consensus(&counts)
                .expect("run completes");
            black_box(outcome.succeeded())
        });
    });
}

fn bench_schedule_computation(c: &mut Criterion) {
    c.bench_function("protocol_schedule_n1e6", |b| {
        let params = ProtocolParams::builder(1_000_000, 4)
            .epsilon(0.05)
            .build()
            .expect("valid params");
        b.iter(|| black_box(params.schedule().total_rounds()));
    });
}

fn configured() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(3))
}

criterion_group! {
    name = benches;
    config = configured();
    targets = bench_rumor_spreading_end_to_end, bench_plurality_consensus_end_to_end, bench_schedule_computation
}
criterion_main!(benches);
