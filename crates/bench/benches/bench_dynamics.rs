//! Criterion benchmarks for the baseline dynamics: cost of one update step
//! at a fixed network size, per dynamics.

use criterion::{criterion_group, criterion_main, Criterion};
use noisy_channel::NoiseMatrix;
use opinion_dynamics::{Dynamics, HMajority, MedianRule, ThreeMajority, UndecidedState, Voter};
use pushsim::{Network, SimConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;
use std::time::Duration;

fn bench_steps(c: &mut Criterion) {
    let n = 5_000usize;
    let mut group = c.benchmark_group("dynamics_step_n5000");

    let mut bench_one = |name: &str, mut dynamics: Box<dyn Dynamics>| {
        group.bench_function(name, |b| {
            let noise = NoiseMatrix::uniform(3, 0.2).expect("valid noise");
            let config = SimConfig::builder(n, 3).seed(1).build().expect("valid config");
            let mut net = Network::new(config, noise).expect("valid network");
            net.seed_counts(&[n / 2, n / 4, n / 4]).expect("valid counts");
            let mut rng = StdRng::seed_from_u64(2);
            b.iter(|| {
                dynamics.step(&mut net, &mut rng);
                black_box(net.rounds_executed())
            });
        });
    };

    bench_one("voter", Box::new(Voter::new()));
    bench_one("three_majority", Box::new(ThreeMajority::new()));
    bench_one("h_majority_15", Box::new(HMajority::new(15)));
    bench_one("undecided_state", Box::new(UndecidedState::new()));
    bench_one("median_rule", Box::new(MedianRule::new()));
    group.finish();
}

fn configured() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_millis(1500))
}

criterion_group! {
    name = benches;
    config = configured();
    targets = bench_steps
}
criterion_main!(benches);
