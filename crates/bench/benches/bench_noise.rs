//! Criterion micro-benchmarks for the noise layer: per-message sampling,
//! distribution application and the LP-based majority-preservation test.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use noisy_channel::NoiseMatrix;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;
use std::time::Duration;

fn bench_sampling(c: &mut Criterion) {
    let mut group = c.benchmark_group("noise_sample");
    for &k in &[2usize, 8, 32] {
        group.bench_with_input(BenchmarkId::from_parameter(k), &k, |b, &k| {
            let matrix = NoiseMatrix::uniform(k, 0.5 * (1.0 - 1.0 / k as f64)).expect("valid");
            let mut rng = StdRng::seed_from_u64(1);
            b.iter(|| black_box(matrix.sample(black_box(k / 2), &mut rng)));
        });
    }
    group.finish();
}

fn bench_apply(c: &mut Criterion) {
    c.bench_function("noise_apply_k32", |b| {
        let k = 32;
        let matrix = NoiseMatrix::uniform(k, 0.5).expect("valid");
        let dist = vec![1.0 / k as f64; k];
        b.iter(|| black_box(matrix.apply(black_box(&dist))));
    });
}

fn bench_mp_test(c: &mut Criterion) {
    let mut group = c.benchmark_group("noise_mp_lp");
    for &k in &[3usize, 8, 16] {
        group.bench_with_input(BenchmarkId::from_parameter(k), &k, |b, &k| {
            let matrix = NoiseMatrix::uniform(k, 0.1).expect("valid");
            b.iter(|| {
                matrix
                    .majority_preservation(black_box(0), black_box(0.05))
                    .expect("analysis runs")
                    .worst_margin()
            });
        });
    }
    group.finish();
}

fn configured() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_millis(1500))
}

criterion_group! {
    name = benches;
    config = configured();
    targets = bench_sampling, bench_apply, bench_mp_test
}
criterion_main!(benches);
