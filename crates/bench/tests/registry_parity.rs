//! Fixed-seed parity test: the spec-API registry reproduces the
//! pre-redesign harness bit for bit.
//!
//! `fixtures/f2_quick_pre_redesign.jsonl` is the verbatim `--json` output
//! of the old hand-wired `fig_f2_rounds_vs_eps` binary (quick grid,
//! default backend), captured immediately before the binaries were
//! collapsed into the registry. Running the registry's `f2` spec through
//! the generic [`Runner`] must produce identical rows: same sweep
//! expansion, same parameter construction, same seeds, same trial
//! parallelism semantics, same formatting.

use noisy_bench::registry;
use noisy_bench::runner::Runner;
use noisy_bench::Scale;

const PRE_REDESIGN: &str = include_str!("fixtures/f2_quick_pre_redesign.jsonl");

#[test]
fn f2_registry_run_matches_the_pre_redesign_binary_output() {
    let experiment = registry::find("f2").expect("f2 is registered");
    let spec = experiment
        .spec(Scale::Quick)
        .expect("f2 is spec-backed");
    let report = Runner::new(spec).unwrap().run().unwrap();
    let json = report.to_table().to_json_lines();
    assert_eq!(
        json, PRE_REDESIGN,
        "registry f2 must reproduce the pre-redesign binary bit for bit"
    );
}
