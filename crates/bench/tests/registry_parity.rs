//! Fixed-seed parity tests: the spec-API registry reproduces the
//! pre-redesign harnesses bit for bit.
//!
//! `fixtures/f2_quick_pre_redesign.jsonl` pins the numbers of the old
//! hand-wired `fig_f2_rounds_vs_eps` binary (quick grid, default
//! backend), captured immediately before the binaries were collapsed into
//! the registry. `fixtures/f5_quick_pre_redesign.jsonl` pins the `xp run
//! f5 --json` output of the *bespoke* F5 builder, captured immediately
//! before F5 became a `ScenarioSpec` with `observe.trajectory` — it pins
//! the whole observation path (Session → Observer → TrajectoryRecorder →
//! table) to the pre-redesign execution: same seeds, same RNG streams,
//! same per-phase numbers.
//!
//! Both fixtures were re-rendered (numbers verified unchanged field by
//! field) when `--json` switched from all-string cells to typed JSON
//! numbers and the trajectory table gained its `topology` column; the
//! *values* are still the pre-redesign ones, so any drift in the RNG
//! streams or the execution path fails these tests.
//!
//! Running the registry specs through the generic [`Runner`] must produce
//! identical rows in both cases.

use noisy_bench::registry;
use noisy_bench::runner::Runner;
use noisy_bench::Scale;

const F2_PRE_REDESIGN: &str = include_str!("fixtures/f2_quick_pre_redesign.jsonl");
const F5_PRE_REDESIGN: &str = include_str!("fixtures/f5_quick_pre_redesign.jsonl");

fn registry_json(name: &str) -> String {
    let experiment = registry::find(name).expect("experiment is registered");
    let spec = experiment.spec(Scale::Quick).expect("experiment is spec-backed");
    let report = Runner::new(spec).unwrap().run().unwrap();
    report.to_table().to_json_lines()
}

#[test]
fn f2_registry_run_matches_the_pre_redesign_binary_output() {
    assert_eq!(
        registry_json("f2"),
        F2_PRE_REDESIGN,
        "registry f2 must reproduce the pre-redesign binary bit for bit"
    );
}

#[test]
fn f5_trajectory_spec_matches_the_pre_redesign_bespoke_output() {
    assert_eq!(
        registry_json("f5"),
        F5_PRE_REDESIGN,
        "the observe.trajectory spec must reproduce the bespoke F5 builder bit for bit"
    );
}

#[test]
fn f5_streamed_output_matches_the_pinned_fixture_too() {
    // `--stream` must emit exactly the same rows, just incrementally.
    let spec = registry::find("f5")
        .unwrap()
        .spec(Scale::Quick)
        .unwrap();
    let mut out = Vec::new();
    Runner::new(spec).unwrap().run_streamed(&mut out).unwrap();
    assert_eq!(String::from_utf8(out).unwrap(), F5_PRE_REDESIGN);
}
