//! Observer determinism: attaching any observer must not perturb the RNG
//! streams of an execution.
//!
//! The observation layer is RNG-free by construction — observers receive
//! immutable [`PhaseSnapshot`]s built from the O(k) population tallies and
//! never touch the protocol's decision RNG or the backend's delivery RNG.
//! These tests pin that property end to end: fixed-seed runs with and
//! without a [`TrajectoryRecorder`] (and with a full observer stack)
//! produce identical [`Outcome`]s on **both** backends, for every run
//! entry point, and the recorded trajectory agrees with the outcome's own
//! phase records.

use gossip_analysis::observe::{OnlineStats, StreamSink, TrajectoryRecorder};
use noisy_channel::NoiseMatrix;
use plurality_core::observe::{Fanout, NoObserver, Observer};
use plurality_core::{
    ExecutionBackend, Outcome, ProtocolParams, StopCondition, TwoStageProtocol,
};
use pushsim::Opinion;

fn protocol(backend_seed: u64) -> TwoStageProtocol {
    let eps = 0.35;
    let noise = NoiseMatrix::uniform(3, eps).expect("valid noise");
    let params = ProtocolParams::builder(800, 3)
        .epsilon(eps)
        .seed(backend_seed)
        .build()
        .expect("valid params");
    TwoStageProtocol::new(params, noise).expect("dimensions match")
}

/// Runs the same configuration once without and once with the given
/// observer; both outcomes must be identical in every field.
fn assert_observation_free<F>(run: F)
where
    F: Fn(&TwoStageProtocol, &mut dyn Observer) -> Outcome,
{
    for backend in [ExecutionBackend::Agent, ExecutionBackend::Counting] {
        let seed = match backend {
            ExecutionBackend::Agent => 41,
            _ => 42,
        };
        let plain = run(&protocol(seed), &mut NoObserver);
        let mut recorder = TrajectoryRecorder::new();
        let observed = run(&protocol(seed), &mut recorder);
        assert_eq!(
            plain, observed,
            "a TrajectoryRecorder must not perturb the execution ({backend:?})"
        );
        assert_eq!(
            recorder.len(),
            observed.phase_records().len(),
            "one snapshot per phase record"
        );
        // The recorded trajectory is the outcome's own record sequence.
        for (snapshot, record) in recorder.snapshots().iter().zip(observed.phase_records()) {
            assert_eq!(Some(record.stage()), snapshot.stage());
            assert_eq!(record.phase(), snapshot.phase());
            assert_eq!(record.rounds(), snapshot.rounds());
            assert_eq!(record.messages(), snapshot.messages());
            assert_eq!(record.distribution_after(), snapshot.distribution());
            assert_eq!(record.bias_after(), snapshot.bias());
        }
    }
}

#[test]
fn rumor_spreading_is_observation_free_on_both_backends() {
    assert_observation_free(|protocol, observer| {
        let backend = if protocol.params().seed() == 41 {
            ExecutionBackend::Agent
        } else {
            ExecutionBackend::Counting
        };
        protocol
            .session()
            .run_rumor_spreading_on(backend, Opinion::new(1), observer)
            .expect("valid run")
    });
}

#[test]
fn plurality_consensus_is_observation_free_on_both_backends() {
    assert_observation_free(|protocol, observer| {
        let backend = if protocol.params().seed() == 41 {
            ExecutionBackend::Agent
        } else {
            ExecutionBackend::Counting
        };
        protocol
            .session()
            .run_plurality_consensus_on(backend, &[350, 250, 200], observer)
            .expect("valid run")
    });
}

#[test]
fn stage2_only_is_observation_free_on_both_backends() {
    assert_observation_free(|protocol, observer| {
        let backend = if protocol.params().seed() == 41 {
            ExecutionBackend::Agent
        } else {
            ExecutionBackend::Counting
        };
        protocol
            .session()
            .run_stage2_only_on(backend, &[400, 250, 150], observer)
            .expect("valid run")
    });
}

#[test]
fn a_full_observer_stack_is_still_observation_free() {
    // Recorder + streaming aggregates + a JSONL sink, all at once, with a
    // stop condition in play: still bit-identical to the bare session run.
    let stop = StopCondition::ConsensusReached;
    let bare = protocol(7)
        .session()
        .stop_when(stop.clone())
        .run_rumor_spreading_on(ExecutionBackend::Agent, Opinion::new(0), &mut NoObserver)
        .expect("valid run");

    let mut recorder = TrajectoryRecorder::new();
    let mut stats = OnlineStats::new();
    let mut out = Vec::new();
    let observed = {
        let mut sink = StreamSink::new(&mut out);
        let mut fanout = Fanout::new(vec![&mut recorder, &mut stats, &mut sink]);
        protocol(7)
            .session()
            .stop_when(stop)
            .run_rumor_spreading_on(ExecutionBackend::Agent, Opinion::new(0), &mut fanout)
            .expect("valid run")
    };
    assert_eq!(bare, observed);
    assert_eq!(recorder.len(), observed.phase_records().len());
    assert_eq!(stats.runs(), 1);
    assert_eq!(
        String::from_utf8(out).expect("UTF-8").lines().count(),
        observed.phase_records().len(),
        "one streamed JSON line per phase"
    );
}

#[test]
fn the_schedule_exhausted_session_matches_the_plain_entry_points() {
    // The Session API is a superset, not a fork: a default session run is
    // bit-identical to the pre-observation entry points.
    for backend in [ExecutionBackend::Agent, ExecutionBackend::Counting] {
        let plain = protocol(9)
            .run_rumor_spreading_on(backend, Opinion::new(2))
            .expect("valid run");
        let session = protocol(9)
            .session()
            .run_rumor_spreading_on(backend, Opinion::new(2), &mut NoObserver)
            .expect("valid run");
        assert_eq!(plain, session, "{backend:?}");
    }
}
