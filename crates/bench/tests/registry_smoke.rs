//! Registry smoke test: every registered experiment runs end to end at
//! quick scale.
//!
//! The run uses the CLI's `--trials`/`--backend` overrides to keep the
//! suite fast: two trials per cell and the O(k²)-per-phase counting
//! backend for protocol runs (experiments that are inherently agent-level,
//! like F8's delivery comparison, ignore the backend override by design).

use noisy_bench::{registry, Cli, Scale};
use plurality_core::ExecutionBackend;

fn smoke_cli() -> Cli {
    Cli {
        scale: Scale::Quick,
        json: true,
        stream: false,
        backend: Some(ExecutionBackend::Counting),
        trials: Some(2),
        seed: None,
    }
}

#[test]
fn every_registered_experiment_runs_at_quick_scale() {
    let cli = smoke_cli();
    for experiment in registry::all() {
        let mut cli = cli;
        // `topo` and `topoxl` sweep non-complete topologies, which the
        // counting backend statically cannot represent; the specs' own
        // backends (auto, which resolves sparse points to agent, and the
        // pinned block-counting backend) are the only meaningful choices
        // there.
        if matches!(experiment.name, "topo" | "topoxl") {
            cli.backend = None;
        }
        registry::run(experiment, &cli)
            .unwrap_or_else(|e| panic!("experiment {} failed: {e}", experiment.name));
    }
}

#[test]
fn spec_backed_experiments_expose_valid_specs_at_both_scales() {
    for experiment in registry::all() {
        for scale in [Scale::Quick, Scale::Full] {
            let Some(spec) = experiment.spec(scale) else {
                continue;
            };
            spec.validate()
                .unwrap_or_else(|e| panic!("{} spec invalid at {scale:?}: {e}", experiment.name));
            assert!(spec.sweep.num_points() >= 1);
        }
    }
}
